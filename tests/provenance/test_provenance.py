"""Provenance record and lineage-graph tests."""

import pytest

from repro.provenance import (
    ProvenanceStore,
    ancestry,
    build_graph,
    impact,
    regeneration_plan,
    to_dot,
)


def pipeline_store():
    """granule -> preprocess -> tile_file -> inference(+model) -> labelled."""
    store = ProvenanceStore(clock=iter(range(100)).__next__)
    granule = store.entity("granule", "/raw/MOD02.A2022001.nc")
    geo = store.entity("granule", "/raw/MOD03.A2022001.nc")
    pre = store.start_activity("preprocess", "parsl", tile_size=16)
    store.record_use(pre, granule)
    store.record_use(pre, geo)
    tile_file = store.entity("tile_file", "/tiles/tiles_0.nc", tiles=42)
    store.record_generation(pre, tile_file)
    store.end_activity(pre)

    model = store.entity("model", "/models/aicca.npz")
    inf = store.start_activity("inference", "globus-flow")
    store.record_use(inf, tile_file)
    store.record_use(inf, model)
    labelled = store.entity("labelled_file", "/outbox/tiles_0.nc")
    store.record_generation(inf, labelled)
    store.end_activity(inf)
    return store, granule, geo, tile_file, model, labelled


class TestStore:
    def test_entity_idempotent(self):
        store = ProvenanceStore()
        a = store.entity("granule", "/raw/x.nc")
        b = store.entity("granule", "/raw/x.nc")
        assert a is b
        assert len(store.entities) == 1

    def test_activity_lifecycle(self):
        store = ProvenanceStore(clock=iter([1.0, 4.5]).__next__)
        activity = store.start_activity("download", "globus-compute", workers=3)
        store.end_activity(activity)
        assert activity.duration == pytest.approx(3.5)
        assert activity.status == "succeeded"
        with pytest.raises(ValueError):
            store.end_activity(activity)

    def test_generator_of(self):
        store, granule, _geo, tile_file, _model, labelled = pipeline_store()
        assert store.generator_of(tile_file.entity_id).kind == "preprocess"
        assert store.generator_of(granule.entity_id) is None

    def test_summary(self):
        store, *_ = pipeline_store()
        summary = store.summary()
        assert summary["entities"] == 5
        assert summary["activities"] == 2
        assert summary["failed_activities"] == 0


class TestGraph:
    def test_ancestry_reaches_sources(self):
        store, granule, geo, tile_file, model, labelled = pipeline_store()
        graph = build_graph(store)
        upstream = ancestry(graph, labelled.entity_id)
        for node in (granule.entity_id, geo.entity_id, tile_file.entity_id, model.entity_id):
            assert node in upstream

    def test_impact_of_bad_granule(self):
        store, granule, _geo, tile_file, _model, labelled = pipeline_store()
        graph = build_graph(store)
        downstream = impact(graph, granule.entity_id)
        assert tile_file.entity_id in downstream
        assert labelled.entity_id in downstream
        # The model is NOT derived from the granule.
        assert all("model" not in node for node in downstream)

    def test_regeneration_plan_ordered(self):
        store, *_rest, labelled = pipeline_store()
        graph = build_graph(store)
        plan = regeneration_plan(graph, labelled.entity_id)
        assert [p.split("-")[0] for p in plan] == ["preprocess", "inference"]

    def test_unknown_node(self):
        store, *_ = pipeline_store()
        graph = build_graph(store)
        with pytest.raises(KeyError):
            ancestry(graph, "ghost")

    def test_cycle_detected(self):
        store = ProvenanceStore()
        a = store.entity("tile_file", "/x.nc")
        act = store.start_activity("weird", "agent")
        store.record_use(act, a)
        store.record_generation(act, a)  # derives from itself
        store.end_activity(act)
        with pytest.raises(ValueError, match="cycle"):
            build_graph(store)

    def test_to_dot(self):
        store, *_ = pipeline_store()
        dot = to_dot(build_graph(store))
        assert dot.startswith("digraph provenance")
        assert "preprocess" in dot and "->" in dot


class TestWorkflowIntegration:
    def test_workflow_records_full_lineage(self, tmp_path):
        from repro.core import EOMLWorkflow, load_config
        from repro.modis import MINI_SWATH, LaadsArchive

        config = load_config(
            {
                "archive": {"start_date": "2022-01-01", "max_granules_per_day": 2, "seed": 3},
                "paths": {
                    "staging": str(tmp_path / "raw"),
                    "preprocessed": str(tmp_path / "tiles"),
                    "transfer_out": str(tmp_path / "outbox"),
                    "destination": str(tmp_path / "orion"),
                },
                "preprocess": {"workers": 2, "tile_size": 16},
            }
        )
        report = EOMLWorkflow(config, archive=LaadsArchive(seed=3, swath=MINI_SWATH)).run()
        prov = report.provenance
        assert prov is not None
        kinds = {a.kind for a in prov.activities.values()}
        assert {"download", "preprocess", "inference", "shipment"} <= kinds
        graph = build_graph(prov)
        # Every delivered file traces back to at least one raw granule.
        delivered = [e for e in prov.entities.values() if e.kind == "delivered_file"]
        assert delivered
        for entity in delivered:
            upstream = ancestry(graph, entity.entity_id)
            granules = [
                node for node in upstream
                if node in prov.entities and prov.entities[node].kind == "granule"
            ]
            assert granules

    def test_workflow_provenance_optional(self, tmp_path):
        from repro.core import EOMLWorkflow, load_config
        from repro.modis import MINI_SWATH, LaadsArchive

        config = load_config(
            {
                "archive": {"start_date": "2022-01-01", "max_granules_per_day": 1, "seed": 3},
                "paths": {
                    "staging": str(tmp_path / "raw"),
                    "preprocessed": str(tmp_path / "tiles"),
                    "transfer_out": str(tmp_path / "outbox"),
                    "destination": str(tmp_path / "orion"),
                },
                "preprocess": {"workers": 2, "tile_size": 16},
            }
        )
        report = EOMLWorkflow(config, archive=LaadsArchive(seed=3, swath=MINI_SWATH)).run(
            provenance=False
        )
        assert report.provenance is None
