"""Cloud-scene synthesis and synthetic-planet tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.modis.synthesis import (
    CLOUD_REGIMES,
    REGIME_NAMES,
    gaussian_random_field,
    land_fraction,
    land_mask,
    synthesize_scene,
)


class TestGaussianRandomField:
    def test_standardized(self):
        rng = np.random.default_rng(0)
        field = gaussian_random_field((64, 64), 2.5, rng)
        assert field.shape == (64, 64)
        assert field.mean() == pytest.approx(0.0, abs=1e-10)
        assert field.std() == pytest.approx(1.0, rel=1e-9)

    def test_non_square(self):
        rng = np.random.default_rng(0)
        field = gaussian_random_field((48, 96), 2.0, rng)
        assert field.shape == (48, 96)

    def test_spectral_slope_orders_smoothness(self):
        """Steeper spectra produce smoother fields (smaller gradients)."""
        rng1, rng2 = np.random.default_rng(1), np.random.default_rng(1)
        rough = gaussian_random_field((128, 128), 1.0, rng1)
        smooth = gaussian_random_field((128, 128), 3.5, rng2)
        grad = lambda f: float(np.mean(np.abs(np.diff(f, axis=0))))
        assert grad(rough) > 2.0 * grad(smooth)

    def test_deterministic_given_rng(self):
        a = gaussian_random_field((32, 32), 2.0, np.random.default_rng(5))
        b = gaussian_random_field((32, 32), 2.0, np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)

    def test_rejects_bad_args(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            gaussian_random_field((1, 10), 2.0, rng)
        with pytest.raises(ValueError):
            gaussian_random_field((10, 10), -1.0, rng)


class TestScenes:
    def test_fields_shapes_and_ranges(self):
        scene = synthesize_scene((64, 64), np.random.default_rng(3))
        assert scene.cloud_mask.dtype == bool
        assert scene.tau.shape == (64, 64)
        assert (scene.tau >= 0).all()
        assert (scene.tau[~scene.cloud_mask] == 0).all()
        assert np.allclose(scene.ctp[~scene.cloud_mask], 1013.25)
        assert (scene.ctp[scene.cloud_mask] <= 1013.25).all()
        assert scene.regime in CLOUD_REGIMES

    def test_coverage_tracks_regime(self):
        """Generated cloud fraction is near the regime's target coverage."""
        for name in ("stratus", "shallow_cumulus"):
            fractions = [
                synthesize_scene((64, 64), np.random.default_rng(i), regime=name).cloud_fraction
                for i in range(10)
            ]
            target = CLOUD_REGIMES[name].coverage
            assert abs(np.mean(fractions) - target) < 0.1

    def test_high_cloud_regime_has_low_ctp(self):
        cirrus = synthesize_scene((64, 64), np.random.default_rng(0), regime="cirrus")
        stratus = synthesize_scene((64, 64), np.random.default_rng(0), regime="stratus")
        assert cirrus.ctp[cirrus.cloud_mask].mean() < stratus.ctp[stratus.cloud_mask].mean()

    def test_unknown_regime(self):
        with pytest.raises(KeyError):
            synthesize_scene((32, 32), np.random.default_rng(0), regime="cumulonimbus_maximus")

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31), regime=st.sampled_from(REGIME_NAMES))
    def test_invariants_property(self, seed, regime):
        scene = synthesize_scene((32, 32), np.random.default_rng(seed), regime=regime)
        assert 0.0 < scene.cloud_fraction < 1.0
        assert np.isfinite(scene.tau).all()
        assert np.isfinite(scene.ctp).all()
        assert (scene.effective_radius[scene.cloud_mask] >= 4.0).all()
        assert (scene.effective_radius[~scene.cloud_mask] == 0.0).all()


class TestPlanet:
    def test_deterministic(self):
        lat = np.linspace(-80, 80, 50)
        lon = np.linspace(-179, 179, 50)
        a = land_fraction(lat[:, None], lon[None, :])
        b = land_fraction(lat[:, None], lon[None, :])
        np.testing.assert_array_equal(a, b)

    def test_global_land_share_earthlike(self):
        """Area-weighted land cover is in a plausible 20-40% window."""
        lat = np.linspace(-89, 89, 180)
        lon = np.linspace(-179.5, 179.5, 360)
        mask = land_mask(lat[:, None], lon[None, :])
        weights = np.cos(np.deg2rad(lat))[:, None] * np.ones((1, lon.size))
        share = float((mask * weights).sum() / weights.sum())
        assert 0.15 < share < 0.45

    def test_has_both_land_and_ocean_regions(self):
        lat = np.linspace(-60, 60, 100)
        lon = np.linspace(-179, 179, 200)
        mask = land_mask(lat[:, None], lon[None, :])
        assert mask.any() and (~mask).any()

    def test_smoothness(self):
        """The elevation field is smooth: adjacent samples differ slightly."""
        lon = np.linspace(0, 10, 200)
        values = land_fraction(np.zeros_like(lon), lon)
        assert np.abs(np.diff(values)).max() < 0.1
