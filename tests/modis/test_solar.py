"""Solar geometry and day/night granule tests."""

import datetime as dt

import numpy as np
import pytest

from repro.modis import MINI_SWATH, GranuleId, generate_granule
from repro.modis.solar import (
    classify_day_night,
    day_fraction,
    reflective_attenuation,
    solar_declination,
    solar_zenith,
)


class TestSolarGeometry:
    def test_declination_seasons(self):
        """Northern summer: positive declination near +23.4; winter: negative."""
        assert solar_declination(dt.date(2022, 6, 21)) == pytest.approx(23.4, abs=0.5)
        assert solar_declination(dt.date(2022, 12, 21)) == pytest.approx(-23.4, abs=0.5)
        assert abs(solar_declination(dt.date(2022, 3, 21))) < 2.0

    def test_local_noon_on_equator_at_equinox(self):
        """At lon=0, 12:00 UTC, near the equinox the sun is ~overhead."""
        sza = solar_zenith(np.array(0.0), np.array(0.0), dt.date(2022, 3, 21), 12.0)
        assert float(sza) < 5.0

    def test_local_midnight_is_night(self):
        sza = solar_zenith(np.array(0.0), np.array(0.0), dt.date(2022, 3, 21), 0.0)
        assert float(sza) > 120.0

    def test_longitude_shifts_local_time(self):
        """+90 deg east at 06:00 UTC sees local noon."""
        date = dt.date(2022, 3, 21)
        east = solar_zenith(np.array(0.0), np.array(90.0), date, 6.0)
        greenwich = solar_zenith(np.array(0.0), np.array(0.0), date, 6.0)
        assert float(east) < float(greenwich)

    def test_zenith_bounds(self):
        rng = np.random.default_rng(0)
        lat = rng.uniform(-90, 90, size=100)
        lon = rng.uniform(-180, 180, size=100)
        sza = solar_zenith(lat, lon, dt.date(2022, 7, 1), 15.5)
        assert ((sza >= 0) & (sza <= 180)).all()

    def test_bad_hours(self):
        with pytest.raises(ValueError):
            solar_zenith(np.zeros(1), np.zeros(1), dt.date(2022, 1, 1), 25.0)


class TestDayNight:
    def test_classification(self):
        assert classify_day_night(np.full(10, 20.0)) == "day"
        assert classify_day_night(np.full(10, 120.0)) == "night"
        mixed = np.concatenate([np.full(5, 20.0), np.full(5, 120.0)])
        assert classify_day_night(mixed) == "terminator"

    def test_day_fraction(self):
        mixed = np.concatenate([np.full(3, 20.0), np.full(7, 120.0)])
        assert day_fraction(mixed) == pytest.approx(0.3)
        with pytest.raises(ValueError):
            day_fraction(np.array([]))

    def test_attenuation_properties(self):
        sza = np.array([0.0, 60.0, 85.0, 120.0])
        factor = reflective_attenuation(sza)
        assert factor[0] == pytest.approx(1.0)
        assert factor[1] == pytest.approx(0.5)
        assert factor[2] == 0.0  # at the terminator
        assert factor[3] == 0.0  # night
        assert (np.diff(factor) <= 1e-12).all()  # monotone non-increasing


class TestGranuleDayNight:
    def test_attrs_present_and_vary(self):
        date = dt.date(2022, 1, 1)
        flags = set()
        for index in (0, 72, 144, 216):
            ds = generate_granule(GranuleId("MOD021KM", date, index), MINI_SWATH, seed=1)
            flag = ds.get_attr("day_night")
            assert flag in ("day", "night", "terminator")
            flags.add(flag)
            fraction = float(np.asarray(ds.get_attr("day_fraction"))[0])
            assert 0.0 <= fraction <= 1.0
        # Across a day of granules the orbit crosses the terminator.
        assert len(flags) >= 2

    def test_night_granule_reflective_bands_dark(self):
        """On a night granule the 1.6um band (index 0) is ~zero while the
        11um emissive band (index 5) still carries signal."""
        date = dt.date(2022, 1, 1)
        night = None
        for index in range(0, 288, 24):
            ds = generate_granule(GranuleId("MOD021KM", date, index), MINI_SWATH, seed=2)
            if ds.get_attr("day_night") == "night":
                night = ds
                break
        assert night is not None, "no night granule found in the sample"
        band6 = night["radiance"].data[0]
        band31 = night["radiance"].data[5]
        assert np.abs(band6).mean() < 0.05   # solar band dark (noise only)
        assert band31.mean() > 0.5           # thermal band alive

    def test_day_granule_reflective_bands_lit(self):
        date = dt.date(2022, 1, 1)
        for index in range(0, 288, 24):
            ds = generate_granule(GranuleId("MOD021KM", date, index), MINI_SWATH, seed=2)
            if ds.get_attr("day_night") == "day":
                assert ds["radiance"].data[0].max() > 0.1
                return
        pytest.fail("no day granule found in the sample")
