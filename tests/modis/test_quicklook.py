"""Quicklook rendering tests (Fig. 1 imagery path)."""

import datetime as dt

import numpy as np
import pytest

from repro.modis import MINI_SWATH, AICCA_BANDS, GranuleId, generate_granule
from repro.modis.quicklook import (
    class_map,
    class_palette,
    swath_composite,
    write_pgm,
    write_ppm,
)


class TestWriters:
    def test_ppm_format(self, tmp_path):
        rgb = np.zeros((4, 6, 3), dtype=np.uint8)
        rgb[0, 0] = (255, 0, 0)
        path = str(tmp_path / "x.ppm")
        nbytes = write_ppm(path, rgb)
        raw = open(path, "rb").read()
        assert raw.startswith(b"P6\n6 4\n255\n")
        assert len(raw) == nbytes
        assert raw.endswith(bytes(4 * 6 * 3 - 3) )  # all but first pixel zero
        with pytest.raises(ValueError):
            write_ppm(path, np.zeros((4, 6)))

    def test_pgm_format_and_scaling(self, tmp_path):
        gray = np.array([[0.0, 5.0], [10.0, 2.5]])
        path = str(tmp_path / "x.pgm")
        write_pgm(path, gray)
        raw = open(path, "rb").read()
        assert raw.startswith(b"P5\n2 2\n255\n")
        pixels = list(raw[-4:])
        assert pixels[0] == 0 and pixels[2] == 255  # scaled min/max

    def test_pgm_constant_field(self, tmp_path):
        path = str(tmp_path / "flat.pgm")
        write_pgm(path, np.full((3, 3), 7.0))
        assert open(path, "rb").read()[-9:] == bytes(9)


class TestPalette:
    def test_shape_and_distinctness(self):
        palette = class_palette(42)
        assert palette.shape == (42, 3)
        assert palette.dtype == np.uint8
        # All 42 colours distinct.
        assert len({tuple(c) for c in palette}) == 42

    def test_validation(self):
        with pytest.raises(ValueError):
            class_palette(0)


class TestComposite:
    def test_from_generated_granule(self):
        ds02 = generate_granule(GranuleId("MOD021KM", dt.date(2022, 1, 1), 7),
                                MINI_SWATH, seed=1)
        ds06 = generate_granule(GranuleId("MOD06_L2", dt.date(2022, 1, 1), 7),
                                MINI_SWATH, seed=1)
        rgb = swath_composite(
            ds02["radiance"].data,
            list(np.asarray(ds02.get_attr("band_list"))),
            land_mask=ds06["land_mask"].data.astype(bool),
        )
        assert rgb.shape == (MINI_SWATH.lines, MINI_SWATH.pixels, 3)
        assert rgb.dtype == np.uint8
        # Cloudy pixels are brighter than clear-ocean pixels.
        cloud = ds06["cloud_mask"].data.astype(bool)
        land = ds06["land_mask"].data.astype(bool)
        clear_ocean = ~cloud & ~land
        if cloud.any() and clear_ocean.any():
            assert rgb[cloud].mean() > rgb[clear_ocean].mean()

    def test_band_validation(self):
        with pytest.raises(ValueError):
            swath_composite(np.zeros((2, 8, 8)), [6, 7, 31])
        with pytest.raises(KeyError):
            swath_composite(np.zeros((2, 8, 8)), [1, 2])


class TestClassMap:
    def test_tiles_coloured(self):
        rgb = class_map((64, 48), 16, {(0, 0): 3, (1, 2): 7}, num_classes=8)
        assert rgb.shape == (64, 48, 3)
        palette = class_palette(8)
        # Interior pixel of tile (0,0) carries class 3's colour.
        np.testing.assert_array_equal(rgb[8, 8], palette[3])
        np.testing.assert_array_equal(rgb[16 + 8, 32 + 8], palette[7])
        # Unclassified area stays background.
        assert (rgb[40, 40] == 25).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            class_map((32, 32), 16, {(2, 0): 1})  # out of raster
        with pytest.raises(ValueError):
            class_map((32, 32), 16, {(0, 0): 99}, num_classes=8)
