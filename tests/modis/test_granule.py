"""Granule naming, geolocation, and product generation tests."""

import datetime as dt

import numpy as np
import pytest

from repro.modis import (
    AICCA_BANDS,
    MINI_SWATH,
    GranuleId,
    LaadsArchive,
    generate_granule,
    granule_geolocation,
    orbit_track,
)
from repro.modis.constants import GRANULES_PER_DAY, SwathSpec


DATE = dt.date(2022, 1, 1)  # the paper's benchmark day


class TestGranuleId:
    def test_filename_shape(self):
        gid = GranuleId("MOD021KM", DATE, 0)
        name = gid.filename
        assert name.startswith("MOD021KM.A2022001.0000.061.")
        assert name.endswith(".hdf")

    def test_hhmm(self):
        assert GranuleId("MOD021KM", DATE, 0).hhmm == "0000"
        assert GranuleId("MOD021KM", DATE, 1).hhmm == "0005"
        assert GranuleId("MOD021KM", DATE, 287).hhmm == "2355"

    def test_parse_roundtrip(self):
        gid = GranuleId("MYD06_L2", dt.date(2003, 7, 14), 130)
        parsed = GranuleId.parse(gid.filename)
        assert parsed == gid

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            GranuleId.parse("random_file.nc")

    def test_index_bounds(self):
        with pytest.raises(ValueError):
            GranuleId("MOD021KM", DATE, GRANULES_PER_DAY)

    def test_unknown_product(self):
        with pytest.raises(KeyError):
            GranuleId("MOD99", DATE, 0)

    def test_scene_key_is_product_independent(self):
        a = GranuleId("MOD021KM", DATE, 5)
        b = GranuleId("MOD06_L2", DATE, 5)
        assert a.scene_key == b.scene_key
        assert a.key != b.key


class TestGeolocation:
    def test_shapes_and_ranges(self):
        lat, lon = granule_geolocation(0, MINI_SWATH)
        assert lat.shape == (MINI_SWATH.lines, MINI_SWATH.pixels)
        assert (np.abs(lat) <= 90).all()
        assert (np.abs(lon) <= 180).all()

    def test_orbit_reaches_high_latitudes(self):
        times = np.linspace(0, 98.88 * 60, 1000)
        lat, _len = orbit_track(times)
        assert lat.max() > 75
        assert lat.min() < -75

    def test_granules_differ(self):
        lat0, _ = granule_geolocation(0, MINI_SWATH)
        lat100, _ = granule_geolocation(100, MINI_SWATH)
        assert not np.allclose(lat0, lat100)

    def test_day_offset_shifts_track(self):
        _, lon0 = granule_geolocation(0, MINI_SWATH, day_offset=0)
        _, lon1 = granule_geolocation(0, MINI_SWATH, day_offset=1)
        assert not np.allclose(lon0, lon1)

    def test_cross_track_continuity(self):
        lat, lon = granule_geolocation(10, MINI_SWATH)
        # Adjacent pixels are < ~0.5 deg apart (no wild jumps except the
        # dateline, handled by wrapping check).
        dlat = np.abs(np.diff(lat, axis=1))
        assert float(np.median(dlat)) < 0.5

    def test_bad_index(self):
        with pytest.raises(ValueError):
            granule_geolocation(288, MINI_SWATH)


class TestGenerateGranule:
    def test_mod02_layout(self):
        ds = generate_granule(GranuleId("MOD021KM", DATE, 3), MINI_SWATH, seed=1)
        assert ds["radiance"].shape == (len(AICCA_BANDS), MINI_SWATH.lines, MINI_SWATH.pixels)
        bands = ds.get_attr("band_list")
        np.testing.assert_array_equal(np.asarray(bands), np.array(AICCA_BANDS))
        assert np.isfinite(ds["radiance"].data).all()

    def test_mod03_layout(self):
        ds = generate_granule(GranuleId("MOD03", DATE, 3), MINI_SWATH, seed=1)
        assert "latitude" in ds and "longitude" in ds
        assert (np.abs(ds["latitude"].data) <= 90).all()

    def test_mod06_layout(self):
        ds = generate_granule(GranuleId("MOD06_L2", DATE, 3), MINI_SWATH, seed=1)
        for name in (
            "cloud_mask",
            "cloud_optical_thickness",
            "cloud_top_pressure",
            "cloud_effective_radius",
            "land_mask",
        ):
            assert name in ds
        mask = ds["cloud_mask"].data.astype(bool)
        tau = ds["cloud_optical_thickness"].data
        assert (tau[~mask] == 0).all()

    def test_products_share_scene(self):
        """MOD02 and MOD06 for the same granule see the same clouds."""
        gid02 = GranuleId("MOD021KM", DATE, 7)
        gid06 = GranuleId("MOD06_L2", DATE, 7)
        ds02 = generate_granule(gid02, MINI_SWATH, seed=2)
        ds06 = generate_granule(gid06, MINI_SWATH, seed=2)
        assert ds02.get_attr("true_regime") == ds06.get_attr("true_regime")
        # Cloudy pixels should be brighter in the 1.6um reflective band.
        mask = ds06["cloud_mask"].data.astype(bool)
        band6 = ds02["radiance"].data[0]
        assert band6[mask].mean() > band6[~mask].mean()

    def test_deterministic(self):
        gid = GranuleId("MOD021KM", DATE, 11)
        a = generate_granule(gid, MINI_SWATH, seed=3)
        b = generate_granule(gid, MINI_SWATH, seed=3)
        np.testing.assert_array_equal(a["radiance"].data, b["radiance"].data)

    def test_seed_changes_content(self):
        gid = GranuleId("MOD021KM", DATE, 11)
        a = generate_granule(gid, MINI_SWATH, seed=3)
        b = generate_granule(gid, MINI_SWATH, seed=4)
        assert not np.array_equal(a["radiance"].data, b["radiance"].data)

    def test_emissive_band_cold_clouds(self):
        """Band 31 (11um) brightness temperature drops over thick cloud."""
        gid02 = GranuleId("MOD021KM", DATE, 9)
        gid06 = GranuleId("MOD06_L2", DATE, 9)
        ds02 = generate_granule(gid02, MINI_SWATH, seed=5)
        ds06 = generate_granule(gid06, MINI_SWATH, seed=5)
        tau = ds06["cloud_optical_thickness"].data
        band31 = ds02["radiance"].data[list(AICCA_BANDS).index(31)]
        thick = tau > 10.0
        clear = tau == 0.0
        if thick.sum() > 10 and clear.sum() > 10:
            assert band31[thick].mean() < band31[clear].mean()


class TestArchive:
    def test_query_counts(self):
        archive = LaadsArchive(seed=0)
        refs = archive.query("MOD02", DATE)
        assert len(refs) == GRANULES_PER_DAY
        refs2 = archive.query("MOD02", DATE, DATE + dt.timedelta(days=1))
        assert len(refs2) == 2 * GRANULES_PER_DAY

    def test_max_per_day(self):
        archive = LaadsArchive(seed=0)
        assert len(archive.query("MOD02", DATE, max_per_day=10)) == 10

    def test_daily_volume_matches_paper(self):
        """Per-day MOD02 bytes land near the paper's ~32 GB figure."""
        archive = LaadsArchive(seed=0)
        total = archive.total_bytes(archive.query("MOD02", DATE))
        assert 0.8 * 32e9 < total < 1.2 * 32e9

    def test_product_size_ordering(self):
        """MOD02 day > MOD06 day > MOD03 day, as in Section III."""
        archive = LaadsArchive(seed=0)
        sizes = {
            p: archive.total_bytes(archive.query(p, DATE)) for p in ("MOD02", "MOD06", "MOD03")
        }
        assert sizes["MOD02"] > sizes["MOD06"] > sizes["MOD03"]

    def test_batch_by_bytes(self):
        archive = LaadsArchive(seed=0)
        refs = archive.query_batch_by_bytes(["MOD02", "MOD03", "MOD06"], DATE, 10**9)
        by_product = {}
        for ref in refs:
            by_product.setdefault(ref.gid.product, []).append(ref.nbytes)
        assert set(by_product) == {"MOD021KM", "MOD03", "MOD06_L2"}
        for product, sizes in by_product.items():
            assert sum(sizes) >= 10**9
            # Not absurdly past the target either: at most one extra granule.
            assert sum(sizes[:-1]) < 10**9

    def test_fetch_materializes(self):
        archive = LaadsArchive(seed=0)
        ref = archive.query("MOD06", DATE, max_per_day=1)[0]
        ds = archive.fetch(ref)
        assert "cloud_mask" in ds

    def test_sizes_deterministic(self):
        a = LaadsArchive(seed=0).query("MOD02", DATE, max_per_day=20)
        b = LaadsArchive(seed=0).query("MOD02", DATE, max_per_day=20)
        assert [r.nbytes for r in a] == [r.nbytes for r in b]

    def test_rejects_pre_epoch(self):
        with pytest.raises(ValueError):
            LaadsArchive().query("MOD02", dt.date(1999, 1, 1))


class TestSwathSpec:
    def test_tile_counts(self):
        spec = SwathSpec(lines=2030, pixels=1354, tile_size=128)
        assert spec.tile_rows == 15
        assert spec.tile_cols == 10
        assert spec.max_tiles == 150

    def test_too_small(self):
        with pytest.raises(ValueError):
            SwathSpec(lines=10, pixels=10, tile_size=16)
