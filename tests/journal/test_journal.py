"""Unit tests for the crash-consistent run journal subsystem."""

import json
import os

import pytest

from repro.journal import (
    COMPLETE,
    FRESH,
    INTENT,
    REPLAY,
    RESUMED,
    IntegrityManifest,
    JournalState,
    RunJournal,
    WorkflowJournal,
    sha256_file,
    verify_file,
)
from repro.journal import manifest as manifest_mod


class TestRunJournal:
    def test_append_and_replay_roundtrip(self, tmp_path):
        path = str(tmp_path / "run.journal.jsonl")
        with RunJournal(path) as journal:
            journal.intent("download", "a.nc")
            journal.complete("download", "a.nc", artifact="/x/a.nc", nbytes=10)
            journal.intent("preprocess", "scene-1")
        replayed = RunJournal(path).replay()
        assert [(r.stage, r.event, r.key) for r in replayed] == [
            ("download", INTENT, "a.nc"),
            ("download", COMPLETE, "a.nc"),
            ("preprocess", INTENT, "scene-1"),
        ]
        assert replayed[1].payload == {"artifact": "/x/a.nc", "nbytes": 10}
        assert [r.seq for r in replayed] == [1, 2, 3]

    def test_sequence_continues_after_replay(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with RunJournal(path) as journal:
            journal.intent("download", "a")
        second = RunJournal(path)
        second.replay()
        record = second.append("download", COMPLETE, "a")
        second.close()
        assert record.seq == 2

    def test_torn_tail_is_dropped(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with RunJournal(path) as journal:
            journal.intent("download", "a")
            journal.complete("download", "a")
        # Simulate a crash mid-append: a half-written trailing line.
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 3, "stage": "downl')
        journal = RunJournal(path)
        records = journal.replay()
        assert len(records) == 2
        assert journal.torn_records == 1

    def test_corrupted_checksum_stops_replay(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with RunJournal(path) as journal:
            journal.intent("download", "a")
            journal.complete("download", "a")
        lines = open(path).read().splitlines()
        doctored = json.loads(lines[1])
        doctored["key"] = "b"  # bytes changed, checksum now stale
        lines[1] = json.dumps(doctored)
        with open(path, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        journal = RunJournal(path)
        assert len(journal.replay()) == 1
        assert journal.torn_records == 1

    def test_compact_removes_torn_tail_permanently(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with RunJournal(path) as journal:
            journal.intent("download", "a")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("garbage\n")
        journal = RunJournal(path)
        records = journal.replay()
        journal.compact(records)
        # New appends land after the validated prefix, and a fresh
        # replay sees everything (the tail no longer shadows it).
        journal.complete("download", "a")
        journal.close()
        final = RunJournal(path).replay()
        assert [(r.event, r.seq) for r in final] == [(INTENT, 1), (COMPLETE, 2)]

    def test_reset_truncates(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = RunJournal(path)
        journal.intent("download", "a")
        journal.reset()
        journal.close()
        assert RunJournal(path).replay() == []

    def test_replay_missing_file_is_empty(self, tmp_path):
        assert RunJournal(str(tmp_path / "absent.jsonl")).replay() == []


class TestJournalState:
    def test_completions_and_in_flight(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with RunJournal(path) as journal:
            journal.intent("download", "a")
            journal.complete("download", "a", nbytes=5)
            journal.intent("download", "b")  # crashed mid-flight
            journal.complete("preprocess", "s1", tiles=3)
        state = JournalState(RunJournal(path).replay())
        assert state.completion("download", "a") == {"nbytes": 5}
        assert state.completion("download", "b") is None
        assert state.has_intent("download", "b")
        assert state.in_flight("download") == ["b"]
        assert state.completed_keys("preprocess") == ["s1"]

    def test_last_completion_wins(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with RunJournal(path) as journal:
            journal.complete("download", "a", nbytes=1)
            journal.complete("download", "a", nbytes=2)
        state = JournalState(RunJournal(path).replay())
        assert state.completion("download", "a") == {"nbytes": 2}


class TestIntegrityManifest:
    def test_record_check_roundtrip(self, tmp_path):
        artifact = tmp_path / "a.nc"
        artifact.write_bytes(b"payload")
        manifest = IntegrityManifest(str(tmp_path / "manifest.json"))
        digest = manifest.record(str(artifact))
        assert digest == sha256_file(str(artifact))
        assert manifest.check(str(artifact)) == manifest_mod.OK
        assert manifest.verify(str(artifact))

    def test_check_states(self, tmp_path):
        artifact = tmp_path / "a.nc"
        artifact.write_bytes(b"payload")
        manifest = IntegrityManifest(str(tmp_path / "manifest.json"))
        assert manifest.check(str(artifact)) == manifest_mod.MISSING_ENTRY
        manifest.record(str(artifact))
        artifact.write_bytes(b"tampered")
        assert manifest.check(str(artifact)) == manifest_mod.MISMATCH
        os.remove(artifact)
        assert manifest.check(str(artifact)) == manifest_mod.MISSING_FILE

    def test_save_load_roundtrip(self, tmp_path):
        artifact = tmp_path / "a.nc"
        artifact.write_bytes(b"payload")
        path = str(tmp_path / "manifest.json")
        manifest = IntegrityManifest(path)
        manifest.record(str(artifact))
        manifest.save()
        reloaded = IntegrityManifest(path)
        reloaded.load()
        assert reloaded.check(str(artifact)) == manifest_mod.OK
        assert len(reloaded) == 1

    def test_load_tolerates_corrupt_snapshot(self, tmp_path):
        path = tmp_path / "manifest.json"
        path.write_text("{ not json")
        manifest = IntegrityManifest(str(path))
        manifest.load()  # must not raise: journal is the source of truth
        assert len(manifest) == 0

    def test_verify_file_helper(self, tmp_path):
        artifact = tmp_path / "a.bin"
        artifact.write_bytes(b"x")
        digest = sha256_file(str(artifact))
        assert verify_file(str(artifact), digest)
        assert not verify_file(str(artifact), "0" * 64)
        assert not verify_file(str(tmp_path / "missing"), digest)


class TestWorkflowJournal:
    def _make(self, tmp_path, resume=False):
        journal = WorkflowJournal(str(tmp_path / "journal"))
        journal.start(resume=resume)
        return journal

    def test_fresh_item_then_resumed(self, tmp_path):
        artifact = tmp_path / "a.nc"
        artifact.write_bytes(b"tile bytes")
        journal = self._make(tmp_path)
        assert journal.resume("download", "a").outcome == FRESH
        journal.intent("download", "a")
        journal.complete("download", "a", artifact=str(artifact))
        journal.close()

        resumed = self._make(tmp_path, resume=True)
        decision = resumed.resume("download", "a")
        assert decision.outcome == RESUMED
        assert decision.skip
        assert decision.payload["sha256"] == sha256_file(str(artifact))
        assert resumed.counters()["resumed_items"] == 1
        resumed.close()

    def test_in_flight_item_replays(self, tmp_path):
        journal = self._make(tmp_path)
        journal.intent("download", "a")  # crash before completion
        journal.close()
        resumed = self._make(tmp_path, resume=True)
        decision = resumed.resume("download", "a")
        assert decision.outcome == REPLAY
        assert decision.redo
        assert resumed.counters()["replayed_items"] == 1
        resumed.close()

    def test_mismatched_artifact_replays_and_counts(self, tmp_path):
        artifact = tmp_path / "a.nc"
        artifact.write_bytes(b"original")
        journal = self._make(tmp_path)
        journal.complete("download", "a", artifact=str(artifact))
        journal.close()
        artifact.write_bytes(b"rotted!!")  # same size, different bytes
        resumed = self._make(tmp_path, resume=True)
        decision = resumed.resume("download", "a")
        assert decision.outcome == REPLAY
        counters = resumed.counters()
        assert counters["replayed_items"] == 1
        assert counters["manifest_mismatches"] == 1
        resumed.close()

    def test_missing_artifact_replays_without_mismatch(self, tmp_path):
        artifact = tmp_path / "a.nc"
        artifact.write_bytes(b"original")
        journal = self._make(tmp_path)
        journal.complete("download", "a", artifact=str(artifact))
        journal.close()
        os.remove(artifact)
        resumed = self._make(tmp_path, resume=True)
        assert resumed.resume("download", "a").outcome == REPLAY
        assert resumed.counters()["manifest_mismatches"] == 0
        resumed.close()

    def test_fresh_start_discards_previous_history(self, tmp_path):
        journal = self._make(tmp_path)
        journal.complete("download", "a", nbytes=1)
        journal.close()
        fresh = self._make(tmp_path, resume=False)
        assert fresh.resume("download", "a").outcome == FRESH
        fresh.close()

    def test_manifest_rebuilt_from_journal(self, tmp_path):
        """The journal, not the manifest snapshot, is the source of truth."""
        artifact = tmp_path / "a.nc"
        artifact.write_bytes(b"tile bytes")
        journal = self._make(tmp_path)
        journal.complete("preprocess", "s1", artifact=str(artifact), tiles=4)
        journal.close()  # note: no checkpoint() — snapshot never written
        resumed = self._make(tmp_path, resume=True)
        assert resumed.resume("preprocess", "s1").outcome == RESUMED
        assert resumed.artifact_ok(str(artifact))
        resumed.close()

    def test_torn_journal_tail_compacted_on_resume(self, tmp_path):
        journal = self._make(tmp_path)
        journal.complete("download", "a", nbytes=1)
        journal.close()
        with open(journal.journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"torn')
        resumed = self._make(tmp_path, resume=True)
        assert resumed.torn_records == 1
        assert resumed.resume("download", "a").outcome == RESUMED
        resumed.close()
        # The compaction removed the torn line from disk.
        final = RunJournal(journal.journal.path).replay()
        assert all(r.event in (INTENT, COMPLETE) for r in final)

    def test_artifact_gate_counts_each_mismatch_once(self, tmp_path):
        artifact = tmp_path / "a.nc"
        artifact.write_bytes(b"original")
        journal = self._make(tmp_path)
        journal.complete("preprocess", "s1", artifact=str(artifact))
        artifact.write_bytes(b"rotted!!")
        assert not journal.artifact_ok(str(artifact))
        assert not journal.artifact_ok(str(artifact))  # polled again
        assert journal.counters()["manifest_mismatches"] == 1
        # Unknown artifacts pass the gate.
        other = tmp_path / "b.nc"
        other.write_bytes(b"whatever")
        assert journal.artifact_ok(str(other))
        journal.close()

    def test_checkpoint_persists_manifest(self, tmp_path):
        artifact = tmp_path / "a.nc"
        artifact.write_bytes(b"tile bytes")
        journal = self._make(tmp_path)
        journal.complete("preprocess", "s1", artifact=str(artifact))
        journal.checkpoint()
        journal.close()
        assert os.path.exists(journal.manifest.path)
        assert journal.summary()["manifest_entries"] == 1


class TestCrashFaultKind:
    def test_chaos_crash_uses_abort_indirection(self, monkeypatch):
        from repro.chaos import CRASH_EXIT_CODE, FaultPlan, FaultSpec, build_injector
        from repro.chaos import surfaces

        calls = []
        monkeypatch.setattr(surfaces, "_abort", calls.append)
        plan = FaultPlan(seed=0, faults=(FaultSpec(stage="download", kind="crash"),))
        chaos = build_injector(plan)
        surfaces.chaos_crash(chaos, "download", "a.nc")
        assert calls == [CRASH_EXIT_CODE]
        # times=1: the same key does not crash twice.
        surfaces.chaos_crash(chaos, "download", "a.nc")
        assert calls == [CRASH_EXIT_CODE]

    def test_chaos_crash_noop_without_injector(self):
        from repro.chaos import chaos_crash

        chaos_crash(None, "download", "a.nc")  # must not raise or exit

    def test_crash_is_a_valid_plan_kind(self):
        from repro.chaos import load_plan

        plan = load_plan(
            {"seed": 7, "faults": [{"stage": "inference", "kind": "crash"}]}
        )
        assert plan.kinds() == ("crash",)
