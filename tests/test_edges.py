"""Cross-cutting edge-case tests for smaller API surfaces."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.compute import LocalComputeEndpoint
from repro.modis.constants import PRODUCTS, ProductSpec, resolve_product
from repro.sim import Simulation, Store
from repro.util.yamlish import YamlError, dumps


class TestLocalEndpointEdges:
    def test_gather_timeout(self):
        import time

        with LocalComputeEndpoint("slowpool", max_workers=1) as endpoint:
            future = endpoint.submit(time.sleep, 5.0)
            with pytest.raises(TimeoutError):
                # gather() is lazy; the timeout surfaces on consumption.
                list(endpoint.gather([future], timeout=0.05))
            with pytest.raises(TimeoutError):
                endpoint.gather([future], timeout=0.05, ordered=True)
            future.cancel()

    def test_context_manager_shuts_down(self):
        endpoint = LocalComputeEndpoint("pool", max_workers=1)
        with endpoint:
            assert endpoint.submit(lambda: 1).result(timeout=5) == 1
        with pytest.raises(RuntimeError):
            endpoint.submit(lambda: 2)

    def test_process_pool_kind(self):
        with LocalComputeEndpoint("procs", max_workers=2, kind="process") as endpoint:
            assert endpoint.submit(abs, -3).result(timeout=30) == 3


class TestStoreEdges:
    def test_cancel_get(self):
        sim = Simulation()
        store = Store(sim)
        request = store.get()
        assert store.cancel_get(request)
        assert not store.cancel_get(request)
        # A later put is not consumed by the cancelled getter.
        store.put("item")
        assert len(store) == 1


class TestYamlDumpEdges:
    def test_non_serializable_scalar(self):
        with pytest.raises(YamlError, match="cannot serialize"):
            dumps({"key": object()})

    def test_nested_empty_collections(self):
        from repro.util.yamlish import loads

        doc = {"a": {"b": []}, "c": [{}]}
        assert loads(dumps(doc)) == doc


class TestProductSizeModel:
    def test_known_products_registered(self):
        assert {"MOD021KM", "MYD021KM", "MOD03", "MYD03", "MOD06_L2", "MYD06_L2"} == set(PRODUCTS)

    def test_aqua_terra_same_size_model(self):
        assert PRODUCTS["MOD021KM"].mean_granule_bytes == PRODUCTS["MYD021KM"].mean_granule_bytes

    def test_resolve_aliases(self):
        assert resolve_product("MOD02").short_name == "MOD021KM"
        assert resolve_product("MYD06").short_name == "MYD06_L2"
        assert resolve_product("MOD021KM").short_name == "MOD021KM"

    @settings(max_examples=50, deadline=None)
    @given(u=st.floats(min_value=0.0, max_value=1.0))
    def test_granule_bytes_bounds_property(self, u):
        """Sizes stay positive and within the +/-CV spread of the mean."""
        spec = PRODUCTS["MOD021KM"]
        size = spec.granule_bytes(u)
        assert size >= 1
        spread = spec.mean_granule_bytes * spec.granule_bytes_cv
        assert abs(size - spec.mean_granule_bytes) <= spread + 1

    def test_mean_is_midpoint(self):
        spec = PRODUCTS["MOD03"]
        low = spec.granule_bytes(0.0)
        high = spec.granule_bytes(1.0)
        assert (low + high) / 2 == pytest.approx(spec.mean_granule_bytes, rel=1e-6)


class TestSimEdges:
    def test_run_until_with_empty_queue(self):
        sim = Simulation()
        sim.run(until=5.0)
        assert sim.now == 5.0  # idle time still advances the clock to `until`

    def test_peek(self):
        sim = Simulation()
        assert sim.peek() == float("inf")
        sim.timeout(3.0)
        assert sim.peek() == 3.0

    def test_stop_event_not_triggered_raises(self):
        from repro.sim import SimulationError

        sim = Simulation()
        stop = sim.event()
        sim.timeout(1.0)
        with pytest.raises(SimulationError, match="stop condition"):
            sim.run(stop=stop)
