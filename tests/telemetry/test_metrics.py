"""Telemetry metric tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.telemetry import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_inc_and_labels(self):
        counter = Counter("tiles_processed")
        counter.inc(5, stage="preprocess")
        counter.inc(3, stage="preprocess")
        counter.inc(2, stage="inference")
        assert counter.value(stage="preprocess") == 8
        assert counter.value(stage="inference") == 2
        assert counter.total == 10

    def test_monotone(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)


class TestGauge:
    def test_set_add(self):
        gauge = Gauge("queue_depth")
        gauge.set(4)
        assert gauge.add(-1) == 3
        assert gauge.value() == 3
        gauge.set(7, executor="htex")
        assert gauge.value(executor="htex") == 7
        assert gauge.value() == 3


class TestHistogram:
    def test_count_sum_mean(self):
        histogram = Histogram("latency", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.mean == pytest.approx((0.05 + 0.5 + 0.5 + 5.0) / 4)
        assert histogram.minimum == 0.05
        assert histogram.maximum == 5.0

    def test_quantile_estimates(self):
        histogram = Histogram("latency", buckets=(1.0, 2.0, 4.0, 8.0))
        for value in np.linspace(0.1, 7.9, 100):
            histogram.observe(value)
        # Conservative (bucket-upper-bound) estimates land in the right bucket.
        assert histogram.quantile(0.5) == 4.0
        assert histogram.quantile(1.0) == 8.0
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    def test_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram("x", buckets=(2.0, 1.0))

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
                    min_size=1, max_size=100))
    def test_quantile_bounds_property(self, values):
        histogram = Histogram("x", buckets=(1.0, 10.0, 100.0))
        for value in values:
            histogram.observe(value)
        # Any quantile is between min and a bucket bound >= max's bucket.
        q50 = histogram.quantile(0.5)
        assert q50 >= min(values) - 1e-9 or q50 in histogram.buckets


class TestRegistry:
    def test_idempotent_creation(self):
        registry = MetricsRegistry(prefix="eo_ml")
        a = registry.counter("files")
        b = registry.counter("files")
        assert a is b
        assert a.name == "eo_ml.files"

    def test_snapshot_and_render(self):
        registry = MetricsRegistry()
        registry.counter("tiles").inc(12)
        registry.gauge("workers").set(3, stage="download")
        hist = registry.histogram("task_seconds", buckets=(1.0, 10.0))
        hist.observe(0.5)
        hist.observe(2.0)
        snap = registry.snapshot()
        assert snap["tiles"] == 12
        assert snap["workers{stage=download}"] == 3
        assert snap["task_seconds.count"] == 2
        assert "task_seconds.mean" in snap
        text = registry.render()
        assert "tiles 12" in text
