"""Registry lookups and the config layer's name resolution.

The failure-mode promise matters most: an unknown instrument or model
name must die at config-load time with a ``ConfigError`` that names the
offending key and lists what *is* registered — never deep inside a
stage.
"""

import pytest

from repro.core import load_config
from repro.core.config import ConfigError
from repro.instruments import (
    available_instruments,
    available_models,
    get_instrument,
    get_model,
)
from repro.instruments.registry import register_instrument, register_model


def make_raw(tmp_path, **overrides):
    raw = {
        "name": "registry-test",
        "archive": {"start_date": "2022-01-01", "max_granules_per_day": 1},
        "paths": {
            "staging": str(tmp_path / "staging"),
            "preprocessed": str(tmp_path / "pre"),
            "transfer_out": str(tmp_path / "out"),
            "destination": str(tmp_path / "dst"),
        },
    }
    for key, value in overrides.items():
        section, _, field = key.partition(".")
        raw.setdefault(section, {})[field] = value
    return raw


class TestRegistry:
    def test_builtins_are_registered(self):
        assert {"modis", "abi"} <= set(available_instruments())
        assert {"ricc", "heuristic"} <= set(available_models())

    def test_unknown_instrument_names_the_available_set(self):
        with pytest.raises(KeyError, match="modis"):
            get_instrument("viirs")

    def test_unknown_model_names_the_available_set(self):
        with pytest.raises(KeyError, match="ricc"):
            get_model("resnet")

    def test_model_types_carry_attribution(self):
        for name in available_models():
            model_type = get_model(name)
            assert model_type.name == name
            assert isinstance(model_type.attribution, str)
            assert model_type.attribution

    def test_registration_is_idempotent_last_write_wins(self):
        sentinel = get_instrument("modis")
        assert register_instrument(sentinel) is sentinel
        assert get_instrument("modis") is sentinel
        model_sentinel = get_model("ricc")
        assert register_model(model_sentinel) is model_sentinel
        assert get_model("ricc") is model_sentinel


class TestConfigResolution:
    def test_single_source_defaults(self, tmp_path):
        config = load_config(make_raw(tmp_path))
        assert config.instruments == ("modis",)
        assert config.models == ("ricc",)
        assert config.instrument == "modis"
        assert config.model_name == "ricc"
        assert config.branch == ""

    def test_fanout_lists_round_trip(self, tmp_path):
        config = load_config(make_raw(
            tmp_path,
            **{"archive.instruments": ["modis", "abi"],
               "inference.models": ["ricc", "heuristic"]},
        ))
        assert config.instruments == ("modis", "abi")
        assert config.models == ("ricc", "heuristic")

    def test_duplicates_collapse_order_preserved(self, tmp_path):
        config = load_config(make_raw(
            tmp_path,
            **{"archive.instruments": ["abi", "modis", "abi"]},
        ))
        assert config.instruments == ("abi", "modis")

    def test_unknown_instrument_is_a_config_error(self, tmp_path):
        with pytest.raises(ConfigError) as exc:
            load_config(make_raw(
                tmp_path, **{"archive.instruments": ["modis", "viirs"]}
            ))
        message = str(exc.value)
        assert "archive.instruments" in message
        assert "viirs" in message
        assert "modis" in message  # the available set is listed

    def test_unknown_model_is_a_config_error(self, tmp_path):
        with pytest.raises(ConfigError) as exc:
            load_config(make_raw(
                tmp_path, **{"inference.models": ["resnet"]}
            ))
        message = str(exc.value)
        assert "inference.models" in message
        assert "resnet" in message
        assert "ricc" in message

    def test_unknown_singular_spellings_name_their_keys(self, tmp_path):
        with pytest.raises(ConfigError, match="archive.instrument"):
            load_config(make_raw(tmp_path, **{"archive.instrument": "viirs"}))
        with pytest.raises(ConfigError, match="inference.model"):
            load_config(make_raw(tmp_path, **{"inference.model": "resnet"}))

    def test_products_default_to_the_primary_instruments_scene(self, tmp_path):
        config = load_config(make_raw(
            tmp_path, **{"archive.instruments": ["abi", "modis"]}
        ))
        assert config.products == list(get_instrument("abi").default_products)

    def test_empty_list_falls_back_to_singular_spelling(self, tmp_path):
        config = load_config(make_raw(
            tmp_path,
            **{"archive.instruments": [], "archive.instrument": "abi"},
        ))
        assert config.instruments == ("abi",)
