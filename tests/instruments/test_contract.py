"""The Instrument contract, enforced over every registered source.

Parametrizing over ``available_instruments()`` is the point: a new
registration is automatically held to the same promises the built-ins
make — coherent cadence metadata, round-tripping product names, a
deterministic archive, and granule files the instrument's own
``load_scene`` can decode into tiling-ready arrays.
"""

import datetime as dt
import os

import numpy as np
import pytest

from repro.core.download import GranuleSet
from repro.core.tiles import extract_tiles
from repro.instruments import available_instruments, get_instrument
from repro.netcdf import to_bytes, write as nc_write

DATE = dt.date(2022, 1, 1)
MINUTES_PER_DAY = 24 * 60


@pytest.fixture(params=available_instruments())
def instrument(request):
    return get_instrument(request.param)


class TestStaticContract:
    def test_registered_under_its_own_name(self, instrument):
        assert get_instrument(instrument.name) is instrument

    def test_identity_fields_are_nonempty_strings(self, instrument):
        for attr in ("name", "title", "archive_host"):
            value = getattr(instrument, attr)
            assert isinstance(value, str) and value

    def test_cadence_covers_the_day_exactly(self, instrument):
        assert instrument.cadence_minutes > 0
        assert (
            instrument.cadence_minutes * instrument.granules_per_day
            == MINUTES_PER_DAY
        )

    def test_default_products_resolve_round_trip(self, instrument):
        assert instrument.default_products
        for product in instrument.default_products:
            assert instrument.resolve_product(product) == product

    def test_unknown_product_raises_keyerror(self, instrument):
        with pytest.raises(KeyError):
            instrument.resolve_product("NOT-A-PRODUCT")

    def test_default_tile_size_positive(self, instrument):
        assert instrument.default_tile_size > 0


class TestArchiveContract:
    def test_catalog_is_seed_deterministic(self, instrument):
        a = instrument.build_archive(seed=7)
        b = instrument.build_archive(seed=7)
        product = instrument.default_products[0]
        refs_a = a.query(product, DATE, max_per_day=4)
        refs_b = b.query(product, DATE, max_per_day=4)
        assert [(r.filename, r.nbytes) for r in refs_a] == [
            (r.filename, r.nbytes) for r in refs_b
        ]

    def test_fetch_is_seed_deterministic(self, instrument):
        product = instrument.default_products[0]
        ref = instrument.build_archive(seed=7).query(product, DATE, max_per_day=1)[0]
        one = to_bytes(instrument.build_archive(seed=7).fetch(ref))
        two = to_bytes(instrument.build_archive(seed=7).fetch(ref))
        assert one == two

    def test_query_respects_max_per_day(self, instrument):
        archive = instrument.build_archive(seed=0)
        product = instrument.default_products[0]
        assert len(archive.query(product, DATE, max_per_day=3)) == 3
        full = archive.query(product, DATE)
        assert len(full) == instrument.granules_per_day

    def test_refs_carry_unique_filenames_and_sizes(self, instrument):
        archive = instrument.build_archive(seed=0)
        product = instrument.default_products[0]
        refs = archive.query(product, DATE, max_per_day=5)
        names = [ref.filename for ref in refs]
        assert len(set(names)) == len(names)
        assert all(ref.nbytes > 0 for ref in refs)


class TestSceneContract:
    def test_fetch_write_load_scene_tile(self, tmp_path, instrument):
        """The full stage-1/stage-2 hand-off: fetch every product of one
        scene, land the files, decode with load_scene, and cut tiles on
        the instrument's native grid."""
        archive = instrument.build_archive(seed=11)
        paths = {}
        for product in instrument.default_products:
            ref = archive.query(product, DATE, max_per_day=1)[0]
            path = os.path.join(str(tmp_path), ref.filename + ".nc")
            nc_write(archive.fetch(ref), path)
            paths[product] = path
        scene = instrument.load_scene(GranuleSet(key="contract", paths=paths))

        assert scene.radiance.ndim == 3
        lines, pixels = scene.radiance.shape[1:]
        for name in ("cloud_mask", "land_mask", "latitude", "longitude"):
            assert getattr(scene, name).shape == (lines, pixels), name
        assert scene.cloud_mask.dtype == np.bool_
        assert scene.land_mask.dtype == np.bool_

        tiles = extract_tiles(
            radiance=scene.radiance,
            cloud_mask=scene.cloud_mask,
            land_mask=scene.land_mask,
            latitude=scene.latitude,
            longitude=scene.longitude,
            tile_size=instrument.default_tile_size,
            optical_thickness=scene.optical_thickness,
            cloud_top_pressure=scene.cloud_top_pressure,
        )
        assert tiles, "synthetic scene yielded no ocean-cloud tiles"
        for tile in tiles:
            assert tile.data.shape[:2] == (
                instrument.default_tile_size,
                instrument.default_tile_size,
            )
            assert tile.cloud_fraction > 0.0
