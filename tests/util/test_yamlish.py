"""YAML-subset parser and emitter tests."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.util.yamlish import YamlError, dumps, loads


class TestScalars:
    def test_types(self):
        doc = loads(
            "a: 1\n"
            "b: 2.5\n"
            "c: true\n"
            "d: false\n"
            "e: null\n"
            "f: hello\n"
            'g: "quoted: string"\n'
            "h: 'single # not comment'\n"
        )
        assert doc == {
            "a": 1,
            "b": 2.5,
            "c": True,
            "d": False,
            "e": None,
            "f": "hello",
            "g": "quoted: string",
            "h": "single # not comment",
        }

    def test_special_floats(self):
        doc = loads("a: .inf\nb: -.inf\nc: .nan\n")
        assert doc["a"] == math.inf
        assert doc["b"] == -math.inf
        assert math.isnan(doc["c"])

    def test_empty_value_is_none(self):
        assert loads("key:\n") == {"key": None}

    def test_empty_doc(self):
        assert loads("") is None
        assert loads("# only a comment\n") is None


class TestStructures:
    def test_nested_mapping(self):
        doc = loads(
            "download:\n"
            "  workers: 3\n"
            "  products:\n"
            "    - MOD021KM\n"
            "    - MOD03\n"
            "    - MOD06_L2\n"
            "preprocess:\n"
            "  workers: 32\n"
        )
        assert doc["download"]["workers"] == 3
        assert doc["download"]["products"] == ["MOD021KM", "MOD03", "MOD06_L2"]
        assert doc["preprocess"]["workers"] == 32

    def test_sequence_of_mappings(self):
        doc = loads(
            "endpoints:\n"
            "  - name: defiant\n"
            "    nodes: 36\n"
            "  - name: frontier\n"
            "    nodes: 9408\n"
        )
        assert doc["endpoints"] == [
            {"name": "defiant", "nodes": 36},
            {"name": "frontier", "nodes": 9408},
        ]

    def test_flow_collections(self):
        doc = loads("bands: [1, 2, 3, 6, 7, 20]\nmeta: {product: MOD02, day: 1}\n")
        assert doc["bands"] == [1, 2, 3, 6, 7, 20]
        assert doc["meta"] == {"product": "MOD02", "day": 1}

    def test_nested_flow(self):
        doc = loads("grid: [[1, 2], [3, 4]]\n")
        assert doc["grid"] == [[1, 2], [3, 4]]

    def test_comments_and_blanks(self):
        doc = loads("# header\n\na: 1  # trailing\n\nb: 2\n")
        assert doc == {"a": 1, "b": 2}

    def test_top_level_sequence(self):
        assert loads("- 1\n- 2\n") == [1, 2]

    def test_deep_nesting(self):
        doc = loads("a:\n  b:\n    c:\n      d: leaf\n")
        assert doc == {"a": {"b": {"c": {"d": "leaf"}}}}

    def test_document_marker(self):
        assert loads("---\na: 1\n") == {"a": 1}


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "a: 1\n\tb: 2\n",          # tab indentation
            "a: &anchor 1\n",           # anchor
            "a: *ref\n",                # alias
            "a: |\n  block\n",          # block scalar
            "a: [1, 2\n",               # unterminated flow
            "a: 1\na: 2\n",             # duplicate key
            "just a scalar line\nanother\n",  # not key: value
        ],
    )
    def test_rejected(self, text):
        with pytest.raises(YamlError):
            loads(text)

    def test_error_carries_line(self):
        with pytest.raises(YamlError) as info:
            loads("ok: 1\nbad line\n")
        assert "line 2" in str(info.value)


class TestDumps:
    def test_roundtrip_nested(self):
        doc = {
            "name": "eo-ml",
            "workers": {"download": 3, "preprocess": 32, "inference": 1},
            "products": ["MOD021KM", "MOD03", "MOD06_L2"],
            "threshold": 0.3,
            "enabled": True,
            "note": None,
            "weird": "needs: quoting # really",
            "empty_list": [],
            "empty_map": {},
        }
        assert loads(dumps(doc)) == doc

    def test_roundtrip_list_of_maps(self):
        doc = [{"a": 1, "b": [1, 2]}, {"c": {"d": "x"}}]
        assert loads(dumps(doc)) == doc


_scalars = st.one_of(
    st.integers(min_value=-(10**9), max_value=10**9),
    st.booleans(),
    st.none(),
    st.text(
        alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd"), whitelist_characters="_- ."),
        min_size=1,
        max_size=20,
    ),
)

_keys = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Nd"), whitelist_characters="_-"),
    min_size=1,
    max_size=12,
)

_documents = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(_keys, children, max_size=4),
    ),
    max_leaves=12,
)


@given(_documents.filter(lambda d: isinstance(d, (dict, list))))
def test_dumps_loads_roundtrip_property(doc):
    assert loads(dumps(doc)) == doc
