"""Crash-consistency contracts of the atomic publication helpers.

``atomic_write_bytes`` is the one primitive every publishing stage
trusts to leave either the old file or the complete new file — never a
torn one.  These tests cover the edges the happy path never exercises:
a stale ``.part`` survivor from a dead writer, a crash injected in the
window between the temp write and ``os.replace`` (via the chaos crash
fault), and fsync failures (the file's must propagate; the directory's
is best-effort by design).
"""

import os

import numpy as np
import pytest

import repro.chaos.surfaces as surfaces
from repro.chaos import FaultInjector, FaultPlan, FaultSpec
from repro.chaos.surfaces import CRASH_EXIT_CODE, chaos_atomic_write
from repro.netcdf import Dataset, read
from repro.util.atomic import (
    HASH_SLICE,
    TEMP_SUFFIX,
    atomic_publish_bytes,
    atomic_write_bytes,
    fsync_dir,
)


class FakeCrash(SystemExit):
    """Stands in for os._exit so a test can observe an injected crash."""


@pytest.fixture
def crashing_abort(monkeypatch):
    def abort(code):
        raise FakeCrash(code)

    monkeypatch.setattr(surfaces, "_abort", abort)


def tiny_dataset():
    ds = Dataset()
    ds.create_dimension("tile", None)
    ds.create_variable(
        "radiance", "f4", ("tile",), np.arange(4, dtype=np.float32)
    )
    return ds


class TestAtomicWriteBytes:
    def test_returns_byte_count_and_publishes(self, tmp_path):
        path = str(tmp_path / "artifact.nc")
        assert atomic_write_bytes(path, b"payload") == 7
        with open(path, "rb") as handle:
            assert handle.read() == b"payload"
        assert not os.path.exists(path + TEMP_SUFFIX)

    def test_stale_part_file_from_a_dead_writer_is_overwritten(self, tmp_path):
        # A previous writer died mid-publication and left a torn temp
        # file under the shared name; the next writer must win cleanly.
        path = str(tmp_path / "artifact.nc")
        with open(path + TEMP_SUFFIX, "wb") as handle:
            handle.write(b"torn half-writ")
        atomic_write_bytes(path, b"complete")
        with open(path, "rb") as handle:
            assert handle.read() == b"complete"
        assert not os.path.exists(path + TEMP_SUFFIX)

    def test_replaces_previous_content_atomically(self, tmp_path):
        path = str(tmp_path / "artifact.nc")
        atomic_write_bytes(path, b"old")
        atomic_write_bytes(path, b"new")
        with open(path, "rb") as handle:
            assert handle.read() == b"new"

    def test_publish_digest_matches_hashlib(self, tmp_path):
        import hashlib

        path = str(tmp_path / "artifact.nc")
        payload = bytes(range(256)) * 100
        nbytes, digest = atomic_publish_bytes(path, payload)
        assert nbytes == len(payload)
        assert digest == hashlib.sha256(payload).hexdigest()
        with open(path, "rb") as handle:
            assert hashlib.sha256(handle.read()).hexdigest() == digest

    def test_publish_digest_spans_multiple_hash_slices(self, tmp_path):
        # The digest is folded in HASH_SLICE chunks while the temp file
        # is written; a payload crossing slice boundaries must hash the
        # same as one pass over the whole buffer.
        import hashlib

        path = str(tmp_path / "big.bin")
        payload = os.urandom(HASH_SLICE + 4096)
        nbytes, digest = atomic_publish_bytes(path, payload, durable=False)
        assert nbytes == len(payload)
        assert digest == hashlib.sha256(payload).hexdigest()

    def test_publish_empty_payload(self, tmp_path):
        import hashlib

        path = str(tmp_path / "empty.bin")
        nbytes, digest = atomic_publish_bytes(path, b"")
        assert nbytes == 0
        assert digest == hashlib.sha256(b"").hexdigest()
        assert os.path.getsize(path) == 0

    def test_file_fsync_failure_propagates(self, tmp_path, monkeypatch):
        # If the payload's own fsync fails, durability cannot be
        # promised — the writer must hear about it, not publish anyway.
        def failing_fsync(fd):
            raise OSError("disk on fire")

        monkeypatch.setattr(os, "fsync", failing_fsync)
        path = str(tmp_path / "artifact.nc")
        with pytest.raises(OSError, match="disk on fire"):
            atomic_write_bytes(path, b"payload")
        assert not os.path.exists(path)          # nothing published

    def test_non_durable_write_skips_fsync(self, tmp_path, monkeypatch):
        def failing_fsync(fd):
            raise OSError("should never be called")

        monkeypatch.setattr(os, "fsync", failing_fsync)
        path = str(tmp_path / "artifact.nc")
        assert atomic_write_bytes(path, b"payload", durable=False) == 7
        with open(path, "rb") as handle:
            assert handle.read() == b"payload"


class TestFsyncDir:
    def test_directory_fsync_failure_is_swallowed(self, tmp_path, monkeypatch):
        # Directory fsync is best-effort: some filesystems refuse
        # directory fds, and the rename itself already happened.
        def failing_fsync(fd):
            raise OSError("EINVAL")

        monkeypatch.setattr(os, "fsync", failing_fsync)
        fsync_dir(str(tmp_path))                 # must not raise

    def test_unopenable_directory_is_tolerated(self, tmp_path):
        fsync_dir(str(tmp_path / "never-created"))


class TestCrashWindow:
    """The exact window resume must close: temp written, rename pending."""

    def chaos(self):
        return FaultInjector(FaultPlan(seed=0, faults=(
            FaultSpec("preprocess", "crash", rate=1.0, times=1),
        )))

    def test_crash_between_temp_write_and_replace(self, tmp_path, crashing_abort):
        path = str(tmp_path / "tiles.nc")
        with pytest.raises(FakeCrash) as crash:
            chaos_atomic_write(tiny_dataset(), path, chaos=self.chaos())
        assert crash.value.code == CRASH_EXIT_CODE
        # The crash hit after the temp file was fully written but before
        # the rename: the final name must not exist, and the survivor
        # must carry the temp suffix crawlers skip unconditionally.
        assert not os.path.exists(path)
        assert os.path.exists(path + TEMP_SUFFIX)

    def test_rerun_after_crash_publishes_cleanly(self, tmp_path, crashing_abort):
        path = str(tmp_path / "tiles.nc")
        chaos = self.chaos()
        with pytest.raises(FakeCrash):
            chaos_atomic_write(tiny_dataset(), path, chaos=chaos)
        # The restarted worker (same injector: the scheduled crash has
        # fired) redoes the item over the stale temp file.
        chaos_atomic_write(tiny_dataset(), path, chaos=chaos)
        assert os.path.exists(path)
        assert not os.path.exists(path + TEMP_SUFFIX)
        assert read(path)["radiance"].data.shape == (4,)
