"""Unit parsing/formatting tests."""

import pytest

from repro.util import units


class TestParseBytes:
    def test_plain_int(self):
        assert units.parse_bytes(1024) == 1024

    def test_decimal_suffixes(self):
        assert units.parse_bytes("32GB") == 32 * 10**9
        assert units.parse_bytes("8.4 GB") == int(8.4 * 10**9)
        assert units.parse_bytes("18gb") == 18 * 10**9
        assert units.parse_bytes("100MB") == 100 * 10**6
        assert units.parse_bytes("1.6 PB") == int(1.6 * 10**15)

    def test_binary_suffixes(self):
        assert units.parse_bytes("1KiB") == 1024
        assert units.parse_bytes("2 MiB") == 2 * 2**20

    def test_bare_number_string(self):
        assert units.parse_bytes("42") == 42

    def test_bad_inputs(self):
        for bad in ("", "GB", "12XB", "1.2.3GB", -5):
            with pytest.raises(ValueError):
                units.parse_bytes(bad)

    def test_bool_rejected(self):
        with pytest.raises(ValueError):
            units.parse_bytes(True)


class TestParseRate:
    def test_paper_interconnect(self):
        # "12.5 GB/s Slingshot-10 interconnect"
        assert units.parse_rate("12.5 GB/s") == pytest.approx(12.5e9)

    def test_per_minute(self):
        assert units.parse_rate("60MB/min") == pytest.approx(1e6)

    def test_float_passthrough(self):
        assert units.parse_rate(1000.0) == 1000.0

    def test_bad_rate(self):
        for bad in ("12GB", "12GB/s/s", "12GB/parsec"):
            with pytest.raises(ValueError):
                units.parse_rate(bad)


class TestParseDuration:
    def test_suffixes(self):
        assert units.parse_duration("50ms") == pytest.approx(0.05)
        assert units.parse_duration("5m") == 300.0
        assert units.parse_duration("1.5h") == 5400.0
        assert units.parse_duration("2 days") == 172800.0
        assert units.parse_duration(44) == 44.0

    def test_bad_duration(self):
        with pytest.raises(ValueError):
            units.parse_duration("5 fortnights")
        with pytest.raises(ValueError):
            units.parse_duration(-1)


class TestFormatting:
    def test_format_bytes(self):
        assert units.format_bytes(32 * 10**9) == "32.00 GB"
        assert units.format_bytes(999) == "999 B"
        assert units.format_bytes(1.6e15) == "1.60 PB"

    def test_format_rate(self):
        assert units.format_rate(12.5e9) == "12.50 GB/s"

    def test_format_duration(self):
        assert units.format_duration(44.0) == "44.0s"
        assert units.format_duration(0.05) == "50.0ms"
        assert units.format_duration(3723) == "1h02m"
        assert units.format_duration(90) == "1m30.0s"

    def test_roundtrip(self):
        for value in (1, 10**6, 32 * 10**9):
            assert units.parse_bytes(units.format_bytes(value)) == pytest.approx(value, rel=0.01)
