"""EventLog tests."""

import logging

from repro.util.logging import EventLog, stdlib_bridge


class TestEventLog:
    def test_emit_and_filter(self):
        log = EventLog()
        log.emit(1.0, "slurm", "submit", job_id=1)
        log.emit(2.0, "slurm", "start", job_id=1)
        log.emit(3.0, "transfer", "submit", task_id=9)
        assert len(log) == 3
        assert len(log.filter(source="slurm")) == 2
        assert len(log.filter(kind="submit")) == 2
        assert len(log.filter(source="slurm", kind="submit")) == 1

    def test_last(self):
        log = EventLog()
        assert log.last() is None
        log.emit(1.0, "a", "x")
        log.emit(2.0, "a", "y")
        assert log.last().kind == "y"
        assert log.last(kind="x").time == 1.0

    def test_subscription(self):
        log = EventLog()
        seen = []
        log.subscribe(seen.append)
        log.emit(0.0, "s", "k", value=1)
        assert len(seen) == 1
        assert seen[0].detail == {"value": 1}

    def test_str_rendering(self):
        log = EventLog()
        event = log.emit(1.5, "fs", "close", path="/a.nc")
        assert "fs:close" in str(event)
        assert "path='/a.nc'" in str(event)

    def test_clear_and_index(self):
        log = EventLog()
        log.emit(0.0, "a", "b")
        assert log[0].source == "a"
        log.clear()
        assert len(log) == 0

    def test_stdlib_bridge(self, caplog):
        log = EventLog()
        stdlib_bridge(log, "repro.test")
        with caplog.at_level(logging.INFO, logger="repro.test"):
            log.emit(1.0, "slurm", "submit")
        assert any("slurm:submit" in record.message for record in caplog.records)
