"""RunningStats and summarize tests."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util.stats import RunningStats, summarize


class TestRunningStats:
    def test_basic(self):
        s = RunningStats()
        s.extend([1.0, 2.0, 3.0])
        assert s.mean == pytest.approx(2.0)
        assert s.stdev == pytest.approx(1.0)
        assert s.minimum == 1.0
        assert s.maximum == 3.0
        assert s.count == 3

    def test_single_sample_variance_zero(self):
        s = RunningStats()
        s.add(5.0)
        assert s.variance == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            RunningStats().mean

    def test_matches_numpy(self):
        rng = np.random.default_rng(1)
        data = rng.normal(10.0, 3.0, size=500)
        s = RunningStats()
        s.extend(data)
        assert s.mean == pytest.approx(float(np.mean(data)))
        assert s.stdev == pytest.approx(float(np.std(data, ddof=1)))

    def test_merge(self):
        rng = np.random.default_rng(2)
        a, b = rng.normal(size=100), rng.normal(loc=5, size=57)
        sa, sb = RunningStats(), RunningStats()
        sa.extend(a)
        sb.extend(b)
        merged = sa.merge(sb)
        combined = np.concatenate([a, b])
        assert merged.count == 157
        assert merged.mean == pytest.approx(float(np.mean(combined)))
        assert merged.stdev == pytest.approx(float(np.std(combined, ddof=1)))

    def test_merge_with_empty(self):
        sa = RunningStats()
        sa.extend([1.0, 2.0])
        empty = RunningStats()
        assert sa.merge(empty).mean == pytest.approx(1.5)
        assert empty.merge(sa).mean == pytest.approx(1.5)


class TestSummarize:
    def test_median_odd_even(self):
        assert summarize([3.0, 1.0, 2.0]).median == 2.0
        assert summarize([1.0, 2.0, 3.0, 4.0]).median == 2.5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_str_contains_fields(self):
        text = str(summarize([1.0, 2.0]))
        assert "mean=" in text and "n=2" in text


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=200))
def test_running_stats_matches_numpy_property(data):
    s = RunningStats()
    s.extend(data)
    assert math.isclose(s.mean, float(np.mean(data)), rel_tol=1e-9, abs_tol=1e-6)
    if len(data) > 1:
        assert math.isclose(s.variance, float(np.var(data, ddof=1)), rel_tol=1e-6, abs_tol=1e-6)
    assert s.minimum == min(data)
    assert s.maximum == max(data)
