"""Facility assembly and contention-composition tests."""

import pytest

from repro.hpc import DEFIANT, FRONTIER, build_defiant, build_frontier
from repro.sim import Simulation


class TestMachineSpecs:
    def test_defiant_matches_paper(self):
        """Section IV: 36 nodes, 64-core EPYC, 256GB, 4 GPUs, 12.5 GB/s,
        1.6 PB Lustre."""
        assert DEFIANT.num_nodes == 36
        assert DEFIANT.node.cores == 64
        assert DEFIANT.node.memory_bytes == 256 * 10**9
        assert DEFIANT.node.gpus == 4
        assert DEFIANT.interconnect_bw == pytest.approx(12.5e9)
        assert DEFIANT.fs_capacity_bytes == pytest.approx(1.6e15)
        assert DEFIANT.total_cores == 36 * 64

    def test_frontier_larger(self):
        assert FRONTIER.num_nodes > DEFIANT.num_nodes
        assert FRONTIER.fs_capacity_bytes > DEFIANT.fs_capacity_bytes


class TestFacility:
    def test_build_defiant(self):
        sim = Simulation()
        facility = build_defiant(sim)
        assert facility.name == "defiant"
        assert facility.scheduler.cluster is DEFIANT
        assert facility.filesystem.name == "defiant-lustre"

    def test_build_frontier(self):
        sim = Simulation()
        facility = build_frontier(sim)
        assert facility.filesystem.name == "orion"

    def test_contention_factor_composition(self):
        sim = Simulation()
        facility = build_defiant(sim)
        # Single worker, single node: no contention.
        assert facility.contention_factor(1, 1) == pytest.approx(1.0)
        # More workers or nodes: factor strictly decreases.
        assert facility.contention_factor(8, 1) < facility.contention_factor(1, 1)
        assert facility.contention_factor(8, 10) < facility.contention_factor(8, 1)
        # Composition = product of per-axis efficiencies.
        expected = facility.node_usl.efficiency(8) * facility.cross_node_usl.efficiency(4)
        assert facility.contention_factor(8, 4) == pytest.approx(expected)

    def test_contention_factor_validation(self):
        sim = Simulation()
        facility = build_defiant(sim)
        with pytest.raises(ValueError):
            facility.contention_factor(0, 1)
        with pytest.raises(ValueError):
            facility.contention_factor(1, 0)
