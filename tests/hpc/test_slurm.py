"""Slurm-like scheduler tests: allocation, FIFO, backfill, walltime."""

import pytest

from repro.hpc.machine import ClusterSpec, NodeSpec
from repro.hpc.slurm import JobState, SlurmScheduler
from repro.sim import Simulation


def small_cluster(num_nodes=4):
    return ClusterSpec(
        name="test",
        num_nodes=num_nodes,
        node=NodeSpec(cores=8, memory_bytes=10**9),
        interconnect_bw=1e9,
        fs_capacity_bytes=10**12,
        fs_aggregate_bw=1e9,
        fs_per_client_bw=1e9,
    )


def make(num_nodes=4, latency=0.0):
    sim = Simulation()
    sched = SlurmScheduler(sim, small_cluster(num_nodes), allocation_latency=latency)
    return sim, sched


def sleep_body(sim, duration):
    def body(job):
        yield sim.timeout(duration)
    return body


class TestLifecycle:
    def test_job_completes(self):
        sim, sched = make()
        job = sched.submit("j", num_nodes=2, walltime=100.0, body=sleep_body(sim, 5.0))
        sim.run()
        assert job.state is JobState.COMPLETED
        assert job.started_at == 0.0
        assert job.finished_at == 5.0
        assert len(sched.free_nodes) == 4

    def test_allocation_latency(self):
        sim, sched = make(latency=1.5)
        job = sched.submit("j", 1, 100.0, body=sleep_body(sim, 5.0))
        sim.run()
        assert job.started_at == pytest.approx(1.5)
        assert job.finished_at == pytest.approx(6.5)

    def test_walltime_timeout(self):
        sim, sched = make()
        job = sched.submit("j", 1, walltime=3.0, body=sleep_body(sim, 100.0))
        sim.run()
        assert job.state is JobState.TIMEOUT
        assert job.finished_at == pytest.approx(3.0)
        assert len(sched.free_nodes) == 4

    def test_failing_body(self):
        sim, sched = make()

        def body(job):
            yield sim.timeout(1.0)
            raise RuntimeError("oom")

        job = sched.submit("j", 1, 100.0, body=body)
        sim.run()
        assert job.state is JobState.FAILED
        assert len(sched.free_nodes) == 4

    def test_bodyless_manual_complete(self):
        sim, sched = make()
        job = sched.submit("j", 1, walltime=100.0)

        def driver():
            yield job.started
            yield sim.timeout(2.0)
            sched.complete(job)

        sim.process(driver())
        sim.run()
        assert job.state is JobState.COMPLETED
        assert job.finished_at == pytest.approx(2.0)

    def test_cancel_pending(self):
        sim, sched = make(num_nodes=1)
        hog = sched.submit("hog", 1, 100.0, body=sleep_body(sim, 50.0))
        waiting = sched.submit("waiting", 1, 100.0, body=sleep_body(sim, 1.0))

        def canceller():
            yield sim.timeout(5.0)
            sched.cancel(waiting)

        sim.process(canceller())
        sim.run()
        assert waiting.state is JobState.CANCELLED
        assert hog.state is JobState.COMPLETED

    def test_cancel_running_releases_nodes(self):
        sim, sched = make(num_nodes=2)
        job = sched.submit("j", 2, 100.0, body=sleep_body(sim, 50.0))

        def canceller():
            yield sim.timeout(5.0)
            sched.cancel(job)

        sim.process(canceller())
        sim.run()
        assert job.state is JobState.CANCELLED
        assert len(sched.free_nodes) == 2
        assert job.finished_at == pytest.approx(5.0)


class TestQueueing:
    def test_fifo_when_full(self):
        sim, sched = make(num_nodes=2)
        first = sched.submit("first", 2, 100.0, body=sleep_body(sim, 10.0))
        second = sched.submit("second", 2, 100.0, body=sleep_body(sim, 10.0))
        sim.run()
        assert first.started_at == 0.0
        assert second.started_at == pytest.approx(10.0)

    def test_parallel_when_fits(self):
        sim, sched = make(num_nodes=4)
        a = sched.submit("a", 2, 100.0, body=sleep_body(sim, 10.0))
        b = sched.submit("b", 2, 100.0, body=sleep_body(sim, 10.0))
        sim.run()
        assert a.started_at == 0.0 and b.started_at == 0.0

    def test_backfill_small_short_job(self):
        """A short small job jumps a blocked big head without delaying it."""
        sim, sched = make(num_nodes=4)
        running = sched.submit("running", 3, walltime=10.0, body=sleep_body(sim, 10.0))
        big = sched.submit("big-head", 4, walltime=10.0, body=sleep_body(sim, 5.0))
        little = sched.submit("little", 1, walltime=5.0, body=sleep_body(sim, 5.0))
        sim.run()
        assert running.started_at == 0.0
        assert little.started_at == 0.0          # backfilled
        assert big.started_at == pytest.approx(10.0)  # not delayed

    def test_no_backfill_when_it_would_delay_head(self):
        sim, sched = make(num_nodes=4)
        sched.submit("running", 3, walltime=10.0, body=sleep_body(sim, 10.0))
        big = sched.submit("big-head", 4, walltime=50.0, body=sleep_body(sim, 5.0))
        long_little = sched.submit("long-little", 1, walltime=50.0, body=sleep_body(sim, 50.0))
        sim.run()
        # The long little job must NOT start before the head.
        assert big.started_at == pytest.approx(10.0)
        assert long_little.started_at >= big.started_at

    def test_priority_jumps_queue(self):
        """A high-priority job overtakes earlier normal submissions."""
        sim, sched = make(num_nodes=1)
        sched.submit("running", 1, 100.0, body=sleep_body(sim, 10.0))
        normal = sched.submit("normal", 1, 100.0, body=sleep_body(sim, 1.0))
        urgent = sched.submit("urgent", 1, 100.0, body=sleep_body(sim, 1.0), priority=10)
        sim.run()
        assert urgent.started_at < normal.started_at
        assert urgent.started_at == pytest.approx(10.0)

    def test_fifo_within_priority_level(self):
        sim, sched = make(num_nodes=1)
        sched.submit("running", 1, 100.0, body=sleep_body(sim, 5.0))
        first = sched.submit("p5-first", 1, 100.0, body=sleep_body(sim, 1.0), priority=5)
        second = sched.submit("p5-second", 1, 100.0, body=sleep_body(sim, 1.0), priority=5)
        sim.run()
        assert first.started_at < second.started_at

    def test_queue_wait_accounting(self):
        sim, sched = make(num_nodes=1)
        sched.submit("a", 1, 100.0, body=sleep_body(sim, 7.0))
        b = sched.submit("b", 1, 100.0, body=sleep_body(sim, 1.0))
        sim.run()
        assert b.queue_wait == pytest.approx(7.0)

    def test_oversized_request_rejected(self):
        sim, sched = make(num_nodes=2)
        with pytest.raises(ValueError):
            sched.submit("too-big", 3, 10.0)

    def test_utilization(self):
        sim, sched = make(num_nodes=4)
        sched.submit("j", 2, 100.0, body=sleep_body(sim, 10.0))
        sim.run(until=5.0)
        assert sched.utilization == pytest.approx(0.5)


class TestConservation:
    def test_nodes_conserved_across_many_jobs(self):
        """Property: after any mixed workload, all nodes return to the pool."""
        sim, sched = make(num_nodes=8)
        jobs = []
        for index in range(30):
            duration = 1.0 + (index % 7)
            jobs.append(
                sched.submit(
                    f"j{index}",
                    num_nodes=1 + index % 4,
                    walltime=5.0 if index % 5 == 0 else 100.0,
                    body=sleep_body(sim, duration),
                )
            )
        sim.run()
        assert len(sched.free_nodes) == 8
        assert all(job.state.terminal for job in jobs)
        states = {job.state for job in jobs}
        assert JobState.COMPLETED in states
