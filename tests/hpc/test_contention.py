"""USL contention model tests, including the Table I calibration."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hpc.contention import (
    DEFIANT_CROSS_NODE_USL,
    DEFIANT_NODE_USL,
    USLModel,
    fit_usl,
)

# Table I, strong scaling (paper).
TABLE1_WORKERS = [1, 2, 4, 8, 16, 32, 64]
TABLE1_WORKER_TPUT = [10.52, 18.10, 25.01, 36.59, 38.74, 37.95, 37.34]
TABLE1_NODES = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]
TABLE1_NODE_TPUT = [36.05, 73.25, 98.73, 135.42, 177.69, 192.32, 196.70, 216.80, 264.13, 267.44]


class TestUSLModel:
    def test_speedup_one_is_identity(self):
        model = USLModel(sigma=0.2, kappa=0.01)
        assert model.speedup(1) == pytest.approx(1.0)
        assert model.efficiency(1) == pytest.approx(1.0)

    def test_linear_when_ideal(self):
        model = USLModel(sigma=0.0, kappa=0.0)
        assert model.speedup(64) == pytest.approx(64.0)
        assert model.peak_concurrency() == float("inf")

    def test_contention_saturates(self):
        model = USLModel(sigma=0.2, kappa=0.0)
        # Amdahl-like: speedup -> 1/sigma as n -> inf.
        assert model.speedup(10_000) == pytest.approx(1 / 0.2, rel=0.01)

    def test_coherency_retrogrades(self):
        model = USLModel(sigma=0.1, kappa=0.01)
        peak = model.peak_concurrency()
        below, above = int(peak) - 2, int(peak) + 20
        assert model.speedup(above) < model.speedup(int(peak))
        assert model.speedup(below) < model.speedup(int(peak)) * 1.01

    def test_vectorized(self):
        model = DEFIANT_NODE_USL
        values = model.speedup(np.array([1, 2, 4]))
        assert values.shape == (3,)

    def test_negative_params_rejected(self):
        with pytest.raises(ValueError):
            USLModel(sigma=-0.1, kappa=0.0)

    @settings(max_examples=50, deadline=None)
    @given(
        sigma=st.floats(min_value=0.0, max_value=0.9),
        kappa=st.floats(min_value=0.0, max_value=0.01),
        n=st.integers(min_value=1, max_value=512),
    )
    def test_efficiency_bounds_property(self, sigma, kappa, n):
        model = USLModel(sigma=sigma, kappa=kappa)
        eff = model.efficiency(n)
        assert 0.0 < eff <= 1.0
        # Efficiency is non-increasing in n.
        assert model.efficiency(n + 1) <= eff + 1e-12


class TestCalibration:
    def test_node_usl_matches_worker_plateau(self):
        """The calibrated on-node model reproduces Table I's plateau."""
        model = DEFIANT_NODE_USL
        predicted = model.throughput(np.array(TABLE1_WORKERS), base_rate=10.52)
        # Shape contract: within 20% of every measured point.
        ratio = predicted / np.array(TABLE1_WORKER_TPUT)
        assert (np.abs(ratio - 1.0) < 0.20).all()
        # The plateau: 16..64 workers all within a narrow band.
        plateau = model.throughput(np.array([16, 32, 64]), base_rate=10.52)
        assert plateau.max() / plateau.min() < 1.25

    def test_cross_node_near_linear(self):
        model = DEFIANT_CROSS_NODE_USL
        predicted = model.throughput(np.array(TABLE1_NODES), base_rate=36.05)
        ratio = predicted / np.array(TABLE1_NODE_TPUT)
        assert (np.abs(ratio - 1.0) < 0.20).all()
        # Efficiency at 10 nodes stays above 70%.
        assert model.efficiency(10) > 0.70

    def test_128_workers_two_nodes(self):
        """64->128 workers spans two nodes: throughput roughly doubles.

        Table I: 37.34 -> 71.01 tiles/s.
        """
        per_node = DEFIANT_NODE_USL.throughput(64, base_rate=10.52)
        two_nodes = 2 * per_node * DEFIANT_CROSS_NODE_USL.efficiency(2)
        assert two_nodes == pytest.approx(71.01, rel=0.10)


class TestFit:
    def test_recovers_known_model(self):
        truth = USLModel(sigma=0.15, kappa=0.002)
        n = np.array([1, 2, 4, 8, 16, 32, 64])
        tput = truth.throughput(n, base_rate=10.0)
        fitted, base = fit_usl(n, tput)
        assert base == pytest.approx(10.0)
        assert fitted.sigma == pytest.approx(0.15, abs=0.01)
        assert fitted.kappa == pytest.approx(0.002, abs=0.0005)

    def test_fit_table1(self):
        fitted, base = fit_usl(TABLE1_WORKERS, TABLE1_WORKER_TPUT)
        assert 0.1 < fitted.sigma < 0.25
        assert fitted.kappa < 0.01

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            fit_usl([1], [10.0])
        with pytest.raises(ValueError):
            fit_usl([0, 1], [1.0, 2.0])
        with pytest.raises(ValueError):
            fit_usl([1, 2], [1.0, -2.0])
