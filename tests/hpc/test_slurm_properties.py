"""Hypothesis property tests for the Slurm scheduler.

Random workloads (mixed sizes, durations, walltimes, submit times) must
preserve the scheduler's core invariants regardless of interleaving.
"""

from hypothesis import given, settings, strategies as st

from repro.hpc.machine import ClusterSpec, NodeSpec
from repro.hpc.slurm import JobState, SlurmScheduler
from repro.sim import Simulation


def cluster(num_nodes):
    return ClusterSpec(
        name="prop",
        num_nodes=num_nodes,
        node=NodeSpec(cores=8, memory_bytes=10**9),
        interconnect_bw=1e9,
        fs_capacity_bytes=10**12,
        fs_aggregate_bw=1e9,
        fs_per_client_bw=1e9,
    )


job_strategy = st.tuples(
    st.integers(min_value=1, max_value=6),                 # nodes
    st.floats(min_value=0.1, max_value=20.0),              # duration
    st.floats(min_value=0.1, max_value=25.0),              # walltime
    st.floats(min_value=0.0, max_value=30.0),              # submit delay
)


@settings(max_examples=30, deadline=None)
@given(jobs=st.lists(job_strategy, min_size=1, max_size=25))
def test_scheduler_invariants_random_workloads(jobs):
    sim = Simulation()
    scheduler = SlurmScheduler(sim, cluster(6), allocation_latency=0.1)
    submitted = []
    allocation_samples = []

    def body_factory(duration):
        def body(job):
            allocation_samples.append(
                scheduler.cluster.num_nodes - len(scheduler.free_nodes)
            )
            yield sim.timeout(duration)
        return body

    def submitter(spec, delay):
        nodes, duration, walltime, _ = spec

        def proc():
            yield sim.timeout(delay)
            job = scheduler.submit(
                f"j{len(submitted)}", num_nodes=nodes, walltime=walltime,
                body=body_factory(duration),
            )
            submitted.append((job, duration, walltime))
        return proc

    for spec in jobs:
        sim.process(submitter(spec, spec[3])())
    sim.run()

    # Invariant 1: every node returns to the pool.
    assert len(scheduler.free_nodes) == 6
    # Invariant 2: every job reached a terminal state.
    assert all(job.state.terminal for job, *_ in submitted)
    # Invariant 3: allocation never exceeded the cluster.
    assert all(0 <= used <= 6 for used in allocation_samples)
    # Invariant 4: outcome is consistent with duration vs walltime.
    for job, duration, walltime in submitted:
        if job.state is JobState.COMPLETED:
            assert duration <= walltime + 1e-6
        elif job.state is JobState.TIMEOUT:
            assert duration > walltime - 1e-6
    # Invariant 5: started jobs never started before submission.
    for job, *_ in submitted:
        if job.started_at is not None:
            assert job.started_at >= job.submitted_at - 1e-9


@settings(max_examples=20, deadline=None)
@given(
    sizes=st.lists(st.floats(min_value=1.0, max_value=1000.0), min_size=2, max_size=10),
    delays=st.lists(st.floats(min_value=0.0, max_value=20.0), min_size=2, max_size=10),
)
def test_fluidpipe_conserves_work_with_staggered_arrivals(sizes, delays):
    """Total delivered bytes equal total demand for any arrival pattern."""
    from repro.sim import FluidPipe

    n = min(len(sizes), len(delays))
    sizes, delays = sizes[:n], delays[:n]
    sim = Simulation()
    pipe = FluidPipe(sim, capacity=50.0)
    finished = []

    def client(size, delay):
        yield sim.timeout(delay)
        flow = yield pipe.transfer(size)
        finished.append(flow)

    for size, delay in zip(sizes, delays):
        sim.process(client(size, delay))
    sim.run()
    assert len(finished) == n
    # Work conservation: the pipe was never faster than capacity.
    span_start = min(f.started_at for f in finished)
    span_end = max(f.finished_at for f in finished)
    assert sum(sizes) <= 50.0 * (span_end - span_start) + 1e-6
    # Each flow's mean rate never exceeds the full capacity.
    for flow in finished:
        assert flow.mean_rate <= 50.0 + 1e-6
