"""Energy/carbon accounting tests."""

import pytest

from repro.hpc.energy import EnergyReport, PowerModel, energy_from_worker_series
from repro.sim.trace import StepSeries


class TestPowerModel:
    def test_interpolation(self):
        power = PowerModel(idle_watts=200, busy_watts=400, workers_per_node=8)
        assert power.node_power(0) == 200
        assert power.node_power(8) == 400
        assert power.node_power(4) == 300
        assert power.node_power(100) == 400  # clipped

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerModel(idle_watts=500, busy_watts=100)
        with pytest.raises(ValueError):
            PowerModel(workers_per_node=0)


class TestEnergyIntegration:
    def test_constant_load(self):
        # 8 workers on 1 node, fully busy for 3600 s at 480 W -> 0.48 kWh.
        series = StepSeries([(0.0, 8.0), (3600.0, 0.0)])
        report = energy_from_worker_series("elastic", series, 0.0, 3600.0)
        assert report.energy_kwh == pytest.approx(0.48)
        assert report.carbon_kg == pytest.approx(0.48 * 0.4)
        assert report.node_seconds == pytest.approx(3600.0)
        assert report.worker_seconds == pytest.approx(8 * 3600.0)

    def test_elastic_cheaper_than_static(self):
        """A ramp-down worker profile costs less than holding peak nodes."""
        series = StepSeries([(0.0, 32.0), (100.0, 16.0), (200.0, 4.0), (300.0, 0.0)])
        elastic = energy_from_worker_series("elastic", series, 0.0, 300.0)
        static = energy_from_worker_series("static", series, 0.0, 300.0, static_nodes=4)
        assert elastic.energy_kwh < static.energy_kwh
        assert elastic.worker_seconds == static.worker_seconds  # same work

    def test_partial_node_occupancy(self):
        # 4 workers (half a node's packing) on 1 node for 100 s.
        series = StepSeries([(0.0, 4.0), (100.0, 0.0)])
        power = PowerModel(idle_watts=200, busy_watts=400, workers_per_node=8)
        report = energy_from_worker_series("e", series, 0.0, 100.0, power)
        assert report.energy_kwh == pytest.approx(300 * 100 / 3.6e6)

    def test_idle_window_costs_nothing_when_elastic(self):
        series = StepSeries([(50.0, 8.0), (60.0, 0.0)])
        report = energy_from_worker_series("e", series, 0.0, 100.0)
        # Only the 10 busy seconds are billed.
        assert report.node_seconds == pytest.approx(10.0)

    def test_static_bills_idle_window(self):
        series = StepSeries([(50.0, 8.0), (60.0, 0.0)])
        report = energy_from_worker_series("s", series, 0.0, 100.0, static_nodes=1)
        assert report.node_seconds == pytest.approx(100.0)

    def test_str_rendering(self):
        series = StepSeries([(0.0, 8.0), (10.0, 0.0)])
        text = str(energy_from_worker_series("elastic", series, 0.0, 10.0))
        assert "kWh" in text and "elastic" in text

    def test_bad_window(self):
        with pytest.raises(ValueError):
            energy_from_worker_series("x", StepSeries([]), 10.0, 0.0)


class TestAblationIntegration:
    def test_elastic_ablation_reports_energy(self):
        from repro.analysis import elastic_ablation

        result = elastic_ablation(num_granule_sets=24)
        assert result["elastic_kwh"] < result["static_kwh"]
        assert 0.0 < result["energy_saving_fraction"] < 1.0
        assert result["carbon_saving_kg"] > 0.0
