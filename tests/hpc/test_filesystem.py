"""Shared filesystem model tests."""

import pytest

from repro.hpc.filesystem import SharedFilesystem
from repro.sim import Simulation


def make(aggregate=100.0, per_client=None, capacity=None):
    sim = Simulation()
    fs = SharedFilesystem(sim, "lustre", aggregate_bw=aggregate, per_client_bw=per_client,
                          capacity_bytes=capacity)
    return sim, fs


class TestNamespace:
    def test_write_then_closed(self):
        sim, fs = make()
        done = fs.write("/data/a.nc", 500)
        assert fs.exists("/data/a.nc")
        assert not fs.entry("/data/a.nc").closed
        sim.run()
        entry = fs.entry("/data/a.nc")
        assert entry.closed
        assert entry.closed_at == pytest.approx(5.0)
        assert done.value is entry

    def test_duplicate_write_rejected(self):
        sim, fs = make()
        fs.write("/a", 10)
        with pytest.raises(FileExistsError):
            fs.write("/a", 10)

    def test_read_open_file_rejected(self):
        """The partial-read hazard the download barrier guards against."""
        sim, fs = make()
        fs.write("/a", 1000)
        with pytest.raises(OSError, match="still being written"):
            fs.read("/a")

    def test_read_missing(self):
        sim, fs = make()
        with pytest.raises(FileNotFoundError):
            fs.read("/nope")

    def test_listdir_only_closed(self):
        sim, fs = make()
        fs.write("/out/a.nc", 100)
        fs.write("/out/b.nc", 10**6)  # still open when we look
        sim.run(until=2.0)
        names = [e.path for e in fs.listdir("/out")]
        assert names == ["/out/a.nc"]
        all_names = [e.path for e in fs.listdir("/out", only_closed=False)]
        assert all_names == ["/out/a.nc", "/out/b.nc"]

    def test_created_since_crawler_primitive(self):
        sim, fs = make()

        def writer():
            yield fs.write("/out/t0.nc", 100)
            yield sim.timeout(10.0)
            yield fs.write("/out/t1.nc", 100)

        sim.process(writer())
        sim.run()
        fresh = fs.created_since("/out", time=5.0)
        assert [e.path for e in fresh] == ["/out/t1.nc"]

    def test_unlink(self):
        sim, fs = make()
        fs.write("/a", 100)
        sim.run()
        assert fs.bytes_used == 100
        fs.unlink("/a")
        assert not fs.exists("/a")
        assert fs.bytes_used == 0

    def test_capacity_enforced(self):
        sim, fs = make(capacity=150)
        fs.write("/a", 100)
        with pytest.raises(OSError, match="full"):
            fs.write("/b", 100)


class TestBandwidth:
    def test_concurrent_writes_share(self):
        sim, fs = make(aggregate=100.0)
        a = fs.write("/a", 500)
        b = fs.write("/b", 500)
        sim.run()
        # 50 B/s each -> both close at t=10.
        assert fs.entry("/a").closed_at == pytest.approx(10.0)
        assert fs.entry("/b").closed_at == pytest.approx(10.0)

    def test_per_client_cap(self):
        sim, fs = make(aggregate=100.0, per_client=10.0)
        fs.write("/a", 100)
        sim.run()
        assert fs.entry("/a").closed_at == pytest.approx(10.0)

    def test_read_contends_with_write(self):
        sim, fs = make(aggregate=100.0)
        fs.write("/a", 100)
        sim.run()
        times = {}

        def reader(tag):
            entry = yield fs.read("/a")
            times[tag] = sim.now

        sim.process(reader("r1"))
        sim.process(reader("r2"))
        sim.run()
        # Reads begin at t=1 (after the write) and share 100 B/s: 50 B/s
        # each over 100 B -> both finish 2 s later.
        assert times["r1"] == pytest.approx(3.0)
        assert times["r2"] == pytest.approx(3.0)
