"""Second cross-cutting edge-case batch."""

import datetime as dt

import numpy as np
import pytest

from repro.util.config import ConfigError, Field, Schema, string


class TestConfigSchema:
    def test_duplicate_fields_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Schema("s", [Field("a", string), Field("a", string)])

    def test_allow_extra(self):
        schema = Schema("s", [Field("a", string, required=False, default="x")],
                        allow_extra=True)
        assert schema.validate({"a": "y", "mystery": 1})["a"] == "y"

    def test_unknown_keys_listed(self):
        schema = Schema("s", [Field("a", string, required=False)])
        with pytest.raises(ConfigError, match="mystery"):
            schema.validate({"mystery": 1})

    def test_choices(self):
        schema = Schema("s", [Field("mode", string, choices=("fast", "slow"))])
        assert schema.validate({"mode": "fast"})["mode"] == "fast"
        with pytest.raises(ConfigError, match="one of"):
            schema.validate({"mode": "medium"})

    def test_error_path_includes_field(self):
        schema = Schema("s", [Field("count", string)])
        with pytest.raises(ConfigError) as info:
            schema.validate({"count": 5})
        assert "s.count" in str(info.value)


class TestFlowsRunIsolation:
    def test_input_document_not_mutated(self):
        from repro.flows import FlowsEngine
        from repro.sim import Simulation

        sim = Simulation()
        engine = FlowsEngine(sim, {"touch": lambda e, p: "result"}, action_latency=0.0)
        source = {"key": "original"}
        run = engine.run(
            {
                "StartAt": "T",
                "States": {
                    "T": {"Type": "Action", "ActionUrl": "touch",
                           "ResultPath": "out", "Next": "Done"},
                    "Done": {"Type": "Succeed"},
                },
            },
            input_document=source,
        )
        sim.run()
        assert source == {"key": "original"}  # caller's dict untouched
        assert run.document["out"] == "result"


class TestNetcdfRepr:
    def test_variable_repr_and_describe(self):
        from repro.netcdf import Dataset

        ds = Dataset()
        ds.create_dimension("t", None)
        var = ds.create_variable("v", "f4", ("t",), np.zeros(2, dtype=np.float32),
                                 attributes={"units": "1"})
        assert "FLOAT" in repr(var)
        assert "v" in ds.describe()
        assert "v" in ds
        assert ds["v"] is var
        assert var[0] == 0.0


class TestArchiveBands:
    def test_fetch_band_subset(self):
        from repro.modis import LaadsArchive

        archive = LaadsArchive(seed=1)
        ref = archive.query("MOD02", dt.date(2022, 1, 1), max_per_day=1)[0]
        ds = archive.fetch(ref, bands=[6, 31])
        assert ds["radiance"].data.shape[0] == 2
        np.testing.assert_array_equal(np.asarray(ds.get_attr("band_list")), [6, 31])


class TestPythonAppForms:
    def test_decorator_with_parentheses(self):
        from repro.compute import LocalComputeEndpoint
        from repro.pexec import DataFlowKernel, clear, load, python_app

        kernel = DataFlowKernel({"local": LocalComputeEndpoint("p", 2)})
        load(kernel)
        try:
            @python_app()
            def doubled(x):
                return 2 * x

            assert doubled(21).result(timeout=10) == 42
        finally:
            kernel.shutdown()
            clear()


class TestGeolocationWidth:
    def test_cross_track_extent_near_2330km(self):
        """The swath's cross-track great-circle width matches the MODIS
        instrument's ~2330 km."""
        from repro.modis import MINI_SWATH, granule_geolocation

        lat, lon = granule_geolocation(40, MINI_SWATH)
        line = MINI_SWATH.lines // 2
        lat1, lon1 = np.deg2rad(lat[line, 0]), np.deg2rad(lon[line, 0])
        lat2, lon2 = np.deg2rad(lat[line, -1]), np.deg2rad(lon[line, -1])
        central = np.arccos(
            np.clip(
                np.sin(lat1) * np.sin(lat2)
                + np.cos(lat1) * np.cos(lat2) * np.cos(lon2 - lon1),
                -1, 1,
            )
        )
        width_km = 6371.0 * central
        assert width_km == pytest.approx(2330.0, rel=0.05)


class TestTransferAccounting:
    def test_duration_before_finish_raises(self):
        from repro.sim import Simulation
        from repro.transfer.task import TransferItem, TransferTask

        sim = Simulation()
        task = TransferTask(
            task_id=1, label="t", src_endpoint="a", dst_endpoint="b",
            items=[TransferItem("x", "y")], submitted_at=0.0, done=sim.event(),
        )
        with pytest.raises(ValueError):
            task.duration

    def test_total_bytes(self):
        from repro.sim import Simulation
        from repro.transfer.task import TransferItem, TransferTask

        sim = Simulation()
        task = TransferTask(
            task_id=1, label="t", src_endpoint="a", dst_endpoint="b",
            items=[TransferItem("x", "y", nbytes=100), TransferItem("p", "q", nbytes=50)],
            submitted_at=0.0, done=sim.event(),
        )
        assert task.total_bytes == 150


class TestHistogramEdges:
    def test_mean_of_empty_raises(self):
        from repro.telemetry import Histogram

        with pytest.raises(ValueError):
            Histogram("x").mean
        with pytest.raises(ValueError):
            Histogram("x").quantile(0.5)
