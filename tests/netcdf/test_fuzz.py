"""Robustness fuzzing: corrupted NetCDF bytes must fail cleanly.

A parser consuming files from a shared filesystem (the crawler's tile
files) must never crash with an internal error on truncated or corrupted
input — only :class:`NcFormatError` (or parse successfully, for
corruptions that land in data sections).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.netcdf import Dataset, NcFormatError, from_bytes, to_bytes


def sample_bytes():
    ds = Dataset()
    ds.create_dimension("t", None)
    ds.create_dimension("x", 4)
    ds.create_variable(
        "v", "f4", ("t", "x"), np.arange(12, dtype=np.float32).reshape(3, 4),
        attributes={"units": "1"},
    )
    ds.set_attr("title", "fuzz target")
    return to_bytes(ds)


BLOB = sample_bytes()


@settings(max_examples=150, deadline=None)
@given(
    position=st.integers(min_value=0, max_value=len(BLOB) - 1),
    value=st.integers(min_value=0, max_value=255),
)
def test_single_byte_corruption_never_crashes(position, value):
    corrupted = bytearray(BLOB)
    corrupted[position] = value
    try:
        ds = from_bytes(bytes(corrupted))
    except NcFormatError:
        return  # clean rejection
    except (UnicodeDecodeError, OverflowError, MemoryError):
        pytest.fail("corruption escaped as a non-NcFormatError exception")
    # Parsed: the corruption hit a data byte or an undetectable header
    # byte (e.g. a name character — classic NetCDF has no checksums).
    # Structure must still be sane: one variable, consistent shapes.
    assert len(ds.variables) <= 1
    for var in ds.variables.values():
        assert var.data.ndim == len(var.dimensions)


@settings(max_examples=80, deadline=None)
@given(cut=st.integers(min_value=0, max_value=len(BLOB)))
def test_truncation_never_crashes(cut):
    try:
        from_bytes(BLOB[:cut])
    except NcFormatError:
        pass


@settings(max_examples=80, deadline=None)
@given(junk=st.binary(min_size=0, max_size=64))
def test_random_bytes_rejected(junk):
    if junk[:4] == BLOB[:4]:
        return  # astronomically unlikely, but keep the test honest
    with pytest.raises(NcFormatError):
        from_bytes(junk)
