"""The canonical-layout splice path (label-append fast serialization).

``canonical_layout`` recognises a byte string that is exactly what
``to_bytes`` would emit for the parsed dataset; ``splice_bytes`` then
re-serializes a mutated dataset by rewriting only the header and the
changed variables, copying the rest of the data region verbatim.  The
invariant under test everywhere: splice output is byte-identical to a
full ``to_bytes`` of the same mutated dataset.
"""

import numpy as np
import pytest

from repro.netcdf import Dataset, from_bytes, to_bytes
from repro.netcdf.writer import canonical_layout, splice_bytes

from tests.netcdf.test_roundtrip import make_tile_dataset


def parsed_with_raw(num_tiles=4):
    raw = to_bytes(make_tile_dataset(num_tiles=num_tiles))
    return from_bytes(raw), raw


class TestCanonicalLayout:
    def test_recognises_own_serialization(self):
        ds, raw = parsed_with_raw()
        layout = canonical_layout(ds, raw)
        assert layout is not None
        assert layout.numrecs == ds.num_records
        assert len(raw) == layout.header_size + sum(
            size for name, size in layout.vsizes.items()
            if not ds[name].is_record
        ) + layout.numrecs * layout.recsize

    def test_rejects_length_mismatch(self):
        ds, raw = parsed_with_raw()
        assert canonical_layout(ds, raw + b"\x00") is None
        assert canonical_layout(ds, raw[:-1]) is None

    def test_rejects_foreign_header(self):
        ds, raw = parsed_with_raw()
        tampered = bytearray(raw)
        tampered[8] ^= 0xFF  # somewhere inside the header
        assert canonical_layout(ds, bytes(tampered)) is None

    def test_rejects_mutated_dataset(self):
        """Layout must be taken before mutation: an attr added afterwards
        changes the canonical header, so recognition fails."""
        ds, raw = parsed_with_raw()
        ds.set_attr("processing_level", "L2")
        assert canonical_layout(ds, raw) is None


class TestSpliceBytes:
    def test_record_variable_patch_matches_full_serializer(self):
        ds, raw = parsed_with_raw()
        layout = canonical_layout(ds, raw)
        new_labels = np.arange(ds.num_records, dtype=np.int32)
        ds["label"].data[:] = new_labels
        assert splice_bytes(ds, raw, layout, ("label",)) == to_bytes(ds)

    def test_attr_change_grows_header(self):
        """Label append as inference performs it: new attrs change the
        header size, so the splice shifts the data region."""
        ds, raw = parsed_with_raw()
        layout = canonical_layout(ds, raw)
        ds["label"].data[:] = np.arange(ds.num_records, dtype=np.int32)
        ds["label"].set_attr("classified_by", "RICC/AICCA")
        ds.set_attr("aicca_classes", 42)
        spliced = splice_bytes(ds, raw, layout, ("label",))
        assert spliced == to_bytes(ds)
        assert from_bytes(spliced)["label"].get_attr("classified_by") == "RICC/AICCA"

    def test_fixed_variable_patch(self):
        ds = make_tile_dataset()
        ds.create_dimension("scalar", 1)
        ds.create_variable("offset", "f8", ("scalar",), np.array([1.5]))
        raw = to_bytes(ds)
        parsed = from_bytes(raw)
        layout = canonical_layout(parsed, raw)
        parsed["offset"].data[:] = np.array([99.25])
        assert splice_bytes(parsed, raw, layout, ("offset",)) == to_bytes(parsed)

    def test_structural_change_falls_back_to_full_serializer(self):
        ds, raw = parsed_with_raw()
        layout = canonical_layout(ds, raw)
        ds.create_variable(
            "confidence", "f4", ("tile",),
            np.zeros(ds.num_records, dtype=np.float32),
        )
        assert splice_bytes(ds, raw, layout, ("confidence",)) == to_bytes(ds)

    def test_unchanged_splice_is_identity(self):
        ds, raw = parsed_with_raw()
        layout = canonical_layout(ds, raw)
        assert splice_bytes(ds, raw, layout, ()) == raw

    def test_round_trips_through_reader(self):
        ds, raw = parsed_with_raw(num_tiles=6)
        layout = canonical_layout(ds, raw)
        labels = np.arange(6, dtype=np.int32) % 3
        ds["label"].data[:] = labels
        clone = from_bytes(splice_bytes(ds, raw, layout, ("label",)))
        np.testing.assert_array_equal(clone["label"].data, labels)
        np.testing.assert_array_equal(clone["radiance"].data, ds["radiance"].data)
