"""NetCDF writer/reader round-trip tests, including hypothesis properties."""

import io

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.netcdf import Dataset, NcFormatError, from_bytes, read, to_bytes, write


def make_tile_dataset(num_tiles=3, size=8, channels=2, seed=0):
    """A miniature AICCA-style tile file."""
    rng = np.random.default_rng(seed)
    ds = Dataset()
    ds.create_dimension("tile", None)
    ds.create_dimension("y", size)
    ds.create_dimension("x", size)
    ds.create_dimension("channel", channels)
    ds.create_variable(
        "radiance",
        "f4",
        ("tile", "y", "x", "channel"),
        rng.normal(size=(num_tiles, size, size, channels)).astype(np.float32),
        attributes={"units": "W/m2/um/sr", "valid_min": 0.0},
    )
    ds.create_variable(
        "latitude", "f8", ("tile",), rng.uniform(-60, 60, num_tiles), attributes={"units": "degrees_north"}
    )
    ds.create_variable(
        "label", "i4", ("tile",), rng.integers(0, 42, num_tiles).astype(np.int32)
    )
    ds.set_attr("title", "AICCA ocean-cloud tiles")
    ds.set_attr("cloud_classes", 42)
    return ds


class TestRoundTrip:
    def test_tile_file(self):
        ds = make_tile_dataset()
        clone = from_bytes(to_bytes(ds))
        assert list(clone.variables) == ["radiance", "latitude", "label"]
        np.testing.assert_array_equal(clone["radiance"].data, ds["radiance"].data)
        np.testing.assert_array_equal(clone["label"].data, ds["label"].data)
        np.testing.assert_allclose(clone["latitude"].data, ds["latitude"].data)
        assert clone.get_attr("title") == "AICCA ocean-cloud tiles"
        assert int(clone.get_attr("cloud_classes")[0]) == 42
        assert clone["radiance"].get_attr("units") == "W/m2/um/sr"
        assert clone.record_dimension.name == "tile"
        assert clone.num_records == 3

    def test_fixed_only(self):
        ds = Dataset()
        ds.create_dimension("x", 5)
        ds.create_variable("v", "i2", ("x",), np.arange(5, dtype=np.int16))
        clone = from_bytes(to_bytes(ds))
        np.testing.assert_array_equal(clone["v"].data, np.arange(5, dtype=np.int16))
        assert clone.num_records == 0

    def test_scalar_variable(self):
        ds = Dataset()
        ds.create_variable("answer", "f8", (), np.float64(42.0))
        clone = from_bytes(to_bytes(ds))
        assert clone["answer"].data == pytest.approx(42.0)

    def test_single_record_variable_unpadded(self):
        # Special rule: a lone record variable of a small type is unpadded.
        ds = Dataset()
        ds.create_dimension("t", None)
        ds.create_dimension("c", 3)
        data = np.arange(15, dtype=np.int8).reshape(5, 3)
        ds.create_variable("v", "i1", ("t", "c"), data)
        blob = to_bytes(ds)
        clone = from_bytes(blob)
        np.testing.assert_array_equal(clone["v"].data, data)

    def test_multiple_record_variables(self):
        ds = Dataset()
        ds.create_dimension("t", None)
        ds.create_dimension("c", 3)
        a = np.arange(15, dtype=np.int8).reshape(5, 3)
        b = np.arange(5, dtype=np.float32) * 1.5
        ds.create_variable("a", "i1", ("t", "c"), a)
        ds.create_variable("b", "f4", ("t",), b)
        clone = from_bytes(to_bytes(ds))
        np.testing.assert_array_equal(clone["a"].data, a)
        np.testing.assert_allclose(clone["b"].data, b)

    def test_zero_records(self):
        ds = Dataset()
        ds.create_dimension("t", None)
        ds.create_variable("v", "f4", ("t",), np.empty(0, dtype=np.float32))
        clone = from_bytes(to_bytes(ds))
        assert clone["v"].data.shape == (0,)

    def test_char_data(self):
        ds = Dataset()
        ds.create_dimension("n", 4)
        ds.create_variable("name", "S1", ("n",), np.frombuffer(b"MODI", dtype="S1"))
        clone = from_bytes(to_bytes(ds))
        assert clone["name"].data.tobytes() == b"MODI"

    def test_file_roundtrip(self, tmp_path):
        ds = make_tile_dataset(seed=7)
        path = str(tmp_path / "tiles.nc")
        nbytes = write(ds, path)
        assert nbytes > 0
        clone = read(path)
        np.testing.assert_array_equal(clone["label"].data, ds["label"].data)

    def test_fileobj_roundtrip(self):
        ds = make_tile_dataset(seed=9)
        buf = io.BytesIO()
        write(ds, buf)
        buf.seek(0)
        clone = read(buf)
        np.testing.assert_array_equal(clone["label"].data, ds["label"].data)

    def test_magic_bytes(self):
        blob = to_bytes(make_tile_dataset())
        assert blob[:3] == b"CDF"
        assert blob[3] in (1, 2)


class TestValidation:
    def test_bad_magic(self):
        with pytest.raises(NcFormatError, match="magic"):
            from_bytes(b"HDF\x01" + b"\x00" * 100)

    def test_truncated(self):
        blob = to_bytes(make_tile_dataset())
        with pytest.raises(NcFormatError):
            from_bytes(blob[: len(blob) // 2])

    def test_duplicate_dimension(self):
        ds = Dataset()
        ds.create_dimension("x", 1)
        with pytest.raises(NcFormatError):
            ds.create_dimension("x", 2)

    def test_two_record_dims_rejected(self):
        ds = Dataset()
        ds.create_dimension("t", None)
        with pytest.raises(NcFormatError):
            ds.create_dimension("u", None)

    def test_shape_mismatch(self):
        ds = Dataset()
        ds.create_dimension("x", 5)
        with pytest.raises(NcFormatError):
            ds.create_variable("v", "f4", ("x",), np.zeros(4, dtype=np.float32))

    def test_record_dim_must_lead(self):
        ds = Dataset()
        ds.create_dimension("t", None)
        ds.create_dimension("x", 2)
        with pytest.raises(NcFormatError):
            ds.create_variable("v", "f4", ("x", "t"), np.zeros((2, 3), dtype=np.float32))

    def test_inconsistent_record_counts(self):
        ds = Dataset()
        ds.create_dimension("t", None)
        ds.create_variable("a", "f4", ("t",), np.zeros(3, dtype=np.float32))
        with pytest.raises(NcFormatError):
            ds.create_variable("b", "f4", ("t",), np.zeros(4, dtype=np.float32))

    def test_unknown_dimension(self):
        ds = Dataset()
        with pytest.raises(NcFormatError):
            ds.create_variable("v", "f4", ("ghost",), np.zeros(1, dtype=np.float32))

    def test_int64_data_rejected(self):
        ds = Dataset()
        ds.create_dimension("x", 2)
        with pytest.raises(NcFormatError, match="external type"):
            ds.create_variable("v", np.int64, ("x",), np.zeros(2, dtype=np.int64))

    def test_bad_names(self):
        ds = Dataset()
        with pytest.raises(NcFormatError):
            ds.create_dimension("1leading-digit", 3)
        with pytest.raises(NcFormatError):
            ds.set_attr("spaces in name", 1)

    def test_describe(self):
        text = make_tile_dataset().describe()
        assert "UNLIMITED" in text
        assert "radiance" in text


_DTYPES = ["i1", "i2", "i4", "f4", "f8"]


@settings(max_examples=40, deadline=None)
@given(
    dtype=st.sampled_from(_DTYPES),
    shape=st.lists(st.integers(min_value=1, max_value=6), min_size=0, max_size=3),
    use_record=st.booleans(),
    numrecs=st.integers(min_value=0, max_value=4),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_roundtrip_property(dtype, shape, use_record, numrecs, seed):
    """Arbitrary (dtype, shape, record-ness) round-trips exactly."""
    rng = np.random.default_rng(seed)
    ds = Dataset()
    dims = []
    for index, extent in enumerate(shape):
        name = f"d{index}"
        ds.create_dimension(name, extent)
        dims.append(name)
    if use_record:
        ds.create_dimension("rec", None)
        dims = ["rec"] + dims
        full_shape = (numrecs, *shape)
    else:
        full_shape = tuple(shape)
    if np.dtype(dtype).kind == "f":
        data = rng.normal(size=full_shape).astype(dtype)
    else:
        info = np.iinfo(dtype)
        data = rng.integers(info.min, info.max, size=full_shape, endpoint=True).astype(dtype)
    ds.create_variable("v", dtype, dims, data)
    clone = from_bytes(to_bytes(ds))
    np.testing.assert_array_equal(clone["v"].data, data.astype(clone["v"].data.dtype))
    assert clone["v"].dim_names == tuple(dims)


@settings(max_examples=25, deadline=None)
@given(
    nvars=st.integers(min_value=1, max_value=4),
    numrecs=st.integers(min_value=0, max_value=5),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_multi_record_var_roundtrip_property(nvars, numrecs, seed):
    """Interleaved record slabs reassemble correctly for any variable count."""
    rng = np.random.default_rng(seed)
    ds = Dataset()
    ds.create_dimension("t", None)
    ds.create_dimension("k", 3)
    arrays = {}
    for index in range(nvars):
        name = f"v{index}"
        dtype = ["i1", "i2", "f4"][index % 3]
        if index % 2 == 0:
            data = rng.integers(-100, 100, size=(numrecs, 3)).astype(dtype)
            ds.create_variable(name, dtype, ("t", "k"), data)
        else:
            data = rng.integers(-100, 100, size=(numrecs,)).astype(dtype)
            ds.create_variable(name, dtype, ("t",), data)
        arrays[name] = data
    clone = from_bytes(to_bytes(ds))
    for name, data in arrays.items():
        np.testing.assert_array_equal(clone[name].data, data.astype(clone[name].data.dtype))
