"""CDF-2 (64-bit offset) format-path tests.

Real CDF-2 files exist because data crossed the 2 GiB offset limit; we
cannot allocate gigabytes in a unit test, so these exercise the 64-bit
header codec directly: serialize a header with 8-byte begins, splice in
the data section, and read the whole file back.
"""

import numpy as np

from repro.netcdf import Dataset, from_bytes
from repro.netcdf.writer import _plan_offsets, _serialize_header, _vsizes


def small_dataset():
    ds = Dataset()
    ds.create_dimension("t", None)
    ds.create_dimension("x", 3)
    ds.create_variable("fixed", "i2", ("x",), np.array([1, 2, 3], dtype=np.int16))
    ds.create_variable(
        "rec", "f4", ("t", "x"),
        np.arange(6, dtype=np.float32).reshape(2, 3),
    )
    return ds


class TestCdf2:
    def test_header_magic_and_width(self):
        ds = small_dataset()
        begins, header_size, _recsize = _plan_offsets(ds, offset_width=8)
        header = _serialize_header(ds, begins, _vsizes(ds), offset_width=8)
        assert header[:4] == b"CDF\x02"
        assert len(header) == header_size
        # The 64-bit header is exactly 2 * 4 bytes longer than the 32-bit
        # one (two variables, +4 bytes of begin each).
        begins32, header32, _ = _plan_offsets(ds, offset_width=4)
        assert header_size == header32 + 2 * 4

    def test_cdf2_roundtrip(self):
        """Hand-assemble a CDF-2 file and read it back."""
        ds = small_dataset()
        begins, header_size, recsize = _plan_offsets(ds, offset_width=8)
        vsizes = _vsizes(ds)
        out = bytearray(_serialize_header(ds, begins, vsizes, offset_width=8))
        fixed = ds["fixed"]
        payload = np.ascontiguousarray(fixed.data, dtype=fixed.data.dtype).tobytes()
        out += payload + b"\x00" * (vsizes["fixed"] - len(payload))
        rec = ds["rec"]
        for index in range(2):
            chunk = np.ascontiguousarray(rec.data[index], dtype=rec.data.dtype).tobytes()
            out += chunk + b"\x00" * (vsizes["rec"] - len(chunk))
        clone = from_bytes(bytes(out))
        np.testing.assert_array_equal(clone["fixed"].data, ds["fixed"].data)
        np.testing.assert_array_equal(clone["rec"].data, ds["rec"].data)
        assert clone.num_records == 2

    def test_plan_offsets_consistency(self):
        """Begins are contiguous: header, fixed data, then record base."""
        ds = small_dataset()
        begins, header_size, recsize = _plan_offsets(ds, offset_width=8)
        assert begins["fixed"] == header_size
        assert begins["rec"] == header_size + _vsizes(ds)["fixed"]
        assert recsize == _vsizes(ds)["rec"]
