"""Simulation kernel tests: events, processes, conditions, interrupts."""

import pytest

from repro.sim import AllOf, AnyOf, Interrupt, Simulation, SimulationError


class TestTimeouts:
    def test_clock_advances(self):
        sim = Simulation()
        log = []

        def proc():
            yield sim.timeout(5.0)
            log.append(sim.now)
            yield sim.timeout(2.5)
            log.append(sim.now)

        sim.process(proc())
        sim.run()
        assert log == [5.0, 7.5]

    def test_timeout_value(self):
        sim = Simulation()
        result = []

        def proc():
            value = yield sim.timeout(1.0, value="payload")
            result.append(value)

        sim.process(proc())
        sim.run()
        assert result == ["payload"]

    def test_negative_delay_rejected(self):
        sim = Simulation()
        with pytest.raises(SimulationError):
            sim.timeout(-1.0)

    def test_same_time_fifo_order(self):
        sim = Simulation()
        order = []

        def make(tag):
            def proc():
                yield sim.timeout(1.0)
                order.append(tag)
            return proc

        for tag in range(5):
            sim.process(make(tag)())
        sim.run()
        assert order == [0, 1, 2, 3, 4]


class TestProcesses:
    def test_process_is_joinable(self):
        sim = Simulation()
        results = []

        def child():
            yield sim.timeout(3.0)
            return 42

        def parent():
            value = yield sim.process(child())
            results.append((sim.now, value))

        sim.process(parent())
        sim.run()
        assert results == [(3.0, 42)]

    def test_process_failure_propagates_to_joiner(self):
        sim = Simulation()
        caught = []

        def child():
            yield sim.timeout(1.0)
            raise RuntimeError("boom")

        def parent():
            try:
                yield sim.process(child())
            except RuntimeError as exc:
                caught.append(str(exc))

        sim.process(parent())
        sim.run()
        assert caught == ["boom"]

    def test_unwaited_failed_event_raises(self):
        sim = Simulation()
        event = sim.event()
        event.fail(ValueError("lost"))
        with pytest.raises(ValueError, match="lost"):
            sim.run()

    def test_yielding_non_event_fails_process(self):
        sim = Simulation()

        def bad():
            yield 123

        proc = sim.process(bad())
        sim.run()
        assert proc.triggered and not proc.ok
        assert isinstance(proc.value, SimulationError)

    def test_run_until(self):
        sim = Simulation()

        def proc():
            yield sim.timeout(100.0)

        sim.process(proc())
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_run_with_stop_event(self):
        sim = Simulation()

        def proc():
            yield sim.timeout(4.0)
            return "done"

        result = sim.run(stop=sim.process(proc()))
        assert result == "done"
        assert sim.now == 4.0


class TestConditions:
    def test_all_of(self):
        sim = Simulation()
        results = []

        def proc():
            values = yield AllOf(sim, [sim.timeout(1.0, "a"), sim.timeout(3.0, "b")])
            results.append((sim.now, values))

        sim.process(proc())
        sim.run()
        assert results == [(3.0, ["a", "b"])]

    def test_any_of(self):
        sim = Simulation()
        results = []

        def proc():
            index, value = yield AnyOf(sim, [sim.timeout(5.0, "slow"), sim.timeout(1.0, "fast")])
            results.append((sim.now, index, value))

        sim.process(proc())
        sim.run()
        assert results == [(1.0, 1, "fast")]

    def test_all_of_empty_fires_immediately(self):
        sim = Simulation()
        results = []

        def proc():
            values = yield AllOf(sim, [])
            results.append(values)

        sim.process(proc())
        sim.run()
        assert results == [[]]


class TestInterrupt:
    def test_interrupt_wakes_waiter(self):
        sim = Simulation()
        log = []

        def worker():
            try:
                yield sim.timeout(100.0)
                log.append("finished")
            except Interrupt as stop:
                log.append(("interrupted", sim.now, stop.cause))

        def manager(target):
            yield sim.timeout(2.0)
            target.interrupt(cause="scale-in")

        target = sim.process(worker())
        sim.process(manager(target))
        sim.run()
        assert log == [("interrupted", 2.0, "scale-in")]

    def test_interrupted_process_can_continue(self):
        sim = Simulation()
        log = []

        def worker():
            try:
                yield sim.timeout(100.0)
            except Interrupt:
                pass
            yield sim.timeout(1.0)
            log.append(sim.now)

        def manager(target):
            yield sim.timeout(5.0)
            target.interrupt()

        target = sim.process(worker())
        sim.process(manager(target))
        sim.run()
        assert log == [6.0]

    def test_cannot_interrupt_finished(self):
        sim = Simulation()

        def quick():
            yield sim.timeout(1.0)

        proc = sim.process(quick())
        sim.run()
        with pytest.raises(SimulationError):
            proc.interrupt()


class TestDeterminism:
    def test_identical_runs(self):
        def build():
            sim = Simulation()
            trace = []

            def pinger(period, tag):
                while sim.now < 10:
                    yield sim.timeout(period)
                    trace.append((sim.now, tag))

            sim.process(pinger(1.0, "a"))
            sim.process(pinger(1.5, "b"))
            sim.run(until=10.0)
            return trace

        assert build() == build()
