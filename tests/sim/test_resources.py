"""Resource, Store, Container, FluidPipe tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import FluidPipe, Resource, Simulation, SimulationError, Store
from repro.sim.resources import Container


class TestResource:
    def test_capacity_limits_concurrency(self):
        sim = Simulation()
        res = Resource(sim, capacity=2)
        active = []
        peak = []

        def worker(tag):
            yield res.request()
            active.append(tag)
            peak.append(len(active))
            yield sim.timeout(1.0)
            active.remove(tag)
            res.release()

        for tag in range(6):
            sim.process(worker(tag))
        sim.run()
        assert max(peak) == 2
        assert sim.now == pytest.approx(3.0)  # 6 tasks, 2 at a time, 1s each

    def test_fifo_grant_order(self):
        sim = Simulation()
        res = Resource(sim, capacity=1)
        order = []

        def worker(tag):
            yield res.request()
            order.append(tag)
            yield sim.timeout(1.0)
            res.release()

        for tag in range(4):
            sim.process(worker(tag))
        sim.run()
        assert order == [0, 1, 2, 3]

    def test_release_without_hold_raises(self):
        sim = Simulation()
        res = Resource(sim, capacity=1)
        with pytest.raises(SimulationError):
            res.release()

    def test_cancel_queued_request(self):
        sim = Simulation()
        res = Resource(sim, capacity=1)
        first = res.request()
        assert first.triggered
        second = res.request()
        assert res.cancel(second)
        assert res.queued == 0
        assert not res.cancel(second)


class TestStore:
    def test_put_get_fifo(self):
        sim = Simulation()
        store = Store(sim)
        got = []

        def producer():
            for item in ("a", "b", "c"):
                yield store.put(item)
                yield sim.timeout(1.0)

        def consumer():
            for _ in range(3):
                item = yield store.get()
                got.append((sim.now, item))

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert [item for _, item in got] == ["a", "b", "c"]

    def test_get_blocks_until_put(self):
        sim = Simulation()
        store = Store(sim)
        got = []

        def consumer():
            item = yield store.get()
            got.append((sim.now, item))

        def producer():
            yield sim.timeout(5.0)
            yield store.put("late")

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert got == [(5.0, "late")]

    def test_bounded_put_blocks(self):
        sim = Simulation()
        store = Store(sim, capacity=1)
        times = []

        def producer():
            yield store.put(1)
            times.append(sim.now)
            yield store.put(2)
            times.append(sim.now)

        def consumer():
            yield sim.timeout(3.0)
            yield store.get()

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert times == [0.0, 3.0]


class TestContainer:
    def test_get_blocks_until_level(self):
        sim = Simulation()
        tank = Container(sim, capacity=10.0, init=0.0)
        log = []

        def consumer():
            yield tank.get(4.0)
            log.append(sim.now)

        def producer():
            yield sim.timeout(2.0)
            yield tank.put(5.0)

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert log == [2.0]
        assert tank.level == pytest.approx(1.0)


class TestFluidPipe:
    def test_single_flow_rate(self):
        sim = Simulation()
        pipe = FluidPipe(sim, capacity=100.0)
        done = pipe.transfer(500.0)
        sim.run()
        assert done.value.duration == pytest.approx(5.0)
        assert sim.now == pytest.approx(5.0)

    def test_two_equal_flows_share(self):
        sim = Simulation()
        pipe = FluidPipe(sim, capacity=100.0)
        a = pipe.transfer(500.0)
        b = pipe.transfer(500.0)
        sim.run()
        # Each gets 50 B/s: both finish at t=10.
        assert a.value.finished_at == pytest.approx(10.0)
        assert b.value.finished_at == pytest.approx(10.0)

    def test_short_flow_releases_bandwidth(self):
        sim = Simulation()
        pipe = FluidPipe(sim, capacity=100.0)
        long = pipe.transfer(1000.0)
        short = pipe.transfer(100.0)
        sim.run()
        # Shared until short finishes at t=2 (50 B/s); long then has 900
        # left at 100 B/s -> finishes at t=11.
        assert short.value.finished_at == pytest.approx(2.0)
        assert long.value.finished_at == pytest.approx(11.0)

    def test_late_arrival_slows_existing(self):
        sim = Simulation()
        pipe = FluidPipe(sim, capacity=100.0)
        results = {}

        def launch(tag, delay, nbytes):
            yield sim.timeout(delay)
            flow = yield pipe.transfer(nbytes)
            results[tag] = flow.finished_at

        sim.process(launch("first", 0.0, 1000.0))
        sim.process(launch("second", 5.0, 500.0))
        sim.run()
        # First runs alone 0-5 (500 done), then shares: both need 500 at
        # 50 B/s -> finish at t=15.
        assert results["first"] == pytest.approx(15.0)
        assert results["second"] == pytest.approx(15.0)

    def test_per_flow_cap(self):
        sim = Simulation()
        pipe = FluidPipe(sim, capacity=100.0, per_flow_cap=10.0)
        done = pipe.transfer(100.0)
        sim.run()
        assert done.value.duration == pytest.approx(10.0)

    def test_zero_byte_transfer_immediate(self):
        sim = Simulation()
        pipe = FluidPipe(sim, capacity=100.0)
        done = pipe.transfer(0.0)
        assert done.triggered
        assert done.value.duration == 0.0

    def test_mean_rate(self):
        sim = Simulation()
        pipe = FluidPipe(sim, capacity=100.0)
        done = pipe.transfer(200.0)
        sim.run()
        assert done.value.mean_rate == pytest.approx(100.0)


@settings(max_examples=30, deadline=None)
@given(
    sizes=st.lists(st.floats(min_value=1.0, max_value=1e6), min_size=1, max_size=8),
    capacity=st.floats(min_value=1.0, max_value=1e4),
)
def test_fluidpipe_conserves_work(sizes, capacity):
    """Total bytes delivered over the busy period equals total demand.

    With all flows starting at t=0 and max-min sharing, the makespan is
    bounded below by total/capacity and above by total/capacity plus the
    largest flow's solo time.
    """
    sim = Simulation()
    pipe = FluidPipe(sim, capacity=capacity)
    events = [pipe.transfer(size) for size in sizes]
    sim.run()
    assert all(event.triggered for event in events)
    finish = max(event.value.finished_at for event in events)
    total = sum(sizes)
    assert finish >= total / capacity - 1e-6
    assert finish <= total / capacity + max(sizes) / capacity + 1e-6


@settings(max_examples=30, deadline=None)
@given(sizes=st.lists(st.floats(min_value=1.0, max_value=1e5), min_size=2, max_size=8))
def test_fluidpipe_completion_order_matches_size(sizes):
    """Flows starting together finish in (non-strict) size order."""
    sim = Simulation()
    pipe = FluidPipe(sim, capacity=123.0)
    events = [pipe.transfer(size) for size in sizes]
    sim.run()
    finished = [event.value.finished_at for event in events]
    order = sorted(range(len(sizes)), key=lambda i: sizes[i])
    for earlier, later in zip(order, order[1:]):
        assert finished[earlier] <= finished[later] + 1e-6
