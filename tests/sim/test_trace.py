"""Tracer / StepSeries tests."""

import pytest

from repro.sim.trace import StepSeries, Tracer


class TestStepSeries:
    def test_at_and_before_first(self):
        series = StepSeries([(1.0, 3.0), (5.0, 7.0)])
        assert series.at(0.5) == 0.0
        assert series.at(1.0) == 3.0
        assert series.at(4.999) == 3.0
        assert series.at(5.0) == 7.0

    def test_duplicate_time_keeps_last(self):
        series = StepSeries([(1.0, 3.0), (1.0, 9.0)])
        assert series.at(1.0) == 9.0

    def test_integral(self):
        series = StepSeries([(0.0, 2.0), (10.0, 0.0)])
        assert series.integral(0.0, 10.0) == pytest.approx(20.0)
        assert series.integral(5.0, 15.0) == pytest.approx(10.0)

    def test_integral_with_internal_steps(self):
        series = StepSeries([(0.0, 1.0), (2.0, 3.0), (4.0, 0.0)])
        # 1*2 + 3*2 + 0*... over [0, 6]
        assert series.integral(0.0, 6.0) == pytest.approx(8.0)

    def test_max(self):
        assert StepSeries([(0.0, 1.0), (1.0, 4.0)]).max == 4.0
        assert StepSeries([]).max == 0.0


class TestTracer:
    def test_gauge_add_and_series(self):
        tracer = Tracer()
        tracer.gauge_add("workers", 0.0, +3)
        tracer.gauge_add("workers", 10.0, -1)
        tracer.gauge_add("workers", 20.0, -2)
        series = tracer.series("workers")
        assert series.at(5.0) == 3
        assert series.at(15.0) == 2
        assert series.at(25.0) == 0

    def test_gauge_negative_rejected(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            tracer.gauge_add("x", 0.0, -1)

    def test_spans_and_bounds(self):
        tracer = Tracer()
        tracer.span("task-0", "preprocess", 1.0, 4.0)
        tracer.span("task-1", "preprocess", 2.0, 6.0)
        tracer.span("xfer", "shipment", 6.0, 9.0)
        assert tracer.category_bounds("preprocess") == (1.0, 6.0)
        assert tracer.category_bounds("missing") is None
        assert tracer.makespan() == pytest.approx(8.0)
        assert len(tracer.spans_in("preprocess")) == 2

    def test_invalid_span(self):
        with pytest.raises(ValueError):
            Tracer().span("bad", "c", 5.0, 1.0)
