"""Seeded RNG stream tests."""

import numpy as np

from repro.sim import RngStreams


class TestRngStreams:
    def test_streams_reproducible_across_instances(self):
        a = RngStreams(7).get("network").normal(size=10)
        b = RngStreams(7).get("network").normal(size=10)
        np.testing.assert_array_equal(a, b)

    def test_streams_independent_by_name(self):
        streams = RngStreams(7)
        a = streams.get("network").normal(size=10)
        b = streams.get("scheduler").normal(size=10)
        assert not np.array_equal(a, b)

    def test_adding_stream_does_not_perturb_existing(self):
        """The substream discipline: a new consumer never changes another's
        sample sequence."""
        lonely = RngStreams(3)
        seq_lonely = lonely.get("download").normal(size=5)

        crowded = RngStreams(3)
        crowded.get("preprocess").normal(size=100)  # a new, earlier consumer
        seq_crowded = crowded.get("download").normal(size=5)
        np.testing.assert_array_equal(seq_lonely, seq_crowded)

    def test_same_stream_is_cached(self):
        streams = RngStreams(0)
        assert streams.get("x") is streams.get("x")

    def test_spawn_independent(self):
        parent = RngStreams(5)
        child = parent.spawn("worker-1")
        a = parent.get("t").normal(size=5)
        b = child.get("t").normal(size=5)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RngStreams(1).get("x").normal(size=5)
        b = RngStreams(2).get("x").normal(size=5)
        assert not np.array_equal(a, b)
