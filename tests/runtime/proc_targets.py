"""Worker factories for the ProcWorkerPool tests.

These live in a real importable module (not the test file's closures)
because :class:`repro.runtime.proc.WorkerSpec` addresses worker code by
``"module:callable"`` — exactly what production specs must do.
"""

from __future__ import annotations

import os
import time
from typing import Any

from repro.runtime.proc import WorkEnvelope


def build_echo(payload: Any):
    """Return (kind, key, payload, pid) so tests can see routing."""

    def handler(envelope: WorkEnvelope) -> Any:
        return (envelope.kind, envelope.key, envelope.payload, os.getpid())

    return handler


def build_sleeper(payload: Any):
    """Sleep ``payload`` seconds per envelope, return the pid."""
    delay = float(payload)

    def handler(envelope: WorkEnvelope) -> int:
        time.sleep(delay)
        return os.getpid()

    return handler


def build_flaky(payload: Any):
    """Raise on keys starting with 'bad', crash the process on 'die'."""

    def handler(envelope: WorkEnvelope) -> str:
        if envelope.key.startswith("die"):
            os._exit(86)
        if envelope.key.startswith("bad"):
            raise ValueError(f"cannot process {envelope.key}")
        return envelope.key.upper()

    return handler


class _CountingHandler:
    """Handler with a ``counters()`` method, to test delta shipping."""

    def __init__(self) -> None:
        self.executed = 0

    def counters(self):
        return {"executed": self.executed, "constant": 7}

    def __call__(self, envelope: WorkEnvelope) -> int:
        self.executed += 1
        return self.executed


def build_counting(payload: Any):
    return _CountingHandler()


def build_broken(payload: Any):
    """A factory that itself fails — exercises spawn-failure reporting."""
    raise RuntimeError("factory exploded")
