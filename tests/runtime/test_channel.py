"""Stream channels: bounded FIFO semantics, backpressure, and config.

The channel is the mechanism behind every ``stream`` edge — these tests
pin the producer/consumer contract (FIFO order, blocking put at
capacity, drain-after-close, StreamClosed on a late put), the lifetime
accounting that rolls into ``WorkflowReport``, and the
``runtime.stream`` config parsing with its per-edge overrides.
"""

import threading
import time

import pytest

from repro.runtime import (
    DEFAULT_CAPACITY,
    StreamChannel,
    StreamClosed,
    StreamConfig,
    StreamHub,
    StreamWriter,
    edge_name,
)


class TestStreamChannel:
    def test_fifo_order_and_drain_after_close(self):
        channel = StreamChannel("a->b", capacity=4)
        for item in (1, 2, 3):
            channel.put(item)
        channel.close()
        assert list(channel) == [1, 2, 3]  # buffered items survive close
        assert channel.get() == (False, None)

    def test_put_after_close_raises(self):
        channel = StreamChannel("a->b")
        channel.close()
        channel.close()  # idempotent
        with pytest.raises(StreamClosed, match="a->b"):
            channel.put("late")

    def test_get_timeout_returns_not_ok(self):
        channel = StreamChannel("a->b")
        started = time.monotonic()
        assert channel.get(timeout=0.05) == (False, None)
        assert time.monotonic() - started < 2.0
        assert not channel.closed

    def test_bounded_put_blocks_until_consumed(self):
        channel = StreamChannel("a->b", capacity=1)
        channel.put("first")
        landed = threading.Event()

        def produce():
            channel.put("second")  # must block: queue is at capacity
            landed.set()

        producer = threading.Thread(target=produce)
        producer.start()
        try:
            assert not landed.wait(0.2)  # backpressure held it
            assert channel.get() == (True, "first")
            assert landed.wait(2.0)  # the slot freed the producer
        finally:
            producer.join()
        assert channel.get() == (True, "second")
        assert channel.stats().producer_stall_seconds > 0.0

    def test_relax_unblocks_a_stalled_producer(self):
        channel = StreamChannel("a->b", capacity=1)
        channel.put("first")
        landed = threading.Event()
        producer = threading.Thread(
            target=lambda: (channel.put("second"), landed.set())
        )
        producer.start()
        try:
            assert not landed.wait(0.2)
            channel.relax()  # dead consumer: capacity bound dropped
            assert landed.wait(2.0)
        finally:
            producer.join()
        assert len(channel) == 2

    def test_unbounded_channel_never_blocks(self):
        channel = StreamChannel("a->b", capacity=1, bounded=False)
        for item in range(10):
            channel.put(item)
        assert len(channel) == 10
        stats = channel.stats()
        assert not stats.bounded and stats.producer_stall_seconds == 0.0

    def test_stats_account_the_lifetime(self):
        channel = StreamChannel("a->b", capacity=2)
        channel.put(1)
        channel.put(2)
        assert channel.get() == (True, 1)
        channel.relax()
        channel.close()
        stats = channel.stats()
        assert stats.edge == "a->b"
        assert stats.items == 2
        assert stats.max_depth == 2
        assert stats.closed
        # The report describes the configured bound, not the relaxed end
        # state every settled channel reaches.
        assert stats.bounded
        payload = stats.as_dict()
        assert "edge" not in payload
        assert payload["capacity"] == 2 and payload["items"] == 2

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            StreamChannel("a->b", capacity=0)


class TestStreamConfig:
    def test_defaults(self):
        config = StreamConfig()
        assert not config.enabled
        assert config.edge_enabled("a", "b")
        assert config.edge_capacity("a", "b") == DEFAULT_CAPACITY

    def test_per_edge_overrides(self):
        config = StreamConfig.from_mapping({
            "enabled": True,
            "capacity": 4,
            "edges": {
                "download->model": {"capacity": 2},
                "inference->shipment": {"enabled": False},
            },
        })
        assert config.enabled
        assert config.edge_capacity("download", "model") == 2
        assert config.edge_capacity("model", "preprocess") == 4
        assert not config.edge_enabled("inference", "shipment")
        assert config.edge_enabled("download", "model")

    def test_bad_edge_spelling_rejected(self):
        with pytest.raises(ValueError, match="src->dst"):
            StreamConfig.from_mapping({"edges": {"download": {}}})

    def test_unknown_edge_key_rejected(self):
        with pytest.raises(ValueError, match="unknown key"):
            StreamConfig.from_mapping(
                {"edges": {"a->b": {"bounded": True}}}
            )

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            StreamConfig.from_mapping({"edges": {"a->b": {"capacity": 0}}})
        with pytest.raises(ValueError, match="capacity"):
            StreamConfig(capacity=0)


class TestStreamHub:
    def build(self):
        hub = StreamHub()
        hub.connect("a", "b", StreamChannel("a->b"))
        hub.connect("a", "c", StreamChannel("a->c"))
        hub.connect("b", "c", StreamChannel("b->c"))
        return hub

    def test_writer_fans_out_to_all_outputs(self):
        hub = self.build()
        writer = hub.writer("a")
        assert isinstance(writer, StreamWriter) and len(writer) == 2
        writer.put("token")
        assert hub.channel("a", "b").get() == (True, "token")
        assert hub.channel("a", "c").get() == (True, "token")

    def test_reader_requires_disambiguation(self):
        hub = self.build()
        with pytest.raises(KeyError, match="2 incoming"):
            hub.reader("c")
        assert hub.reader("c", src="b").edge == "b->c"
        assert hub.reader("b").edge == "a->b"  # single edge: implicit

    def test_unknown_edge_raises(self):
        with pytest.raises(KeyError, match=edge_name("x", "y")):
            self.build().channel("x", "y")

    def test_close_outputs_and_relax_inputs(self):
        hub = self.build()
        hub.close_outputs("a")
        assert hub.channel("a", "b").closed
        assert hub.channel("a", "c").closed
        assert not hub.channel("b", "c").closed
        hub.relax_inputs("c")
        hub.channel("b", "c").put("x")  # relaxed, still open
        hub.close_all()
        assert hub.channel("b", "c").closed

    def test_stats_sorted_by_edge(self):
        hub = self.build()
        assert [s.edge for s in hub.stats()] == ["a->b", "a->c", "b->c"]
        assert len(hub) == 3
