"""Contract tests for the multi-process tier (repro.runtime.proc).

ProcChannel must honour the StreamChannel contract across a process
boundary; ProcWorkerPool must execute envelopes, survive worker
crashes by requeueing exactly the lost work, and scale elastically.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import signal
import time

import pytest

from repro.runtime.channel import StreamClosed
from repro.runtime.elastic import ElasticPolicy
from repro.runtime.proc import (
    EnvelopeResult,
    ProcChannel,
    ProcWorkerPool,
    WorkEnvelope,
    WorkerCrashed,
    WorkerSpec,
    WorkerTaskError,
)


def wait_until(predicate, timeout=10.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


# ---------------------------------------------------------------------------
# ElasticPolicy decision rule
# ---------------------------------------------------------------------------


class TestElasticPolicy:
    def test_fixed_pins_bounds(self):
        policy = ElasticPolicy.fixed(3)
        assert policy.min_workers == 3
        assert policy.max_workers == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            ElasticPolicy(min_workers=-1)
        with pytest.raises(ValueError):
            ElasticPolicy(max_workers=0)
        with pytest.raises(ValueError):
            ElasticPolicy(min_workers=3, max_workers=2)
        with pytest.raises(ValueError):
            ElasticPolicy(tasks_per_worker_target=0)

    def test_scale_out_when_backlog_exceeds_target(self):
        policy = ElasticPolicy(min_workers=1, max_workers=4, tasks_per_worker_target=2.0)
        assert policy.decide(queued=10, workers=1) == 1
        assert policy.decide(queued=2, workers=1) == 0  # 2 <= 2.0 * 1
        assert policy.decide(queued=10, workers=4) == 0  # at cap

    def test_scale_in_only_when_idle_and_above_floor(self):
        policy = ElasticPolicy(min_workers=1, max_workers=4)
        assert policy.decide(queued=0, workers=3) == -1
        assert policy.decide(queued=0, workers=1) == 0
        assert policy.decide(queued=1, workers=3) == 0

    def test_below_floor_always_grows(self):
        policy = ElasticPolicy(min_workers=2, max_workers=4)
        assert policy.decide(queued=0, workers=0) == 1
        assert policy.decide(queued=0, workers=1) == 1

    def test_from_mapping_defaults(self):
        policy = ElasticPolicy.from_mapping({"enabled": True})
        assert policy.enabled
        assert policy.max_workers == 4


# ---------------------------------------------------------------------------
# ProcChannel: StreamChannel semantics across processes
# ---------------------------------------------------------------------------


def _producer_main(channel, count):
    for i in range(count):
        channel.put(("item", i))
    channel.close()


def _consumer_main(channel, results):
    for item in channel:
        results.put(item)
    results.close()


class TestProcChannel:
    def test_fifo_roundtrip_same_process(self):
        ch = ProcChannel("t", capacity=4)
        for i in range(3):
            ch.put(i)
        ch.close()
        assert list(ch) == [0, 1, 2]

    def test_get_timeout_returns_false(self):
        ch = ProcChannel("t")
        ok, item = ch.get(timeout=0.05)
        assert not ok and item is None

    def test_put_after_close_raises(self):
        ch = ProcChannel("t")
        ch.close()
        with pytest.raises(StreamClosed):
            ch.put(1)

    def test_close_idempotent(self):
        ch = ProcChannel("t")
        ch.close()
        ch.close()
        assert ch.closed

    def test_bounded_put_blocks_until_consumed(self):
        ch = ProcChannel("t", capacity=1)
        ch.put("a")
        ctx = multiprocessing.get_context("fork")
        proc = ctx.Process(target=_producer_main, args=(ch, 1))
        proc.start()
        time.sleep(0.15)
        # producer is stalled on the full channel
        assert proc.is_alive()
        ok, item = ch.get(timeout=2.0)
        assert ok and item == "a"
        proc.join(timeout=5.0)
        assert proc.exitcode == 0
        ok, item = ch.get(timeout=2.0)
        assert ok and item == ("item", 0)
        stats = ch.stats()
        assert stats.items == 2
        assert stats.producer_stall_seconds > 0.0

    def test_relax_unblocks_producer(self):
        ch = ProcChannel("t", capacity=1)
        ch.put("a")
        ctx = multiprocessing.get_context("fork")
        proc = ctx.Process(target=_producer_main, args=(ch, 3))
        proc.start()
        time.sleep(0.1)
        assert proc.is_alive()
        ch.relax()
        proc.join(timeout=5.0)
        assert proc.exitcode == 0
        assert len(ch) == 4

    def test_cross_process_pipeline(self):
        ctx = multiprocessing.get_context("fork")
        upstream = ProcChannel("up", capacity=2, ctx=ctx)
        downstream = ProcChannel("down", bounded=False, ctx=ctx)
        consumer = ctx.Process(target=_consumer_main, args=(upstream, downstream))
        consumer.start()
        _producer_main(upstream, 20)
        consumer.join(timeout=10.0)
        assert consumer.exitcode == 0
        assert list(downstream) == [("item", i) for i in range(20)]
        stats = upstream.stats()
        assert stats.items == 20
        assert stats.capacity == 2
        assert stats.bounded
        assert stats.closed

    def test_stats_shape_matches_stream_channel(self):
        ch = ProcChannel("edge:x", capacity=5)
        stats = ch.stats()
        assert stats.edge == "edge:x"
        assert stats.items == 0
        assert stats.max_depth == 0
        assert not stats.closed


# ---------------------------------------------------------------------------
# Envelope pickling
# ---------------------------------------------------------------------------


class TestEnvelopePickling:
    def test_envelope_roundtrip(self):
        env = WorkEnvelope("download", "g1.hdf", payload={"a": [1, 2]}, ticket=7)
        assert pickle.loads(pickle.dumps(env)) == env

    def test_result_roundtrip(self):
        res = EnvelopeResult(
            ticket=3, kind="inference", key="f.nc", ok=False,
            error="boom", seconds=0.5, worker_id=1, pid=123,
            counters={"resumed_items": 2.0},
        )
        assert pickle.loads(pickle.dumps(res)) == res

    def test_spec_roundtrip(self):
        spec = WorkerSpec(target="tests.runtime.proc_targets:build_echo", payload={"x": 1})
        assert pickle.loads(pickle.dumps(spec)) == spec


# ---------------------------------------------------------------------------
# ProcWorkerPool
# ---------------------------------------------------------------------------


ECHO = WorkerSpec(target="tests.runtime.proc_targets:build_echo")
FLAKY = WorkerSpec(target="tests.runtime.proc_targets:build_flaky")
COUNTING = WorkerSpec(target="tests.runtime.proc_targets:build_counting")


class TestProcWorkerPool:
    def test_executes_and_returns_values(self):
        with ProcWorkerPool(ECHO, ElasticPolicy.fixed(2), name="t") as pool:
            futures = [
                pool.submit(WorkEnvelope("stage", f"k{i}", payload=i)) for i in range(8)
            ]
            values = [f.result(timeout=30.0) for f in futures]
        for i, (kind, key, payload, pid) in enumerate(values):
            assert kind == "stage"
            assert key == f"k{i}"
            assert payload == i
            assert pid != os.getpid()

    def test_work_spreads_across_workers(self):
        spec = WorkerSpec(target="tests.runtime.proc_targets:build_sleeper", payload=0.05)
        with ProcWorkerPool(spec, ElasticPolicy.fixed(3), name="t") as pool:
            futures = [pool.submit(WorkEnvelope("s", str(i))) for i in range(12)]
            pids = {f.result(timeout=30.0) for f in futures}
        assert len(pids) == 3

    def test_gather_yields_all_results(self):
        with ProcWorkerPool(ECHO, ElasticPolicy.fixed(2), name="t") as pool:
            futures = [pool.submit(WorkEnvelope("s", str(i), payload=i)) for i in range(6)]
            payloads = sorted(r[2] for r in pool.gather(futures))
        assert payloads == list(range(6))

    def test_handler_error_becomes_task_error_not_crash(self):
        with ProcWorkerPool(FLAKY, ElasticPolicy.fixed(1), name="t") as pool:
            bad = pool.submit(WorkEnvelope("s", "bad-one"))
            good = pool.submit(WorkEnvelope("s", "fine"))
            with pytest.raises(WorkerTaskError, match="cannot process bad-one"):
                bad.result(timeout=30.0)
            assert good.result(timeout=30.0) == "FINE"
            stats = pool.stats()
        assert stats.failed == 1
        assert stats.completed == 1
        assert stats.requeues == 0

    def test_worker_crash_requeues_then_fails_when_exhausted(self):
        with ProcWorkerPool(FLAKY, ElasticPolicy.fixed(1), name="t", max_requeues=1) as pool:
            doomed = pool.submit(WorkEnvelope("s", "die-hard"))
            with pytest.raises(WorkerCrashed, match="die-hard"):
                doomed.result(timeout=60.0)
            stats = pool.stats()
        assert stats.requeues == 1
        assert stats.failed == 1
        assert stats.respawns >= 1

    def test_sigkill_mid_stage_requeues_onto_fresh_worker(self):
        spec = WorkerSpec(target="tests.runtime.proc_targets:build_sleeper", payload=0.3)
        pool = ProcWorkerPool(spec, ElasticPolicy.fixed(1), name="t", max_requeues=1).start()
        try:
            future = pool.submit(WorkEnvelope("s", "victim"))
            assert wait_until(lambda: any(w.pid for w in pool.stats().workers))
            victim_pid = next(w.pid for w in pool.stats().workers if w.pid)
            # let the worker pick the envelope up, then kill it mid-unit
            time.sleep(0.1)
            os.kill(victim_pid, signal.SIGKILL)
            survivor_pid = future.result(timeout=60.0)
            assert survivor_pid != victim_pid
            stats = pool.stats()
            assert stats.requeues == 1
            assert stats.completed == 1
            assert stats.respawns >= 1
        finally:
            pool.close()

    def test_counter_deltas_fold_into_pool_stats(self):
        with ProcWorkerPool(COUNTING, ElasticPolicy.fixed(2), name="t") as pool:
            futures = [pool.submit(WorkEnvelope("s", str(i))) for i in range(6)]
            for f in futures:
                f.result(timeout=30.0)
            stats = pool.stats()
        # "executed" grows by 1 per envelope; "constant" never changes so
        # its delta is never shipped.
        assert stats.counters.get("executed") == 6.0
        assert "constant" not in stats.counters
        assert stats.units_executed == 6
        assert stats.busy_seconds >= 0.0

    def test_elastic_scale_out_and_in(self):
        spec = WorkerSpec(target="tests.runtime.proc_targets:build_sleeper", payload=0.1)
        policy = ElasticPolicy(
            enabled=True,
            min_workers=1,
            max_workers=3,
            tasks_per_worker_target=1.0,
            idle_retire_seconds=0.05,
        )
        pool = ProcWorkerPool(spec, policy, name="t").start()
        try:
            futures = [pool.submit(WorkEnvelope("s", str(i))) for i in range(12)]
            for f in futures:
                f.result(timeout=60.0)
            assert wait_until(lambda: pool.stats().scale_in_events > 0, timeout=20.0)
            stats = pool.stats()
            assert stats.scale_out_events > 0
            assert stats.workers_launched > 1
        finally:
            pool.close()
        # the floor worker survives scale-in
        assert pool.stats().completed == 12

    def test_close_idempotent(self):
        pool = ProcWorkerPool(ECHO, ElasticPolicy.fixed(1), name="t").start()
        pool.submit(WorkEnvelope("s", "a")).result(timeout=30.0)
        pool.close()
        pool.close()
        pool.terminate()

    def test_submit_after_close_raises(self):
        pool = ProcWorkerPool(ECHO, ElasticPolicy.fixed(1), name="t").start()
        pool.close()
        with pytest.raises(RuntimeError):
            pool.submit(WorkEnvelope("s", "late"))

    def test_spawn_failure_fails_pending_futures(self):
        spec = WorkerSpec(target="tests.runtime.proc_targets:build_broken")
        pool = ProcWorkerPool(spec, ElasticPolicy.fixed(1), name="t").start()
        try:
            future = pool.submit(WorkEnvelope("s", "never"))
            with pytest.raises(WorkerCrashed, match="factory exploded"):
                future.result(timeout=30.0)
        finally:
            pool.terminate()

    def test_terminate_fails_outstanding(self):
        spec = WorkerSpec(target="tests.runtime.proc_targets:build_sleeper", payload=5.0)
        pool = ProcWorkerPool(spec, ElasticPolicy.fixed(1), name="t").start()
        future = pool.submit(WorkEnvelope("s", "slow"))
        time.sleep(0.2)
        pool.terminate()
        with pytest.raises(WorkerCrashed):
            future.result(timeout=10.0)

    def test_stats_always_present_zeros(self):
        pool = ProcWorkerPool(ECHO, ElasticPolicy.fixed(1), name="t")
        stats = pool.stats()
        assert stats.submitted == 0
        assert stats.requeues == 0
        assert stats.scale_out_events == 0
        assert stats.scale_in_events == 0
        assert stats.units_executed == 0
