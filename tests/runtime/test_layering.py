"""The layering contract, enforced two ways.

``repro.runtime`` is the layer under the stages: the flows engine and
zambeze orchestrator execute its plans without the local stage
implementations, so an import edge into ``repro.core`` would invert the
architecture.  CI runs ``tools/check_layering.py``; this test runs the
same checker in-process (so a violation fails the suite before CI) and
pins the checker's own detection logic against synthetic trees.
"""

import ast
import os
import subprocess
import sys

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, os.pardir)
)
CHECKER = os.path.join(REPO_ROOT, "tools", "check_layering.py")

sys.path.insert(0, os.path.join(REPO_ROOT, "tools"))
import check_layering  # noqa: E402


class TestRuntimeLayer:
    def test_runtime_package_never_imports_core(self):
        package = os.path.join(REPO_ROOT, "src", "repro", "runtime")
        assert check_layering.violations(package, ("repro.core",)) == []

    def test_core_package_never_imports_instruments_implementations(self):
        """The stages reach MODIS/ABI only through the registry."""
        package = os.path.join(REPO_ROOT, "src", "repro", "core")
        assert check_layering.violations(
            package, ("repro.modis", "repro.abi")
        ) == []

    def test_instruments_package_never_imports_its_consumers(self):
        package = os.path.join(REPO_ROOT, "src", "repro", "instruments")
        assert check_layering.violations(
            package, ("repro.core", "repro.server")
        ) == []

    def test_instrument_rules_are_in_the_checker(self):
        """CI enforces the same edges this suite checks in-process."""
        rules = {}
        for package, forbidden in check_layering.RULES:
            rules.setdefault(package, set()).update(forbidden)
        assert {"repro.modis", "repro.abi"} <= rules["src/repro/core"]
        assert "repro.core" in rules["src/repro/instruments"]

    def test_checker_script_passes_on_the_repo(self):
        proc = subprocess.run(
            [sys.executable, CHECKER], cwd=REPO_ROOT,
            capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stderr
        assert "layering ok" in proc.stdout


class TestCheckerLogic:
    def find(self, source, forbidden=("repro.core",)):
        tree = ast.parse(source)
        return [
            (module, layer)
            for module, _line in check_layering.imported_modules(tree)
            for layer in forbidden
            if module == layer or module.startswith(layer + ".")
        ]

    def test_detects_plain_import(self):
        assert self.find("import repro.core") == [("repro.core", "repro.core")]

    def test_detects_from_import_of_submodule(self):
        found = self.find("from repro.core.download import DownloadStage")
        assert found == [("repro.core.download", "repro.core")]

    def test_ignores_lookalike_prefixes_and_relative_imports(self):
        assert self.find("import repro.corex") == []
        assert self.find("from . import unit") == []
        assert self.find("from repro.net.retry import retry_call") == []

    def test_violation_in_a_synthetic_package(self, tmp_path):
        bad = tmp_path / "pkg"
        bad.mkdir()
        (bad / "mod.py").write_text("from repro.core import EOMLWorkflow\n")
        found = check_layering.violations(str(bad), ("repro.core",))
        assert len(found) == 1
        assert "mod.py:1" in found[0]
