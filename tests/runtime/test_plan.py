"""Pipeline plans: validation, barriers, gates, overlaps, and streams.

The plan is the workflow's structure as data — these tests pin that the
``after`` edges really are barriers (violations raise instead of
silently reordering), that ``when`` gates skip without running, that an
``overlaps`` edge opens the owner's scope *before* the overlapped node
works and closes it after the owner's own body — the Fig. 6
monitor/inference window — and that ``stream`` edges carry per-item
tokens between concurrently running nodes under backpressure (the
:class:`StreamingPlanRunner`) while degrading to a buffered hand-off
under every sequential driver.
"""

import threading
from contextlib import contextmanager

import pytest

from repro.runtime import (
    STREAMS_KEY,
    PipelinePlan,
    PlanError,
    PlanExecution,
    PlanRunner,
    StageNode,
    StreamConfig,
    StreamingPlanRunner,
)


def node(name, value=None, **kwargs):
    return StageNode(name=name, run=lambda state: value or name, **kwargs)


class TestPlanValidation:
    def test_duplicate_names_rejected(self):
        with pytest.raises(PlanError, match="duplicate"):
            PipelinePlan([node("a"), node("a")])

    def test_unknown_dependency_rejected(self):
        with pytest.raises(PlanError, match="unknown node"):
            PipelinePlan([node("a", after=("ghost",))])

    def test_self_reference_rejected(self):
        with pytest.raises(PlanError, match="references itself"):
            PipelinePlan([node("a", overlaps=("a",))])

    def test_forward_reference_rejected(self):
        # Listed order must already satisfy every edge.
        with pytest.raises(PlanError, match="must come after"):
            PipelinePlan([node("a", after=("b",)), node("b")])

    def test_names_nodes_and_edges(self):
        plan = PipelinePlan([
            node("a"),
            node("b", after=("a",)),
            node("c", after=("a", "b"), overlaps=("b",)),
        ])
        assert plan.names == ["a", "b", "c"]
        assert plan.node("b").after == ("a",)
        with pytest.raises(PlanError, match="no node"):
            plan.node("ghost")
        assert set(plan.edges()) == {
            ("a", "b", "after"),
            ("a", "c", "after"),
            ("b", "c", "after"),
            ("b", "c", "overlaps"),
        }
        assert [owner.name for owner in plan.owners_of("b")] == ["c"]

    def test_stream_edges_validated_like_after(self):
        with pytest.raises(PlanError, match="unknown node"):
            PipelinePlan([node("a", stream=("ghost",))])
        with pytest.raises(PlanError, match="references itself"):
            PipelinePlan([node("a", stream=("a",))])
        with pytest.raises(PlanError, match="must come after"):
            PipelinePlan([node("a", stream=("b",)), node("b")])
        plan = PipelinePlan([node("a"), node("b", stream=("a",))])
        assert ("a", "b", "stream") in plan.edges()
        assert plan.stream_edges() == [("a", "b")]

    def test_reserved_state_key_rejected_as_node_name(self):
        with pytest.raises(PlanError, match="reserved"):
            PipelinePlan([node(STREAMS_KEY)])


class TestPlanExecution:
    def test_barrier_violation_raises(self):
        plan = PipelinePlan([node("a"), node("b", after=("a",))])
        execution = PlanExecution(plan)
        with pytest.raises(PlanError, match="before its barrier"):
            execution.run_node("b")

    def test_node_cannot_run_twice(self):
        plan = PipelinePlan([node("a")])
        execution = PlanExecution(plan)
        execution.run_node("a")
        with pytest.raises(PlanError, match="already ran"):
            execution.run_node("a")

    def test_values_land_in_state(self):
        state = {"seeded": True}
        plan = PipelinePlan([node("a", value=41), node("b", value=42)])
        execution = PlanExecution(plan, state=state)
        execution.run_node("a")
        execution.run_node("b")
        assert state == {"seeded": True, "a": 41, "b": 42}

    def test_when_gate_skips_but_satisfies_barriers(self):
        ran = []
        plan = PipelinePlan([
            StageNode("a", run=lambda s: ran.append("a")),
            StageNode("b", run=lambda s: ran.append("b"),
                      after=("a",), when=lambda s: False),
            StageNode("c", run=lambda s: ran.append("c") or "done",
                      after=("b",)),
        ])
        begun = []
        execution = PlanExecution(plan, on_begin=begun.append)
        for name in plan.names:
            execution.run_node(name)
        assert ran == ["a", "c"]
        assert execution.state["b"] is None
        assert execution.skipped == {"b"}
        assert begun == ["a", "c"]           # a skipped node never begins

    def test_driver_order_free_when_barriers_allow(self):
        # The zambeze/flows schedulers may pick any legal order.
        plan = PipelinePlan([node("a"), node("b"), node("c", after=("a", "b"))])
        execution = PlanExecution(plan)
        execution.run_node("b")
        execution.run_node("a")
        assert execution.run_node("c") == "c"


class TestOverlapWindows:
    def make_plan(self, events, inference_when=None):
        @contextmanager
        def scope(state):
            events.append("scope+")
            yield
            events.append("scope-")

        return PipelinePlan([
            StageNode("preprocess", run=lambda s: events.append("preprocess")),
            StageNode("inference", run=lambda s: events.append("drain"),
                      after=("preprocess",), overlaps=("preprocess",),
                      scope=scope, when=inference_when),
        ])

    def test_owner_scope_brackets_the_overlapped_node(self):
        events = []
        PlanRunner().run(self.make_plan(events))
        # The worker/crawler window opens before preprocess produces its
        # first tile file and closes only after the drain.
        assert events == ["scope+", "preprocess", "drain", "scope-"]

    def test_gated_owner_never_opens_its_scope(self):
        events = []
        PlanRunner().run(self.make_plan(events, inference_when=lambda s: False))
        assert events == ["preprocess"]

    def test_owner_with_skipped_partner_still_gets_scope(self):
        events = []

        @contextmanager
        def scope(state):
            events.append("scope+")
            yield
            events.append("scope-")

        plan = PipelinePlan([
            StageNode("preprocess", run=lambda s: events.append("preprocess"),
                      when=lambda s: False),
            StageNode("inference", run=lambda s: events.append("drain"),
                      overlaps=("preprocess",), scope=scope),
        ])
        PlanRunner().run(plan)
        assert events == ["scope+", "drain", "scope-"]

    def test_close_tears_down_open_windows(self):
        events = []
        plan = self.make_plan(events)
        execution = PlanExecution(plan)
        execution.run_node("preprocess")      # opens inference's window
        assert events == ["scope+", "preprocess"]
        execution.close()                     # aborted run: window torn down
        assert events == ["scope+", "preprocess", "scope-"]
        execution.close()                     # idempotent
        assert events == ["scope+", "preprocess", "scope-"]


class TestPlanRunner:
    def test_hooks_mirror_the_timeline_vocabulary(self):
        calls = []
        plan = PipelinePlan([
            StageNode("download", run=lambda s: 3, workers=2,
                      counts=lambda v: {"files": v}),
            StageNode("shipment", run=lambda s: "r", after=("download",)),
        ])
        runner = PlanRunner(
            on_begin=lambda name: calls.append(("begin", name)),
            on_end=lambda name, **counts: calls.append(("end", name, counts)),
            on_workers=lambda name, delta: calls.append(("workers", name, delta)),
        )
        state = runner.run(plan)
        assert state["download"] == 3
        assert calls == [
            ("begin", "download"),
            ("workers", "download", 2),
            ("workers", "download", -2),
            ("end", "download", {"files": 3}),
            ("begin", "shipment"),
            ("end", "shipment", {}),
        ]

    def test_failing_node_still_closes_windows(self):
        events = []

        @contextmanager
        def scope(state):
            events.append("scope+")
            yield
            events.append("scope-")

        plan = PipelinePlan([
            StageNode("a", run=lambda s: (_ for _ in ()).throw(
                RuntimeError("stage blew up"))),
            StageNode("b", run=lambda s: "unreached", overlaps=("a",),
                      scope=scope),
        ])
        with pytest.raises(RuntimeError, match="stage blew up"):
            PlanRunner().run(plan)
        assert events == ["scope+", "scope-"]


def stream_plan(produced, consumed, count=5):
    """producer -> consumer over one stream edge."""

    def produce(state):
        writer = state[STREAMS_KEY].writer("producer")
        for item in range(count):
            writer.put(item)
            produced.append(item)
        return count

    def consume(state):
        for item in state[STREAMS_KEY].reader("consumer"):
            consumed.append(item)
        return len(consumed)

    return PipelinePlan([
        StageNode("producer", run=produce),
        StageNode("consumer", run=consume, stream=("producer",)),
    ])


class TestSequentialStreamExecution:
    def test_plan_runner_buffers_the_whole_stream(self):
        # The listed-order driver runs the producer to completion first;
        # the relaxed channel buffers everything, the consumer drains it
        # afterwards — same bodies, no deadlock, no capacity limit.
        produced, consumed = [], []
        state = PlanRunner().run(stream_plan(produced, consumed, count=50))
        assert consumed == list(range(50))
        assert state["producer"] == 50 and state["consumer"] == 50
        assert STREAMS_KEY in state

    def test_streamless_plan_keeps_state_clean(self):
        # Engines assert exact state contents; no hub key appears unless
        # the plan actually carries stream edges.
        state = PlanRunner().run(PipelinePlan([node("a")]))
        assert STREAMS_KEY not in state

    def test_out_of_order_driver_still_flows(self):
        # flows/zambeze schedulers call run_node themselves; the stream
        # edge adds a dependency in those adapters, but the execution
        # itself only requires the tokens to be buffered.
        produced, consumed = [], []
        execution = PlanExecution(stream_plan(produced, consumed))
        execution.run_node("producer")
        execution.run_node("consumer")
        assert consumed == list(range(5))


class TestStreamingPlanRunner:
    def test_tokens_flow_concurrently_in_order(self):
        produced, consumed = [], []
        state = StreamingPlanRunner().run(stream_plan(produced, consumed))
        assert consumed == list(range(5))
        assert state["consumer"] == 5

    def test_backpressure_bounds_the_producer_lead(self):
        lead = []
        gate = threading.Event()

        def produce(state):
            writer = state[STREAMS_KEY].writer("producer")
            for item in range(10):
                writer.put(item)
            return 10

        def consume(state):
            reader = state[STREAMS_KEY].reader("consumer")
            gate.wait(5.0)
            total = 0
            for _ in reader:
                lead.append(len(reader))
                total += 1
            return total

        plan = PipelinePlan([
            StageNode("producer", run=produce),
            StageNode("consumer", run=consume, stream=("producer",)),
        ])
        runner = StreamingPlanRunner(stream=StreamConfig(capacity=2))
        # Let the producer hit the bound before the consumer starts.
        timer = threading.Timer(0.3, gate.set)
        timer.start()
        try:
            state = runner.run(plan)
        finally:
            timer.cancel()
            gate.set()
        assert state["consumer"] == 10
        stats = state[STREAMS_KEY].channel("producer", "consumer").stats()
        assert stats.max_depth <= 2            # never more than capacity queued
        assert stats.producer_stall_seconds > 0.0

    def test_after_edges_are_still_barriers(self):
        order = []
        plan = PipelinePlan([
            StageNode("a", run=lambda s: order.append("a")),
            StageNode("b", run=lambda s: order.append("b"), after=("a",)),
            StageNode("c", run=lambda s: order.append("c"), after=("b",)),
        ])
        StreamingPlanRunner().run(plan)
        assert order == ["a", "b", "c"]

    def test_skipped_consumer_relaxes_the_producer(self):
        def produce(state):
            writer = state[STREAMS_KEY].writer("producer")
            for item in range(20):  # far beyond capacity 1
                writer.put(item)
            return 20

        plan = PipelinePlan([
            StageNode("producer", run=produce),
            StageNode("consumer", run=lambda s: "unreached",
                      stream=("producer",), when=lambda s: False),
        ])
        runner = StreamingPlanRunner(stream=StreamConfig(capacity=1))
        state = runner.run(plan)  # must not deadlock
        assert state["producer"] == 20
        assert state["consumer"] is None

    def test_dead_consumer_does_not_deadlock_the_producer(self):
        def produce(state):
            writer = state[STREAMS_KEY].writer("producer")
            for item in range(20):
                writer.put(item)
            return 20

        def consume(state):
            raise RuntimeError("consumer died")

        plan = PipelinePlan([
            StageNode("producer", run=produce),
            StageNode("consumer", run=consume, stream=("producer",)),
        ])
        runner = StreamingPlanRunner(stream=StreamConfig(capacity=1))
        with pytest.raises(RuntimeError, match="consumer died"):
            runner.run(plan)

    def test_failed_dependency_aborts_dependents_and_closes_channels(self):
        ran = []

        def consume(state):
            ran.append("consumer")
            return list(state[STREAMS_KEY].reader("consumer"))

        plan = PipelinePlan([
            StageNode("bad", run=lambda s: (_ for _ in ()).throw(
                RuntimeError("boom"))),
            StageNode("producer", run=lambda s: s[STREAMS_KEY]
                      .writer("producer").close() or 1, after=("bad",)),
            StageNode("consumer", run=consume, stream=("producer",)),
        ])
        with pytest.raises(RuntimeError, match="boom"):
            StreamingPlanRunner().run(plan)
        # The consumer saw end-of-stream from the aborted producer and
        # finished with what arrived (nothing) instead of hanging.
        assert ran == ["consumer"]

    def test_disabled_edge_falls_back_to_a_barrier(self):
        order = []

        def produce(state):
            writer = state[STREAMS_KEY].writer("producer")
            for item in range(30):  # far beyond any bounded capacity
                writer.put(item)
            order.append("producer-done")
            return 30

        def consume(state):
            order.append("consumer-start")
            return len(list(state[STREAMS_KEY].reader("consumer")))

        plan = PipelinePlan([
            StageNode("producer", run=produce),
            StageNode("consumer", run=consume, stream=("producer",)),
        ])
        config = StreamConfig(
            capacity=1,
            edges={"producer->consumer": {"enabled": False}},
        )
        state = StreamingPlanRunner(stream=config).run(plan)
        # Barrier semantics: the consumer waited for the producer, and
        # the channel stayed unbounded so the producer never stalled.
        assert order == ["producer-done", "consumer-start"]
        assert state["consumer"] == 30

    def test_hooks_are_serialized_across_node_threads(self):
        active = []
        peak = []
        lock = threading.Lock()

        def on_begin(name):
            with lock:
                active.append(name)
                peak.append(len(active))
            # hold the hook open long enough for a race to show
            threading.Event().wait(0.01)
            with lock:
                active.remove(name)

        plan = PipelinePlan([node("a"), node("b"), node("c")])
        StreamingPlanRunner(on_begin=on_begin).run(plan)
        assert max(peak) == 1  # the shared hook lock admits one at a time
