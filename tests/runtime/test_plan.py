"""Pipeline plans: validation, barriers, gates, and overlap windows.

The plan is the workflow's structure as data — these tests pin that the
``after`` edges really are barriers (violations raise instead of
silently reordering), that ``when`` gates skip without running, and that
an ``overlaps`` edge opens the owner's scope *before* the overlapped
node works and closes it after the owner's own body — the Fig. 6
monitor/inference window.
"""

from contextlib import contextmanager

import pytest

from repro.runtime import (
    PipelinePlan,
    PlanError,
    PlanExecution,
    PlanRunner,
    StageNode,
)


def node(name, value=None, **kwargs):
    return StageNode(name=name, run=lambda state: value or name, **kwargs)


class TestPlanValidation:
    def test_duplicate_names_rejected(self):
        with pytest.raises(PlanError, match="duplicate"):
            PipelinePlan([node("a"), node("a")])

    def test_unknown_dependency_rejected(self):
        with pytest.raises(PlanError, match="unknown node"):
            PipelinePlan([node("a", after=("ghost",))])

    def test_self_reference_rejected(self):
        with pytest.raises(PlanError, match="references itself"):
            PipelinePlan([node("a", overlaps=("a",))])

    def test_forward_reference_rejected(self):
        # Listed order must already satisfy every edge.
        with pytest.raises(PlanError, match="must come after"):
            PipelinePlan([node("a", after=("b",)), node("b")])

    def test_names_nodes_and_edges(self):
        plan = PipelinePlan([
            node("a"),
            node("b", after=("a",)),
            node("c", after=("a", "b"), overlaps=("b",)),
        ])
        assert plan.names == ["a", "b", "c"]
        assert plan.node("b").after == ("a",)
        with pytest.raises(PlanError, match="no node"):
            plan.node("ghost")
        assert set(plan.edges()) == {
            ("a", "b", "after"),
            ("a", "c", "after"),
            ("b", "c", "after"),
            ("b", "c", "overlaps"),
        }
        assert [owner.name for owner in plan.owners_of("b")] == ["c"]


class TestPlanExecution:
    def test_barrier_violation_raises(self):
        plan = PipelinePlan([node("a"), node("b", after=("a",))])
        execution = PlanExecution(plan)
        with pytest.raises(PlanError, match="before its barrier"):
            execution.run_node("b")

    def test_node_cannot_run_twice(self):
        plan = PipelinePlan([node("a")])
        execution = PlanExecution(plan)
        execution.run_node("a")
        with pytest.raises(PlanError, match="already ran"):
            execution.run_node("a")

    def test_values_land_in_state(self):
        state = {"seeded": True}
        plan = PipelinePlan([node("a", value=41), node("b", value=42)])
        execution = PlanExecution(plan, state=state)
        execution.run_node("a")
        execution.run_node("b")
        assert state == {"seeded": True, "a": 41, "b": 42}

    def test_when_gate_skips_but_satisfies_barriers(self):
        ran = []
        plan = PipelinePlan([
            StageNode("a", run=lambda s: ran.append("a")),
            StageNode("b", run=lambda s: ran.append("b"),
                      after=("a",), when=lambda s: False),
            StageNode("c", run=lambda s: ran.append("c") or "done",
                      after=("b",)),
        ])
        begun = []
        execution = PlanExecution(plan, on_begin=begun.append)
        for name in plan.names:
            execution.run_node(name)
        assert ran == ["a", "c"]
        assert execution.state["b"] is None
        assert execution.skipped == {"b"}
        assert begun == ["a", "c"]           # a skipped node never begins

    def test_driver_order_free_when_barriers_allow(self):
        # The zambeze/flows schedulers may pick any legal order.
        plan = PipelinePlan([node("a"), node("b"), node("c", after=("a", "b"))])
        execution = PlanExecution(plan)
        execution.run_node("b")
        execution.run_node("a")
        assert execution.run_node("c") == "c"


class TestOverlapWindows:
    def make_plan(self, events, inference_when=None):
        @contextmanager
        def scope(state):
            events.append("scope+")
            yield
            events.append("scope-")

        return PipelinePlan([
            StageNode("preprocess", run=lambda s: events.append("preprocess")),
            StageNode("inference", run=lambda s: events.append("drain"),
                      after=("preprocess",), overlaps=("preprocess",),
                      scope=scope, when=inference_when),
        ])

    def test_owner_scope_brackets_the_overlapped_node(self):
        events = []
        PlanRunner().run(self.make_plan(events))
        # The worker/crawler window opens before preprocess produces its
        # first tile file and closes only after the drain.
        assert events == ["scope+", "preprocess", "drain", "scope-"]

    def test_gated_owner_never_opens_its_scope(self):
        events = []
        PlanRunner().run(self.make_plan(events, inference_when=lambda s: False))
        assert events == ["preprocess"]

    def test_owner_with_skipped_partner_still_gets_scope(self):
        events = []

        @contextmanager
        def scope(state):
            events.append("scope+")
            yield
            events.append("scope-")

        plan = PipelinePlan([
            StageNode("preprocess", run=lambda s: events.append("preprocess"),
                      when=lambda s: False),
            StageNode("inference", run=lambda s: events.append("drain"),
                      overlaps=("preprocess",), scope=scope),
        ])
        PlanRunner().run(plan)
        assert events == ["scope+", "drain", "scope-"]

    def test_close_tears_down_open_windows(self):
        events = []
        plan = self.make_plan(events)
        execution = PlanExecution(plan)
        execution.run_node("preprocess")      # opens inference's window
        assert events == ["scope+", "preprocess"]
        execution.close()                     # aborted run: window torn down
        assert events == ["scope+", "preprocess", "scope-"]
        execution.close()                     # idempotent
        assert events == ["scope+", "preprocess", "scope-"]


class TestPlanRunner:
    def test_hooks_mirror_the_timeline_vocabulary(self):
        calls = []
        plan = PipelinePlan([
            StageNode("download", run=lambda s: 3, workers=2,
                      counts=lambda v: {"files": v}),
            StageNode("shipment", run=lambda s: "r", after=("download",)),
        ])
        runner = PlanRunner(
            on_begin=lambda name: calls.append(("begin", name)),
            on_end=lambda name, **counts: calls.append(("end", name, counts)),
            on_workers=lambda name, delta: calls.append(("workers", name, delta)),
        )
        state = runner.run(plan)
        assert state["download"] == 3
        assert calls == [
            ("begin", "download"),
            ("workers", "download", 2),
            ("workers", "download", -2),
            ("end", "download", {"files": 3}),
            ("begin", "shipment"),
            ("end", "shipment", {}),
        ]

    def test_failing_node_still_closes_windows(self):
        events = []

        @contextmanager
        def scope(state):
            events.append("scope+")
            yield
            events.append("scope-")

        plan = PipelinePlan([
            StageNode("a", run=lambda s: (_ for _ in ()).throw(
                RuntimeError("stage blew up"))),
            StageNode("b", run=lambda s: "unreached", overlaps=("a",),
                      scope=scope),
        ])
        with pytest.raises(RuntimeError, match="stage blew up"):
            PlanRunner().run(plan)
        assert events == ["scope+", "scope-"]
