"""The unified stage runtime: executor + middleware contracts.

Every cross-cutting stage behaviour now lives in exactly one middleware,
so these tests pin the contracts the five stages rely on: outcome
vocabulary, retry/backoff delegation, quarantine-and-continue,
journal resume/intent/complete phases, injected worker stalls, precheck
short-circuits, and per-unit metrics — plus the canonical stack order
(Metrics > Quarantine > Journal > Chaos > Precheck > Retry > body).
"""

import pytest

from repro.chaos import FaultInjector, FaultPlan, FaultSpec
from repro.journal import WorkflowJournal
from repro.net.retry import BackoffPolicy, CircuitBreaker
from repro.runtime import (
    DONE,
    FAILED,
    QUARANTINED,
    RESUMED,
    RETRIED,
    SKIPPED,
    SUCCESS_OUTCOMES,
    CacheMiddleware,
    ChaosMiddleware,
    FailurePolicy,
    JournalMiddleware,
    MetricsMiddleware,
    PrecheckMiddleware,
    QuarantineMiddleware,
    RetryMiddleware,
    RetrySpec,
    StageExecutor,
    UnitFailed,
    UnitResult,
    WorkUnit,
    build_executor,
)
from repro.telemetry import MetricsRegistry


class RecordingSleeper:
    """Stands in for time.sleep; keeps the delays a unit asked for."""

    def __init__(self):
        self.delays = []

    def __call__(self, delay):
        self.delays.append(delay)


def injector(stage, kind, rate=1.0, times=1, latency=0.002, seed=0):
    return FaultInjector(FaultPlan(seed=seed, faults=(
        FaultSpec(stage, kind, rate=rate, times=times, latency=latency),
    )))


def unit(body, **kwargs):
    kwargs.setdefault("stage", "teststage")
    kwargs.setdefault("key", "item-0")
    return WorkUnit(body=body, **kwargs)


FAST_BACKOFF = BackoffPolicy(base=0.0, factor=1.0, max_delay=0.0)


class TestExecutorBasics:
    def test_plain_return_value_wraps_as_done(self):
        result = StageExecutor().execute(unit(lambda ctx: 42))
        assert result.outcome == DONE
        assert result.ok
        assert result.value == 42
        assert result.attempts == 0

    def test_unit_result_passes_through_unwrapped(self):
        inner = UnitResult(outcome=DONE, value="x", artifact="/a", payload={"n": 1})
        result = StageExecutor().execute(unit(lambda ctx: inner))
        assert result is inner

    def test_body_exception_propagates_without_quarantine(self):
        executor = StageExecutor()
        with pytest.raises(KeyError):
            executor.execute(unit(lambda ctx: (_ for _ in ()).throw(KeyError("boom"))))

    def test_canonical_stack_order(self):
        executor = build_executor()
        assert [type(layer) for layer in executor.middleware] == [
            MetricsMiddleware,
            QuarantineMiddleware,
            JournalMiddleware,
            CacheMiddleware,
            ChaosMiddleware,
            PrecheckMiddleware,
            RetryMiddleware,
        ]

    def test_success_outcomes_never_include_failures(self):
        assert FAILED not in SUCCESS_OUTCOMES
        assert QUARANTINED not in SUCCESS_OUTCOMES
        assert RESUMED not in SUCCESS_OUTCOMES  # already journaled; no re-record


class TestRetryMiddleware:
    def test_transient_failures_retried_then_marked_retried(self):
        sleeper = RecordingSleeper()
        executor = build_executor(sleeper=sleeper)
        calls = []

        def body(ctx):
            calls.append(ctx.attempt)
            if len(calls) < 3:
                raise OSError("flaky")
            return "ok"

        result = executor.execute(unit(
            body, retry=RetrySpec(retries=3, backoff=FAST_BACKOFF),
        ))
        assert result.outcome == RETRIED
        assert result.ok
        assert result.value == "ok"
        assert result.attempts == 2          # two *failed* attempts
        assert calls == [1, 2, 3]            # ctx.attempt is 1-based
        assert len(sleeper.delays) == 2      # one backoff sleep per failure

    def test_no_retry_spec_means_single_attempt(self):
        calls = []

        def body(ctx):
            calls.append(1)
            raise OSError("boom")

        executor = build_executor()
        with pytest.raises(OSError):
            executor.execute(unit(body))
        assert calls == [1]

    def test_non_matching_exception_not_retried(self):
        calls = []

        def body(ctx):
            calls.append(1)
            raise ValueError("not transient")

        executor = build_executor()
        with pytest.raises(ValueError):
            executor.execute(unit(
                body, retry=RetrySpec(retries=3, backoff=FAST_BACKOFF,
                                      retry_on=(OSError,)),
            ))
        assert calls == [1]

    def test_breaker_threaded_through_to_retry_call(self):
        breaker = CircuitBreaker(failure_threshold=2, reset_after=60.0)
        executor = build_executor(sleeper=RecordingSleeper())

        def body(ctx):
            raise OSError("host down")

        result = executor.execute(unit(
            body,
            retry=RetrySpec(retries=1, backoff=FAST_BACKOFF, breaker=breaker,
                            host="archive.example"),
            failure=FailurePolicy(on_exhausted="record"),
        ))
        assert result.outcome == FAILED
        assert breaker.state("archive.example") == CircuitBreaker.OPEN

    def test_before_attempt_exception_bypasses_retry(self):
        calls = []

        def deadline():
            raise TimeoutError("deadline exceeded")

        def body(ctx):
            calls.append(1)
            return "never"

        executor = build_executor()
        result = executor.execute(unit(
            body,
            retry=RetrySpec(retries=5, backoff=FAST_BACKOFF,
                            before_attempt=deadline),
            failure=FailurePolicy(catch=(TimeoutError,)),
        ))
        assert result.outcome == QUARANTINED
        assert "deadline exceeded" in result.error
        assert calls == []                   # the body never ran


class TestQuarantineMiddleware:
    def test_exhaustion_raises_unit_failed_by_default(self):
        executor = build_executor(sleeper=RecordingSleeper())
        with pytest.raises(UnitFailed):
            executor.execute(unit(
                lambda ctx: (_ for _ in ()).throw(OSError("down")),
                retry=RetrySpec(retries=1, backoff=FAST_BACKOFF),
            ))

    def test_exhaustion_recorded_with_describe_and_cleanup(self):
        cleaned = []
        executor = build_executor(sleeper=RecordingSleeper())
        result = executor.execute(unit(
            lambda ctx: (_ for _ in ()).throw(OSError("archive down")),
            retry=RetrySpec(retries=2, backoff=FAST_BACKOFF),
            failure=FailurePolicy(
                on_exhausted="record",
                describe=lambda attempts, error: f"gave up after {attempts}: {error}",
                cleanup=lambda: cleaned.append(True),
            ),
        ))
        assert result.outcome == FAILED
        assert not result.ok
        assert result.error == "gave up after 3: archive down"
        assert result.attempts == 3
        assert cleaned == [True]

    def test_caught_exception_becomes_quarantined(self):
        noted = []
        executor = build_executor()
        result = executor.execute(unit(
            lambda ctx: (_ for _ in ()).throw(ValueError("corrupt tile file")),
            failure=FailurePolicy(catch=(ValueError,),
                                  on_caught=noted.append),
        ))
        assert result.outcome == QUARANTINED
        assert result.error == "corrupt tile file"
        assert noted == ["corrupt tile file"]

    def test_uncaught_exception_type_still_propagates(self):
        executor = build_executor()
        with pytest.raises(KeyError):
            executor.execute(unit(
                lambda ctx: (_ for _ in ()).throw(KeyError("bug")),
                failure=FailurePolicy(catch=(ValueError,)),
            ))


class TestPrecheckMiddleware:
    def test_precheck_short_circuits_body(self):
        ran = []
        skip = UnitResult(outcome=SKIPPED, artifact="/already/there.nc")
        result = build_executor().execute(unit(
            lambda ctx: ran.append(1),
            precheck=lambda ctx: skip,
        ))
        assert result is skip
        assert ran == []

    def test_precheck_none_falls_through_to_body(self):
        result = build_executor().execute(unit(
            lambda ctx: "worked",
            precheck=lambda ctx: None,
        ))
        assert result.outcome == DONE
        assert result.value == "worked"

    def test_skip_never_burns_a_retry_attempt(self):
        result = build_executor().execute(unit(
            lambda ctx: "fresh",
            precheck=lambda ctx: UnitResult(outcome=SKIPPED),
            retry=RetrySpec(retries=3, backoff=FAST_BACKOFF),
        ))
        assert result.outcome == SKIPPED
        assert result.attempts == 0


class TestJournalMiddleware:
    def run_once(self, tmp_path, body, resume=False, **unit_kwargs):
        journal = WorkflowJournal(str(tmp_path / "journal"))
        journal.start(resume=resume)
        try:
            executor = build_executor(journal=journal)
            return executor.execute(unit(body, **unit_kwargs))
        finally:
            journal.close()

    def make_artifact(self, tmp_path, name="artifact.nc", data=b"tiles"):
        path = tmp_path / name
        path.write_bytes(data)
        return str(path)

    def test_completion_recorded_then_resumed_with_payload(self, tmp_path):
        path = self.make_artifact(tmp_path)

        def body(ctx):
            ctx.begin()
            return UnitResult(outcome=DONE, artifact=path, payload={"tiles": 7})

        first = self.run_once(tmp_path, body)
        assert first.outcome == DONE

        ran = []
        second = self.run_once(
            tmp_path, lambda ctx: ran.append(1), resume=True)
        assert second.outcome == RESUMED
        assert second.ok
        assert ran == []                          # zero work redone
        assert second.payload["tiles"] == 7
        assert second.artifact == path            # abspath round-trips
        assert second.payload["sha256"]

    def test_intent_without_completion_forces_redo(self, tmp_path):
        def crash_body(ctx):
            ctx.begin()
            raise ValueError("power cut")

        first = self.run_once(
            tmp_path, crash_body,
            failure=FailurePolicy(catch=(ValueError,)))
        assert first.outcome == QUARANTINED

        seen = []

        def body(ctx):
            seen.append(ctx.redo)
            ctx.begin()
            return "redone"

        second = self.run_once(tmp_path, body, resume=True)
        assert second.outcome == DONE
        assert seen == [True]                     # journal ruled the item redo

    def test_journal_false_suppresses_completion(self, tmp_path):
        path = self.make_artifact(tmp_path)

        def body(ctx):
            ctx.begin()
            return UnitResult(outcome=DONE, artifact=path, journal=False)

        self.run_once(tmp_path, body)
        ran = []

        def again(ctx):
            ctx.begin()
            ran.append(1)
            return "redelivered"

        second = self.run_once(tmp_path, again, resume=True)
        assert second.outcome == DONE             # not RESUMED: stayed redoable
        assert ran == [1]

    def test_phase_off_never_touches_journal(self, tmp_path):
        class ExplodingJournal:
            def resume(self, stage, key):
                raise AssertionError("resume called for journal_phase=off")

            def intent(self, stage, key, **payload):
                raise AssertionError("intent called for journal_phase=off")

            def complete(self, stage, key, **payload):
                raise AssertionError("complete called for journal_phase=off")

        executor = build_executor(journal=ExplodingJournal())
        result = executor.execute(unit(lambda ctx: "fired", journal_phase="off"))
        assert result.outcome == DONE

    def test_phase_open_resumes_but_never_completes(self, tmp_path):
        def body(ctx):
            ctx.begin()
            return "parsed"

        self.run_once(tmp_path, body, journal_phase="open")
        # No completion was written, so resume sees the bare intent: REPLAY.
        seen = []

        def again(ctx):
            seen.append(ctx.redo)
            ctx.begin()
            return "reparsed"

        second = self.run_once(tmp_path, again, resume=True,
                               journal_phase="open")
        assert second.outcome == DONE
        assert seen == [True]

    def test_phase_close_completes_but_never_resumes(self, tmp_path):
        path = self.make_artifact(tmp_path)

        def body(ctx):
            return UnitResult(outcome=DONE, artifact=path)

        self.run_once(tmp_path, body, journal_phase="close")
        ran = []
        # A "close" unit never consults resume, so it runs again even
        # though a completion exists — the matching "open" unit is the
        # one that would have skipped.
        second = self.run_once(
            tmp_path, lambda ctx: ran.append(1) or "again",
            resume=True, journal_phase="close")
        assert second.outcome == DONE
        assert ran == [1]

    def test_skip_records_completion_without_intent(self, tmp_path):
        path = self.make_artifact(tmp_path)
        skip = UnitResult(outcome=SKIPPED, artifact=path, payload={"tiles": 3})
        self.run_once(tmp_path, lambda ctx: "unreached",
                      precheck=lambda ctx: skip)
        # skip_existing recorded a completion (no intent), so the next
        # run resumes without redo.
        second = self.run_once(tmp_path, lambda ctx: "unreached",
                               resume=True)
        assert second.outcome == RESUMED
        assert second.payload["tiles"] == 3


class TestChaosMiddleware:
    # FaultSpec validates its stage name, so these units use a real one.
    def test_worker_stall_sleeps_the_injected_latency(self):
        sleeper = RecordingSleeper()
        chaos = injector("inference", "worker_stall", latency=0.25)
        executor = build_executor(chaos=chaos, sleeper=sleeper)
        result = executor.execute(unit(lambda ctx: "done", stage="inference"))
        assert result.outcome == DONE
        assert sleeper.delays == [0.25]

    def test_stall_false_units_are_exempt(self):
        sleeper = RecordingSleeper()
        chaos = injector("inference", "worker_stall", latency=0.25)
        executor = build_executor(chaos=chaos, sleeper=sleeper)
        executor.execute(unit(lambda ctx: "done", stage="inference", stall=False))
        assert sleeper.delays == []

    def test_chaos_threaded_into_context_for_body_surfaces(self):
        chaos = injector("inference", "worker_stall")
        seen = []
        executor = build_executor(chaos=chaos, sleeper=RecordingSleeper())
        executor.execute(unit(lambda ctx: seen.append(ctx.chaos),
                              stage="inference", stall=False))
        assert seen == [chaos]


class TestMetricsMiddleware:
    def test_every_outcome_counted_by_stage_and_outcome(self):
        metrics = MetricsRegistry()
        executor = build_executor(metrics=metrics, sleeper=RecordingSleeper())
        executor.execute(unit(lambda ctx: "ok"))
        executor.execute(unit(
            lambda ctx: (_ for _ in ()).throw(ValueError("bad")),
            key="item-1", failure=FailurePolicy(catch=(ValueError,)),
        ))
        executor.execute(unit(
            lambda ctx: (_ for _ in ()).throw(OSError("down")),
            key="item-2",
            retry=RetrySpec(retries=1, backoff=FAST_BACKOFF),
            failure=FailurePolicy(on_exhausted="record"),
        ))
        units = metrics.counter("runtime.units")
        assert units.value(stage="teststage", outcome=DONE) == 1
        assert units.value(stage="teststage", outcome=QUARANTINED) == 1
        assert units.value(stage="teststage", outcome=FAILED) == 1
        assert units.total == 3

    def test_unit_seconds_histogram_observes_each_unit(self):
        metrics = MetricsRegistry()
        executor = build_executor(metrics=metrics)
        executor.execute(unit(lambda ctx: "a"))
        executor.execute(unit(lambda ctx: "b", key="item-1"))
        snapshot = metrics.snapshot()
        assert snapshot["runtime.unit_seconds.count"] == 2

    def test_raised_units_counted_before_propagating(self):
        metrics = MetricsRegistry()
        executor = build_executor(metrics=metrics)
        with pytest.raises(KeyError):
            executor.execute(unit(lambda ctx: (_ for _ in ()).throw(KeyError())))
        assert metrics.counter("runtime.units").value(
            stage="teststage", outcome="raised") == 1

    def test_none_registry_costs_nothing(self):
        result = build_executor(metrics=None).execute(unit(lambda ctx: "ok"))
        assert result.outcome == DONE
