"""Pickle round-trip contracts for everything that crosses a process.

The scale-out tier ships work between processes by pickling: the
:class:`WorkEnvelope` / :class:`EnvelopeResult` wire types, the
:class:`WorkerSpec` payload a worker rebuilds its world from, and each
stage's own payload types (granule refs, granule sets, preprocess and
inference results, quarantine records).  Anything here that stops
round-tripping — a closure-captured field, an open file handle, a lock —
breaks multi-process execution at runtime, so the contract is pinned as
a test: ``pickle.loads(pickle.dumps(x))`` must reproduce the value.

:class:`WorkUnit` itself is deliberately *not* on the wire: its ``body``
is a closure over live stage state.  The envelope carries the work
*description* and the worker rebuilds the unit locally — that boundary
is the design, and the test documents it.
"""

from __future__ import annotations

import datetime as dt
import pickle

import pytest

from repro.chaos import FaultPlan, FaultSpec
from repro.core.config import load_config
from repro.core.download import GranuleSet
from repro.core.inference import InferenceResult
from repro.core.preprocess import PreprocessResult, QuarantineRecord
from repro.core.scaleout import worker_payload
from repro.modis import LaadsArchive, MINI_SWATH
from repro.runtime import UnitResult
from repro.runtime.proc import EnvelopeResult, WorkEnvelope, WorkerSpec


def roundtrip(value):
    return pickle.loads(pickle.dumps(value))


RAW_CONFIG = {
    "archive": {"start_date": "2022-01-01", "max_granules_per_day": 2, "seed": 3},
    "paths": {
        "staging": "/tmp/x/raw",
        "preprocessed": "/tmp/x/tiles",
        "transfer_out": "/tmp/x/outbox",
        "destination": "/tmp/x/orion",
        "quarantine": "/tmp/x/quarantine",
    },
}


class TestWireTypes:
    def test_work_envelope(self):
        env = WorkEnvelope("download", "MOD02.A2022001.0000.hdf", {"n": 1}, ticket=7)
        assert roundtrip(env) == env

    def test_envelope_result(self):
        res = EnvelopeResult(
            ticket=3, kind="preprocess", key="scene", ok=False, value=None,
            error="boom", seconds=0.25, worker_id=1, pid=4242,
            counters={"resumed_items": 2.0},
        )
        assert roundtrip(res) == res

    def test_worker_spec_with_stage_payload(self):
        config = load_config(RAW_CONFIG)
        spec = WorkerSpec(
            target="repro.core.scaleout:build_stage_worker",
            payload=worker_payload(config, LaadsArchive(seed=3, swath=MINI_SWATH)),
        )
        clone = roundtrip(spec)
        assert clone.target == spec.target
        assert clone.payload["raw"] == spec.payload["raw"]
        # The rebuilt config must resolve identically on the far side.
        assert load_config(clone.payload["raw"]) == config

    def test_chaos_plan_rides_the_payload(self):
        plan = FaultPlan(
            seed=0, faults=(FaultSpec(stage="download", kind="crash"),)
        )
        assert roundtrip(plan) == plan


class TestUnitResult:
    def test_roundtrip(self):
        res = UnitResult(
            outcome="done", value=("a", 3), artifact="/tmp/t.nc",
            payload={"tiles": 3, "sha256": "ab" * 32}, attempts=2, seconds=1.5,
        )
        clone = roundtrip(res)
        assert clone == res
        assert clone.ok


class TestStagePayloads:
    def test_granule_ref(self):
        archive = LaadsArchive(seed=3, swath=MINI_SWATH)
        ref = archive.query("MOD02", dt.date(2022, 1, 1), max_per_day=1)[0]
        clone = roundtrip(ref)
        assert clone == ref
        assert clone.filename == ref.filename

    def test_granule_set(self):
        gs = GranuleSet(
            key="scene_terra_2022-01-01_000",
            paths={"MOD02": "/tmp/a.nc", "MOD03": "/tmp/b.nc"},
        )
        assert roundtrip(gs) == gs

    def test_preprocess_result(self):
        res = PreprocessResult(key="scene", tile_path="/tmp/t.nc", tiles=9, seconds=0.5)
        assert roundtrip(res) == res

    def test_quarantine_record(self):
        rec = QuarantineRecord(key="scene", error="corrupt granule")
        assert roundtrip(rec) == rec

    def test_inference_result(self):
        res = InferenceResult(
            src_path="/tmp/t.nc", out_path="/tmp/out.nc", tiles=9,
            classes_seen=4, seconds=0.1,
        )
        assert roundtrip(res) == res

    def test_download_result_tuple(self):
        # _fetch_one's settle tuple: (ref, path, nbytes, seconds,
        # outcome, attempts, error) — all picklable leaves.
        archive = LaadsArchive(seed=3, swath=MINI_SWATH)
        ref = archive.query("MOD02", dt.date(2022, 1, 1), max_per_day=1)[0]
        result = (ref, "/tmp/f.nc", 123, 0.5, "done", 1, None)
        assert roundtrip(result) == result


class TestWorkUnitBoundary:
    def test_work_unit_closures_stay_off_the_wire(self):
        """WorkUnit bodies are closures — the envelope, not the unit,
        crosses the process boundary.  Pin that a closure-bodied unit
        does not pickle, so nobody accidentally ships one."""
        from repro.runtime import WorkUnit

        state = {"hits": 0}

        def body(ctx):
            state["hits"] += 1

        unit = WorkUnit(stage="download", key="k", body=body)
        with pytest.raises(Exception):
            pickle.dumps(unit)
