"""Same plan, three engines.

The tentpole claim of the unified runtime: a :class:`PipelinePlan` is
engine-neutral.  These tests drive toy plans (and the *real* five-stage
workflow plan) through the Globus-Flows-like state machine and the
zambeze-like campaign orchestrator, and check both engines honour the
same barriers the local :class:`PlanRunner` enforces.
"""

import os

import pytest

from repro.core import EOMLWorkflow, load_config
from repro.flows import (
    FlowError,
    FlowsEngine,
    RunStatus,
    plan_providers,
    run_plan_with_flows,
    to_flow_definition,
)
from repro.modis import MINI_SWATH, LaadsArchive
from repro.runtime import PipelinePlan, PlanExecution, StageNode
from repro.sim import Simulation
from repro.zambeze import (
    campaign_from_plan,
    run_plan_with_zambeze,
)


def toy_plan(events=None):
    events = events if events is not None else []

    def body(name, value):
        def run(state):
            events.append(name)
            return value
        return run

    return PipelinePlan([
        StageNode("fetch", body("fetch", 3)),
        StageNode("tile", body("tile", 12), after=("fetch",)),
        StageNode("label", body("label", "labelled"), after=("fetch", "tile")),
    ])


class TestFlowDefinition:
    def test_one_action_state_per_node_chained_in_plan_order(self):
        definition = to_flow_definition(toy_plan())
        assert definition["StartAt"] == "fetch"
        states = definition["States"]
        assert states["fetch"] == {
            "Type": "Action", "ActionUrl": "runtime:fetch",
            "ResultPath": "fetch", "Next": "tile",
        }
        assert states["tile"]["Next"] == "label"
        assert states["label"]["End"] is True
        assert "Next" not in states["label"]

    def test_empty_plan_rejected(self):
        with pytest.raises(ValueError, match="empty plan"):
            to_flow_definition(PipelinePlan([]))

    def test_providers_cover_every_node(self):
        execution = PlanExecution(toy_plan())
        providers = plan_providers(execution)
        assert set(providers) == {"runtime:fetch", "runtime:tile", "runtime:label"}


class TestFlowsDrivesPlan:
    def test_toy_plan_succeeds_with_values_in_state_and_document(self):
        events = []
        run, execution = run_plan_with_flows(toy_plan(events))
        assert run.status == RunStatus.SUCCEEDED
        assert events == ["fetch", "tile", "label"]
        assert execution.state == {"fetch": 3, "tile": 12, "label": "labelled"}
        assert run.document["tile"] == 12

    def test_misordered_definition_hits_the_barrier(self):
        # A definition that visits label before tile violates the plan's
        # after edge; the execution raises instead of silently reordering.
        execution = PlanExecution(toy_plan())
        sim = Simulation()
        engine = FlowsEngine(sim)
        for url, provider in plan_providers(execution).items():
            engine.register_provider(url, provider)
        definition = to_flow_definition(execution.plan)
        definition["States"]["fetch"]["Next"] = "label"
        definition["States"]["label"] = dict(
            definition["States"]["label"], Next="tile")
        definition["States"]["label"].pop("End", None)
        definition["States"]["tile"] = dict(
            definition["States"]["tile"], End=True)
        definition["States"]["tile"].pop("Next", None)
        run = engine.run(definition, label="misordered")
        with pytest.raises(FlowError, match="before its barrier"):
            sim.run()
        assert run.status == RunStatus.FAILED
        assert "before its barrier" in run.error


class TestZambezeDrivesPlan:
    def test_campaign_mirrors_the_after_edges_only(self):
        plan = PipelinePlan([
            StageNode("preprocess", lambda s: None),
            StageNode("inference", lambda s: None,
                      after=("preprocess",), overlaps=("preprocess",)),
        ])
        campaign = campaign_from_plan(plan, name="eo-ml")
        assert campaign.name == "eo-ml"
        by_name = dict(campaign.activities)
        assert by_name["inference"].depends_on == ["preprocess"]
        assert by_name["inference"].capability == "runtime:inference"
        # An overlap is a concurrency window, not an ordering edge.
        assert by_name["preprocess"].depends_on == []

    def test_toy_plan_succeeds_with_values_in_state(self):
        events = []
        report, execution = run_plan_with_zambeze(toy_plan(events))
        assert report.succeeded
        assert events == ["fetch", "tile", "label"]
        assert execution.state == {"fetch": 3, "tile": 12, "label": "labelled"}

    def test_stream_edges_become_dependencies(self):
        # zambeze's campaign scheduler is sequential: a consumer
        # dispatched before its producer would read an empty channel, so
        # stream edges sequence producer-before-consumer there.
        plan = PipelinePlan([
            StageNode("download", lambda s: None),
            StageNode("model", lambda s: None, stream=("download",)),
            StageNode("preprocess", lambda s: None,
                      after=("model",), stream=("download", "model")),
        ])
        by_name = dict(campaign_from_plan(plan).activities)
        assert by_name["model"].depends_on == ["download"]
        # stream edges deduplicate against identical after edges
        assert by_name["preprocess"].depends_on == ["model", "download"]


@pytest.fixture
def workflow(tmp_path):
    config = load_config({
        "archive": {"start_date": "2022-01-01", "max_granules_per_day": 1,
                    "seed": 3},
        "paths": {
            "staging": str(tmp_path / "raw"),
            "preprocessed": str(tmp_path / "tiles"),
            "transfer_out": str(tmp_path / "outbox"),
            "destination": str(tmp_path / "orion"),
            "quarantine": str(tmp_path / "quarantine"),
        },
        "download": {"workers": 2},
        "preprocess": {"workers": 2, "tile_size": 16},
        "inference": {"workers": 1, "poll_interval": 0.05},
    })
    return EOMLWorkflow(config, archive=LaadsArchive(seed=3, swath=MINI_SWATH))


class TestRealPlanOnAlternateEngines:
    """The five-stage workflow plan, executed by the other two engines."""

    def assert_delivered(self, workflow, execution):
        shipment = execution.state["shipment"]
        assert shipment is not None and shipment.error is None
        assert shipment.moved
        for path in shipment.moved:
            assert os.path.exists(path)
        assert execution.state["inference"].results

    def test_flows_engine_runs_the_five_stage_plan(self, workflow):
        plan = workflow.build_plan()
        run, execution = run_plan_with_flows(plan, label="eo-ml")
        assert run.status == RunStatus.SUCCEEDED
        self.assert_delivered(workflow, execution)

    def test_zambeze_orchestrator_runs_the_five_stage_plan(self, workflow):
        plan = workflow.build_plan()
        report, execution = run_plan_with_zambeze(plan, facility="olcf")
        assert report.succeeded
        assert not report.errors
        self.assert_delivered(workflow, execution)

    def test_flows_engine_runs_the_streaming_plan(self, workflow):
        # Same streaming topology, sequential engine: each node runs to
        # completion in chain order and the relaxed channels buffer the
        # per-scene / per-file hand-offs between them.
        plan = workflow.build_plan(streaming=True)
        run, execution = run_plan_with_flows(plan, label="eo-ml-stream")
        assert run.status == RunStatus.SUCCEEDED
        self.assert_delivered(workflow, execution)

    def test_zambeze_orchestrator_runs_the_streaming_plan(self, workflow):
        plan = workflow.build_plan(streaming=True)
        report, execution = run_plan_with_zambeze(plan, facility="olcf")
        assert report.succeeded
        assert not report.errors
        self.assert_delivered(workflow, execution)
