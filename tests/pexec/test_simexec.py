"""Simulated HTEX executor + elastic strategy tests."""

import pytest

from repro.hpc import build_defiant
from repro.pexec import ElasticStrategy, SimHtexExecutor, SimTaskSpec
from repro.sim import Simulation, Tracer


def make(workers_per_node=8, noise=0.0, seed=0, tracer=None, allocation_latency=0.0):
    sim = Simulation()
    facility = build_defiant(sim, allocation_latency=allocation_latency)
    executor = SimHtexExecutor(
        sim, facility, workers_per_node=workers_per_node,
        tracer=tracer, noise_sigma=noise, seed=seed,
    )
    return sim, facility, executor


def specs(n, duration=10.0, tiles=150):
    return [SimTaskSpec(label=f"file{i}", base_duration=duration, tiles=tiles) for i in range(n)]


class TestExecutor:
    def test_single_worker_timing(self):
        sim, _f, executor = make(workers_per_node=1)
        events = executor.submit_all(specs(4, duration=10.0))
        executor.scale_out(num_nodes=1)
        sim.run()
        # 4 tasks, 1 worker, no contention at w=1, n=1 -> 40s of work.
        assert executor.completion_time() == pytest.approx(40.0)
        assert all(e.value.tiles == 150 for e in events)

    def test_contention_slows_workers(self):
        """8 workers on one node do NOT run 8x faster (USL contention)."""
        sim, facility, executor = make(workers_per_node=8)
        executor.submit_all(specs(8, duration=10.0))
        executor.scale_out(num_nodes=1)
        sim.run()
        ideal = 10.0  # 8 workers, 8 tasks, one each
        expected = 10.0 / facility.contention_factor(8, 1)
        assert executor.completion_time() == pytest.approx(expected)
        assert executor.completion_time() > 2.0 * ideal  # contention is real

    def test_multi_node_throughput_scales(self):
        results = {}
        for nodes in (1, 4):
            sim, _f, executor = make(workers_per_node=8)
            executor.submit_all(specs(nodes * 8 * 3, duration=14.0))
            executor.scale_out(num_nodes=nodes)
            sim.run()
            results[nodes] = executor.throughput_tiles_per_s()
        ratio = results[4] / results[1]
        assert 3.0 < ratio < 4.0  # near-linear but sub-ideal

    def test_tasks_after_blocks(self):
        """Tasks submitted after workers started still run (respawn-free)."""
        sim, _f, executor = make(workers_per_node=2)
        executor.submit_all(specs(2, duration=5.0))
        executor.scale_out(num_nodes=1)

        def late():
            yield sim.timeout(1.0)
            done = executor.submit_all(specs(2, duration=5.0))
            yield sim.all_of(done)

        sim.process(late())
        sim.run()
        assert len(executor.results) == 4

    def test_block_retires_and_frees_nodes(self):
        sim, facility, executor = make(workers_per_node=4)
        executor.submit_all(specs(4, duration=2.0))
        executor.scale_out(num_nodes=2)
        sim.run()
        assert len(facility.scheduler.free_nodes) == facility.cluster.num_nodes
        assert executor.blocks[0].live_workers == 0

    def test_gauge_tracks_ramp(self):
        tracer = Tracer()
        sim, _f, executor = make(workers_per_node=4, tracer=tracer)
        executor.submit_all(specs(4, duration=10.0))
        executor.scale_out(num_nodes=1)
        sim.run()
        series = tracer.series("workers:preprocess")
        assert series.max == 4
        assert series.at(sim.now + 1) == 0

    def test_output_bytes_written_to_fs(self):
        sim, facility, executor = make(workers_per_node=1)
        executor.submit(SimTaskSpec(label="g0", base_duration=1.0, tiles=10, output_bytes=10**6))
        executor.scale_out(num_nodes=1)
        sim.run()
        assert facility.filesystem.exists("/preproc/g0.nc")
        assert facility.filesystem.entry("/preproc/g0.nc").metadata["tiles"] == 10

    def test_noise_reproducible(self):
        times = []
        for _ in range(2):
            sim, _f, executor = make(workers_per_node=4, noise=0.1, seed=42)
            executor.submit_all(specs(16, duration=5.0))
            executor.scale_out(num_nodes=1)
            sim.run()
            times.append(executor.completion_time())
        assert times[0] == times[1]

    def test_validation(self):
        sim, facility, _ = make()
        with pytest.raises(ValueError):
            SimHtexExecutor(sim, facility, workers_per_node=0)
        with pytest.raises(ValueError):
            SimTaskSpec(label="x", base_duration=-1.0)
        with pytest.raises(ValueError):
            SimHtexExecutor(sim, facility, workers_per_node=1, task_failure_rate=1.5)


class TestFailureInjection:
    def _run(self, failure_rate, max_retries, n_tasks=24, seed=5):
        sim = Simulation()
        facility = build_defiant(sim, allocation_latency=0.0)
        executor = SimHtexExecutor(
            sim, facility, workers_per_node=4, noise_sigma=0.0, seed=seed,
            task_failure_rate=failure_rate, max_task_retries=max_retries,
        )
        events = executor.submit_all(specs(n_tasks, duration=5.0))
        executor.scale_out(num_nodes=1)
        outcomes = {"ok": 0, "failed": 0}

        def watch(event):
            def proc():
                try:
                    yield event
                    outcomes["ok"] += 1
                except RuntimeError:
                    outcomes["failed"] += 1
            return proc

        for event in events:
            sim.process(watch(event)())
        sim.run()
        return executor, outcomes

    def test_retries_recover_all_tasks(self):
        executor, outcomes = self._run(failure_rate=0.25, max_retries=10)
        assert outcomes == {"ok": 24, "failed": 0}
        assert executor.task_retries > 0
        assert len(executor.results) == 24

    def test_failures_cost_time(self):
        clean, _ = self._run(failure_rate=0.0, max_retries=0)
        flaky, _ = self._run(failure_rate=0.25, max_retries=10)
        assert flaky.completion_time() > clean.completion_time()

    def test_exhausted_retries_fail_future(self):
        executor, outcomes = self._run(failure_rate=0.6, max_retries=0, n_tasks=30)
        assert outcomes["failed"] > 0
        assert outcomes["ok"] + outcomes["failed"] == 30
        # Workers and blocks still wind down cleanly.
        assert executor.blocks[0].live_workers == 0


class TestElasticStrategy:
    def test_scales_out_until_demand_met(self):
        tracer = Tracer()
        sim, _f, executor = make(workers_per_node=8, tracer=tracer)
        executor.submit_all(specs(64, duration=10.0))
        strategy = ElasticStrategy(
            sim, executor, nodes_per_block=1, max_blocks=3, poll_interval=0.5
        )
        strategy.start()
        sim.run(until=500.0)
        strategy.stop()
        sim.run()
        assert len(executor.results) == 64
        active_blocks = len(executor.blocks)
        assert 2 <= active_blocks <= 3
        # All blocks eventually retired.
        assert all(block.job.state.terminal for block in executor.blocks)

    def test_no_scale_out_without_demand(self):
        sim, _f, executor = make()
        strategy = ElasticStrategy(sim, executor, max_blocks=3, poll_interval=0.5)
        strategy.start()
        sim.run(until=5.0)
        strategy.stop()
        sim.run()
        assert executor.blocks == []
