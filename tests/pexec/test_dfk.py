"""DataFlowKernel and @python_app tests (real execution)."""

import time

import pytest

from repro.compute import LocalComputeEndpoint
from repro.pexec import (
    DataFlowKernel,
    DependencyError,
    clear,
    load,
    python_app,
)


@pytest.fixture
def dfk():
    kernel = DataFlowKernel({"local": LocalComputeEndpoint("local", max_workers=4)})
    load(kernel)
    yield kernel
    kernel.shutdown()
    clear()


class TestDFK:
    def test_simple_app(self, dfk):
        @python_app
        def square(x):
            return x * x

        assert square(7).result(timeout=10) == 49

    def test_parallel_fanout(self, dfk):
        @python_app
        def work(x):
            time.sleep(0.05)
            return x + 1

        futures = [work(i) for i in range(8)]
        assert dfk.wait_all(futures, timeout=10) == list(range(1, 9))

    def test_dependency_chaining(self, dfk):
        @python_app
        def produce():
            return [1, 2, 3]

        @python_app
        def consume(values):
            return sum(values)

        assert consume(produce()).result(timeout=10) == 6
        assert dfk.tasks_launched == 2

    def test_dependencies_in_collections(self, dfk):
        @python_app
        def make(x):
            return x

        @python_app
        def total(values, extra=None):
            return sum(values) + extra["k"]

        future = total([make(1), make(2)], extra={"k": make(10)})
        assert future.result(timeout=10) == 13

    def test_failed_dependency_propagates(self, dfk):
        @python_app
        def boom():
            raise ValueError("bad tile")

        @python_app
        def consume(x):
            return x

        future = consume(boom())
        with pytest.raises(DependencyError, match="bad tile"):
            future.result(timeout=10)

    def test_app_exception(self, dfk):
        @python_app
        def boom():
            raise RuntimeError("hdf read error")

        with pytest.raises(RuntimeError, match="hdf read error"):
            boom().result(timeout=10)

    def test_diamond_dependency(self, dfk):
        @python_app
        def src():
            return 2

        @python_app
        def left(x):
            return x * 10

        @python_app
        def right(x):
            return x + 1

        @python_app
        def join(a, b):
            return (a, b)

        s = src()
        assert join(left(s), right(s)).result(timeout=10) == (20, 3)

    def test_unknown_executor(self, dfk):
        @python_app(executor="gpu")
        def nope():
            return 1

        with pytest.raises(KeyError, match="gpu"):
            nope()

    def test_no_dfk_loaded(self):
        clear()

        @python_app
        def orphan():
            return 1

        with pytest.raises(RuntimeError, match="no DataFlowKernel"):
            orphan()

    def test_pinned_dfk_overrides_global(self):
        kernel = DataFlowKernel({"local": LocalComputeEndpoint("pinned", max_workers=1)})

        @python_app(dfk=kernel)
        def pinned():
            return "pinned-result"

        clear()  # no global kernel: the pinned one must still work
        try:
            assert pinned().result(timeout=10) == "pinned-result"
        finally:
            kernel.shutdown()

    def test_requires_executor(self):
        with pytest.raises(ValueError):
            DataFlowKernel({})

    def test_status_snapshot(self, dfk):
        @python_app
        def work(x):
            return x

        futures = [work(i) for i in range(5)]
        dfk.wait_all(futures, timeout=10)
        status = dfk.status()
        assert status["submitted"] == 5
        assert status["done"] == 5
        assert status["running"] == 0
        assert status["waiting_on_dependencies"] == 0

    def test_status_counts_blocked_dependents(self, dfk):
        import threading

        gate = threading.Event()

        @python_app
        def slow():
            gate.wait(10)
            return 1

        @python_app
        def dependent(x):
            return x + 1

        future = dependent(slow())
        # The dependent cannot launch until slow() resolves.
        status = dfk.status()
        assert status["waiting_on_dependencies"] >= 1
        gate.set()
        assert future.result(timeout=10) == 2
