"""The partition matrix: every protocol phase severed, nothing lost.

The acceptance bar for partition tolerance: with the wire to the control
plane cut at each protocol phase — submission, leasing, heartbeating,
completion — for outages both *shorter* and *longer* than the lease TTL,
a two-agent run must still ship a corpus byte-identical to the local
golden run, with zero duplicate publications and zero lost units.
Fixed seeds throughout: every outage here is reproducible.

Also here: the compound failure — the control-plane *server* is killed
and restarted while an agent is partitioned, so recovery must come from
the startup sweep (server side) and the spooled outbox (agent side)
meeting in one reconcile.
"""

import threading
import time

import pytest

from tests.server.harness import control_plane
from tests.server.test_service_endtoend import (
    build_raw_config,
    delivered_corpus,
    load_golden,
)

from repro.chaos import ChaosTransport, FaultInjector, FaultPlan, FaultSpec
from repro.net.retry import BackoffPolicy
from repro.server import ControlPlaneClient, ControlPlaneServer, ServerUnavailable, SiteAgent

TTL = 1.0
BLIP = 0.3       # shorter than the TTL: leases survive the outage
BLACKOUT = 2.2   # longer than the TTL: leases expire mid-outage


def wire_chaos(phase, kind, seconds, seed=99):
    return FaultInjector(FaultPlan(seed=seed, faults=(
        FaultSpec(stage="net", kind=kind, match=phase, latency=seconds),
    )))


def chaotic_client(url, transport):
    # Small budgets on purpose: a partitioned agent must *notice* the
    # outage and drop into degraded mode, not absorb it inside retries.
    return ControlPlaneClient(
        url, timeout=0.4, retries=1, backoff=0.05, opener=transport
    )


def patient_submit(client, raw, name):
    """Submit through a possibly-severed wire, retrying until it lands.

    Safe to loop: partition refuses the connection and blackout swallows
    the request before the server sees it, so a failed submit was never
    applied — and each successful submit is deduped by its request id.
    """
    deadline = time.monotonic() + 30.0
    while True:
        try:
            return client.submit(raw, name=name)
        except ServerUnavailable:
            if time.monotonic() > deadline:
                raise


def partitioned_agents(server_url, transport, tmp_path, names=("site-a", "site-b")):
    """Two agents at one facility sharing the chaotic physical link."""
    agents = []
    for name in names:
        client = chaotic_client(server_url, transport)
        agents.append(SiteAgent(
            client, name=name, ttl=TTL,
            poll_interval=0.02, heartbeat_interval=0.05,
            outbox=str(tmp_path / "spool" / f"{name}.jsonl"),
            reconnect=BackoffPolicy(base=0.05, max_delay=0.3, full_jitter=True),
            reconnect_limit=None,
        ))
    return agents


def drain(agents, idle_exit_after=8, timeout=120):
    threads = [
        threading.Thread(target=agent.run, kwargs={"idle_exit_after": idle_exit_after})
        for agent in agents
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=timeout)
    assert not any(thread.is_alive() for thread in threads)


def assert_exactly_once(detail, agents, golden, root):
    assert detail.status == "completed", {
        u.name: (u.status, u.error) for u in detail.units
    }
    # Zero duplicate publications: every unit's completion was applied
    # exactly once across both agents (fencing rejected any stale twin).
    assert sum(a.stats.completed for a in agents) == len(detail.units)
    assert all(a.stats.failed == 0 for a in agents)
    # Nothing left behind in a spool.
    assert all(len(a.outbox) == 0 for a in agents)
    # Zero lost units, zero drifted bytes: the corpus is the golden one.
    assert delivered_corpus(root) == golden["files"]


@pytest.mark.parametrize("outage,kind,seconds", [
    ("blip", "partition", BLIP),
    ("blackout", "blackout", BLACKOUT),
], ids=["blip", "blackout"])
@pytest.mark.parametrize("phase", ["submit", "lease", "heartbeat", "complete"])
def test_partition_matrix_ships_the_golden_corpus(tmp_path, phase, outage, kind, seconds):
    golden = load_golden()
    raw = build_raw_config(str(tmp_path), golden["granules"])
    transport = ChaosTransport(wire_chaos(phase, kind, seconds))

    with control_plane() as (server, operator):
        # The whole facility shares one physical link: the submission and
        # both agents ride the same chaotic transport, so a submit-phase
        # outage blacks out the agents too.
        run = patient_submit(
            chaotic_client(server.url, transport), raw,
            name=f"matrix-{phase}-{outage}",
        )
        agents = partitioned_agents(server.url, transport, tmp_path)
        drain(agents)
        detail = operator.run(run.run_id)
        snap = operator.metrics()["metrics"]

    assert_exactly_once(detail, agents, golden, str(tmp_path))
    # The fault actually fired on the wire.
    assert transport.stats["outages"] == 1
    assert transport.stats["refused"] + transport.stats["blackholed"] >= 1
    if phase != "submit":
        # The agents lived through the outage: degraded-mode counters are
        # non-zero on both the agent and the server side.
        assert sum(a.stats.disconnects for a in agents) >= 1 or any(
            a.stats.outbox_spooled for a in agents
        )
        assert (
            snap["control_plane.partition.reconciles"] >= 1
            or snap["control_plane.partition.fenced_rejections"] >= 1
            or snap["control_plane.partition.disconnects"] >= 1
        )


def test_clean_run_reports_zero_partition_counters(tmp_path):
    """The baseline the matrix is measured against: no chaos, all zeros."""
    golden = load_golden()
    raw = build_raw_config(str(tmp_path), golden["granules"])
    with control_plane() as (server, operator):
        run = operator.submit(raw, name="clean")
        agents = partitioned_agents(server.url, ChaosTransport(
            FaultInjector(FaultPlan(seed=0, faults=()))
        ), tmp_path)
        drain(agents)
        detail = operator.run(run.run_id)
        snap = operator.metrics()["metrics"]

    assert_exactly_once(detail, agents, golden, str(tmp_path))
    for name in ("disconnects", "reconnect_attempts", "reconciles",
                 "outbox_replayed", "fenced_rejections"):
        assert snap[f"control_plane.partition.{name}"] == 0
    for agent in agents:
        summary = agent.stats.partition_summary()
        assert all(v == 0 for k, v in summary.items() if k != "enabled")


def test_server_killed_and_restarted_mid_partition(tmp_path):
    """The compound failure: the wire is cut AND the server dies.

    An agent finishes its unit into the spool while partitioned; the
    server is killed and restarted over the same SQLite file; the startup
    sweep requeues the orphaned lease; the agent reconnects to the new
    incarnation, its stale spool is fenced, and the requeued unit
    re-executes byte-identically through the journal."""
    golden = load_golden()
    raw = build_raw_config(str(tmp_path), golden["granules"])
    db = str(tmp_path / "control_plane.db")
    # One long outage triggered at the first completion POST; healed
    # manually once the replacement server is up.
    transport = ChaosTransport(wire_chaos("complete", "partition", 600.0))

    server = ControlPlaneServer(db)
    server.start()
    operator = ControlPlaneClient(server.url)
    run = operator.submit(raw, name="mid-partition")

    agent_client = chaotic_client(server.url, transport)
    agent = SiteAgent(
        agent_client, name="site-a", ttl=TTL,
        poll_interval=0.02, heartbeat_interval=0.05,
        outbox=str(tmp_path / "spool" / "site-a.jsonl"),
        reconnect=BackoffPolicy(base=0.05, max_delay=0.2, full_jitter=True),
        reconnect_limit=None,
    )
    thread = threading.Thread(target=agent.run, kwargs={"idle_exit_after": 8})
    thread.start()

    # Wait for the agent to finish its unit into the spool, cut off.
    deadline = time.monotonic() + 30.0
    while agent.stats.outbox_spooled == 0 and time.monotonic() < deadline:
        time.sleep(0.01)
    assert agent.stats.outbox_spooled >= 1

    # Kill the server while the agent is partitioned; let the dead lease
    # age past its TTL so the next incarnation's sweep reaps it.
    server.stop()
    server.store.close()
    time.sleep(TTL + 0.2)

    server2 = ControlPlaneServer(db)
    assert (
        server2.swept["expired_leases"] + server2.swept["orphan_units_requeued"]
    ) >= 1
    server2.start()
    try:
        # The facility's link comes back, pointed at the new incarnation.
        agent_client.base_url = server2.url.rstrip("/")
        transport.heal()
        thread.join(timeout=120)
        assert not thread.is_alive()
        operator2 = ControlPlaneClient(server2.url)
        detail = operator2.run(run.run_id)
    finally:
        server2.stop()
        server2.store.close()

    assert detail.status == "completed", {
        u.name: (u.status, u.error) for u in detail.units
    }
    # The spooled completion for the swept lease was fenced, the unit
    # re-executed (journal replay), and the corpus is still the golden
    # bytes — effectively-once despite the double execution.
    assert agent.stats.outbox_replayed >= 1
    assert agent.stats.disconnects >= 1
    assert len(agent.outbox) == 0
    assert delivered_corpus(str(tmp_path)) == golden["files"]
