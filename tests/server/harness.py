"""Test harness for the control plane: in-process server + helpers.

Every test talks to a *real* :class:`~repro.server.service.
ControlPlaneServer` over genuine HTTP on an ephemeral loopback port —
the same transport production uses — but in-process, so a test owns the
store and the clock.  The helpers here are the vocabulary all the
server tests share:

* :func:`control_plane` — context-managed (server, client) pair;
* :func:`fake_clock` — a manually advanced clock for lease-expiry tests;
* :func:`submit_minimal` — registers a run with a tiny synthetic unit
  graph (for protocol tests that never execute real stages).
"""

from contextlib import contextmanager

from tests.core.crash_driver import build_raw_config  # noqa: F401 (re-export)

from repro.server import ControlPlaneClient, ControlPlaneServer
from repro.server.store import RunStore


class FakeClock:
    """A clock the test advances by hand — lease expiry becomes exact."""

    def __init__(self, start: float = 1_000.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> float:
        self.now += seconds
        return self.now


@contextmanager
def control_plane(db_path=":memory:", store=None, **client_kwargs):
    """A running control plane and a client pointed at it."""
    server = ControlPlaneServer(db_path, store=store)
    server.start()
    try:
        yield server, ControlPlaneClient(server.url, **client_kwargs)
    finally:
        server.stop()


def fresh_store(clock=None, **kwargs) -> RunStore:
    return RunStore(":memory:", clock=clock or FakeClock(), **kwargs)


# A synthetic unit graph shaped like the real plan (chain with a fan-in),
# for protocol tests that never execute stages.
CHAIN_UNITS = [
    ("download", []),
    ("model", ["download"]),
    ("preprocess", ["download", "model"]),
    ("inference", ["preprocess", "model"]),
    ("shipment", ["inference"]),
]


def submit_minimal(store, name="test-run", units=None, config=None):
    return store.submit_run(
        config if config is not None else {"name": name},
        units if units is not None else CHAIN_UNITS,
        name=name,
    )
