"""Site-agent behaviour: drain loops, crash faults, lost leases.

The agent here runs against a real HTTP control plane but with a *stub*
executor, so these tests pin the protocol behaviour (what the agent
says to the server and when) without paying for real stage work.  The
fault-model tests use the ``agent`` chaos crash surface — the same
``os._exit`` machinery the stage crash tests use — with the abort
indirection patched so a "dead" agent is observable in-process.
"""

import threading

import pytest

from tests.server.harness import FakeClock, control_plane, fresh_store

import repro.chaos.surfaces as surfaces
from repro.chaos import FaultInjector, FaultPlan, FaultSpec
from repro.server import SiteAgent


class StubExecutor:
    """Records executed units; scriptable failures."""

    def __init__(self, fail_units=()):
        self.calls = []
        self.fail_units = set(fail_units)
        self.lock = threading.Lock()

    def __call__(self, config, unit, chaos=None):
        with self.lock:
            self.calls.append(unit)
        if unit in self.fail_units:
            raise RuntimeError(f"synthetic failure in {unit}")
        return {"unit": unit, "ok": True}


class FakeDeath(BaseException):
    """Stands in for os._exit: unwinds the agent like SIGKILL would."""


@pytest.fixture()
def aborts_are_catchable(monkeypatch):
    def fake_abort(code):
        raise FakeDeath(code)

    monkeypatch.setattr(surfaces, "_abort", fake_abort)


def crash_injector(rate=1.0, times=1):
    plan = FaultPlan(
        seed=0, faults=(FaultSpec(stage="agent", kind="crash", rate=rate, times=times),)
    )
    return FaultInjector(plan)


def test_agent_drains_a_chain_in_dependency_order():
    store = fresh_store()
    store.submit_run({"n": 1}, [("a", []), ("b", ["a"]), ("c", ["b"])], name="chain")
    with control_plane(store=store) as (_server, client):
        executor = StubExecutor()
        agent = SiteAgent(client, name="solo", executor=executor,
                          poll_interval=0.01, ttl=30.0)
        stats = agent.run(idle_exit_after=2)
    assert executor.calls == ["a", "b", "c"]
    assert stats.completed == 3 and stats.failed == 0
    run = store.list_runs()[0]
    assert run["status"] == "completed"


def test_two_agents_split_the_work_without_overlap():
    store = fresh_store()
    units = [(f"u{i}", []) for i in range(8)]
    store.submit_run({"n": 1}, units, name="fanout")
    with control_plane(store=store) as (_server, client):
        executors = [StubExecutor(), StubExecutor()]
        agents = [
            SiteAgent(client, name=f"agent-{i}", executor=executors[i],
                      poll_interval=0.01, ttl=30.0)
            for i in range(2)
        ]
        threads = [
            threading.Thread(target=agent.run, kwargs={"idle_exit_after": 3})
            for agent in agents
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
    done = executors[0].calls + executors[1].calls
    # Every unit executed exactly once — the lease protocol never
    # hands one unit to both agents.
    assert sorted(done) == sorted(name for name, _ in units)
    assert store.list_runs()[0]["status"] == "completed"


def test_failed_unit_is_reported_not_retried_silently():
    store = fresh_store()
    run = store.submit_run({"n": 1}, [("a", []), ("b", ["a"])], name="sad")
    with control_plane(store=store) as (_server, client):
        executor = StubExecutor(fail_units={"a"})
        agent = SiteAgent(client, name="honest", executor=executor,
                          poll_interval=0.01, ttl=30.0)
        stats = agent.run(idle_exit_after=2)
    assert stats.failed == 1 and stats.completed == 0
    detail = store.get_run(run["id"])
    assert detail["status"] == "failed"
    assert "synthetic failure" in detail["units"][0]["error"]
    # The dependent never ran.
    assert executor.calls == ["a"]


def test_crashed_agent_loses_lease_and_successor_requeues_exactly_once(
    aborts_are_catchable,
):
    clock = FakeClock()
    store = fresh_store(clock=clock, default_ttl=10.0)
    run = store.submit_run({"n": 1}, [("solo", [])], name="doomed")
    with control_plane(store=store) as (_server, client):
        executor = StubExecutor()
        victim = SiteAgent(client, name="victim", executor=executor,
                           poll_interval=0.01, ttl=10.0, chaos=crash_injector())
        with pytest.raises(FakeDeath):
            victim.run(max_units=1)
        # The "dead" agent executed nothing; its lease is still active.
        assert executor.calls == []
        assert store.stats()["leases"] == {"active": 1}

        # TTL passes; any API touch sweeps and requeues — exactly once.
        clock.advance(11.0)
        client.runs()
        unit = store.get_run(run["id"])["units"][0]
        assert unit["status"] == "pending" and unit["requeues"] == 1

        rescuer = SiteAgent(client, name="rescuer", executor=executor,
                            poll_interval=0.01, ttl=10.0)
        stats = rescuer.run(idle_exit_after=2)
    assert stats.completed == 1
    assert executor.calls == ["solo"]
    assert store.get_run(run["id"])["status"] == "completed"


def test_agent_skips_completion_when_lease_was_lost():
    clock = FakeClock()
    store = fresh_store(clock=clock, default_ttl=10.0)
    run = store.submit_run({"n": 1}, [("solo", [])], name="slow")
    with control_plane(store=store) as (_server, client):
        release = {}

        def slow_executor(config, unit, chaos=None):
            # While this agent "computes", its lease expires and a rival
            # completes the unit.
            clock.advance(11.0)
            rival = store.lease("rival", ttl=10.0)
            store.complete(rival["lease_id"], result={"winner": "rival"})
            release["done"] = True
            return {"winner": "slow"}

        agent = SiteAgent(client, name="slowpoke", executor=slow_executor,
                          poll_interval=0.01, ttl=10.0,
                          heartbeat_interval=1000.0)
        stats = agent.run(max_units=1)
    assert release["done"]
    # Duplicate-complete acknowledgement: the rival's result stands.
    assert store.get_run(run["id"])["units"][0]["result"] == {"winner": "rival"}
    assert stats.completed + stats.failed + stats.lost_leases == 1


def test_heartbeat_keeps_long_work_alive():
    clock = FakeClock()
    store = fresh_store(clock=clock, default_ttl=10.0)
    run = store.submit_run({"n": 1}, [("long", [])], name="long")
    with control_plane(store=store) as (_server, client):
        beats = threading.Event()

        def long_executor(config, unit, chaos=None):
            # Simulate work outliving the original TTL, saved by beats.
            for _ in range(4):
                clock.advance(4.0)
                beats.wait(0.05)
            return {"ok": True}

        agent = SiteAgent(client, name="steady", executor=long_executor,
                          poll_interval=0.01, ttl=10.0, heartbeat_interval=0.02)
        stats = agent.run(max_units=1)
    assert stats.completed == 1
    assert stats.heartbeats >= 1
    assert store.get_run(run["id"])["units"][0]["status"] == "completed"


def test_crash_rate_zero_is_a_no_op_surface(aborts_are_catchable):
    store = fresh_store()
    store.submit_run({"n": 1}, [("solo", [])], name="safe")
    with control_plane(store=store) as (_server, client):
        executor = StubExecutor()
        agent = SiteAgent(client, name="lucky", executor=executor,
                          poll_interval=0.01, ttl=30.0,
                          chaos=crash_injector(rate=0.0))
        stats = agent.run(idle_exit_after=2)
    assert stats.completed == 1
