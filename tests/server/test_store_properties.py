"""Property-based store invariants under arbitrary protocol interleavings.

Hypothesis drives the lease protocol as an adversarial scheduler:
random sequences of lease / heartbeat / complete / clock-advance /
sweep, from multiple simulated agents, against a small random unit
graph.  Whatever the interleaving:

* a unit is never assigned to two live leases at once (the
  double-assignment that would make two facilities ship the same file);
* attempts/requeues only grow, and requeues never exceed the budget;
* once every unit is driven to a terminal state the run converges to
  ``completed`` or ``failed`` and no further work is leasable.
"""

from hypothesis import given, settings, strategies as st

from tests.server.harness import FakeClock, fresh_store


# A step is (op, payload) drawn independently of store state; the
# executor below interprets it against whatever is currently live.
STEPS = st.lists(
    st.one_of(
        st.tuples(st.just("lease"), st.sampled_from(["a1", "a2", "a3"])),
        st.tuples(st.just("heartbeat"), st.integers(min_value=0, max_value=5)),
        st.tuples(st.just("complete"), st.integers(min_value=0, max_value=5)),
        st.tuples(st.just("fail"), st.integers(min_value=0, max_value=5)),
        st.tuples(st.just("advance"), st.floats(min_value=0.5, max_value=12.0)),
        st.tuples(st.just("sweep"), st.just(None)),
    ),
    min_size=1,
    max_size=60,
)

# Chains of 1-4 units: unit i depends on unit i-1 (the real plan's shape).
GRAPHS = st.integers(min_value=1, max_value=4).map(
    lambda n: [(f"u{i}", [f"u{i-1}"] if i else []) for i in range(n)]
)


@settings(max_examples=60, deadline=None)
@given(units=GRAPHS, steps=STEPS)
def test_interleavings_never_double_assign_and_converge(units, steps):
    clock = FakeClock()
    store = fresh_store(clock=clock, default_ttl=10.0, max_requeues=3)
    run = store.submit_run({"name": "prop"}, units, name="prop")
    run_id = run["id"]
    granted = []  # every lease ever granted, in grant order

    def check_invariants():
        detail = store.get_run(run_id)
        by_unit = {}
        for lease in store.leases(run_id):
            if lease["status"] == "active":
                by_unit.setdefault(lease["unit"], []).append(lease["id"])
        # Never two live leases on one unit.
        assert all(len(ids) == 1 for ids in by_unit.values()), by_unit
        for unit in detail["units"]:
            assert unit["requeues"] <= 3 + 1
            assert unit["attempts"] >= unit["requeues"]
            if unit["status"] == "leased":
                assert unit["agent"] is not None

    for op, payload in steps:
        if op == "lease":
            lease = store.lease(payload, ttl=10.0)
            if lease is not None:
                granted.append(lease)
        elif op == "advance":
            clock.advance(payload)
        elif op == "sweep":
            store.expire_leases()
        elif granted:
            lease = granted[payload % len(granted)]
            try:
                if op == "heartbeat":
                    store.heartbeat(lease["lease_id"], ttl=10.0)
                elif op == "complete":
                    store.complete(lease["lease_id"], result={"ok": 1})
                else:
                    store.complete(lease["lease_id"], status="failed", error="x")
            except Exception:
                # Lost/expired/finished leases conflict by design; the
                # invariant is that the store stays consistent, not that
                # every call succeeds.
                pass
        check_invariants()

    # Drive whatever is left to the end: one diligent agent, no crashes.
    for _ in range(8 * len(units) + 8):
        detail = store.get_run(run_id)
        if detail["status"] in ("completed", "failed"):
            break
        lease = store.lease("finisher", ttl=10.0)
        if lease is None:
            # Work in flight from the random phase: expire it and retry.
            clock.advance(11.0)
            store.expire_leases()
            continue
        store.complete(lease["lease_id"], result={"ok": 1})
        check_invariants()

    final = store.get_run(run_id)
    assert final["status"] in ("completed", "failed")
    # Terminal runs lease nothing.
    assert store.lease("afterparty") is None
    if final["status"] == "completed":
        assert all(u["status"] == "completed" for u in final["units"])
    else:
        assert any(u["status"] == "failed" for u in final["units"])
