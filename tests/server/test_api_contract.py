"""Contract tests: the HTTP surface the clients and docs promise.

These run over real HTTP against an in-process server, asserting the
*wire* contract — routes, status codes, payload shapes, error bodies —
rather than store internals.  If one of these breaks, deployed agents
at other facilities break with it.
"""

import json
import urllib.error
import urllib.request

import pytest

from tests.core.crash_driver import build_raw_config
from tests.server.harness import control_plane

from repro.server import RequestFailed
from repro.server.api import ROUTES


def raw_request(url, method="GET", body=None):
    """Bypass the typed client: the contract is bytes on a socket."""
    data = None if body is None else json.dumps(body).encode()
    request = urllib.request.Request(
        url, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            blob = response.read()
            return response.status, json.loads(blob) if blob else None
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read() or b"{}")


@pytest.fixture()
def plane(tmp_path):
    with control_plane() as (server, client):
        yield server, client, build_raw_config(str(tmp_path), 2)


def test_health_reports_version(plane):
    server, _client, _cfg = plane
    status, payload = raw_request(server.url + "/v1/health")
    assert status == 200
    assert payload["ok"] is True
    assert payload["version"]


def test_submit_returns_201_with_unit_graph(plane):
    server, _client, cfg = plane
    status, payload = raw_request(
        server.url + "/v1/runs", "POST", {"config": cfg, "name": "c1"}
    )
    assert status == 201
    run = payload["run"]
    assert run["id"].startswith("run-")
    assert run["status"] == "queued"
    names = [u["name"] for u in run["units"]]
    assert names == ["download", "model", "preprocess", "inference", "shipment"]
    # Dependencies mirror the real barrier plan.
    deps = {u["name"]: u["deps"] for u in run["units"]}
    assert deps["preprocess"] == ["download", "model"]
    assert deps["shipment"] == ["inference"]


def test_submit_rejects_bad_bodies(plane):
    server, _client, cfg = plane
    assert raw_request(server.url + "/v1/runs", "POST", {})[0] == 400
    assert raw_request(
        server.url + "/v1/runs", "POST", {"config": {"bogus": True}}
    )[0] == 400
    # Journaling is mandatory for remote runs.
    no_journal = dict(cfg)
    no_journal["journal"] = {"enabled": False}
    status, payload = raw_request(
        server.url + "/v1/runs", "POST", {"config": no_journal}
    )
    assert status == 400
    assert "journal" in payload["error"]


def test_malformed_json_is_400_not_500(plane):
    server, _client, _cfg = plane
    request = urllib.request.Request(
        server.url + "/v1/runs", data=b"{not json", method="POST",
        headers={"Content-Type": "application/json"},
    )
    with pytest.raises(urllib.error.HTTPError) as err:
        urllib.request.urlopen(request, timeout=10)
    assert err.value.code == 400


def test_unknown_route_and_method_codes(plane):
    server, _client, _cfg = plane
    assert raw_request(server.url + "/v1/nope")[0] == 404
    # Known path, wrong verb.
    assert raw_request(server.url + "/v1/health", "POST", {})[0] == 405


def test_errors_are_json_objects(plane):
    server, _client, _cfg = plane
    status, payload = raw_request(server.url + "/v1/runs/run-ghost")
    assert status == 404
    assert set(payload) == {"error"}
    assert "run-ghost" in payload["error"]


def test_empty_lease_pool_is_204(plane):
    server, _client, _cfg = plane
    status, payload = raw_request(
        server.url + "/v1/lease", "POST", {"agent": "a1"}
    )
    assert status == 204
    assert payload is None


def test_lease_requires_agent_name(plane):
    server, _client, _cfg = plane
    assert raw_request(server.url + "/v1/lease", "POST", {})[0] == 400


def test_full_protocol_round_trip(plane):
    server, client, cfg = plane
    run = client.submit(cfg, name="round-trip")

    lease = client.lease("agent-a", site="alcf")
    assert lease.unit == "download"
    assert lease.config == cfg
    assert client.heartbeat(lease.lease_id)["expires_at"] > 0

    ack = client.complete(lease.lease_id, result={"files": 6})
    assert ack["duplicate"] is False

    detail = client.run(run.run_id)
    assert detail.status == "running"
    by_name = {u.name: u for u in detail.units}
    assert by_name["download"].status == "completed"
    assert by_name["download"].result == {"files": 6}
    assert by_name["download"].agent == "agent-a"

    kinds = [e["kind"] for e in client.events(run.run_id)]
    assert kinds == ["submitted", "leased", "unit_completed"]


def test_pause_resume_retry_over_http(plane):
    server, client, cfg = plane
    run = client.submit(cfg)
    assert client.pause(run.run_id).status == "paused"
    assert client.lease("a1") is None
    assert client.resume(run.run_id).status == "queued"

    lease = client.lease("a1")
    client.complete(lease.lease_id, status="failed", error="boom")
    with pytest.raises(RequestFailed) as err:
        client.retry(run.run_id, "model")  # not terminal
    assert err.value.status == 409
    redo = client.retry(run.run_id, "download")
    assert redo.status == "pending"


def test_metrics_expose_requests_and_store_counts(plane):
    server, client, cfg = plane
    client.submit(cfg)
    client.runs()
    payload = client.metrics()
    assert payload["store"]["runs"] == {"queued": 1}
    metrics = payload["metrics"]
    assert metrics["control_plane.api.requests"] >= 2
    assert metrics["control_plane.api.latency_seconds.count"] >= 2
    assert metrics["control_plane.runs.submitted"] == 1


def test_route_table_is_total():
    """Every advertised route resolves to a real handler method."""
    from repro.server.api import ControlPlaneAPI

    for _method, _pattern, name in ROUTES:
        assert callable(getattr(ControlPlaneAPI, name))
