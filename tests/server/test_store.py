"""RunStore semantics: leases, expiry, requeues, restarts, idempotency.

The store is the control plane's source of truth, so these tests pin
its invariants directly (no HTTP):

* dependency order is enforced — a unit leases only after its deps land;
* an expired lease requeues its unit **exactly once** per expiry, and a
  killed agent's work is never lost;
* duplicate completion POSTs are acknowledged idempotently;
* a server restart (new RunStore over the same SQLite file) reloads
  every run, unit, and lease unchanged.
"""

import pytest

from tests.server.harness import CHAIN_UNITS, FakeClock, fresh_store, submit_minimal

from repro.server.store import Conflict, Fenced, NotFound, RunStore


# -- submission ---------------------------------------------------------------

def test_submit_registers_units_in_order():
    store = fresh_store()
    run = submit_minimal(store)
    assert run["status"] == "queued"
    assert [u["name"] for u in run["units"]] == [name for name, _ in CHAIN_UNITS]
    assert all(u["status"] == "pending" for u in run["units"])


def test_submit_rejects_empty_and_malformed_graphs():
    store = fresh_store()
    with pytest.raises(Conflict):
        store.submit_run({}, [])
    with pytest.raises(Conflict):
        store.submit_run({}, [("a", []), ("a", [])])
    with pytest.raises(Conflict):
        store.submit_run({}, [("a", ["ghost"])])


def test_unknown_run_raises_not_found():
    store = fresh_store()
    with pytest.raises(NotFound):
        store.get_run("run-nope")


# -- lease ordering -----------------------------------------------------------

def test_leases_respect_dependency_order():
    store = fresh_store()
    run = submit_minimal(store)
    first = store.lease("a1")
    assert first["unit"] == "download"
    # Nothing else is ready while download is in flight.
    assert store.lease("a2") is None
    store.complete(first["lease_id"])
    assert store.lease("a2")["unit"] == "model"
    assert store.get_run(run["id"])["status"] == "running"


def test_fifo_between_runs():
    store = fresh_store()
    clock = store.clock
    early = submit_minimal(store, name="early", units=[("solo", [])])
    clock.advance(1.0)
    submit_minimal(store, name="late", units=[("solo", [])])
    lease = store.lease("a1")
    assert lease["run_id"] == early["id"]


def test_lease_carries_the_submitted_config():
    store = fresh_store()
    submit_minimal(store, config={"name": "cfg", "archive": {"seed": 9}})
    lease = store.lease("a1")
    assert lease["config"]["archive"]["seed"] == 9


# -- expiry and requeue -------------------------------------------------------

def test_expired_lease_requeues_exactly_once():
    clock = FakeClock()
    store = fresh_store(clock=clock)
    run = submit_minimal(store, units=[("solo", [])])
    lease = store.lease("doomed", ttl=10.0)
    assert lease is not None

    clock.advance(11.0)
    expired = store.expire_leases()
    assert expired == [(run["id"], "solo")]
    # Repeated sweeps must not requeue (or count) again.
    assert store.expire_leases() == []

    unit = store.get_run(run["id"])["units"][0]
    assert unit["status"] == "pending"
    assert unit["requeues"] == 1

    # The next agent picks the unit up with a fresh lease.
    release = store.lease("successor", ttl=10.0)
    assert release["unit"] == "solo"
    assert release["lease_id"] != lease["lease_id"]
    assert release["attempt"] == 2


def test_heartbeat_extends_and_lost_lease_conflicts():
    clock = FakeClock()
    store = fresh_store(clock=clock)
    submit_minimal(store, units=[("solo", [])])
    lease = store.lease("a1", ttl=10.0)

    clock.advance(8.0)
    beat = store.heartbeat(lease["lease_id"], ttl=10.0)
    assert beat["expires_at"] == pytest.approx(clock.now + 10.0)

    # The extension carried it past the original deadline.
    clock.advance(8.0)
    assert store.expire_leases() == []

    clock.advance(11.0)
    store.expire_leases()
    with pytest.raises(Conflict):
        store.heartbeat(lease["lease_id"])
    with pytest.raises(NotFound):
        store.heartbeat("lease-ghost")


def test_requeue_budget_exhaustion_fails_the_unit():
    clock = FakeClock()
    store = fresh_store(clock=clock, max_requeues=2)
    run = submit_minimal(store, units=[("solo", [])])
    for _ in range(3):
        assert store.lease("crashy", ttl=5.0) is not None
        clock.advance(6.0)
        store.expire_leases()
    unit = store.get_run(run["id"])["units"][0]
    assert unit["status"] == "failed"
    assert "expired" in unit["error"]
    assert store.get_run(run["id"])["status"] == "failed"
    assert store.lease("next") is None


def test_completion_after_expiry_defers_to_new_owner():
    clock = FakeClock()
    store = fresh_store(clock=clock)
    run = submit_minimal(store, units=[("solo", [])])
    stale = store.lease("slow", ttl=5.0)
    clock.advance(6.0)
    fresh = store.lease("fast", ttl=5.0)
    assert fresh["unit"] == "solo"

    # The presumed-dead agent wakes up and reports: too late, the unit
    # was requeued and the new owner is authoritative.
    with pytest.raises(Conflict):
        store.complete(stale["lease_id"], result={"files": 1})

    store.complete(fresh["lease_id"], result={"files": 2})
    unit = store.get_run(run["id"])["units"][0]
    assert unit["result"] == {"files": 2}


def test_late_completion_after_new_owner_finished_is_fenced():
    clock = FakeClock()
    store = fresh_store(clock=clock)
    run = submit_minimal(store, units=[("solo", [])])
    stale = store.lease("slow", ttl=5.0)
    clock.advance(6.0)
    fresh = store.lease("fast", ttl=5.0)
    assert fresh["fence"] == stale["fence"] + 1
    store.complete(fresh["lease_id"], result={"files": 2})

    # The loser's late POST is rejected — and the rejection is idempotent:
    # re-sending it is the same fenced refusal, never a state change.
    for _ in range(2):
        with pytest.raises(Fenced):
            store.complete(stale["lease_id"], result={"files": 1})
    # The authoritative result is untouched.
    assert store.get_run(run["id"])["units"][0]["result"] == {"files": 2}


def test_duplicate_completion_same_lease_is_idempotent():
    store = fresh_store()
    run = submit_minimal(store, units=[("solo", [])])
    lease = store.lease("a1")
    first = store.complete(lease["lease_id"], result={"files": 1})
    second = store.complete(lease["lease_id"], result={"files": 999})
    assert first["duplicate"] is False
    assert second["duplicate"] is True
    assert store.get_run(run["id"])["units"][0]["result"] == {"files": 1}


# -- operator actions ---------------------------------------------------------

def test_pause_blocks_leasing_resume_restores():
    store = fresh_store()
    run = submit_minimal(store, units=[("solo", [])])
    store.pause_run(run["id"])
    assert store.get_run(run["id"])["status"] == "paused"
    assert store.lease("a1") is None
    store.resume_run(run["id"])
    assert store.lease("a1")["unit"] == "solo"


def test_failed_unit_blocks_dependents_until_retry():
    store = fresh_store()
    run = submit_minimal(store, units=[("a", []), ("b", ["a"])])
    lease = store.lease("a1")
    store.complete(lease["lease_id"], status="failed", error="boom")
    assert store.get_run(run["id"])["status"] == "failed"
    assert store.lease("a1") is None

    with pytest.raises(NotFound):
        store.retry_unit(run["id"], "ghost")
    store.retry_unit(run["id"], "a")
    assert store.get_run(run["id"])["status"] == "queued"
    redo = store.lease("a1")
    assert redo["unit"] == "a"
    store.complete(redo["lease_id"])
    assert store.lease("a1")["unit"] == "b"


def test_retry_requires_terminal_unit():
    store = fresh_store()
    run = submit_minimal(store, units=[("solo", [])])
    with pytest.raises(Conflict):
        store.retry_unit(run["id"], "solo")  # still pending
    store.lease("a1")
    with pytest.raises(Conflict):
        store.retry_unit(run["id"], "solo")  # leased


# -- durability ---------------------------------------------------------------

def test_restart_reloads_everything(tmp_path):
    db = str(tmp_path / "cp.db")
    clock = FakeClock()
    store = RunStore(db, clock=clock)
    run = submit_minimal(store, units=[("a", []), ("b", ["a"])])
    lease = store.lease("a1", ttl=30.0)
    store.complete(lease["lease_id"], result={"files": 7})
    mid = store.lease("a1", ttl=30.0)
    assert mid["unit"] == "b"
    store.close()

    # The server process dies and comes back over the same file: every
    # run, unit, lease, and event is still there.
    reborn = RunStore(db, clock=clock)
    detail = reborn.get_run(run["id"])
    assert detail["status"] == "running"
    assert detail["units"][0] == {
        **detail["units"][0], "status": "completed", "result": {"files": 7},
    }
    assert detail["units"][1]["status"] == "leased"
    # The in-flight lease survived and still completes.
    ack = reborn.complete(mid["lease_id"], result={"files": 3})
    assert ack["duplicate"] is False
    assert reborn.get_run(run["id"])["status"] == "completed"
    kinds = [e["kind"] for e in reborn.events(run["id"])]
    assert kinds[0] == "submitted"
    assert "unit_completed" in kinds
    reborn.close()


def test_stats_counts_by_status():
    store = fresh_store()
    submit_minimal(store, units=[("a", []), ("b", ["a"])])
    lease = store.lease("a1")
    stats = store.stats()
    assert stats["runs"] == {"running": 1}
    assert stats["units"] == {"leased": 1, "pending": 1}
    assert stats["leases"] == {"active": 1}
    store.complete(lease["lease_id"])
    assert store.stats()["units"] == {"completed": 1, "pending": 1}
