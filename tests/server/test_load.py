"""Load test: the control plane under a concurrent client burst.

Marked ``slow``: the tier-1 job skips it (``-m "not slow"``); the
bench-smoke CI job runs it, alongside the ``control_plane`` entry in
``BENCH_endtoend.json`` (see ``benchmarks/baseline.py``) which records
p95 latency and submissions/sec for regression gating.

The shape mirrors the paper's multi-facility reality: many operators
and agents hammering one service — here ≥200 concurrent clients, each
submitting a run, polling status, and driving the lease protocol end to
end.  The assertions are about *correctness under concurrency* (every
request answered, every run drained, no double-assignment); latency
numbers belong to the benchmark, not the test.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from tests.server.harness import build_raw_config, control_plane

from repro.server import ControlPlaneClient

pytestmark = pytest.mark.slow

CLIENTS = 200
UNITS_PER_RUN = 5  # the five-stage plan


@pytest.mark.slow
def test_200_concurrent_clients_all_served_and_drained(tmp_path):
    raw = build_raw_config(str(tmp_path), 2)
    with control_plane() as (server, _client):
        url = server.url
        errors = []
        run_ids = []
        lock = threading.Lock()

        def one_client(index):
            try:
                client = ControlPlaneClient(url, timeout=60.0, retries=5)
                run = client.submit(raw, name=f"load-{index}")
                with lock:
                    run_ids.append(run.run_id)
                # A status poll and a lease-protocol round per client.
                client.run(run.run_id)
                lease = client.lease(f"agent-{index}")
                if lease is not None:
                    client.heartbeat(lease.lease_id)
                    client.complete(lease.lease_id, result={"by": index})
            except Exception as exc:  # noqa: BLE001 — collect, assert below
                with lock:
                    errors.append(f"client {index}: {exc!r}")

        with ThreadPoolExecutor(max_workers=CLIENTS) as pool:
            list(pool.map(one_client, range(CLIENTS)))

        assert errors == [], errors[:10]
        assert len(run_ids) == CLIENTS

        # Drain whatever the burst left behind with a few worker loops.
        def drainer(name):
            client = ControlPlaneClient(url, timeout=60.0, retries=5)
            while True:
                lease = client.lease(name)
                if lease is None:
                    return
                client.complete(lease.lease_id, result={"by": name})

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(drainer, [f"drainer-{i}" for i in range(8)]))

        stats = server.store.stats()
        assert stats["runs"] == {"completed": CLIENTS}
        assert stats["units"] == {"completed": UNITS_PER_RUN * CLIENTS}
        # Every unit completed exactly once: granted leases that finished
        # == units, everything else expired/abandoned cleanly.
        assert stats["leases"].get("active", 0) == 0

        # The server saw and metered the whole burst.
        snapshot = server.api.metrics.snapshot()
        assert snapshot["control_plane.runs.submitted"] == CLIENTS
        assert snapshot["control_plane.api.latency_seconds.count"] >= 5 * CLIENTS
