"""Fault-model e2e: agents die mid-lease with *real* work in flight.

``test_agent.py`` pins the lease protocol with stub executors; here the
victim dies inside genuine stage execution — mid-download, or inside
the preprocess torn-write window — leaving real partial artifacts on
disk.  The lease expires, the unit requeues exactly once, a rescuer
re-executes it, and the run journal's replay makes the redo idempotent:
the delivered corpus is still byte-identical to ``golden_corpus.json``.

This is the distributed version of ``tests/core/test_crash_resume.py``:
same fault surfaces, same oracle, but the recovery mechanism under test
is lease expiry + requeue instead of a manual ``--resume``.
"""

import threading
import time

import pytest

from tests.server.harness import build_raw_config, control_plane
from tests.server.test_service_endtoend import delivered_corpus, load_golden

import repro.chaos.surfaces as surfaces
from repro.chaos import FaultInjector, FaultPlan, FaultSpec
from repro.server import SiteAgent


class FakeDeath(BaseException):
    """Stands in for os._exit: unwinds the agent like SIGKILL would."""


@pytest.fixture()
def aborts_are_catchable(monkeypatch):
    monkeypatch.setattr(
        surfaces, "_abort", lambda code: (_ for _ in ()).throw(FakeDeath(code))
    )


def stage_crash_injector(stage):
    plan = FaultPlan(seed=0, faults=(FaultSpec(stage=stage, kind="crash"),))
    return FaultInjector(plan)


# (fault stage, unit the victim dies in).  A "preprocess" crash fires in
# the *model* unit: model bootstrap preprocesses the leading scene, so
# the first tile write — and its crash window — happens there.  The
# shipment crash fires mid-delivery, after real tiles already moved.
CASES = [("download", "download"), ("preprocess", "model"), ("shipment", "shipment")]


@pytest.mark.parametrize("stage,crashed_unit", CASES)
def test_agent_killed_mid_stage_requeues_once_and_corpus_is_golden(
    stage, crashed_unit, tmp_path, aborts_are_catchable
):
    golden = load_golden()
    raw = build_raw_config(str(tmp_path), golden["granules"])

    with control_plane() as (server, client):
        run = client.submit(raw, name=f"crash-{stage}")

        # The victim carries a crash fault at the target stage: it dies
        # mid-execution, holding the lease, with partial artifacts (a
        # half-fetched granule, a torn .part tile) already on disk.
        victim = SiteAgent(client, name="victim", site="doomed",
                           poll_interval=0.05, ttl=1.0,
                           chaos=stage_crash_injector(stage))
        died = threading.Event()

        def victim_loop():
            try:
                victim.run(idle_exit_after=200)
            except FakeDeath:
                died.set()

        victim_thread = threading.Thread(target=victim_loop)
        victim_thread.start()
        victim_thread.join(timeout=120)
        assert died.is_set(), "crash fault never fired"

        # Give the 1s TTL time to lapse, then let the rescuer finish the
        # run; its lease polls sweep the expired lease and requeue.
        time.sleep(1.2)
        rescuer = SiteAgent(client, name="rescuer", site="alcf",
                            poll_interval=0.05, ttl=60.0)
        stats = rescuer.run(idle_exit_after=10)
        detail = client.run(run.run_id)

    assert detail.status == "completed", {
        u.name: (u.status, u.error) for u in detail.units
    }
    by_name = {u.name: u for u in detail.units}
    # Exactly one requeue of the crashed unit, executed by the rescuer.
    assert by_name[crashed_unit].requeues == 1
    assert by_name[crashed_unit].attempts == 2
    assert by_name[crashed_unit].agent == "rescuer"
    assert stats.failed == 0

    # The oracle: identical bytes to an uninterrupted local run.
    assert delivered_corpus(str(tmp_path)) == golden["files"]


def test_duplicate_result_post_over_http_is_idempotent(tmp_path):
    """A timed-out-then-retried completion POST must not double-apply.

    The realistic trigger: the server's 200 is lost in the network, the
    agent re-sends the same completion.  The second POST must be a pure
    acknowledgement — same unit status, recorded result unchanged.
    """
    golden = load_golden()
    raw = build_raw_config(str(tmp_path), golden["granules"])

    with control_plane() as (server, client):
        run = client.submit(raw, name="dup-post")
        agent = SiteAgent(client, name="site-a", poll_interval=0.05, ttl=60.0)
        agent.run(max_units=1)  # download: executed, completed, reported

        first = client.run(run.run_id)
        recorded = {u.name: u.result for u in first.units}["download"]
        assert recorded is not None

        lease_id = server.store.leases(run.run_id)[0]["id"]
        # The retry even carries a (bogus) different payload — the store
        # must keep the first, authoritative record.
        ack = client.complete(lease_id, result={"files": -999})
        assert ack["duplicate"] is True
        assert ack["status"] == "completed"

        second = client.run(run.run_id)
        assert {u.name: u.result for u in second.units}["download"] == recorded
        # And the unit was not re-opened: still exactly one attempt.
        assert {u.name: u.attempts for u in second.units}["download"] == 1
