"""Partition tolerance, piece by piece.

The wire-level fault model (:class:`~repro.chaos.surfaces.ChaosTransport`),
the client's idempotency-aware retry discipline, the server's dedupe +
fencing + reconcile machinery, the agent's degraded mode, and the
startup sweep — each exercised in isolation here.  The end-to-end
matrix (every protocol phase severed, outages shorter and longer than
the lease TTL, golden-corpus byte identity) lives in
``test_partition_matrix.py``.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from tests.server.harness import FakeClock, control_plane, fresh_store, submit_minimal

from repro.chaos import ChaosTransport, FaultInjector, FaultPlan, FaultSpec
from repro.core.workflow import PARTITION_COUNTERS
from repro.net.retry import BackoffPolicy
from repro.server import (
    ControlPlaneClient,
    ControlPlaneServer,
    Outbox,
    RequestFailed,
    ServerUnavailable,
    SiteAgent,
)
from repro.server.execution import LeaseLost
from repro.server.store import RunStore


def wire_chaos(*specs, seed=7):
    return FaultInjector(FaultPlan(seed=seed, faults=tuple(specs)))


def spec(kind, match="", **kwargs):
    return FaultSpec(stage="net", kind=kind, match=match, **kwargs)


class FakeResponse:
    status = 200

    def __init__(self, payload=None):
        self._blob = json.dumps(payload or {}).encode()

    def read(self):
        return self._blob

    def close(self):
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


class FakeWire:
    """An inner opener that records calls and answers 200 {}."""

    def __init__(self):
        self.calls = []

    def __call__(self, req, timeout=None):
        self.calls.append((req.get_method(), req.selector, timeout))
        return FakeResponse()


def post(path):
    return urllib.request.Request(
        f"http://cp.test{path}", data=b"{}", method="POST"
    )


def get(path):
    return urllib.request.Request(f"http://cp.test{path}", method="GET")


class TestChaosTransport:
    def test_partition_triggers_on_matched_phase_then_severs_all(self):
        clock = FakeClock()
        inner = FakeWire()
        transport = ChaosTransport(
            wire_chaos(spec("partition", match="lease", latency=5.0)),
            inner=inner, clock=clock, sleeper=lambda s: None,
        )
        # Unmatched phases pass while the link is intact.
        transport(get("/v1/health"))
        assert len(inner.calls) == 1
        # The first lease-phase request trips the outage...
        with pytest.raises(ConnectionRefusedError):
            transport(post("/v1/lease"))
        # ...and while it lasts, EVERY phase is severed, not just lease.
        with pytest.raises(ConnectionRefusedError):
            transport(get("/v1/health"))
        assert transport.severed
        # The window is wall-clock: past `latency` seconds the link heals.
        clock.advance(5.1)
        assert not transport.severed
        transport(get("/v1/health"))
        assert len(inner.calls) == 2
        assert transport.stats["outages"] == 1
        assert transport.stats["refused"] == 2

    def test_partition_outage_fires_once_per_times_budget(self):
        clock = FakeClock()
        transport = ChaosTransport(
            wire_chaos(spec("partition", match="lease", latency=1.0)),
            inner=FakeWire(), clock=clock, sleeper=lambda s: None,
        )
        with pytest.raises(ConnectionRefusedError):
            transport(post("/v1/lease"))
        clock.advance(2.0)
        # times defaults to 1: the healed link stays healed.
        transport(post("/v1/lease"))
        assert transport.stats["outages"] == 1

    def test_blackout_hangs_until_timeout_then_raises(self):
        clock = FakeClock()
        slept = []
        transport = ChaosTransport(
            wire_chaos(spec("blackout", match="heartbeat", latency=3.0)),
            inner=FakeWire(), clock=clock, sleeper=slept.append,
        )
        with pytest.raises(TimeoutError):
            transport(post("/v1/lease/abc/heartbeat"), timeout=0.5)
        # A blackout eats the caller's full timeout, not the whole window.
        assert slept == [0.5]
        assert transport.stats["blackholed"] == 1

    def test_reset_delivers_the_request_but_drops_the_response(self):
        inner = FakeWire()
        transport = ChaosTransport(
            wire_chaos(spec("reset", match="complete")),
            inner=inner, clock=FakeClock(), sleeper=lambda s: None,
        )
        with pytest.raises(ConnectionResetError):
            transport(post("/v1/lease/abc/complete"))
        # The at-least-once hazard: the server DID see the request.
        assert len(inner.calls) == 1
        assert transport.stats["resets"] == 1

    def test_flaky_drops_calls_and_slow_link_delays_them(self):
        inner = FakeWire()
        slept = []
        transport = ChaosTransport(
            wire_chaos(
                spec("flaky", times=2),
                spec("slow_link", latency=0.25, times=1),
            ),
            inner=inner, clock=FakeClock(), sleeper=slept.append,
        )
        results = []
        for _ in range(4):
            try:
                transport(get("/v1/health"))
                results.append("ok")
            except ConnectionResetError:
                results.append("dropped")
        assert results.count("dropped") == 2
        assert transport.stats["dropped"] == 2
        assert 0.25 in slept
        assert transport.stats["delayed"] == 1

    def test_heal_clears_an_active_outage(self):
        transport = ChaosTransport(
            wire_chaos(spec("partition", match="lease", latency=100.0)),
            inner=FakeWire(), clock=FakeClock(), sleeper=lambda s: None,
        )
        with pytest.raises(ConnectionRefusedError):
            transport(post("/v1/lease"))
        assert transport.severed
        transport.heal()
        assert not transport.severed
        transport(post("/v1/lease"))

    def test_same_seed_same_wire_behaviour(self):
        def run_sequence(seed):
            transport = ChaosTransport(
                wire_chaos(spec("flaky", rate=0.5, times=None), seed=seed),
                inner=FakeWire(), clock=FakeClock(), sleeper=lambda s: None,
            )
            out = []
            for _ in range(12):
                try:
                    transport(get("/v1/health"))
                    out.append(1)
                except ConnectionResetError:
                    out.append(0)
            return out

        assert run_sequence(3) == run_sequence(3)


class Refuser:
    """An opener that always refuses, counting attempts."""

    def __init__(self):
        self.calls = 0

    def __call__(self, req, timeout=None):
        self.calls += 1
        raise ConnectionRefusedError("refused")


class TestRetryDiscipline:
    def make_client(self, opener, **kwargs):
        kwargs.setdefault("retries", 3)
        kwargs.setdefault("backoff", 0.0)
        kwargs.setdefault("sleeper", lambda s: None)
        return ControlPlaneClient("http://cp.test", opener=opener, **kwargs)

    def test_non_idempotent_post_without_token_gets_one_attempt(self):
        refuser = Refuser()
        client = self.make_client(refuser)
        with pytest.raises(ServerUnavailable):
            client.request("POST", "/v1/lease", {"agent": "a"})
        assert refuser.calls == 1

    def test_dedupe_token_buys_the_retry_budget_back(self):
        refuser = Refuser()
        client = self.make_client(refuser)
        with pytest.raises(ServerUnavailable):
            client.request(
                "POST", "/v1/lease", {"agent": "a"}, retry_token="lease-a-1"
            )
        assert refuser.calls == 4  # 1 + retries

    def test_idempotent_get_retries_connect_errors(self):
        refuser = Refuser()
        client = self.make_client(refuser)
        with pytest.raises(ServerUnavailable):
            client.request("GET", "/v1/runs")
        assert refuser.calls == 4

    def test_4xx_is_definitive_and_never_retried(self):
        calls = []

        def opener(req, timeout=None):
            calls.append(req.selector)
            import io

            raise urllib.error.HTTPError(
                req.full_url, 400, "bad", {}, io.BytesIO(b'{"error":"nope"}')
            )

        client = self.make_client(opener)
        with pytest.raises(RequestFailed) as caught:
            client.request("GET", "/v1/runs")
        assert caught.value.status == 400
        assert len(calls) == 1

    def test_5xx_retried_only_for_idempotent_or_tokened(self):
        import io

        failures = {"n": 0}

        def opener(req, timeout=None):
            failures["n"] += 1
            if failures["n"] < 3:
                raise urllib.error.HTTPError(
                    req.full_url, 503, "busy", {}, io.BytesIO(b'{"error":"busy"}')
                )
            return FakeResponse({"runs": []})

        client = self.make_client(opener)
        assert client.request("GET", "/v1/runs") == {"runs": []}
        assert failures["n"] == 3

        failures["n"] = -100  # fail every attempt from here on
        with pytest.raises(RequestFailed):
            # Bare non-idempotent POST: the 503 is NOT retried.
            client.request("POST", "/v1/lease", {"agent": "a"})
        assert failures["n"] == -99

    def test_fenced_409_surfaces_on_the_exception(self):
        import io

        def opener(req, timeout=None):
            raise urllib.error.HTTPError(
                req.full_url, 409, "conflict", {},
                io.BytesIO(b'{"error":"stale","fenced":true}'),
            )

        client = self.make_client(opener)
        with pytest.raises(RequestFailed) as caught:
            client.request("POST", "/v1/lease/abc/complete", {}, retry_token="abc")
        assert caught.value.status == 409
        assert caught.value.fenced

    def test_health_probe_uses_a_short_timeout(self):
        seen = []

        def opener(req, timeout=None):
            seen.append(timeout)
            return FakeResponse({"status": "ok"})

        client = self.make_client(opener, timeout=10.0)
        client.health()
        assert seen == [5.0]  # timeout_scale 0.5


class TestDedupe:
    def test_lease_request_id_replays_the_original_grant(self):
        store = fresh_store()
        submit_minimal(store)
        first = store.lease("agent-a", ttl=30, request_id="lease-a-1")
        replay = store.lease("agent-a", ttl=30, request_id="lease-a-1")
        assert replay == first
        # A fresh ask is a different grant (next unit or None).
        other = store.lease("agent-a", ttl=30, request_id="lease-a-2")
        assert other != first

    def test_submit_request_id_replays_instead_of_twinning(self):
        store = fresh_store()
        run_a = submit_minimal(store)
        replay = store.submit_run(
            {"name": "dup"},
            [("download", [])],
            name="dup",
            request_id="submit-1",
        )
        again = store.submit_run(
            {"name": "dup"},
            [("download", [])],
            name="dup",
            request_id="submit-1",
        )
        assert replay["id"] == again["id"]
        assert run_a["id"] != replay["id"]
        assert len(store.list_runs()) == 2


class TestOutbox:
    def test_durable_roundtrip_and_clear(self, tmp_path):
        path = str(tmp_path / "spool" / "agent.jsonl")
        box = Outbox(path)
        box.append({"kind": "heartbeat", "lease_id": "l1"})
        box.append({"kind": "complete", "lease_id": "l1", "status": "completed"})
        # A successor process (agent restarted while partitioned) reloads.
        reborn = Outbox(path)
        assert len(reborn) == 2
        assert reborn.records()[0]["kind"] == "heartbeat"
        reborn.clear()
        assert len(reborn) == 0
        assert len(Outbox(path)) == 0

    def test_torn_tail_is_dropped_not_fatal(self, tmp_path):
        path = str(tmp_path / "agent.jsonl")
        with open(path, "w") as handle:
            handle.write(json.dumps({"kind": "heartbeat", "lease_id": "l1"}) + "\n")
            handle.write('{"kind": "complete", "lease')  # crash mid-append
        box = Outbox(path)
        assert [r["kind"] for r in box.records()] == ["heartbeat"]

    def test_memory_only_outbox_needs_no_path(self):
        box = Outbox()
        box.append({"kind": "heartbeat", "lease_id": "l1"})
        assert len(box) == 1
        box.clear()
        assert len(box) == 0


class TestFencing:
    def test_two_agents_exactly_once_loser_rejected_idempotently(self):
        """Satellite (d): lease expires mid-execution, a second agent
        finishes the unit, and the first agent's late POST is rejected
        with a fenced 409 — as many times as it retries."""
        clock = FakeClock()
        store = fresh_store(clock)
        submit_minimal(store)
        with control_plane(store=store) as (_server, client):
            stale = client.lease("agent-a", ttl=10.0)
            clock.advance(11.0)  # agent-a goes quiet past its TTL
            fresh = client.lease("agent-b", ttl=10.0)
            assert fresh.unit == stale.unit
            assert fresh.fence == stale.fence + 1
            client.complete(fresh.lease_id, result={"files": 7})
            for _ in range(2):  # the rejection is idempotent
                with pytest.raises(RequestFailed) as caught:
                    client.complete(stale.lease_id, result={"files": 1})
                assert caught.value.status == 409
                assert caught.value.fenced
            detail = client.run(stale.run_id)
        unit = {u.name: u for u in detail.units}[stale.unit]
        assert unit.status == "completed"
        assert unit.result == {"files": 7}  # the winner's bytes, once

    def test_heartbeat_reveals_fenced_lease_and_agent_stands_down(self):
        """Satellite (c): the heartbeat learns the lease was requeued;
        the executor is cancelled at a checkpoint and no completion is
        ever POSTed by the loser."""
        clock = FakeClock()
        store = fresh_store(clock)
        submit_minimal(store)

        started = threading.Event()

        def blocking_executor(config, unit, chaos=None, cancel=None):
            started.set()
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if cancel is not None and cancel.is_set():
                    raise LeaseLost("fenced away; standing down")
                time.sleep(0.005)
            raise AssertionError("cancel never fired")

        with control_plane(store=store) as (_server, client):
            agent = SiteAgent(
                client, name="agent-a", ttl=10.0,
                poll_interval=0.01, heartbeat_interval=0.03,
                executor=blocking_executor,
            )
            thread = threading.Thread(target=agent.run, kwargs={"max_units": 1})
            thread.start()
            assert started.wait(5.0)
            clock.advance(11.0)  # the lease silently expires server-side
            usurper = client.lease("agent-b", ttl=10.0)
            client.complete(usurper.lease_id, result={"files": 3})
            thread.join(timeout=10.0)
            assert not thread.is_alive()
            detail = client.run(usurper.run_id)

        assert agent.stats.lost_leases == 1
        assert agent.stats.completed == 0
        unit = {u.name: u for u in detail.units}[usurper.unit]
        assert unit.result == {"files": 3}


class TestDegradedAgent:
    def test_outage_spools_then_reconciles_exactly_once(self, tmp_path):
        """A partition at the complete phase: the agent finishes its
        unit, spools the result, probes, reconnects, and the replay
        lands exactly once."""
        chaos = wire_chaos(spec("partition", match="complete", latency=0.4))
        transport = ChaosTransport(chaos)
        executed = []

        def stub_executor(config, unit, chaos=None):
            executed.append(unit)
            return {"unit": unit}

        store = RunStore(":memory:")
        submit_minimal(store)
        with control_plane(store=store) as (server, _operator):
            client = ControlPlaneClient(
                server.url, timeout=0.3, retries=1, backoff=0.02,
                opener=transport,
            )
            agent = SiteAgent(
                client, name="site-a", ttl=30.0,
                poll_interval=0.01, heartbeat_interval=10.0,
                executor=stub_executor,
                outbox=str(tmp_path / "spool" / "a.jsonl"),
                reconnect=BackoffPolicy(base=0.02, max_delay=0.1, full_jitter=True),
            )
            agent.run(idle_exit_after=5)
            operator = ControlPlaneClient(server.url)
            detail = operator.run(store.list_runs()[0]["id"])
            snap = operator.metrics()["metrics"]

        assert all(u.status == "completed" for u in detail.units)
        # Every unit executed once and landed once.
        assert sorted(executed) == sorted(u.name for u in detail.units)
        assert all(u.attempts == 1 for u in detail.units)
        assert agent.stats.completed == len(detail.units)
        # The outage was real and the spool made it home.
        assert agent.stats.disconnects >= 1
        assert agent.stats.outbox_spooled >= 1
        assert agent.stats.outbox_replayed >= 1
        assert len(agent.outbox) == 0
        # The server's view of the same story.
        assert snap["control_plane.partition.reconciles"] >= 1
        assert snap["control_plane.partition.outbox_replayed"] >= 1
        assert snap["control_plane.partition.disconnects"] >= 1
        assert snap["control_plane.partition.reconnect_attempts"] >= 1

    def test_reconnect_limit_exhaustion_raises_for_the_cli(self):
        client = ControlPlaneClient(
            "http://127.0.0.1:9", timeout=0.1, retries=0, backoff=0.0,
            sleeper=lambda s: None,
        )
        agent = SiteAgent(
            client, name="site-a", poll_interval=0.0,
            reconnect=BackoffPolicy(base=0.0, max_delay=0.0, full_jitter=True),
            reconnect_limit=2, sleeper=lambda s: None,
        )
        with pytest.raises(ServerUnavailable):
            agent.run()
        assert agent.stats.disconnects == 1
        assert agent.stats.reconnect_attempts == 2

    def test_stop_event_interrupts_degraded_probing(self):
        client = ControlPlaneClient(
            "http://127.0.0.1:9", timeout=0.1, retries=0, backoff=0.0,
            sleeper=lambda s: None,
        )
        stop = threading.Event()
        probes = {"n": 0}

        def sleeper(seconds):
            probes["n"] += 1
            if probes["n"] >= 3:
                stop.set()

        agent = SiteAgent(
            client, name="site-a", poll_interval=0.0,
            reconnect=BackoffPolicy(base=0.0, max_delay=0.0, full_jitter=True),
            sleeper=sleeper,
        )
        stats = agent.run(stop=stop)  # reconnect_limit=None: probes forever
        assert stats.disconnects == 1
        assert stats.reconnect_attempts >= 2

    def test_partition_summary_matches_the_report_schema(self):
        stats = SiteAgent(
            ControlPlaneClient("http://127.0.0.1:9"), name="x"
        ).stats
        assert set(stats.partition_summary()) == {"enabled", *PARTITION_COUNTERS}


class TestRecovery:
    def test_startup_sweep_requeues_expired_leases_after_a_kill(self, tmp_path):
        db = str(tmp_path / "cp.db")
        store = RunStore(db)
        submit_minimal(store)
        grant = store.lease("agent-a", ttl=0.01)
        assert grant is not None
        time.sleep(0.05)  # the holder died; its lease ages out
        store.close()

        # A new server process over the same file repairs state before
        # serving: the sweep expires the dead lease and requeues the unit.
        server = ControlPlaneServer(db)
        assert server.swept["expired_leases"] >= 1
        server.start()
        try:
            client = ControlPlaneClient(server.url)
            regrant = client.lease("agent-b", ttl=30.0)
            assert regrant is not None
            assert regrant.unit == grant["unit"]
            assert regrant.fence == grant["fence"] + 1
        finally:
            server.stop()
            server.store.close()

    def test_reconcile_replay_is_idempotent(self):
        store = fresh_store()
        submit_minimal(store)
        grant = store.lease("agent-a", ttl=30.0)
        records = [
            {"kind": "heartbeat", "lease_id": grant["lease_id"], "ttl": 30.0},
            {
                "kind": "complete", "lease_id": grant["lease_id"],
                "status": "completed", "result": {"files": 2},
            },
        ]
        first = store.reconcile("agent-a", records)
        second = store.reconcile("agent-a", records)
        outcomes = [o["outcome"] for o in first["outcomes"]]
        assert outcomes[1] == "applied"
        assert [o["outcome"] for o in second["outcomes"]][1] == "duplicate"
        unit = {
            u["name"]: u for u in store.get_run(grant["run_id"])["units"]
        }[grant["unit"]]
        assert unit["status"] == "completed"
        assert unit["result"] == {"files": 2}
        assert unit["attempts"] == 1
