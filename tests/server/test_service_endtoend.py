"""End-to-end: the remote path ships byte-identical results.

The decisive test of the control plane: a fixed-seed five-stage run
submitted over HTTP and drained by site agents must deliver the *same
bytes* as the local in-process ``EOMLWorkflow.run`` — pinned by the
same ``golden_corpus.json`` fixture the local path is pinned by.  If
distribution moved a byte, the control plane is not a deployment
option, it is a different workflow.

Also here: the server-death fault model at the service level — the
control plane is killed and restarted over its SQLite file *mid-run*,
and the run completes (still byte-identical) without resubmission.
"""

import hashlib
import json
import os
import threading

from tests.server.harness import build_raw_config, control_plane

from repro.core import EOMLWorkflow, load_config
from repro.server import ControlPlaneClient, ControlPlaneServer, SiteAgent
from repro.server.store import RunStore

GOLDEN = os.path.join(
    os.path.dirname(os.path.dirname(__file__)), "core", "golden_corpus.json"
)


def sha256_file(path):
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 16), b""):
            digest.update(chunk)
    return digest.hexdigest()


def load_golden():
    with open(GOLDEN) as handle:
        return json.load(handle)


def delivered_corpus(root):
    destination = os.path.join(root, "data", "orion")
    return {
        name: sha256_file(os.path.join(destination, name))
        for name in sorted(os.listdir(destination))
    }


def drain(client, names, **agent_kwargs):
    """Run one SiteAgent per name concurrently until the pool is dry."""
    agents = [
        SiteAgent(client, name=name, poll_interval=0.05, ttl=60.0, **agent_kwargs)
        for name in names
    ]
    threads = [
        threading.Thread(target=agent.run, kwargs={"idle_exit_after": 4})
        for agent in agents
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300)
    return agents


def test_two_agents_ship_the_golden_corpus(tmp_path):
    golden = load_golden()
    raw = build_raw_config(str(tmp_path), golden["granules"])

    with control_plane() as (_server, client):
        run = client.submit(raw, name="golden-e2e")
        agents = drain(client, ["site-a", "site-b"])
        detail = client.run(run.run_id)

    assert detail.status == "completed", {
        u.name: (u.status, u.error) for u in detail.units
    }
    # Both agents participated in polling; the unit chain is sequential,
    # so the *work* may land on either — but nothing ran twice.
    assert sum(a.stats.completed for a in agents) == len(detail.units)
    assert all(a.stats.failed == 0 for a in agents)

    # The decisive assertion: byte-identical to the local golden run.
    assert delivered_corpus(str(tmp_path)) == golden["files"]


def test_colocated_agents_share_the_cas(tmp_path):
    """Agents on a shared filesystem dedupe through one CAS.

    A second campaign against a CAS warmed by the first must fetch
    nothing from the archive — the download unit's result shows every
    granule materialized from the store — and still ship the golden
    corpus, byte-identical.
    """
    golden = load_golden()
    cas_dir = str(tmp_path / "cas")

    def cached_raw(root):
        raw = build_raw_config(str(root), golden["granules"])
        raw["cache"] = {"enabled": True, "dir": cas_dir}
        return raw

    with control_plane() as (_server, client):
        cold = client.submit(cached_raw(tmp_path / "cold"), name="cache-cold")
        drain(client, ["site-a", "site-b"])
        warm = client.submit(cached_raw(tmp_path / "warm"), name="cache-warm")
        drain(client, ["site-a", "site-b"])
        cold_detail = client.run(cold.run_id)
        warm_detail = client.run(warm.run_id)

    for detail in (cold_detail, warm_detail):
        assert detail.status == "completed", {
            u.name: (u.status, u.error) for u in detail.units
        }
    download = {u.name: u.result or {} for u in warm_detail.units}["download"]
    assert download.get("fetched_bytes") == 0
    assert download.get("cached", 0) > 0
    assert delivered_corpus(str(tmp_path / "cold")) == golden["files"]
    assert delivered_corpus(str(tmp_path / "warm")) == golden["files"]


def fanout_raw(root):
    raw = build_raw_config(str(root), 1)
    raw["archive"]["instruments"] = ["modis", "abi"]
    raw["inference"] = dict(raw["inference"], models=["ricc", "heuristic"])
    return raw


def branch_corpus(root):
    destination = os.path.join(root, "data", "orion")
    return {
        f"{branch}/{name}": sha256_file(os.path.join(destination, branch, name))
        for branch in sorted(os.listdir(destination))
        for name in sorted(os.listdir(os.path.join(destination, branch)))
    }


def test_fanout_run_ships_identical_branches_remotely(tmp_path):
    """The {modis, abi} x {ricc, heuristic} plan, drained by site agents.

    Branch-qualified unit names must flow through the lease protocol
    unchanged, and each branch's delivered bytes must match a local
    in-process run of the same config.
    """
    local_root = tmp_path / "local"
    report = EOMLWorkflow(load_config(fanout_raw(local_root))).run(
        provenance=False
    )
    assert report.errors == []
    expected = branch_corpus(str(local_root))

    remote_root = tmp_path / "remote"
    with control_plane() as (_server, client):
        run = client.submit(fanout_raw(remote_root), name="fanout-e2e")
        agents = drain(client, ["site-a", "site-b"])
        detail = client.run(run.run_id)

    assert detail.status == "completed", {
        u.name: (u.status, u.error) for u in detail.units
    }
    names = {u.name for u in detail.units}
    assert {"download@modis", "download@abi", "model@modis+ricc",
            "inference@abi+heuristic", "shipment@modis+heuristic"} <= names
    assert sum(a.stats.completed for a in agents) == len(detail.units)
    assert all(a.stats.failed == 0 for a in agents)
    assert branch_corpus(str(remote_root)) == expected


def test_server_killed_and_restarted_mid_run_loses_nothing(tmp_path):
    golden = load_golden()
    raw = build_raw_config(str(tmp_path), golden["granules"])
    db = str(tmp_path / "control_plane.db")

    # Phase 1: submit and execute only the download unit, then "kill"
    # the server (stop serving, close the store — process death).
    server = ControlPlaneServer(db)
    server.start()
    client = ControlPlaneClient(server.url)
    run = client.submit(raw, name="survivor")
    agent = SiteAgent(client, name="site-a", poll_interval=0.05, ttl=60.0)
    agent.run(max_units=1)
    before = client.run(run.run_id)
    assert {u.name: u.status for u in before.units}["download"] == "completed"
    server.stop()
    server.store.close()

    # Phase 2: a new server process over the same SQLite file. The run,
    # its completed unit, and the pending remainder all survived.
    with control_plane(store=RunStore(db)) as (_server2, client2):
        after = client2.run(run.run_id)
        assert {u.name: u.status for u in after.units}["download"] == "completed"
        assert after.status not in ("completed", "failed")
        drain(client2, ["site-a", "site-b"])
        final = client2.run(run.run_id)

    assert final.status == "completed", {
        u.name: (u.status, u.error) for u in final.units
    }
    # No resubmission, no redone download, and still the golden bytes.
    assert {u.name: u.attempts for u in final.units}["download"] == 1
    assert delivered_corpus(str(tmp_path)) == golden["files"]
