"""Map state tests: per-item iterator flows with bounded concurrency."""

import pytest

from repro.flows import FlowError, FlowsEngine, RunStatus, validate
from repro.sim import Simulation


def infer_iterator():
    return {
        "StartAt": "InferOne",
        "States": {
            "InferOne": {"Type": "Action", "ActionUrl": "infer-one",
                          "Parameters": {"path": "$.item", "position": "$.index"},
                          "ResultPath": "label", "Next": "Done"},
            "Done": {"Type": "Succeed"},
        },
    }


def map_flow(max_concurrency=0):
    state = {
        "Type": "Map",
        "ItemsPath": "$.paths",
        "Iterator": infer_iterator(),
        "ResultPath": "labelled",
        "Next": "Done",
    }
    if max_concurrency:
        state["MaxConcurrency"] = max_concurrency
    return {"StartAt": "Each", "States": {"Each": state, "Done": {"Type": "Succeed"}}}


class TestMap:
    def test_maps_every_item_in_order(self):
        sim = Simulation()
        seen = []

        def infer_one(engine, params):
            seen.append((params["position"], params["path"]))
            return f"label:{params['path']}"

        engine = FlowsEngine(sim, {"infer-one": infer_one}, action_latency=0.0)
        run = engine.run(map_flow(), {"paths": ["a.nc", "b.nc", "c.nc"]})
        sim.run()
        assert run.status is RunStatus.SUCCEEDED
        assert sorted(seen) == [(0, "a.nc"), (1, "b.nc"), (2, "c.nc")]
        labels = [doc["label"] for doc in run.document["labelled"]]
        assert labels == ["label:a.nc", "label:b.nc", "label:c.nc"]

    def test_unbounded_concurrency_overlaps(self):
        sim = Simulation()

        def slow(engine, params):
            return engine.sim.timeout(10.0, value=params["path"])

        engine = FlowsEngine(sim, {"infer-one": slow}, action_latency=0.0)
        run = engine.run(map_flow(), {"paths": [f"{i}.nc" for i in range(5)]})
        sim.run()
        assert run.duration == pytest.approx(10.0)  # all five in parallel

    def test_max_concurrency_windows(self):
        sim = Simulation()

        def slow(engine, params):
            return engine.sim.timeout(10.0, value=params["path"])

        engine = FlowsEngine(sim, {"infer-one": slow}, action_latency=0.0)
        run = engine.run(map_flow(max_concurrency=2), {"paths": [f"{i}" for i in range(5)]})
        sim.run()
        # Windows of 2, 2, 1 -> three serialized waves.
        assert run.duration == pytest.approx(30.0)
        assert len(run.document["labelled"]) == 5

    def test_empty_items(self):
        sim = Simulation()
        engine = FlowsEngine(sim, {"infer-one": lambda e, p: None}, action_latency=0.0)
        run = engine.run(map_flow(), {"paths": []})
        sim.run()
        assert run.status is RunStatus.SUCCEEDED
        assert run.document["labelled"] == []

    def test_non_list_items_fails_run(self):
        sim = Simulation()
        engine = FlowsEngine(sim, {"infer-one": lambda e, p: None}, action_latency=0.0)
        run = engine.run(map_flow(), {"paths": "not-a-list"})

        def swallow():
            try:
                yield run.done
            except FlowError:
                pass

        sim.process(swallow())
        sim.run()
        assert run.status is RunStatus.FAILED
        assert "expected a list" in run.error

    def test_failing_iteration_fails_run(self):
        sim = Simulation()

        def sometimes(engine, params):
            if params["path"] == "bad":
                raise RuntimeError("corrupt tile file")
            return "ok"

        engine = FlowsEngine(sim, {"infer-one": sometimes}, action_latency=0.0)
        run = engine.run(map_flow(), {"paths": ["good", "bad"]})

        def swallow():
            try:
                yield run.done
            except FlowError:
                pass

        sim.process(swallow())
        sim.run()
        assert run.status is RunStatus.FAILED

    def test_validation(self):
        with pytest.raises(FlowError, match="ItemsPath"):
            validate({
                "StartAt": "M",
                "States": {"M": {"Type": "Map", "Iterator": infer_iterator(),
                                  "Next": "D"},
                            "D": {"Type": "Succeed"}},
            })
        with pytest.raises(FlowError, match="iterator"):
            validate({
                "StartAt": "M",
                "States": {"M": {"Type": "Map", "ItemsPath": "$.x",
                                  "Iterator": {"StartAt": "ghost", "States": {}},
                                  "Next": "D"},
                            "D": {"Type": "Succeed"}},
            })
        with pytest.raises(FlowError, match="MaxConcurrency"):
            validate({
                "StartAt": "M",
                "States": {"M": {"Type": "Map", "ItemsPath": "$.x",
                                  "Iterator": infer_iterator(),
                                  "MaxConcurrency": -1, "Next": "D"},
                            "D": {"Type": "Succeed"}},
            })

    def test_unregistered_iterator_action_rejected_upfront(self):
        sim = Simulation()
        engine = FlowsEngine(sim, {}, action_latency=0.0)
        with pytest.raises(FlowError, match="unregistered"):
            engine.run(map_flow())
