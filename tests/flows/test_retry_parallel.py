"""Retry/Catch and Parallel state tests (ASL-standard flow features)."""

import pytest

from repro.flows import FlowError, FlowsEngine, RunStatus, validate
from repro.sim import Simulation


class TestRetry:
    def _flaky_engine(self, sim, failures, interval=0.0, max_attempts=3, catch=None):
        state = {"calls": 0}

        def flaky(engine, params):
            state["calls"] += 1
            if state["calls"] <= failures:
                raise RuntimeError(f"transient #{state['calls']}")
            return "recovered"

        engine = FlowsEngine(sim, {"flaky": flaky}, action_latency=0.0)
        action = {
            "Type": "Action",
            "ActionUrl": "flaky",
            "Retry": {"MaxAttempts": max_attempts, "IntervalSeconds": interval},
            "ResultPath": "r",
            "Next": "Done",
        }
        states = {"F": action, "Done": {"Type": "Succeed"}}
        if catch:
            action["Catch"] = catch
            states["Fallback"] = {"Type": "Pass", "Result": "fell back",
                                   "ResultPath": "fallback", "Next": "Done"}
        flow = {"StartAt": "F", "States": states}
        return engine, flow, state

    def test_retry_recovers(self):
        sim = Simulation()
        engine, flow, state = self._flaky_engine(sim, failures=2)
        run = engine.run(flow)
        sim.run()
        assert run.status is RunStatus.SUCCEEDED
        assert run.document["r"] == "recovered"
        assert state["calls"] == 3

    def test_retry_interval_costs_time(self):
        sim = Simulation()
        engine, flow, state = self._flaky_engine(sim, failures=2, interval=5.0)
        run = engine.run(flow)
        sim.run()
        assert run.duration == pytest.approx(10.0)  # two retry waits

    def test_exhausted_without_catch_fails_run(self):
        sim = Simulation()
        engine, flow, state = self._flaky_engine(sim, failures=10, max_attempts=2)
        run = engine.run(flow)

        def swallow():
            try:
                yield run.done
            except FlowError:
                pass

        sim.process(swallow())
        sim.run()
        assert run.status is RunStatus.FAILED
        assert state["calls"] == 2
        assert "transient #2" in run.error

    def test_catch_diverts_to_fallback(self):
        sim = Simulation()
        engine, flow, state = self._flaky_engine(
            sim, failures=10, max_attempts=2, catch={"Next": "Fallback"}
        )
        run = engine.run(flow)
        sim.run()
        assert run.status is RunStatus.SUCCEEDED
        assert run.document["fallback"] == "fell back"
        assert "transient #2" in run.document["error"]

    def test_retry_validation(self):
        flow = {
            "StartAt": "A",
            "States": {
                "A": {"Type": "Action", "ActionUrl": "x",
                      "Retry": {"MaxAttempts": 0}, "Next": "Done"},
                "Done": {"Type": "Succeed"},
            },
        }
        with pytest.raises(FlowError, match="MaxAttempts"):
            validate(flow)

    def test_catch_validation(self):
        flow = {
            "StartAt": "A",
            "States": {
                "A": {"Type": "Action", "ActionUrl": "x",
                      "Catch": {"Next": "Ghost"}, "Next": "Done"},
                "Done": {"Type": "Succeed"},
            },
        }
        with pytest.raises(FlowError, match="Catch.Next"):
            validate(flow)


class TestParallel:
    def branch(self, action_url, result_key):
        return {
            "StartAt": "Work",
            "States": {
                "Work": {"Type": "Action", "ActionUrl": action_url,
                          "ResultPath": result_key, "Next": "Done"},
                "Done": {"Type": "Succeed"},
            },
        }

    def test_branches_run_concurrently(self):
        sim = Simulation()

        def slow_a(engine, params):
            return engine.sim.timeout(10.0, value="a")

        def slow_b(engine, params):
            return engine.sim.timeout(10.0, value="b")

        engine = FlowsEngine(sim, {"a": slow_a, "b": slow_b}, action_latency=0.0)
        flow = {
            "StartAt": "Fan",
            "States": {
                "Fan": {
                    "Type": "Parallel",
                    "Branches": [self.branch("a", "ra"), self.branch("b", "rb")],
                    "ResultPath": "branches",
                    "Next": "Done",
                },
                "Done": {"Type": "Succeed"},
            },
        }
        run = engine.run(flow)
        sim.run()
        assert run.status is RunStatus.SUCCEEDED
        # Concurrent, not sequential: 10 s, not 20.
        assert run.duration == pytest.approx(10.0)
        assert run.document["branches"][0]["ra"] == "a"
        assert run.document["branches"][1]["rb"] == "b"

    def test_branches_see_parent_document_copy(self):
        sim = Simulation()
        seen = []

        def probe(engine, params):
            seen.append(params["value"])
            return None

        engine = FlowsEngine(sim, {"probe": probe}, action_latency=0.0)
        flow = {
            "StartAt": "Fan",
            "States": {
                "Fan": {
                    "Type": "Parallel",
                    "Branches": [
                        {
                            "StartAt": "P",
                            "States": {
                                "P": {"Type": "Action", "ActionUrl": "probe",
                                      "Parameters": {"value": "$.shared"},
                                      "Next": "Done"},
                                "Done": {"Type": "Succeed"},
                            },
                        }
                    ],
                    "Next": "Done",
                },
                "Done": {"Type": "Succeed"},
            },
        }
        run = engine.run(flow, {"shared": 42})
        sim.run()
        assert seen == [42]
        assert run.status is RunStatus.SUCCEEDED

    def test_failing_branch_fails_parent(self):
        sim = Simulation()

        def boom(engine, params):
            raise RuntimeError("branch exploded")

        def fine(engine, params):
            return "ok"

        engine = FlowsEngine(sim, {"boom": boom, "fine": fine}, action_latency=0.0)
        flow = {
            "StartAt": "Fan",
            "States": {
                "Fan": {
                    "Type": "Parallel",
                    "Branches": [self.branch("fine", "r"), self.branch("boom", "r")],
                    "Next": "Done",
                },
                "Done": {"Type": "Succeed"},
            },
        }
        run = engine.run(flow)

        def swallow():
            try:
                yield run.done
            except FlowError:
                pass

        sim.process(swallow())
        sim.run()
        assert run.status is RunStatus.FAILED

    def test_parallel_validation(self):
        with pytest.raises(FlowError, match="Branches"):
            validate({
                "StartAt": "P",
                "States": {"P": {"Type": "Parallel", "Branches": [], "Next": "D"},
                            "D": {"Type": "Succeed"}},
            })
        with pytest.raises(FlowError, match="branch 0"):
            validate({
                "StartAt": "P",
                "States": {
                    "P": {"Type": "Parallel",
                           "Branches": [{"StartAt": "X", "States": {}}],
                           "Next": "D"},
                    "D": {"Type": "Succeed"},
                },
            })

    def test_unregistered_action_in_branch_rejected(self):
        sim = Simulation()
        engine = FlowsEngine(sim, {}, action_latency=0.0)
        flow = {
            "StartAt": "Fan",
            "States": {
                "Fan": {"Type": "Parallel",
                         "Branches": [self.branch("ghost", "r")],
                         "Next": "Done"},
                "Done": {"Type": "Succeed"},
            },
        }
        with pytest.raises(FlowError, match="unregistered"):
            engine.run(flow)
