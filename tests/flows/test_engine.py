"""Flow engine execution tests."""

import pytest

from repro.flows import FlowError, FlowsEngine, RunStatus
from repro.sim import Simulation


def engine_with(sim, providers=None, latency=0.05):
    return FlowsEngine(sim, action_providers=providers or {}, action_latency=latency)


class TestExecution:
    def test_linear_flow(self):
        sim = Simulation()
        calls = []

        def record(engine, params):
            calls.append(params)
            return {"ok": True}

        engine = engine_with(sim, {"record": record})
        flow = {
            "StartAt": "A",
            "States": {
                "A": {
                    "Type": "Action",
                    "ActionUrl": "record",
                    "Parameters": {"tag": "first"},
                    "ResultPath": "a_result",
                    "Next": "Done",
                },
                "Done": {"Type": "Succeed"},
            },
        }
        run = engine.run(flow)
        sim.run()
        assert run.status is RunStatus.SUCCEEDED
        assert calls == [{"tag": "first"}]
        assert run.document["a_result"] == {"ok": True}

    def test_parameters_resolve_from_document(self):
        sim = Simulation()
        seen = {}

        def probe(engine, params):
            seen.update(params)
            return None

        engine = engine_with(sim, {"probe": probe})
        flow = {
            "StartAt": "P",
            "States": {
                "P": {
                    "Type": "Action",
                    "ActionUrl": "probe",
                    "Parameters": {"dir": "$.watch_dir", "static": 3},
                    "Next": "Done",
                },
                "Done": {"Type": "Succeed"},
            },
        }
        engine.run(flow, input_document={"watch_dir": "/out/tiles"})
        sim.run()
        assert seen == {"dir": "/out/tiles", "static": 3}

    def test_event_returning_provider(self):
        sim = Simulation()

        def slow(engine, params):
            return engine.sim.timeout(10.0, value="finished")

        engine = engine_with(sim, {"slow": slow}, latency=0.0)
        flow = {
            "StartAt": "S",
            "States": {
                "S": {"Type": "Action", "ActionUrl": "slow", "ResultPath": "r", "Next": "Done"},
                "Done": {"Type": "Succeed"},
            },
        }
        run = engine.run(flow)
        sim.run()
        assert run.document["r"] == "finished"
        assert run.duration == pytest.approx(10.0)

    def test_choice_branches(self):
        sim = Simulation()
        engine = engine_with(sim, latency=0.0)
        flow = {
            "StartAt": "AnyNew",
            "States": {
                "AnyNew": {
                    "Type": "Choice",
                    "Choices": [{"Variable": "$.count", "GreaterThan": 0, "Next": "Work"}],
                    "Default": "Skip",
                },
                "Work": {"Type": "Pass", "Result": "worked", "ResultPath": "out", "Next": "End"},
                "Skip": {"Type": "Pass", "Result": "skipped", "ResultPath": "out", "Next": "End"},
                "End": {"Type": "Succeed"},
            },
        }
        hot = engine.run(flow, {"count": 3})
        cold = engine.run(flow, {"count": 0})
        sim.run()
        assert hot.document["out"] == "worked"
        assert cold.document["out"] == "skipped"

    def test_wait_state(self):
        sim = Simulation()
        engine = engine_with(sim, latency=0.0)
        flow = {
            "StartAt": "W",
            "States": {
                "W": {"Type": "Wait", "Seconds": 7.5, "Next": "Done"},
                "Done": {"Type": "Succeed"},
            },
        }
        run = engine.run(flow)
        sim.run()
        assert run.duration == pytest.approx(7.5)

    def test_fail_state(self):
        sim = Simulation()
        engine = engine_with(sim, latency=0.0)
        flow = {
            "StartAt": "F",
            "States": {"F": {"Type": "Fail", "Error": "no input files"}},
        }
        run = engine.run(flow)
        caught = {}

        def watcher():
            try:
                yield run.done
            except FlowError as exc:
                caught["error"] = str(exc)

        sim.process(watcher())
        sim.run()
        assert run.status is RunStatus.FAILED
        assert caught["error"] == "no input files"

    def test_provider_exception_fails_run(self):
        sim = Simulation()

        def boom(engine, params):
            raise RuntimeError("endpoint offline")

        engine = engine_with(sim, {"boom": boom}, latency=0.0)
        flow = {
            "StartAt": "B",
            "States": {
                "B": {"Type": "Action", "ActionUrl": "boom", "Next": "Done"},
                "Done": {"Type": "Succeed"},
            },
        }
        run = engine.run(flow)

        def watcher():
            try:
                yield run.done
            except FlowError:
                pass

        sim.process(watcher())
        sim.run()
        assert run.status is RunStatus.FAILED
        assert "endpoint offline" in run.error

    def test_unregistered_action_rejected_upfront(self):
        sim = Simulation()
        engine = engine_with(sim)
        flow = {
            "StartAt": "A",
            "States": {
                "A": {"Type": "Action", "ActionUrl": "missing", "Next": "Done"},
                "Done": {"Type": "Succeed"},
            },
        }
        with pytest.raises(FlowError, match="unregistered"):
            engine.run(flow)

    def test_action_hop_latency_is_50ms(self):
        """The Fig. 7 contract: per-state engine overhead ~ 50 ms."""
        sim = Simulation()
        engine = engine_with(sim, latency=0.05)
        flow = {
            "StartAt": "P1",
            "States": {
                "P1": {"Type": "Pass", "Next": "P2"},
                "P2": {"Type": "Pass", "Next": "Done"},
                "Done": {"Type": "Succeed"},
            },
        }
        run = engine.run(flow)
        sim.run()
        assert run.mean_hop_latency() == pytest.approx(0.05)
        assert run.duration == pytest.approx(0.15)

    def test_history_spans(self):
        sim = Simulation()
        engine = engine_with(sim, latency=0.0)
        run = engine.run(
            {
                "StartAt": "W",
                "States": {
                    "W": {"Type": "Wait", "Seconds": 2.0, "Next": "Done"},
                    "Done": {"Type": "Succeed"},
                },
            }
        )
        sim.run()
        assert [r.name for r in run.history] == ["W", "Done"]
        assert run.history[0].duration == pytest.approx(2.0)
