"""Flow definition validation tests."""

import pytest

from repro.flows import FlowError, resolve_ref, validate


def minimal_flow():
    return {
        "StartAt": "Step",
        "States": {
            "Step": {"Type": "Pass", "Next": "Done"},
            "Done": {"Type": "Succeed"},
        },
    }


class TestValidate:
    def test_minimal_ok(self):
        validate(minimal_flow())

    def test_missing_start(self):
        flow = minimal_flow()
        flow["StartAt"] = "Ghost"
        with pytest.raises(FlowError, match="StartAt"):
            validate(flow)

    def test_unknown_type(self):
        flow = minimal_flow()
        flow["States"]["Step"]["Type"] = "Teleport"
        with pytest.raises(FlowError, match="unknown Type"):
            validate(flow)

    def test_dangling_next(self):
        flow = minimal_flow()
        flow["States"]["Step"]["Next"] = "Nowhere"
        with pytest.raises(FlowError, match="unknown state"):
            validate(flow)

    def test_action_requires_url(self):
        flow = minimal_flow()
        flow["States"]["Step"] = {"Type": "Action", "Next": "Done"}
        with pytest.raises(FlowError, match="ActionUrl"):
            validate(flow)

    def test_choice_requires_comparator(self):
        flow = {
            "StartAt": "C",
            "States": {
                "C": {
                    "Type": "Choice",
                    "Choices": [{"Variable": "$.x", "Next": "Done"}],
                    "Default": "Done",
                },
                "Done": {"Type": "Succeed"},
            },
        }
        with pytest.raises(FlowError, match="comparator"):
            validate(flow)

    def test_wait_requires_seconds(self):
        flow = minimal_flow()
        flow["States"]["Step"] = {"Type": "Wait", "Next": "Done"}
        with pytest.raises(FlowError, match="Seconds"):
            validate(flow)

    def test_unreachable_state(self):
        flow = minimal_flow()
        flow["States"]["Orphan"] = {"Type": "Succeed"}
        with pytest.raises(FlowError, match="unreachable"):
            validate(flow)

    def test_no_terminal(self):
        flow = {
            "StartAt": "A",
            "States": {
                "A": {"Type": "Pass", "Next": "B"},
                "B": {"Type": "Pass", "Next": "A"},
            },
        }
        with pytest.raises(FlowError, match="terminal"):
            validate(flow)

    def test_end_is_terminal(self):
        flow = {
            "StartAt": "A",
            "States": {"A": {"Type": "Pass", "End": True}},
        }
        validate(flow)


class TestResolveRef:
    def test_simple_and_nested(self):
        doc = {"a": 1, "b": {"c": "deep"}}
        assert resolve_ref("$.a", doc) == 1
        assert resolve_ref("$.b.c", doc) == "deep"

    def test_passthrough(self):
        assert resolve_ref("plain", {}) == "plain"
        assert resolve_ref(42, {}) == 42

    def test_recursive_structures(self):
        doc = {"x": 5}
        assert resolve_ref({"k": "$.x", "list": ["$.x", 1]}, doc) == {"k": 5, "list": [5, 1]}

    def test_missing_reference(self):
        with pytest.raises(FlowError, match="not found"):
            resolve_ref("$.ghost", {})
