"""CWL-subset compiler tests."""

import pytest

from repro.flows import FlowsEngine, RunStatus
from repro.flows.cwl import CwlError, cwl_to_flow, extract_outputs
from repro.sim import Simulation
from repro.util.yamlish import loads as yaml_loads

EO_ML_CWL = """
cwlVersion: v1.2
class: Workflow
doc: the EO-ML pipeline as CWL
inputs:
  day: string
  products: string
outputs:
  labelled:
    outputSource: infer/labels
steps:
  download:
    run: laads-download
    in:
      day: day
      products: products
    out: [files]
  preprocess:
    run: tile-preprocess
    in:
      files: download/files
    out: [tiles]
  infer:
    run: aicca-infer
    in:
      tiles: preprocess/tiles
    out: [labels]
"""


def providers(calls):
    def download(engine, params):
        calls.append(("download", params))
        return {"files": [f"{params['day']}-{params['products']}-{i}" for i in range(2)]}

    def preprocess(engine, params):
        calls.append(("preprocess", params))
        return {"tiles": [f"tiles:{f}" for f in params["files"]]}

    def infer(engine, params):
        calls.append(("infer", params))
        return {"labels": [hash(t) % 42 for t in params["tiles"]]}

    return {"laads-download": download, "tile-preprocess": preprocess, "aicca-infer": infer}


class TestCompile:
    def test_compiles_in_dependency_order(self):
        doc = yaml_loads(EO_ML_CWL)
        definition, order = cwl_to_flow(doc)
        assert order == ["download", "preprocess", "infer"]
        assert definition["StartAt"] == "download"
        assert definition["States"]["infer"]["Next"] == "Done"
        assert definition["States"]["preprocess"]["Parameters"]["files"] == "$.download.files"
        assert definition["States"]["download"]["Parameters"]["day"] == "$.day"

    def test_steps_listed_out_of_order_still_sort(self):
        doc = yaml_loads(EO_ML_CWL)
        # Reverse the mapping order; dependencies must still win.
        doc["steps"] = dict(reversed(list(doc["steps"].items())))
        _definition, order = cwl_to_flow(doc)
        assert order == ["download", "preprocess", "infer"]

    def test_runs_end_to_end(self):
        doc = yaml_loads(EO_ML_CWL)
        definition, _order = cwl_to_flow(doc)
        calls = []
        sim = Simulation()
        engine = FlowsEngine(sim, providers(calls), action_latency=0.05)
        run = engine.run(definition, {"day": "2022-01-01", "products": "MOD02"})
        sim.run()
        assert run.status is RunStatus.SUCCEEDED
        assert [c[0] for c in calls] == ["download", "preprocess", "infer"]
        outputs = extract_outputs(doc, run.document)
        assert len(outputs["labelled"]) == 2

    def test_literal_and_default_inputs(self):
        doc = yaml_loads(EO_ML_CWL)
        doc["steps"]["download"]["in"]["day"] = {"default": "2003-07-14"}
        doc["steps"]["download"]["in"]["products"] = 42  # literal passthrough
        definition, _ = cwl_to_flow(doc)
        params = definition["States"]["download"]["Parameters"]
        assert params["day"] == "2003-07-14"
        assert params["products"] == 42


class TestRejection:
    def test_requires_workflow_class(self):
        with pytest.raises(CwlError, match="class: Workflow"):
            cwl_to_flow({"class": "CommandLineTool", "inputs": {}, "steps": {}})

    def test_unknown_step_reference(self):
        doc = yaml_loads(EO_ML_CWL)
        doc["steps"]["preprocess"]["in"]["files"] = "ghost/files"
        with pytest.raises(CwlError, match="unknown step"):
            cwl_to_flow(doc)

    def test_undeclared_output_reference(self):
        doc = yaml_loads(EO_ML_CWL)
        doc["steps"]["preprocess"]["in"]["files"] = "download/nope"
        with pytest.raises(CwlError, match="does not declare output"):
            cwl_to_flow(doc)

    def test_unknown_input_source(self):
        doc = yaml_loads(EO_ML_CWL)
        doc["steps"]["download"]["in"]["day"] = "not_an_input"
        with pytest.raises(CwlError, match="neither an input"):
            cwl_to_flow(doc)

    def test_cycle_detected(self):
        doc = yaml_loads(EO_ML_CWL)
        doc["steps"]["download"]["in"]["day"] = "infer/labels"
        with pytest.raises(CwlError, match="cycle"):
            cwl_to_flow(doc)

    def test_scatter_rejected(self):
        doc = yaml_loads(EO_ML_CWL)
        doc["steps"]["preprocess"]["scatter"] = "files"
        with pytest.raises(CwlError, match="scatter"):
            cwl_to_flow(doc)

    def test_bad_output_source_fails_at_compile(self):
        doc = yaml_loads(EO_ML_CWL)
        doc["outputs"]["labelled"]["outputSource"] = "infer/unknown"
        with pytest.raises(CwlError, match="does not declare"):
            cwl_to_flow(doc)

    def test_empty_steps(self):
        with pytest.raises(CwlError, match="no steps"):
            cwl_to_flow({"class": "Workflow", "inputs": {}, "steps": {}})
