"""Federated flow registry tests."""

import pytest

from repro.flows import FlowError, FlowRegistry


def inference_flow():
    return {
        "StartAt": "Crawl",
        "States": {
            "Crawl": {"Type": "Pass", "Next": "Infer"},
            "Infer": {"Type": "Pass", "Next": "Done"},
            "Done": {"Type": "Succeed"},
        },
    }


class TestRegistry:
    def test_publish_and_get(self):
        registry = FlowRegistry()
        flow = registry.publish("eo-ml-inference", inference_flow(), owner="olcf",
                                tags=["climate", "inference"])
        assert flow.version == 1
        assert registry.get("eo-ml-inference").definition["StartAt"] == "Crawl"

    def test_versioning(self):
        registry = FlowRegistry()
        registry.publish("f", inference_flow(), owner="a")
        v2 = registry.publish("f", inference_flow(), owner="b")
        assert v2.version == 2
        assert registry.get("f").owner == "b"
        assert registry.get("f", version=1).owner == "a"
        with pytest.raises(KeyError):
            registry.get("f", version=3)

    def test_invalid_definition_rejected(self):
        registry = FlowRegistry()
        with pytest.raises(FlowError):
            registry.publish("broken", {"StartAt": "X", "States": {}}, owner="a")

    def test_search_by_tag(self):
        registry = FlowRegistry()
        registry.publish("a", inference_flow(), owner="x", tags=["climate"])
        registry.publish("b", inference_flow(), owner="x", tags=["astro"])
        names = [f.name for f in registry.search("climate")]
        assert names == ["a"]

    def test_compose_override(self):
        registry = FlowRegistry()
        registry.publish("base", inference_flow(), owner="x")
        derived = registry.compose(
            "custom",
            "base",
            {"Infer": {"Type": "Wait", "Seconds": 1.0, "Next": "Done"}},
            owner="y",
        )
        assert derived.definition["States"]["Infer"]["Type"] == "Wait"
        # Base unchanged.
        assert registry.get("base").definition["States"]["Infer"]["Type"] == "Pass"

    def test_compose_bad_override_rejected(self):
        registry = FlowRegistry()
        registry.publish("base", inference_flow(), owner="x")
        with pytest.raises(FlowError, match="unknown state"):
            registry.compose("bad", "base", {"Ghost": {"Type": "Succeed"}}, owner="y")
        with pytest.raises(FlowError):
            registry.compose(
                "bad2", "base", {"Infer": {"Type": "Pass", "Next": "Nowhere"}}, owner="y"
            )

    def test_yaml_roundtrip(self):
        registry = FlowRegistry()
        registry.publish("f", inference_flow(), owner="olcf", tags=["eo"])
        text = registry.export_yaml("f")
        other = FlowRegistry()
        imported = other.import_yaml(text)
        assert imported.name == "f"
        assert imported.definition["States"]["Crawl"]["Type"] == "Pass"

    def test_unknown_flow(self):
        with pytest.raises(KeyError):
            FlowRegistry().get("ghost")
