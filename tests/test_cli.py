"""CLI tests (argument parsing and command execution)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figures_choices(self):
        args = build_parser().parse_args(["figures", "fig4", "headline"])
        assert args.targets == ["fig4", "headline"]
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figures", "fig99"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Multi-Facility" in out

    def test_catalog(self, capsys):
        assert main(["catalog", "MOD02", "2022-01-01", "--limit", "3"]) == 0
        out = capsys.readouterr().out
        assert "MOD021KM.A2022001" in out
        assert "day total: 288 granules" in out

    def test_simulate(self, capsys):
        assert main(["simulate", "--granules", "6"]) == 0
        out = capsys.readouterr().out
        assert "download" in out and "makespan" in out

    def test_figures_headline(self, capsys):
        assert main(["figures", "headline", "--repeats", "2"]) == 0
        out = capsys.readouterr().out
        assert "12000 tiles" in out

    def test_figures_all_targets(self, capsys):
        targets = ["fig3", "fig4", "fig5", "fig6", "fig7", "table1"]
        assert main(["figures", *targets, "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        for target in targets:
            assert f"=== {target} ===" in out
        assert "shape ratio" in out          # comparisons rendered
        assert "download_launch" in out      # fig7 rows
        assert "preprocess" in out           # fig6 timeline

    def test_run_from_config_file(self, tmp_path, capsys):
        config = tmp_path / "wf.yaml"
        config.write_text(
            "name: cli-test\n"
            "archive:\n"
            "  start_date: 2022-01-01\n"
            "  max_granules_per_day: 1\n"
            "  seed: 3\n"
            "paths:\n"
            f"  staging: {tmp_path}/raw\n"
            f"  preprocessed: {tmp_path}/tiles\n"
            f"  transfer_out: {tmp_path}/outbox\n"
            f"  destination: {tmp_path}/orion\n"
            "preprocess:\n"
            "  workers: 2\n"
            "  tile_size: 16\n"
        )
        assert main(["run", str(config)]) == 0
        out = capsys.readouterr().out
        assert "tiles labelled" in out
        assert "provenance:" in out

    def test_shipped_quickstart_config_parses_and_runs(self, tmp_path, capsys, monkeypatch):
        """The config shipped in examples/configs/ is valid and runnable."""
        import pathlib
        import shutil

        repo_config = pathlib.Path(__file__).parent.parent / "examples/configs/quickstart.yaml"
        target = tmp_path / "quickstart.yaml"
        shutil.copyfile(repo_config, target)
        monkeypatch.chdir(tmp_path)  # relative data/ paths land in tmp
        assert main(["run", str(target)]) == 0
        out = capsys.readouterr().out
        assert "tiles labelled" in out
        assert (tmp_path / "data" / "orion").is_dir()

    def test_run_without_provenance(self, tmp_path, capsys):
        config = tmp_path / "wf.yaml"
        config.write_text(
            "archive:\n  start_date: 2022-01-01\n  max_granules_per_day: 1\n  seed: 3\n"
            "paths:\n"
            f"  staging: {tmp_path}/raw\n"
            f"  preprocessed: {tmp_path}/tiles\n"
            f"  transfer_out: {tmp_path}/outbox\n"
            f"  destination: {tmp_path}/orion\n"
            "preprocess: {workers: 2, tile_size: 16}\n"
        )
        assert main(["run", str(config), "--no-provenance"]) == 0
        assert "provenance:" not in capsys.readouterr().out


def write_remote_config(tmp_path):
    """A minimal journaled config file for submit/agent commands."""
    from tests.core.crash_driver import build_raw_config

    from repro.util.yamlish import dumps

    config = tmp_path / "remote.yaml"
    config.write_text(dumps(build_raw_config(str(tmp_path), 1)))
    return config


# A routable address nothing listens on: connection refused, fast.
DEAD_SERVER = "http://127.0.0.1:9"


@pytest.fixture()
def plane(tmp_path):
    """A live control plane; yields (server, base URL, config path)."""
    from tests.server.harness import control_plane

    with control_plane() as (server, _client):
        yield server, server.url, write_remote_config(tmp_path)


class TestControlPlaneCommands:
    def test_submit_and_status_round_trip(self, plane, capsys):
        _server, url, config = plane
        assert main(["submit", str(config), "--server", url]) == 0
        out = capsys.readouterr().out
        assert "submitted run-" in out
        assert "'download'" in out and "'shipment'" in out
        run_id = out.split()[1]

        assert main(["status", "--server", url]) == 0
        assert run_id in capsys.readouterr().out

        assert main(["status", run_id, "--server", url, "--events"]) == 0
        detail = capsys.readouterr().out
        assert "download" in detail and "pending" in detail
        assert "submitted" in detail  # the event log

    def test_submit_server_down_exits_2_with_message(self, tmp_path, capsys):
        config = write_remote_config(tmp_path)
        assert main(["submit", str(config), "--server", DEAD_SERVER]) == 2
        err = capsys.readouterr().err
        assert "unreachable" in err

    def test_submit_rejected_config_exits_1(self, plane, tmp_path, capsys):
        from tests.core.crash_driver import build_raw_config

        from repro.util.yamlish import dumps

        _server, url, _config = plane
        raw = build_raw_config(str(tmp_path), 1)
        raw["journal"] = {"enabled": False}  # remote runs require the journal
        bad = tmp_path / "bad.yaml"
        bad.write_text(dumps(raw))
        assert main(["submit", str(bad), "--server", url]) == 1
        assert "journal" in capsys.readouterr().err

    def test_submit_non_mapping_yaml_exits_2(self, plane, tmp_path, capsys):
        _server, url, _config = plane
        bad = tmp_path / "list.yaml"
        bad.write_text("- just\n- a\n- list\n")
        assert main(["submit", str(bad), "--server", url]) == 2
        assert "mapping" in capsys.readouterr().err

    def test_status_unknown_run_exits_1(self, plane, capsys):
        _server, url, _config = plane
        assert main(["status", "run-ghost", "--server", url]) == 1
        assert "run-ghost" in capsys.readouterr().err

    def test_status_server_down_exits_2(self, capsys):
        assert main(["status", "--server", DEAD_SERVER]) == 2
        assert "unreachable" in capsys.readouterr().err

    def test_agent_drains_submitted_run(self, plane, capsys):
        _server, url, config = plane
        assert main(["submit", str(config), "--server", url]) == 0
        capsys.readouterr()
        assert main([
            "agent", "--server", url, "--name", "cli-agent", "--site", "alcf",
            "--poll-interval", "0.01", "--drain",
        ]) == 0
        out = capsys.readouterr().out
        assert "cli-agent" in out and "5 completed" in out

        assert main(["status", "--server", url]) == 0
        assert "completed" in capsys.readouterr().out

    def test_agent_server_down_exits_2(self, capsys):
        assert main([
            "agent", "--server", DEAD_SERVER, "--poll-interval", "0.01", "--drain",
        ]) == 2
        assert "unreachable" in capsys.readouterr().err

    def test_failed_run_status_exits_1(self, plane, capsys):
        server, url, config = plane
        assert main(["submit", str(config), "--server", url]) == 0
        run_id = capsys.readouterr().out.split()[1]
        lease = server.store.lease("saboteur")
        server.store.complete(lease["lease_id"], status="failed", error="boom")
        assert main(["status", run_id, "--server", url]) == 1
        assert "boom" in capsys.readouterr().out
