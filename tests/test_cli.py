"""CLI tests (argument parsing and command execution)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figures_choices(self):
        args = build_parser().parse_args(["figures", "fig4", "headline"])
        assert args.targets == ["fig4", "headline"]
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figures", "fig99"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Multi-Facility" in out

    def test_catalog(self, capsys):
        assert main(["catalog", "MOD02", "2022-01-01", "--limit", "3"]) == 0
        out = capsys.readouterr().out
        assert "MOD021KM.A2022001" in out
        assert "day total: 288 granules" in out

    def test_simulate(self, capsys):
        assert main(["simulate", "--granules", "6"]) == 0
        out = capsys.readouterr().out
        assert "download" in out and "makespan" in out

    def test_figures_headline(self, capsys):
        assert main(["figures", "headline", "--repeats", "2"]) == 0
        out = capsys.readouterr().out
        assert "12000 tiles" in out

    def test_figures_all_targets(self, capsys):
        targets = ["fig3", "fig4", "fig5", "fig6", "fig7", "table1"]
        assert main(["figures", *targets, "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        for target in targets:
            assert f"=== {target} ===" in out
        assert "shape ratio" in out          # comparisons rendered
        assert "download_launch" in out      # fig7 rows
        assert "preprocess" in out           # fig6 timeline

    def test_run_from_config_file(self, tmp_path, capsys):
        config = tmp_path / "wf.yaml"
        config.write_text(
            "name: cli-test\n"
            "archive:\n"
            "  start_date: 2022-01-01\n"
            "  max_granules_per_day: 1\n"
            "  seed: 3\n"
            "paths:\n"
            f"  staging: {tmp_path}/raw\n"
            f"  preprocessed: {tmp_path}/tiles\n"
            f"  transfer_out: {tmp_path}/outbox\n"
            f"  destination: {tmp_path}/orion\n"
            "preprocess:\n"
            "  workers: 2\n"
            "  tile_size: 16\n"
        )
        assert main(["run", str(config)]) == 0
        out = capsys.readouterr().out
        assert "tiles labelled" in out
        assert "provenance:" in out

    def test_shipped_quickstart_config_parses_and_runs(self, tmp_path, capsys, monkeypatch):
        """The config shipped in examples/configs/ is valid and runnable."""
        import pathlib
        import shutil

        repo_config = pathlib.Path(__file__).parent.parent / "examples/configs/quickstart.yaml"
        target = tmp_path / "quickstart.yaml"
        shutil.copyfile(repo_config, target)
        monkeypatch.chdir(tmp_path)  # relative data/ paths land in tmp
        assert main(["run", str(target)]) == 0
        out = capsys.readouterr().out
        assert "tiles labelled" in out
        assert (tmp_path / "data" / "orion").is_dir()

    def test_run_without_provenance(self, tmp_path, capsys):
        config = tmp_path / "wf.yaml"
        config.write_text(
            "archive:\n  start_date: 2022-01-01\n  max_granules_per_day: 1\n  seed: 3\n"
            "paths:\n"
            f"  staging: {tmp_path}/raw\n"
            f"  preprocessed: {tmp_path}/tiles\n"
            f"  transfer_out: {tmp_path}/outbox\n"
            f"  destination: {tmp_path}/orion\n"
            "preprocess: {workers: 2, tile_size: 16}\n"
        )
        assert main(["run", str(config), "--no-provenance"]) == 0
        assert "provenance:" not in capsys.readouterr().out
