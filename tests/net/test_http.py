"""HTTP server and WAN link model tests."""

import pytest

from repro.net import HttpServer, WanLink
from repro.sim import Simulation


class TestHttpServer:
    def test_single_request_timing(self):
        sim = Simulation()
        server = HttpServer(sim, wan_bandwidth=100.0, per_connection_bw=10.0, request_overhead=2.0)
        done = server.request(100)
        sim.run()
        result = done.value
        # 2s overhead + 100 B at the 10 B/s per-connection cap.
        assert result.duration == pytest.approx(12.0)
        assert result.mean_rate == pytest.approx(100 / 12.0)
        assert server.requests_served == 1

    def test_parallel_requests_aggregate_under_cap(self):
        sim = Simulation()
        server = HttpServer(sim, wan_bandwidth=100.0, per_connection_bw=10.0, request_overhead=0.0)
        done = [server.request(100) for _ in range(3)]
        sim.run()
        # 3 connections at 10 B/s each (cap binds, not the 100 B/s WAN).
        for event in done:
            assert event.value.duration == pytest.approx(10.0)

    def test_wan_saturation(self):
        """Beyond capacity/per_conn streams, extra workers stop helping."""
        sim = Simulation()
        server = HttpServer(sim, wan_bandwidth=30.0, per_connection_bw=10.0, request_overhead=0.0)
        done = [server.request(100) for _ in range(6)]
        sim.run()
        # 6 flows share 30 B/s -> 5 B/s each -> 20 s.
        for event in done:
            assert event.value.duration == pytest.approx(20.0)

    def test_overhead_dominates_small_files(self):
        sim = Simulation()
        server = HttpServer(sim, wan_bandwidth=1e9, per_connection_bw=1e9, request_overhead=2.0)
        done = server.request(10)
        sim.run()
        assert done.value.duration == pytest.approx(2.0, abs=0.01)

    def test_zero_bytes(self):
        sim = Simulation()
        server = HttpServer(sim, request_overhead=1.0)
        done = server.request(0)
        sim.run()
        assert done.value.duration == pytest.approx(1.0)

    def test_rejects_negative(self):
        sim = Simulation()
        server = HttpServer(sim)
        with pytest.raises(ValueError):
            server.request(-1)


class TestWanLink:
    def test_single_stream(self):
        sim = Simulation()
        link = WanLink(sim, "defiant", "frontier", bandwidth=100.0, latency=0.5)
        done = link.send(1000)
        sim.run()
        assert done.value == pytest.approx(10.5)

    def test_parallel_streams_beat_per_stream_cap(self):
        sim = Simulation()
        link = WanLink(sim, "a", "b", bandwidth=100.0, latency=0.0, per_stream_bw=10.0)
        one = link.send(1000)
        sim.run()
        sim2 = Simulation()
        link2 = WanLink(sim2, "a", "b", bandwidth=100.0, latency=0.0, per_stream_bw=10.0)
        four = link2.send(1000, streams=4)
        sim2.run()
        assert one.value == pytest.approx(100.0)
        assert four.value == pytest.approx(25.0)

    def test_concurrent_transfers_share(self):
        sim = Simulation()
        link = WanLink(sim, "a", "b", bandwidth=100.0, latency=0.0)
        x = link.send(500)
        y = link.send(500)
        sim.run()
        assert x.value == pytest.approx(10.0)
        assert y.value == pytest.approx(10.0)

    def test_bad_args(self):
        sim = Simulation()
        link = WanLink(sim, "a", "b", bandwidth=10.0)
        with pytest.raises(ValueError):
            link.send(-1)
        with pytest.raises(ValueError):
            link.send(10, streams=0)
