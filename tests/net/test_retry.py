"""Retry primitives: backoff schedule properties + circuit breaker.

The backoff schedule is a contract other layers rely on (the download
stage sleeps exactly these delays), so its invariants are checked as
properties over the whole parameter space, not just spot values:
caps are monotone non-decreasing, jittered delays stay inside the cap
window, cumulative sleep never exceeds ``max_total``, and a fixed seed
reproduces the exact schedule.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.net import BackoffPolicy, BreakerOpen, CircuitBreaker
from repro.net.http import HttpError, HttpServer, retrying_request
from repro.net.retry import ENDPOINT_POLICIES, EndpointPolicy
from repro.sim import Simulation

policies = st.builds(
    BackoffPolicy,
    base=st.floats(min_value=0.001, max_value=2.0, allow_nan=False),
    factor=st.floats(min_value=1.0, max_value=4.0, allow_nan=False),
    max_delay=st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
    max_total=st.floats(min_value=0.01, max_value=60.0, allow_nan=False),
    jitter=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    seed=st.integers(min_value=0, max_value=2**32),
)


class TestBackoffProperties:
    @settings(max_examples=120, deadline=None)
    @given(policy=policies, attempts=st.integers(min_value=1, max_value=12))
    def test_caps_monotone_non_decreasing(self, policy, attempts):
        caps = [policy.cap(k) for k in range(attempts)]
        assert all(a <= b for a, b in zip(caps, caps[1:]))
        assert all(c <= policy.max_delay for c in caps)

    @settings(max_examples=120, deadline=None)
    @given(policy=policies, attempt=st.integers(min_value=0, max_value=12),
           key=st.text(max_size=20))
    def test_delay_within_jitter_window(self, policy, attempt, key):
        cap = policy.cap(attempt)
        delay = policy.delay(attempt, key=key)
        assert (1.0 - policy.jitter) * cap <= delay + 1e-12
        assert delay <= cap + 1e-12

    @settings(max_examples=120, deadline=None)
    @given(policy=policies, key=st.text(max_size=20))
    def test_total_sleep_bounded(self, policy, key):
        schedule = policy.schedule(key=key, attempts=64)
        assert sum(schedule) <= policy.max_total + 1e-9

    @settings(max_examples=60, deadline=None)
    @given(policy=policies, key=st.text(max_size=20))
    def test_deterministic_under_fixed_seed(self, policy, key):
        twin = BackoffPolicy(
            base=policy.base, factor=policy.factor, max_delay=policy.max_delay,
            max_total=policy.max_total, jitter=policy.jitter, seed=policy.seed,
        )
        assert policy.schedule(key=key) == twin.schedule(key=key)
        assert [policy.delay(k, key) for k in range(8)] == [
            twin.delay(k, key) for k in range(8)
        ]

    @settings(max_examples=60, deadline=None)
    @given(attempt=st.integers(min_value=0, max_value=12), key=st.text(max_size=20))
    def test_zero_jitter_hits_cap_exactly(self, attempt, key):
        policy = BackoffPolicy(jitter=0.0)
        assert policy.delay(attempt, key=key) == policy.cap(attempt)

    def test_distinct_keys_decorrelate(self):
        policy = BackoffPolicy(seed=7)
        schedules = {tuple(policy.schedule(key=f"file-{i}")) for i in range(10)}
        assert len(schedules) > 1  # no synchronized thundering herd

    def test_distinct_seeds_decorrelate(self):
        a = BackoffPolicy(seed=1).schedule(key="x")
        b = BackoffPolicy(seed=2).schedule(key="x")
        assert a != b

    def test_delays_generator_exhausts_budget(self):
        policy = BackoffPolicy(base=1.0, factor=2.0, max_delay=8.0,
                               max_total=10.0, jitter=0.0)
        steps = list(policy.delays())
        assert math.isclose(sum(steps), 10.0)
        assert steps[-1] <= steps[-2]  # final step clipped to the budget

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"base": -0.1},
            {"factor": 0.5},
            {"max_delay": -1.0},
            {"max_total": -1.0},
            {"jitter": 1.5},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            BackoffPolicy(**kwargs)

    def test_negative_attempt_rejected(self):
        with pytest.raises(ValueError):
            BackoffPolicy().cap(-1)


class TestFullJitter:
    @settings(max_examples=120, deadline=None)
    @given(policy=policies, attempt=st.integers(min_value=0, max_value=12),
           key=st.text(max_size=20))
    def test_full_jitter_spans_zero_to_cap(self, policy, attempt, key):
        full = BackoffPolicy(
            base=policy.base, factor=policy.factor, max_delay=policy.max_delay,
            max_total=policy.max_total, seed=policy.seed, full_jitter=True,
        )
        delay = full.delay(attempt, key=key)
        assert 0.0 <= delay <= full.cap(attempt) + 1e-12

    def test_full_jitter_reaches_low_delays_partial_cannot(self):
        # Partial jitter (the default) keeps delays >= (1-jitter)*cap —
        # a reconnecting fleet clusters near the cap.  Full jitter
        # spreads over the whole [0, cap] window.
        partial = BackoffPolicy(seed=3)
        full = BackoffPolicy(seed=3, full_jitter=True)
        keys = [f"agent-{i}" for i in range(50)]
        floor = (1.0 - partial.jitter) * partial.cap(4)
        assert all(partial.delay(4, key=k) >= floor - 1e-12 for k in keys)
        assert any(full.delay(4, key=k) < floor for k in keys)

    def test_full_jitter_is_deterministic(self):
        a = BackoffPolicy(seed=11, full_jitter=True)
        b = BackoffPolicy(seed=11, full_jitter=True)
        assert [a.delay(k, "agent-a") for k in range(8)] == [
            b.delay(k, "agent-a") for k in range(8)
        ]
        assert a.delay(3, "agent-a") != a.delay(3, "agent-b")


class TestEndpointPolicies:
    def test_non_idempotent_phases_are_pinned(self):
        """The safety-critical entries: submit/lease/complete must never
        be blind-retried (the client requires a dedupe key or fencing
        token before granting them a retry budget)."""
        for phase in ("submit", "lease", "complete"):
            assert ENDPOINT_POLICIES[phase].idempotent is False
        for phase in ("status", "heartbeat", "reconcile", "health"):
            assert ENDPOINT_POLICIES[phase].idempotent is True

    def test_unknown_phase_falls_back_to_no_retries(self):
        other = ENDPOINT_POLICIES["other"]
        assert other.idempotent is False
        assert other.retries == 0

    def test_probe_phases_time_out_faster(self):
        assert ENDPOINT_POLICIES["health"].timeout_scale < 1.0
        assert ENDPOINT_POLICIES["heartbeat"].timeout_scale < 1.0
        assert ENDPOINT_POLICIES["submit"].timeout_scale > 1.0

    @pytest.mark.parametrize("kwargs", [
        {"idempotent": True, "retries": -1},
        {"idempotent": True, "timeout_scale": 0.0},
        {"idempotent": True, "timeout_scale": -2.0},
    ])
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            EndpointPolicy(**kwargs)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestCircuitBreaker:
    def make(self, threshold=3, reset_after=10.0):
        clock = FakeClock()
        return CircuitBreaker(failure_threshold=threshold, reset_after=reset_after,
                              clock=clock), clock

    def test_starts_closed_and_allows(self):
        breaker, _clock = self.make()
        assert breaker.state("laads") == CircuitBreaker.CLOSED
        assert breaker.allow("laads")

    def test_opens_after_threshold_failures(self):
        breaker, _clock = self.make(threshold=3)
        for _ in range(3):
            assert breaker.allow("laads")
            breaker.record_failure("laads")
        assert breaker.state("laads") == CircuitBreaker.OPEN
        assert not breaker.allow("laads")
        assert breaker.opened_total == 1

    def test_half_open_admits_single_probe(self):
        breaker, clock = self.make(threshold=2, reset_after=5.0)
        breaker.record_failure("laads")
        breaker.record_failure("laads")
        clock.advance(5.0)
        assert breaker.state("laads") == CircuitBreaker.HALF_OPEN
        assert breaker.allow("laads")       # the probe
        assert not breaker.allow("laads")   # everyone else keeps waiting

    def test_probe_success_closes(self):
        breaker, clock = self.make(threshold=2, reset_after=5.0)
        breaker.record_failure("laads")
        breaker.record_failure("laads")
        clock.advance(5.0)
        assert breaker.allow("laads")
        breaker.record_success("laads")
        assert breaker.state("laads") == CircuitBreaker.CLOSED
        assert breaker.allow("laads")
        assert breaker.failures("laads") == 0

    def test_probe_failure_reopens_without_new_trip_count(self):
        breaker, clock = self.make(threshold=2, reset_after=5.0)
        breaker.record_failure("laads")
        breaker.record_failure("laads")
        assert breaker.opened_total == 1
        clock.advance(5.0)
        assert breaker.allow("laads")
        breaker.record_failure("laads")
        assert breaker.state("laads") == CircuitBreaker.OPEN
        assert breaker.opened_total == 1  # a re-open is the same outage
        clock.advance(5.0)
        assert breaker.allow("laads")  # probed again after another window

    def test_hosts_are_independent(self):
        breaker, _clock = self.make(threshold=1)
        breaker.record_failure("laads")
        assert not breaker.allow("laads")
        assert breaker.allow("orion")

    def test_success_resets_failure_count(self):
        breaker, _clock = self.make(threshold=3)
        breaker.record_failure("laads")
        breaker.record_failure("laads")
        breaker.record_success("laads")
        breaker.record_failure("laads")
        assert breaker.state("laads") == CircuitBreaker.CLOSED

    @pytest.mark.parametrize("kwargs", [{"failure_threshold": 0},
                                        {"reset_after": -1.0}])
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CircuitBreaker(**kwargs)


class TestSimRetryingRequest:
    """The simulated twin of the download retry loop (sim-time sleeps)."""

    def test_recovers_from_transient_failures(self):
        sim = Simulation()
        server = HttpServer(sim, request_overhead=0.01, failure_rate=0.4, seed=5)
        policy = BackoffPolicy(base=0.1, jitter=0.0, seed=5)
        done = {}

        def client():
            result = yield from retrying_request(
                server, 10_000, policy=policy, label="granule-0", max_attempts=50
            )
            done["finished"] = result.finished_at

        sim.process(client())
        sim.run()
        assert done["finished"] > 0

    def test_exhausted_attempts_raise_http_error(self):
        sim = Simulation()
        server = HttpServer(sim, request_overhead=0.01, failure_rate=0.99, seed=5)
        outcome = {}

        def client():
            try:
                yield from retrying_request(server, 100, max_attempts=3, label="f")
            except HttpError as exc:
                outcome["error"] = str(exc)

        sim.process(client())
        sim.run()
        assert "error" in outcome

    def test_breaker_open_fails_fast(self):
        sim = Simulation()
        server = HttpServer(sim, request_overhead=0.01, failure_rate=0.99, seed=5)
        breaker = CircuitBreaker(failure_threshold=2, reset_after=1e9,
                                 clock=lambda: sim.now)
        outcome = {"breaker_open": 0, "http_error": 0}

        def client(i):
            try:
                yield from retrying_request(
                    server, 100, label=f"f{i}", breaker=breaker, max_attempts=4
                )
            except BreakerOpen:
                outcome["breaker_open"] += 1
            except HttpError:
                outcome["http_error"] += 1

        for i in range(4):
            sim.process(client(i))
        sim.run()
        assert breaker.state(server.name) == CircuitBreaker.OPEN
        assert outcome["breaker_open"] >= 1  # later clients refused fast
        assert outcome["breaker_open"] + outcome["http_error"] == 4

    def test_zero_attempts_rejected(self):
        sim = Simulation()
        server = HttpServer(sim)
        with pytest.raises(ValueError):
            list(retrying_request(server, 1, max_attempts=0))
