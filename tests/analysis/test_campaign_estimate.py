"""Archive-campaign estimator tests."""

import pytest

from repro.analysis.campaign_estimate import (
    AICCA_ARCHIVE_BYTES,
    estimate_campaign,
    sweep_workers,
)


class TestEstimator:
    def test_more_workers_faster_until_wan(self):
        estimates = sweep_workers()
        seconds = [e.seconds for e in estimates]
        # Monotone non-increasing...
        assert all(a >= b - 1e-6 for a, b in zip(seconds, seconds[1:]))
        # ...with diminishing returns once the WAN saturates.
        assert estimates[0].bottleneck == "per-connection"
        assert estimates[-1].bottleneck == "wan"
        gain_early = seconds[0] / seconds[1]
        gain_late = seconds[-2] / seconds[-1]
        assert gain_early > gain_late

    def test_850tb_timescale_is_months(self):
        """At Fig. 3's calibrated network, 850 TB takes months — exactly
        why the original effort leaned on parallel FuncX downloads."""
        estimate = estimate_campaign(AICCA_ARCHIVE_BYTES, workers=6)
        days = estimate.seconds / 86400
        assert 100 < days < 2000

    def test_aggregate_rate_bounded_by_wan(self):
        estimate = estimate_campaign(workers=50, wan_bandwidth=25e6)
        assert estimate.aggregate_rate <= 25e6

    def test_overhead_lowers_effective_rate(self):
        fast = estimate_campaign(workers=3, request_overhead=0.0)
        slow = estimate_campaign(workers=3, request_overhead=5.0)
        assert slow.seconds > fast.seconds

    def test_str(self):
        text = str(estimate_campaign(workers=3))
        assert "MB/s" in text and "workers" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_campaign(total_bytes=0)
        with pytest.raises(ValueError):
            estimate_campaign(workers=0)


class TestCampaignYaml:
    def test_campaign_from_yaml(self):
        from repro.zambeze import ActivityKind, Campaign

        campaign = Campaign.from_yaml(
            "name: eo-ml\n"
            "activities:\n"
            "  - name: download\n"
            "    kind: compute\n"
            "    facility: olcf\n"
            "    capability: laads-download\n"
            "    parameters: {files: 6}\n"
            "  - name: preprocess\n"
            "    capability: preprocess\n"
            "    depends_on: [download]\n"
            "    max_retries: 1\n"
        )
        assert campaign.name == "eo-ml"
        assert campaign.activities["download"].kind is ActivityKind.COMPUTE
        assert campaign.activities["download"].parameters == {"files": 6}
        assert campaign.activities["preprocess"].depends_on == ["download"]
        assert campaign.activities["preprocess"].max_retries == 1

    def test_bad_yaml_campaigns(self):
        from repro.zambeze import Campaign

        with pytest.raises(ValueError, match="activities"):
            Campaign.from_yaml("name: x\n")
        with pytest.raises(ValueError, match="unknown kind"):
            Campaign.from_yaml(
                "name: x\nactivities:\n  - name: a\n    kind: teleport\n"
            )
        with pytest.raises(ValueError, match="needs a 'name'"):
            Campaign.from_yaml("name: x\nactivities:\n  - kind: compute\n")
