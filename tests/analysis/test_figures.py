"""Fig. 3 / Fig. 6 / Fig. 7 drivers and report rendering tests."""

import pytest

from repro.analysis import (
    FIG3_WORKER_GAIN_MB_S,
    FIG7_LATENCIES,
    automation_timeline,
    contention_ablation,
    download_sweep,
    elastic_ablation,
    latency_breakdown,
    overlap_ablation,
    render_comparison,
    render_table,
    shape_error,
)
from repro.core import SimWorkflowParams


@pytest.fixture(scope="module")
def fig3():
    return download_sweep(iterations=2)


class TestFig3:
    def test_speed_rises_with_batch_size(self, fig3):
        three = {p.batch_bytes: p.mean_speed_mb_s for p in fig3 if p.workers == 3}
        sizes = sorted(three)
        assert three[sizes[-1]] > three[sizes[0]]

    def test_six_workers_gain_about_3mbs(self, fig3):
        by_size = {}
        for p in fig3:
            by_size.setdefault(p.batch_bytes, {})[p.workers] = p.mean_speed_mb_s
        gains = [cell[6] - cell[3] for size, cell in by_size.items() if size > 150e6]
        mean_gain = sum(gains) / len(gains)
        assert mean_gain == pytest.approx(FIG3_WORKER_GAIN_MB_S, abs=1.5)

    def test_single_file_no_worker_benefit(self, fig3):
        """The paper's exception: one file per product gains nothing."""
        smallest = min(p.batch_bytes for p in fig3)
        cell = {p.workers: p.mean_speed_mb_s for p in fig3 if p.batch_bytes == smallest}
        assert cell[6] == pytest.approx(cell[3], rel=0.02)

    def test_iterations_give_spread(self, fig3):
        assert any(p.std_speed_mb_s > 0 for p in fig3)


class TestFig6:
    def test_timeline_stage_allocation(self):
        result = automation_timeline(SimWorkflowParams(num_granule_sets=40), samples=200)
        assert result.peak("download") == 3
        assert result.peak("preprocess") == 32
        assert result.peak("inference") == 1

    def test_inference_overlaps_preprocess(self):
        result = automation_timeline(SimWorkflowParams(num_granule_sets=24))
        assert result.overlap_s > 0

    def test_render(self):
        result = automation_timeline(SimWorkflowParams(num_granule_sets=12))
        text = result.render()
        assert "download" in text and "preprocess" in text and "inference" in text


class TestFig7:
    @pytest.fixture(scope="class")
    def breakdown(self):
        return latency_breakdown()

    def test_download_launch(self, breakdown):
        assert breakdown.download_launch_s == pytest.approx(
            FIG7_LATENCIES["download_launch"], rel=0.01
        )

    def test_preprocess_latency_magnitude(self, breakdown):
        """Preprocess (Parsl start + Slurm alloc + tiling) lands near the
        paper's 32.8 s for the demo-day workload."""
        assert breakdown.preprocess_s == pytest.approx(
            FIG7_LATENCIES["preprocess"], rel=0.35
        )

    def test_flow_hop_50ms(self, breakdown):
        assert breakdown.flow_action_hop_s == pytest.approx(
            FIG7_LATENCIES["flow_action_hop"], abs=0.02
        )

    def test_rows_and_gaps(self, breakdown):
        names = [name for name, _ in breakdown.rows()]
        assert names[0] == "download_launch"
        assert all(gap >= 0 for gap in breakdown.gaps.values())


class TestAblations:
    def test_contention_ablation_shows_gap(self):
        result = contention_ablation(workers=(1, 32), num_files=64)
        assert result["ideal"][32] > 3.0 * result["contended"][32]
        assert result["ideal"][1] == pytest.approx(result["contended"][1], rel=0.01)

    def test_elastic_saves_worker_seconds(self):
        result = elastic_ablation(num_granule_sets=24)
        assert 0.0 < result["saving_fraction"] < 1.0
        assert result["elastic_worker_seconds"] < result["static_worker_seconds"]

    def test_overlap_saves_makespan(self):
        result = overlap_ablation(num_granule_sets=24)
        assert result["overlapped_makespan"] < result["barrier_makespan"]
        assert result["overlap_seconds"] > 0


class TestReport:
    def test_render_table(self):
        text = render_table(["a", "b"], [[1, 2.5], [10, 0.001]], title="T")
        assert "T" in text and "2.50" in text and "0.0010" in text

    def test_render_comparison_and_shape(self):
        measured = {1: 10.0, 2: 19.0}
        paper = {1: 20.0, 2: 38.0}
        text = render_comparison("n", measured, paper)
        assert "shape ratio" in text
        assert shape_error(measured, paper) == pytest.approx(0.0)

    def test_shape_error_detects_divergence(self):
        assert shape_error({1: 10, 2: 10}, {1: 10, 2: 20}) == pytest.approx(0.5)

    def test_empty_comparison(self):
        with pytest.raises(ValueError):
            shape_error({1: 1.0}, {2: 2.0})
