"""Scaling drivers reproduce the Table I / Fig. 4-5 shapes."""

import pytest

from repro.analysis import (
    HEADLINE,
    TABLE1_STRONG_NODES,
    TABLE1_STRONG_WORKERS,
    headline_run,
    run_preprocess_trial,
    shape_error,
    strong_scaling_nodes,
    strong_scaling_workers,
    weak_scaling_nodes,
    weak_scaling_workers,
)


@pytest.fixture(scope="module")
def strong_workers():
    return strong_scaling_workers(repeats=2)


@pytest.fixture(scope="module")
def strong_nodes():
    return strong_scaling_nodes(repeats=2)


class TestStrongScaling:
    def test_worker_shape_matches_paper(self, strong_workers):
        """Normalized throughput curve within 20% of Table I at every point."""
        assert shape_error(strong_workers.throughput_map(), TABLE1_STRONG_WORKERS) < 0.20

    def test_worker_plateau(self, strong_workers):
        """The paper's saturation: 16..64 workers sit in a narrow band."""
        tput = strong_workers.throughput_map()
        plateau = [tput[16], tput[32], tput[64]]
        assert max(plateau) / min(plateau) < 1.3
        # And the plateau is far below linear scaling.
        assert tput[64] < 0.1 * 64 * tput[1]

    def test_second_node_jump(self, strong_workers):
        """64 -> 128 workers crosses onto a second node: ~2x throughput."""
        tput = strong_workers.throughput_map()
        assert 1.6 < tput[128] / tput[64] < 2.2

    def test_node_scaling_near_linear(self, strong_nodes):
        tput = strong_nodes.throughput_map()
        speedup_10 = tput[10] / tput[1]
        assert 6.0 < speedup_10 < 10.0

    def test_node_shape_vs_paper(self, strong_nodes):
        # The paper's own 9-node point is anomalously superlinear; allow
        # a wider band on the node curve.
        assert shape_error(strong_nodes.throughput_map(), TABLE1_STRONG_NODES) < 0.35

    def test_completion_time_monotone_decreasing_nodes(self, strong_nodes):
        times = strong_nodes.completion_map()
        nodes = sorted(times)
        for a, b in zip(nodes, nodes[1:]):
            assert times[b] <= times[a] * 1.05  # monotone within noise


class TestWeakScaling:
    def test_weak_nodes_completion_flat(self):
        """Fig. 5b: completion time roughly flat with nodes (good weak
        scaling) — within 1.6x from 1 to 10 nodes."""
        curve = weak_scaling_nodes(repeats=2)
        times = curve.completion_map()
        assert times[10] / times[1] < 1.6

    def test_weak_workers_show_contention(self):
        """Fig. 5a: on-node weak scaling is NOT flat (contention)."""
        curve = weak_scaling_workers(repeats=2, workers=(1, 8, 32, 64))
        times = curve.completion_map()
        assert times[64] > 2.0 * times[1]

    def test_weak_peak_exceeds_strong_peak(self):
        """Table I: weak scaling's best throughput edges out strong's.

        With 2 files per worker the tail imbalance is relatively smaller
        than strong scaling's 1 file per worker at 10 nodes.
        """
        strong = strong_scaling_nodes(nodes=(10,), repeats=3).throughput_map()[10]
        weak = weak_scaling_nodes(nodes=(10,), repeats=3).throughput_map()[10]
        assert weak > strong * 0.95  # at least comparable; usually higher


class TestHeadline:
    def test_12000_tiles_in_about_44s(self):
        point = headline_run(repeats=3)
        assert point.tiles == HEADLINE["tiles"]
        # Within 25% of the paper's 44 s.
        assert point.mean_seconds == pytest.approx(HEADLINE["seconds"], rel=0.25)
        assert point.mean_tiles_per_s > 200


class TestTrialMechanics:
    def test_trial_deterministic(self):
        a = run_preprocess_trial(16, 8, 1, seed=5)
        b = run_preprocess_trial(16, 8, 1, seed=5)
        assert a == b

    def test_trial_seed_sensitivity(self):
        a = run_preprocess_trial(16, 8, 1, seed=5)
        b = run_preprocess_trial(16, 8, 1, seed=6)
        assert a != b

    def test_zero_noise_matches_theory(self):
        """Without noise, w workers' completion equals the USL prediction."""
        from repro.hpc.contention import DEFIANT_NODE_USL

        seconds = run_preprocess_trial(
            num_files=8, workers_per_node=8, num_nodes=1, seed=0, noise_sigma=0.0
        )
        expected = (150 / 10.52) / DEFIANT_NODE_USL.efficiency(8)
        assert seconds == pytest.approx(expected)
