"""Climatology / trend-detection tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.climatology import (
    class_frequency_series,
    detect_changing_classes,
    linear_trend,
    mann_kendall,
)
from repro.core.tiles import Tile, tiles_to_dataset
from repro.netcdf import write as nc_write


def labelled_file(path, labels, seed=0):
    rng = np.random.default_rng(seed)
    tiles = []
    for index, label in enumerate(labels):
        tiles.append(
            Tile(
                data=rng.normal(size=(8, 8, 2)).astype(np.float32),
                row=index, col=0, latitude=0.0, longitude=0.0,
                cloud_fraction=0.5, mean_optical_thickness=1.0,
                mean_cloud_top_pressure=800.0, label=int(label),
            )
        )
    nc_write(tiles_to_dataset(tiles), str(path))
    return str(path)


class TestMannKendall:
    def test_strong_increase(self):
        result = mann_kendall(np.arange(20, dtype=float))
        assert result.direction == "increasing"
        assert result.p_value < 0.001
        assert result.slope == pytest.approx(1.0)

    def test_strong_decrease(self):
        result = mann_kendall(-np.arange(20, dtype=float))
        assert result.direction == "decreasing"
        assert result.slope == pytest.approx(-1.0)

    def test_constant_is_no_trend(self):
        result = mann_kendall([5.0] * 10)
        assert result.direction == "no trend"
        assert not result.significant()

    def test_noise_usually_not_significant(self):
        rng = np.random.default_rng(0)
        hits = sum(
            mann_kendall(rng.normal(size=20)).significant(alpha=0.05) for _ in range(100)
        )
        # ~5% false positives expected; allow generous slack.
        assert hits < 15

    def test_detects_trend_in_noise(self):
        rng = np.random.default_rng(1)
        series = 0.05 * np.arange(40) + rng.normal(0, 0.3, 40)
        result = mann_kendall(series)
        assert result.significant()
        assert result.direction == "increasing"

    def test_needs_three_points(self):
        with pytest.raises(ValueError):
            mann_kendall([1.0, 2.0])

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=-100, max_value=100), min_size=3, max_size=40))
    def test_sign_flip_antisymmetry(self, values):
        forward = mann_kendall(values)
        backward = mann_kendall([-v for v in values])
        assert forward.statistic == pytest.approx(-backward.statistic, abs=1e-9)
        assert forward.p_value == pytest.approx(backward.p_value, abs=1e-9)


class TestLinearTrend:
    def test_exact_line(self):
        result = linear_trend(3.0 + 2.0 * np.arange(10))
        assert result.slope == pytest.approx(2.0)
        assert result.direction == "increasing"
        assert result.p_value < 1e-6

    def test_agreement_with_mk_on_clean_trend(self):
        series = np.linspace(0, 1, 15)
        assert linear_trend(series).direction == mann_kendall(series).direction


class TestFrequencySeries:
    def test_aggregation(self, tmp_path):
        files = {
            "2000": [labelled_file(tmp_path / "a.nc", [0, 0, 1], seed=1)],
            "2001": [labelled_file(tmp_path / "b.nc", [0, 1, 1], seed=2),
                      labelled_file(tmp_path / "c.nc", [1], seed=3)],
        }
        series = class_frequency_series(files)
        assert series.periods == ("2000", "2001")
        assert series.classes == (0, 1)
        np.testing.assert_allclose(series.series_for(0), [2 / 3, 1 / 4])
        np.testing.assert_allclose(series.counts.sum(axis=1), [3, 4])

    def test_unlabelled_tiles_ignored(self, tmp_path):
        path = labelled_file(tmp_path / "a.nc", [0, 1])
        # Rewrite one label to the 'unclassified' placeholder.
        from repro.netcdf import read as nc_read, write

        ds = nc_read(path)
        ds["label"].data[0] = -1
        write(ds, path)
        series = class_frequency_series({"t0": [path]})
        assert series.counts.sum() == 1

    def test_missing_class_key(self, tmp_path):
        series = class_frequency_series(
            {"t": [labelled_file(tmp_path / "a.nc", [2, 2])]}
        )
        with pytest.raises(KeyError):
            series.series_for(0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            class_frequency_series({})


class TestDetection:
    def test_detects_shifting_cloud_population(self, tmp_path):
        """Class 0 shrinks while class 1 grows across a decade of periods."""
        rng = np.random.default_rng(4)
        files = {}
        for year in range(2000, 2012):
            share0 = 0.8 - 0.05 * (year - 2000)
            labels = rng.choice([0, 1], size=60, p=[share0, 1 - share0])
            files[str(year)] = [
                labelled_file(tmp_path / f"{year}.nc", labels, seed=year)
            ]
        series = class_frequency_series(files)
        changing = detect_changing_classes(series, alpha=0.05)
        found = {label: result.direction for label, result in changing}
        assert found.get(0) == "decreasing"
        assert found.get(1) == "increasing"

    def test_stable_population_clean(self, tmp_path):
        rng = np.random.default_rng(5)
        files = {
            str(year): [
                labelled_file(
                    tmp_path / f"{year}.nc",
                    rng.choice([0, 1], size=60),
                    seed=year,
                )
            ]
            for year in range(2000, 2008)
        }
        changing = detect_changing_classes(class_frequency_series(files))
        assert changing == []

    def test_bad_method(self, tmp_path):
        series = class_frequency_series(
            {"t": [labelled_file(tmp_path / "a.nc", [0, 1, 0])]}
        )
        with pytest.raises(ValueError):
            detect_changing_classes(series, method="tea-leaves")
