"""Transfer sync-mode tests (skip already-current destinations)."""

import pytest

from repro.hpc.filesystem import SharedFilesystem
from repro.net import WanLink
from repro.sim import Simulation
from repro.transfer import LocalTransferClient, SimTransferClient, TransferState


def make_sites():
    sim = Simulation()
    defiant = SharedFilesystem(sim, "defiant", aggregate_bw=1e6)
    orion = SharedFilesystem(sim, "orion", aggregate_bw=1e6)
    link = WanLink(sim, "defiant", "orion", bandwidth=100.0, latency=0.0)
    client = SimTransferClient(
        sim,
        endpoints={"defiant": defiant, "orion": orion},
        links={("defiant", "orion"): link},
        verify_overhead=0.0,
    )
    return sim, defiant, orion, client


class TestSimSync:
    def test_sync_skips_current_destination(self):
        sim, defiant, orion, client = make_sites()
        defiant.write("/out/a.nc", 500)
        sim.run()
        first = client.submit("defiant", "orion", [("/out/a.nc", "/in/a.nc")])
        sim.run()
        assert first.bytes_transferred == 500

        second = client.submit("defiant", "orion", [("/out/a.nc", "/in/a.nc")], sync=True)
        sim.run()
        assert second.state is TransferState.SUCCEEDED
        assert second.files_skipped == 1
        assert second.bytes_transferred == 0

    def test_sync_moves_changed_files(self):
        sim, defiant, orion, client = make_sites()
        defiant.write("/out/a.nc", 500)
        orion.write("/in/a.nc", 123)  # stale, different size
        sim.run()
        task = client.submit("defiant", "orion", [("/out/a.nc", "/in/a.nc")], sync=True)
        sim.run()
        assert task.files_skipped == 0
        assert orion.entry("/in/a.nc").nbytes == 500

    def test_without_sync_always_moves(self):
        sim, defiant, orion, client = make_sites()
        defiant.write("/out/a.nc", 500)
        sim.run()
        client.submit("defiant", "orion", [("/out/a.nc", "/in/a.nc")])
        sim.run()
        again = client.submit("defiant", "orion", [("/out/a.nc", "/in/a.nc")])
        sim.run()
        assert again.files_skipped == 0
        assert again.bytes_transferred == 500


class TestLocalSync:
    def test_sync_skips_identical(self, tmp_path):
        src = tmp_path / "src"
        dst = tmp_path / "dst"
        src.mkdir()
        (src / "a.nc").write_bytes(b"payload")
        client = LocalTransferClient()
        client.transfer(str(src), str(dst), ["a.nc"])
        before = client.bytes_transferred
        client.transfer(str(src), str(dst), ["a.nc"], sync=True)
        assert client.files_skipped == 1
        assert client.bytes_transferred == before  # nothing re-copied

    def test_sync_recopies_changed(self, tmp_path):
        src = tmp_path / "src"
        dst = tmp_path / "dst"
        src.mkdir()
        dst.mkdir()
        (src / "a.nc").write_bytes(b"new content")
        (dst / "a.nc").write_bytes(b"old")
        client = LocalTransferClient()
        client.transfer(str(src), str(dst), ["a.nc"], sync=True)
        assert client.files_skipped == 0
        assert (dst / "a.nc").read_bytes() == b"new content"
