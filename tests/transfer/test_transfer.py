"""Transfer service tests: simulated WAN transfers and real local copies."""

import pytest

from repro.hpc.filesystem import SharedFilesystem
from repro.net import WanLink
from repro.sim import Simulation
from repro.transfer import (
    LocalTransferClient,
    SimTransferClient,
    TransferError,
    TransferState,
)


def make_sites(bandwidth=100.0, concurrent_files=4):
    sim = Simulation()
    defiant = SharedFilesystem(sim, "defiant", aggregate_bw=1e6)
    orion = SharedFilesystem(sim, "orion", aggregate_bw=1e6)
    link = WanLink(sim, "defiant", "orion", bandwidth=bandwidth, latency=0.0)
    client = SimTransferClient(
        sim,
        endpoints={"defiant": defiant, "orion": orion},
        links={("defiant", "orion"): link},
        concurrent_files=concurrent_files,
        verify_overhead=0.0,
    )
    return sim, defiant, orion, client


class TestSimTransfer:
    def test_moves_files(self):
        sim, defiant, orion, client = make_sites()
        defiant.write("/out/a.nc", 500)
        defiant.write("/out/b.nc", 300)
        sim.run()
        task = client.submit(
            "defiant", "orion",
            [("/out/a.nc", "/in/a.nc"), ("/out/b.nc", "/in/b.nc")],
        )
        sim.run()
        assert task.state is TransferState.SUCCEEDED
        assert orion.exists("/in/a.nc") and orion.exists("/in/b.nc")
        assert orion.entry("/in/a.nc").nbytes == 500
        assert task.bytes_transferred == 800
        assert task.files_done == 2
        assert all(item.verified for item in task.items)

    def test_missing_source_fails_task(self):
        sim, defiant, orion, client = make_sites()
        defiant.write("/out/a.nc", 100)
        sim.run()
        task = client.submit("defiant", "orion", [("/out/ghost.nc", "/in/g.nc")])
        failed = {}

        def watcher():
            try:
                yield task.done
            except TransferError as exc:
                failed["error"] = str(exc)

        sim.process(watcher())
        sim.run()
        assert task.state is TransferState.FAILED
        assert "ghost" in failed["error"]
        assert task.faults == 1

    def test_partial_failure_moves_good_files(self):
        sim, defiant, orion, client = make_sites()
        defiant.write("/out/a.nc", 100)
        sim.run()
        task = client.submit(
            "defiant", "orion",
            [("/out/a.nc", "/in/a.nc"), ("/out/ghost.nc", "/in/g.nc")],
        )

        def swallow():
            try:
                yield task.done
            except TransferError:
                pass

        sim.process(swallow())
        sim.run()
        assert orion.exists("/in/a.nc")
        assert task.state is TransferState.FAILED

    def test_unknown_endpoint_or_link(self):
        sim, defiant, orion, client = make_sites()
        with pytest.raises(KeyError):
            client.submit("mars", "orion", [])
        with pytest.raises(KeyError):
            client.submit("orion", "defiant", [])  # no reverse link

    def test_concurrency_bounded_by_config(self):
        """With 1 concurrent file, files move sequentially over the link."""
        sim, defiant, orion, client = make_sites(bandwidth=100.0, concurrent_files=1)
        for index in range(3):
            defiant.write(f"/out/{index}.nc", 1000)
        sim.run()
        start = sim.now
        task = client.submit(
            "defiant", "orion", [(f"/out/{i}.nc", f"/in/{i}.nc") for i in range(3)]
        )
        sim.run()
        sequential = task.finished_at - start
        # Same setup, 3 concurrent movers: WAN is shared, so the link time
        # is identical, but src reads/dst writes overlap -> strictly faster
        # or equal, never slower.
        sim2, defiant2, orion2, client2 = make_sites(bandwidth=100.0, concurrent_files=3)
        for index in range(3):
            defiant2.write(f"/out/{index}.nc", 1000)
        sim2.run()
        start2 = sim2.now
        task2 = client2.submit(
            "defiant", "orion", [(f"/out/{i}.nc", f"/in/{i}.nc") for i in range(3)]
        )
        sim2.run()
        assert task2.finished_at - start2 <= sequential + 1e-9

    def test_effective_rate(self):
        sim, defiant, orion, client = make_sites(bandwidth=100.0, concurrent_files=1)
        defiant.write("/out/a.nc", 1000)
        sim.run()
        task = client.submit("defiant", "orion", [("/out/a.nc", "/in/a.nc")])
        sim.run()
        assert task.effective_rate < 100.0  # reads/writes add time
        assert task.effective_rate > 30.0

    def test_overwrite_existing_destination(self):
        sim, defiant, orion, client = make_sites()
        defiant.write("/out/a.nc", 100)
        orion.write("/in/a.nc", 999)
        sim.run()
        task = client.submit("defiant", "orion", [("/out/a.nc", "/in/a.nc")])
        sim.run()
        assert task.state is TransferState.SUCCEEDED
        assert orion.entry("/in/a.nc").nbytes == 100


class TestLocalTransfer:
    def test_copies_and_verifies(self, tmp_path):
        src = tmp_path / "src"
        dst = tmp_path / "dst"
        src.mkdir()
        (src / "tile0.nc").write_bytes(b"CDF\x01" + b"x" * 100)
        (src / "tile1.nc").write_bytes(b"CDF\x01" + b"y" * 50)
        client = LocalTransferClient()
        moved = client.transfer(str(src), str(dst), ["tile0.nc", "tile1.nc"])
        assert len(moved) == 2
        assert (dst / "tile0.nc").read_bytes() == (src / "tile0.nc").read_bytes()
        assert client.bytes_transferred == 104 + 54
        assert client.tasks_completed == 1

    def test_missing_source(self, tmp_path):
        client = LocalTransferClient()
        with pytest.raises(TransferError, match="missing"):
            client.transfer(str(tmp_path), str(tmp_path / "dst"), ["nope.nc"])
