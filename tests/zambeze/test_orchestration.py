"""Cross-facility orchestration tests (bus, agents, campaigns)."""

import pytest

from repro.zambeze import (
    ActivityKind,
    ActivityStatus,
    Campaign,
    CampaignActivity,
    FacilityAgent,
    MessageBus,
    Orchestrator,
)


def build_ecosystem(fail_preprocess_times=0):
    """Two facilities: OLCF (download+preprocess), NERSC (analyze)."""
    bus = MessageBus()
    orchestrator = Orchestrator(bus, credentials={"olcf": "tok-olcf", "nersc": "tok-nersc"})
    olcf = FacilityAgent("olcf", bus, credential="tok-olcf")
    nersc = FacilityAgent("nersc", bus, credential="tok-nersc")
    state = {"downloaded": 0, "preprocessed": 0, "analyzed": 0, "fail_left": fail_preprocess_times}

    def download(params):
        state["downloaded"] += params.get("files", 1)
        return f"staged:{state['downloaded']}"

    def preprocess(params):
        if state["fail_left"] > 0:
            state["fail_left"] -= 1
            raise RuntimeError("HDF read error on partially written file")
        state["preprocessed"] += 1
        return "tiles.nc"

    def analyze(params):
        state["analyzed"] += 1
        return {"classes": 42}

    olcf.register_plugin("laads-download", download)
    olcf.register_plugin("preprocess", preprocess)
    nersc.register_plugin("analyze", analyze)
    orchestrator.register_agent(olcf)
    orchestrator.register_agent(nersc)
    return bus, orchestrator, state


def eo_ml_campaign(retries=0):
    return Campaign(
        "eo-ml",
        [
            CampaignActivity("download", ActivityKind.COMPUTE, facility="olcf",
                             capability="laads-download", parameters={"files": 6}),
            CampaignActivity("preprocess", ActivityKind.COMPUTE, facility="olcf",
                             capability="preprocess", depends_on=["download"],
                             max_retries=retries),
            CampaignActivity("analyze", ActivityKind.COMPUTE, capability="analyze",
                             depends_on=["preprocess"]),
        ],
    )


class TestBus:
    def test_pump_delivers_in_order(self):
        bus = MessageBus()
        seen = []
        bus.subscribe("t", "sub", lambda m: seen.append(m.payload["i"]))
        for i in range(5):
            bus.publish("t", "test", i=i)
        assert bus.queued == 5
        assert bus.pump() == 5
        assert seen == [0, 1, 2, 3, 4]

    def test_publish_loop_detected(self):
        bus = MessageBus()
        bus.subscribe("ping", "a", lambda m: bus.publish("pong", "a"))
        bus.subscribe("pong", "b", lambda m: bus.publish("ping", "b"))
        bus.publish("ping", "seed")
        with pytest.raises(RuntimeError, match="loop"):
            bus.pump(max_messages=100)


class TestCampaignModel:
    def test_cycle_rejected(self):
        with pytest.raises(ValueError, match="cycle"):
            Campaign("bad", [
                CampaignActivity("a", ActivityKind.COMPUTE, depends_on=["b"]),
                CampaignActivity("b", ActivityKind.COMPUTE, depends_on=["a"]),
            ])

    def test_unknown_dependency(self):
        with pytest.raises(ValueError, match="unknown"):
            Campaign("bad", [CampaignActivity("a", ActivityKind.COMPUTE, depends_on=["ghost"])])

    def test_duplicate_names(self):
        with pytest.raises(ValueError, match="duplicate"):
            Campaign("bad", [
                CampaignActivity("a", ActivityKind.COMPUTE),
                CampaignActivity("a", ActivityKind.COMPUTE),
            ])

    def test_ready_respects_dependencies(self):
        campaign = eo_ml_campaign()
        assert [a.name for a in campaign.ready()] == ["download"]
        campaign.activities["download"].status = ActivityStatus.SUCCEEDED
        assert [a.name for a in campaign.ready()] == ["preprocess"]


class TestOrchestration:
    def test_full_campaign_succeeds(self):
        bus, orchestrator, state = build_ecosystem()
        report = orchestrator.run(eo_ml_campaign())
        assert report.succeeded
        assert state == {"downloaded": 6, "preprocessed": 1, "analyzed": 1, "fail_left": 0}
        assert report.statuses == {
            "download": "succeeded", "preprocess": "succeeded", "analyze": "succeeded"
        }
        assert report.results["analyze"] == {"classes": 42}
        assert report.dispatches == 3

    def test_retry_recovers_transient_failure(self):
        bus, orchestrator, state = build_ecosystem(fail_preprocess_times=1)
        report = orchestrator.run(eo_ml_campaign(retries=2))
        assert report.succeeded
        assert report.retries == 1
        assert state["preprocessed"] == 1

    def test_exhausted_retries_block_dependents(self):
        bus, orchestrator, state = build_ecosystem(fail_preprocess_times=10)
        report = orchestrator.run(eo_ml_campaign(retries=1))
        assert not report.succeeded
        assert report.statuses["preprocess"] == "failed"
        assert report.statuses["analyze"] == "pending"  # never dispatched
        assert "HDF read error" in report.errors["preprocess"]

    def test_bad_credential_rejected(self):
        bus = MessageBus()
        orchestrator = Orchestrator(bus, credentials={"olcf": "WRONG"})
        agent = FacilityAgent("olcf", bus, credential="tok-olcf")
        agent.register_plugin("noop", lambda p: None)
        orchestrator.register_agent(agent)
        campaign = Campaign("c", [
            CampaignActivity("x", ActivityKind.COMPUTE, capability="noop")
        ])
        report = orchestrator.run(campaign)
        assert not report.succeeded
        assert "credential" in report.errors["x"]
        assert agent.rejected == 1

    def test_capability_routing_unpinned(self):
        """An unpinned activity lands on a facility that offers it."""
        bus, orchestrator, state = build_ecosystem()
        campaign = Campaign("c", [
            CampaignActivity("a", ActivityKind.COMPUTE, capability="analyze")
        ])
        report = orchestrator.run(campaign)
        assert report.succeeded
        assert state["analyzed"] == 1

    def test_missing_capability_fails_cleanly(self):
        bus, orchestrator, _state = build_ecosystem()
        campaign = Campaign("c", [
            CampaignActivity("a", ActivityKind.COMPUTE, capability="quantum-annealing")
        ])
        report = orchestrator.run(campaign)
        assert not report.succeeded
        assert "no facility offers" in report.errors["a"]

    def test_pinned_facility_lacking_capability(self):
        bus, orchestrator, _state = build_ecosystem()
        campaign = Campaign("c", [
            CampaignActivity("a", ActivityKind.COMPUTE, facility="nersc",
                             capability="preprocess")
        ])
        report = orchestrator.run(campaign)
        assert not report.succeeded
        assert "lacks capability" in report.errors["a"]

    def test_duplicate_agent_rejected(self):
        bus = MessageBus()
        orchestrator = Orchestrator(bus)
        agent = FacilityAgent("olcf", bus, credential="t")
        orchestrator.register_agent(agent)
        with pytest.raises(ValueError):
            orchestrator.register_agent(FacilityAgent("olcf", bus, credential="t"))

    def test_fan_out_campaign(self):
        """Diamond: download -> 3 parallel preprocess -> merge analyze."""
        bus, orchestrator, state = build_ecosystem()
        activities = [
            CampaignActivity("download", ActivityKind.COMPUTE, facility="olcf",
                             capability="laads-download"),
        ]
        for i in range(3):
            activities.append(
                CampaignActivity(f"pre{i}", ActivityKind.COMPUTE, facility="olcf",
                                 capability="preprocess", depends_on=["download"])
            )
        activities.append(
            CampaignActivity("analyze", ActivityKind.COMPUTE, capability="analyze",
                             depends_on=[f"pre{i}" for i in range(3)])
        )
        report = orchestrator.run(Campaign("diamond", activities))
        assert report.succeeded
        assert state["preprocessed"] == 3
        assert state["analyzed"] == 1
