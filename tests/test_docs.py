"""Documentation consistency checks.

Docs rot silently; these tests pin the promises README/DESIGN make to the
actual tree: every documented package exists, every example referenced is
runnable-by-name, and the deliverable files are present.
"""

import importlib
import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).parent.parent


class TestDeliverables:
    @pytest.mark.parametrize(
        "name", ["README.md", "DESIGN.md", "EXPERIMENTS.md", "pyproject.toml"]
    )
    def test_file_exists(self, name):
        assert (ROOT / name).is_file()

    def test_docs_folder(self):
        assert (ROOT / "docs" / "calibration.md").is_file()
        assert (ROOT / "docs" / "architecture.md").is_file()


class TestReadmeConsistency:
    def readme(self):
        return (ROOT / "README.md").read_text()

    def test_package_table_matches_tree(self):
        for match in re.finditer(r"`repro\.([a-z_]+)`", self.readme()):
            package = match.group(1)
            module = importlib.import_module(f"repro.{package}")
            assert module is not None

    def test_examples_referenced_exist(self):
        for match in re.finditer(r"examples/([a-z_]+\.py)", self.readme()):
            assert (ROOT / "examples" / match.group(1)).is_file(), match.group(0)

    def test_quickstart_snippet_is_valid(self):
        """The README's embedded YAML config parses."""
        text = self.readme()
        snippet = re.search(r'load_config\("""\n(.*?)"""\)', text, re.DOTALL)
        assert snippet is not None
        from repro.core import load_config

        config = load_config(snippet.group(1))
        assert config.name == "demo"


class TestDesignConsistency:
    def test_every_subpackage_documented(self):
        design = (ROOT / "DESIGN.md").read_text()
        src = ROOT / "src" / "repro"
        for package_dir in sorted(src.iterdir()):
            if package_dir.is_dir() and (package_dir / "__init__.py").exists():
                assert package_dir.name + "/" in design or package_dir.name in design, (
                    f"package {package_dir.name!r} missing from DESIGN.md"
                )

    def test_benchmarks_cover_every_declared_experiment(self):
        """DESIGN's per-experiment index maps to real benchmark files."""
        design = (ROOT / "DESIGN.md").read_text()
        for match in re.finditer(r"benchmarks/(bench_[a-z0-9_]+\.py)", design):
            assert (ROOT / "benchmarks" / match.group(1)).is_file(), match.group(0)


class TestControlPlaneDocs:
    """The control-plane docs track the real service contract."""

    def architecture(self):
        return (ROOT / "docs" / "architecture.md").read_text()

    def test_architecture_has_the_section(self):
        text = self.architecture()
        assert "## Control-plane service" in text
        # The operational pieces the section promises.
        for needle in ("lease", "heartbeat", "requeue", "repro serve",
                       "repro submit", "repro agent", "golden_corpus.json"):
            assert needle in text, f"control-plane docs missing {needle!r}"

    def test_every_api_route_is_documented(self):
        from repro.server.api import ROUTES

        text = self.architecture()
        for _method, pattern, _handler in ROUTES:
            route = (
                pattern.strip("^$")
                .replace("(?P<run>[^/]+)", "{run}")
                .replace("(?P<unit>[^/]+)", "{unit}")
                .replace("(?P<lease>[^/]+)", "{lease}")
            )
            assert route in text, f"route {route} missing from architecture.md"

    def test_readme_points_at_the_server_package(self):
        readme = (ROOT / "README.md").read_text()
        assert "`repro.server`" in readme
        assert "Control-plane service" in readme

    def test_cli_subcommands_exist(self):
        from repro.cli import build_parser

        parser = build_parser()
        text = parser.format_help()
        for command in ("serve", "submit", "status", "agent"):
            assert command in text


class TestScaleOutDocs:
    """The horizontal scale-out docs track the real pool contract."""

    def architecture(self):
        return (ROOT / "docs" / "architecture.md").read_text()

    def test_architecture_has_the_section(self):
        text = self.architecture()
        assert "## Horizontal scale-out" in text
        # The operational pieces the section promises.
        for needle in ("runtime.workers", "--workers", "runtime.elastic",
                       "WorkEnvelope", "byte-identical", "requeued",
                       "campaign_scaleout", "report.scaleout"):
            assert needle in text, f"scale-out docs missing {needle!r}"

    def test_sharding_keys_documented_per_stage(self):
        text = self.architecture()
        for needle in ("granule filename", "scene key", "tile-file basename"):
            assert needle in text, f"sharding key {needle!r} undocumented"

    def test_readme_and_design_point_at_the_section(self):
        assert "Horizontal scale-out" in (ROOT / "README.md").read_text()
        assert "Horizontal scale-out" in (ROOT / "DESIGN.md").read_text()

    def test_elastic_policy_knobs_match_the_config(self):
        """Every policy knob named in the docs is a real ElasticPolicy
        field, so the section cannot drift from the dataclass."""
        import dataclasses

        from repro.runtime.elastic import ElasticPolicy

        fields = {f.name for f in dataclasses.fields(ElasticPolicy)}
        text = self.architecture()
        for knob in ("min_workers", "max_workers", "tasks_per_worker_target",
                     "idle_retire_seconds"):
            assert knob in fields
            assert knob in text, f"policy knob {knob!r} undocumented"

    def test_cli_exposes_workers_flag(self):
        import argparse

        from repro.cli import build_parser

        parser = build_parser()
        subparsers = next(
            action for action in parser._actions
            if isinstance(action, argparse._SubParsersAction)
        )
        assert "--workers" in subparsers.choices["run"].format_help()

    def test_campaign_benchmark_is_recorded(self):
        """The committed baselines carry the scale-out entry and it
        holds the acceptance floor: >=2.5x at 4 workers."""
        import json

        for path in (ROOT / "BENCH_endtoend.json",
                     ROOT / "benchmarks" / "baselines" / "BENCH_endtoend.json"):
            marks = json.loads(path.read_text())["benchmarks"]
            entry = marks["campaign_scaleout"]
            assert entry["workers"] == 4.0
            assert entry["speedup_vs_1worker"] >= 2.5, path
            assert entry["normalized"] <= 0.4, path
            assert marks["campaign_scaleout_serial"]["reference"] == 1.0


class TestInstrumentDocs:
    """The pluggable-instrument docs track the real registry."""

    def architecture(self):
        return (ROOT / "docs" / "architecture.md").read_text()

    def test_architecture_has_the_section(self):
        text = self.architecture()
        assert "## Pluggable instruments & models" in text
        # The operational pieces the section promises.
        for needle in ("Instrument", "ModelType", "get_instrument",
                       "get_model", "archive.instruments",
                       "inference.models", "classified_by",
                       "byte-identical", "ConfigError"):
            assert needle in text, f"instrument docs missing {needle!r}"

    def test_every_registered_name_is_documented(self):
        """The registry's built-ins all appear in the fan-out section,
        so a new registration must document itself."""
        from repro.instruments import available_instruments, available_models

        text = self.architecture()
        for name in list(available_instruments()) + list(available_models()):
            assert f"`{name}`" in text, f"registered name {name!r} undocumented"

    def test_branch_node_grammar_documented(self):
        """The @-qualified node names the fan-out plan produces are in
        the plan diagram."""
        text = self.architecture()
        for node in ("download@modis", "preprocess@abi",
                     "model@modis+ricc", "inference@abi+heuristic",
                     "shipment@modis+heuristic"):
            assert node in text, f"fan-out node {node!r} undocumented"

    def test_readme_and_design_point_at_the_section(self):
        readme = (ROOT / "README.md").read_text()
        assert "Pluggable instruments & models" in readme
        assert "`repro.instruments`" in readme
        assert "`repro.abi`" in readme
        assert "Pluggable instruments & models" in (ROOT / "DESIGN.md").read_text()

    def test_cli_exposes_instrument_flag(self):
        import argparse

        from repro.cli import build_parser

        parser = build_parser()
        subparsers = next(
            action for action in parser._actions
            if isinstance(action, argparse._SubParsersAction)
        )
        assert "--instrument" in subparsers.choices["catalog"].format_help()


class TestPartitionDocs:
    """The partition-tolerance docs track the real fault machinery."""

    def architecture(self):
        return (ROOT / "docs" / "architecture.md").read_text()

    def test_wire_fault_kinds_documented(self):
        """Every wire-level chaos kind the engine accepts is in the
        fault-kind table, so the docs cannot drift from the injector."""
        text = self.architecture()
        for kind in ("partition", "blackout", "flaky", "slow_link", "reset"):
            assert f"`{kind}`" in text, f"wire fault kind {kind!r} undocumented"
        assert "Wire-level faults" in text
        assert "ChaosTransport" in text

    def test_partition_semantics_matrix_present(self):
        text = self.architecture()
        for needle in ("fault kind x phase", "degraded mode", "full-jitter",
                       "test_partition_matrix.py"):
            assert needle in text, f"partition matrix docs missing {needle!r}"

    def test_degraded_agent_state_machine_documented(self):
        text = self.architecture()
        assert "### Disconnected agents: degraded mode, the outbox, reconcile" in text
        for needle in ("outbox", "reconcile", "full jitter", "fenced",
                       "startup sweep", "--reconnect-limit", "--outbox",
                       "request_id", "LeaseLost", "fence epoch"):
            assert needle in text, f"degraded-agent docs missing {needle!r}"

    def test_partition_counters_match_the_code(self):
        """Every always-present partition counter is named in the docs."""
        from repro.core.workflow import PARTITION_COUNTERS

        text = self.architecture()
        for counter in PARTITION_COUNTERS:
            assert f"`{counter}`" in text, f"counter {counter!r} undocumented"

    def test_protocol_phases_documented(self):
        """The phases the docs enumerate are real classify_phase outputs."""
        from repro.net.http import classify_phase

        text = self.architecture()
        known = {
            classify_phase("POST", "/v1/runs"),
            classify_phase("POST", "/v1/lease"),
            classify_phase("POST", "/v1/lease/x/heartbeat"),
            classify_phase("POST", "/v1/lease/x/complete"),
            classify_phase("POST", "/v1/reconcile"),
            classify_phase("GET", "/v1/health"),
        }
        assert known == {"submit", "lease", "heartbeat", "complete",
                         "reconcile", "health"}
        for phase in known:
            assert f"`{phase}`" in text, f"phase {phase!r} undocumented"

    def test_cli_exposes_partition_flags(self):
        import argparse

        from repro.cli import build_parser

        parser = build_parser()
        subparsers = next(
            action for action in parser._actions
            if isinstance(action, argparse._SubParsersAction)
        )
        help_text = subparsers.choices["agent"].format_help()
        assert "--outbox" in help_text
        assert "--reconnect-limit" in help_text


class TestCacheDocs:
    """The CAS docs track the real store, middleware, and ladder."""

    def architecture(self):
        return (ROOT / "docs" / "architecture.md").read_text()

    def test_architecture_has_the_section(self):
        text = self.architecture()
        assert "## Content-addressed cache & progressive fidelity" in text
        # The operational pieces the section promises.
        for needle in ("atomic publish", "quarantine", "budget_bytes",
                       "coarse_stride", "refine_threshold", "pin",
                       "repro cache stats", "repro cache gc",
                       "cache_corrupt", "cache_enospc", "campaign_cache"):
            assert needle in text, f"cache docs missing {needle!r}"

    def test_middleware_onion_includes_the_cache_layer(self):
        assert "Journal > Cache > Chaos" in self.architecture()

    def test_key_grammar_matches_the_code(self):
        """The documented key prefixes are the ones the glue emits."""
        from repro.core.artifact_cache import granule_key, tiles_key

        class _Cfg:
            instrument, seed = "modis", 3

        assert granule_key(_Cfg, "a.hdf").startswith("granule:")
        assert tiles_key("modis", "s", 128, 0.3, 0.5, 1, []).startswith("tiles:")
        text = self.architecture()
        for prefix in ("granule:", "tiles:", "refined:"):
            assert f"`{prefix}" in text, f"key prefix {prefix!r} undocumented"

    def test_readme_and_design_point_at_the_section(self):
        readme = (ROOT / "README.md").read_text()
        assert "`repro.cas`" in readme
        assert "Content-addressed cache & progressive fidelity" in readme
        assert "Content-addressed cache" in (ROOT / "DESIGN.md").read_text()

    def test_cli_exposes_cache_subcommands(self):
        from repro.cli import build_parser

        parser = build_parser()
        assert "cache" in parser.format_help()

    def test_campaign_cache_benchmark_holds_the_floor(self):
        """The committed baselines carry the cache entry and it holds
        the acceptance floor: >=80% hit rate, >=60% bytes-moved cut."""
        import json

        for path in (ROOT / "BENCH_endtoend.json",
                     ROOT / "benchmarks" / "baselines" / "BENCH_endtoend.json"):
            marks = json.loads(path.read_text())["benchmarks"]
            entry = marks["campaign_cache"]
            assert entry["hit_rate"] >= 0.8, path
            assert entry["bytes_moved_ratio"] <= 0.4, path
            assert marks["campaign_cache_cold"]["reference"] == 1.0


class TestExamples:
    def test_every_example_has_docstring_and_main(self):
        for path in sorted((ROOT / "examples").glob("*.py")):
            text = path.read_text()
            assert text.lstrip().startswith(('#!/usr/bin/env python\n"""', '"""')), path.name
            assert "def main()" in text, path.name
            assert '__name__ == "__main__"' in text, path.name

    def test_shipped_configs_parse(self):
        from repro.core import load_config

        for path in sorted((ROOT / "examples" / "configs").glob("*.yaml")):
            config = load_config(path.read_text())
            assert config.products
