"""Simulated and local compute endpoint tests."""

import pytest

from repro.compute import FunctionRegistry, LocalComputeEndpoint, SimComputeEndpoint
from repro.sim import Simulation, Tracer


def sleep_task(duration):
    def fn(ctx, tag):
        yield ctx.sim.timeout(duration)
        return tag

    return fn


class TestSimEndpoint:
    def test_task_runs_and_returns(self):
        sim = Simulation()
        endpoint = SimComputeEndpoint(sim, "dl", max_workers=2, startup_latency=1.0, task_overhead=0.0)
        future = endpoint.submit(sleep_task(3.0), "t0")
        sim.run()
        assert future.value == "t0"
        assert sim.now == pytest.approx(4.0)  # 1s startup + 3s task

    def test_workers_bounded(self):
        sim = Simulation()
        endpoint = SimComputeEndpoint(sim, "dl", max_workers=2, startup_latency=0.0, task_overhead=0.0)
        futures = [endpoint.submit(sleep_task(10.0), i) for i in range(6)]
        sim.run()
        assert all(f.triggered for f in futures)
        # 6 tasks, 2 workers, 10s each -> 30s.
        assert sim.now == pytest.approx(30.0)

    def test_worker_graceful_exit_and_gauge(self):
        sim = Simulation()
        tracer = Tracer()
        endpoint = SimComputeEndpoint(
            sim, "dl", max_workers=3, startup_latency=0.0, task_overhead=0.0, tracer=tracer
        )
        for index in range(3):
            endpoint.submit(sleep_task(5.0), index)
        sim.run()
        series = tracer.series("workers:dl")
        assert series.at(2.0) == 3
        assert series.at(6.0) == 0  # all gracefully terminated
        assert endpoint.active_workers == 0
        assert endpoint.tasks_completed == 3

    def test_failed_task_fails_future_only(self):
        sim = Simulation()
        endpoint = SimComputeEndpoint(sim, "dl", max_workers=1, startup_latency=0.0, task_overhead=0.0)

        def boom(ctx):
            yield ctx.sim.timeout(1.0)
            raise RuntimeError("download failed")

        bad = endpoint.submit(boom)
        good = endpoint.submit(sleep_task(1.0), "ok")
        caught = {}

        def watcher():
            try:
                yield bad
            except RuntimeError as exc:
                caught["error"] = str(exc)

        sim.process(watcher())
        sim.run()
        assert caught["error"] == "download failed"
        assert good.value == "ok"

    def test_task_overhead_applied(self):
        sim = Simulation()
        endpoint = SimComputeEndpoint(sim, "dl", max_workers=1, startup_latency=0.0, task_overhead=0.5)
        endpoint.submit(sleep_task(1.0), 0)
        endpoint.submit(sleep_task(1.0), 1)
        sim.run()
        assert sim.now == pytest.approx(3.0)

    def test_drain(self):
        sim = Simulation()
        endpoint = SimComputeEndpoint(sim, "dl", max_workers=2, startup_latency=0.0, task_overhead=0.0)
        endpoint.map(sleep_task(2.0), list(range(4)))
        drained = endpoint.drain()
        sim.run()
        assert drained.triggered
        assert endpoint.active_workers == 0

    def test_late_submission_respawns_workers(self):
        sim = Simulation()
        endpoint = SimComputeEndpoint(sim, "dl", max_workers=2, startup_latency=0.0, task_overhead=0.0)
        endpoint.submit(sleep_task(1.0), "early")

        def late():
            yield sim.timeout(10.0)
            future = endpoint.submit(sleep_task(1.0), "late")
            result = yield future
            assert result == "late"

        sim.process(late())
        sim.run()
        assert endpoint.tasks_completed == 2
        assert sim.now == pytest.approx(11.0)


class TestRegistry:
    def test_register_and_resolve(self):
        registry = FunctionRegistry()

        def download(span):
            return span

        fid = registry.register(download, description="fetch MODIS files")
        assert registry.resolve(fid).fn is download
        assert registry.resolve("download").fn is download
        assert "download" in registry
        assert len(registry) == 1

    def test_idempotent_registration(self):
        registry = FunctionRegistry()

        def fn():
            return 1

        assert registry.register(fn) == registry.register(fn)
        assert len(registry) == 1

    def test_unknown(self):
        with pytest.raises(KeyError):
            FunctionRegistry().resolve("ghost")

    def test_non_callable(self):
        with pytest.raises(TypeError):
            FunctionRegistry().register(42)  # type: ignore[arg-type]


class TestLocalEndpoint:
    def test_real_execution(self):
        with LocalComputeEndpoint("local", max_workers=4) as endpoint:
            futures = endpoint.map(lambda x: x * x, [1, 2, 3, 4])
            assert endpoint.gather(futures, ordered=True) == [1, 4, 9, 16]

    def test_gather_yields_in_completion_order(self):
        import threading
        import time

        release = threading.Event()

        def slow_then(value):
            release.wait(5.0)
            return value

        with LocalComputeEndpoint("local", max_workers=2) as endpoint:
            slow = endpoint.submit(slow_then, "slow")
            fast = endpoint.submit(lambda: "fast")
            results = endpoint.gather([slow, fast])
            first = next(results)
            assert first == "fast"  # finished work streams out immediately
            release.set()
            assert list(results) == ["slow"]
        # ordered=True still reflects submission order regardless of timing.
        with LocalComputeEndpoint("local", max_workers=2) as endpoint:
            futures = endpoint.map(lambda x: x + 1, [1, 2, 3])
            time.sleep(0.05)
            assert endpoint.gather(futures, ordered=True) == [2, 3, 4]

    def test_exception_propagates(self):
        def boom():
            raise ValueError("bad granule")

        with LocalComputeEndpoint("local", max_workers=1) as endpoint:
            future = endpoint.submit(boom)
            with pytest.raises(ValueError, match="bad granule"):
                future.result()

    def test_bad_kind(self):
        with pytest.raises(ValueError):
            LocalComputeEndpoint("x", 1, kind="quantum")

    def test_worker_count_validated_with_context(self):
        # The error names the endpoint and the offending value.
        with pytest.raises(ValueError, match=r"'download'.*max_workers >= 1.*0"):
            LocalComputeEndpoint("download", max_workers=0)
        with pytest.raises(ValueError, match=r"-3"):
            LocalComputeEndpoint("x", max_workers=-3)
        with pytest.raises(ValueError, match=r"'2'"):
            LocalComputeEndpoint("x", max_workers="2")  # type: ignore[arg-type]

    def test_shutdown_idempotent(self):
        endpoint = LocalComputeEndpoint("pool", max_workers=1)
        assert endpoint.submit(lambda: 7).result() == 7
        endpoint.shutdown()
        endpoint.shutdown()  # second call is a no-op, not an error
        with endpoint:  # __exit__ triggers a third shutdown
            pass

    def test_shutdown_inside_context_manager(self):
        with LocalComputeEndpoint("pool", max_workers=1) as endpoint:
            assert endpoint.submit(lambda: 1).result() == 1
            endpoint.shutdown()  # explicit early close; __exit__ must not raise
