"""Workflow configuration schema tests."""

import datetime as dt

import pytest

from repro.core import ConfigError, load_config

GOOD_YAML = """
name: eo-ml-demo
archive:
  products: [MOD02, MOD03, MOD06]
  start_date: 2022-01-01
  max_granules_per_day: 4
  seed: 7
paths:
  staging: /tmp/raw
download:
  workers: 3
preprocess:
  workers: 32
  tile_size: 16
inference:
  workers: 1
shipment:
  enabled: true
"""


class TestLoadConfig:
    def test_full_document(self):
        config = load_config(GOOD_YAML)
        assert config.name == "eo-ml-demo"
        # Aliases resolve to canonical LAADS short names.
        assert config.products == ["MOD021KM", "MOD03", "MOD06_L2"]
        assert config.start_date == dt.date(2022, 1, 1)
        assert config.end_date == dt.date(2022, 1, 1)  # defaults to start
        assert config.max_granules_per_day == 4
        assert config.seed == 7
        assert config.staging == "/tmp/raw"
        assert config.preprocessed == "data/tiles"  # default
        assert config.workers.download == 3
        assert config.workers.preprocess == 32
        assert config.workers.inference == 1
        assert config.tile_size == 16
        assert config.cloud_threshold == pytest.approx(0.30)
        assert config.ship is True

    def test_minimal_document(self):
        config = load_config("archive:\n  start_date: 2022-01-01\n")
        assert config.products == ["MOD021KM", "MOD03", "MOD06_L2"]
        assert config.workers.download == 3  # paper defaults

    def test_mapping_input(self):
        config = load_config({"archive": {"start_date": "2022-06-15"}})
        assert config.start_date == dt.date(2022, 6, 15)

    def test_end_before_start(self):
        with pytest.raises(ConfigError, match="end date"):
            load_config(
                "archive:\n  start_date: 2022-01-02\n  end_date: 2022-01-01\n"
            )

    def test_unknown_product(self):
        with pytest.raises(ConfigError, match="unknown MODIS product"):
            load_config("archive:\n  start_date: 2022-01-01\n  products: [MOD99]\n")

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigError, match="unknown keys"):
            load_config("archive:\n  start_date: 2022-01-01\n  tiem_span: oops\n")

    def test_bad_worker_count(self):
        with pytest.raises(ConfigError, match="positive"):
            load_config(
                "archive:\n  start_date: 2022-01-01\ndownload:\n  workers: 0\n"
            )

    def test_bad_threshold(self):
        with pytest.raises(ConfigError, match="fraction"):
            load_config(
                "archive:\n  start_date: 2022-01-01\npreprocess:\n  cloud_threshold: 1.5\n"
            )

    def test_bad_date(self):
        with pytest.raises(ConfigError):
            load_config("archive:\n  start_date: January 1st\n")

    def test_non_mapping(self):
        with pytest.raises(ConfigError):
            load_config("- just\n- a\n- list\n")


class TestJournalConfig:
    def test_defaults_derive_journal_dir_from_staging(self):
        config = load_config(
            "archive:\n  start_date: 2022-01-01\n"
            "paths:\n  staging: /scratch/run7/raw\n"
        )
        assert config.journal_enabled is True
        assert config.journal_durable is True
        # The journal lives beside (not inside) the watched staging tree.
        assert config.journal_dir == "/scratch/run7/journal"

    def test_explicit_journal_section(self):
        config = load_config(
            {
                "archive": {"start_date": "2022-01-01"},
                "journal": {
                    "enabled": False,
                    "dir": "/state/journal",
                    "durable": False,
                },
            }
        )
        assert config.journal_enabled is False
        assert config.journal_dir == "/state/journal"
        assert config.journal_durable is False

    def test_enabled_must_be_boolean(self):
        with pytest.raises(ConfigError, match="boolean"):
            load_config(
                "archive:\n  start_date: 2022-01-01\n"
                "journal:\n  enabled: maybe\n"
            )

    def test_unknown_journal_key_rejected(self):
        with pytest.raises(ConfigError, match="unknown keys"):
            load_config(
                "archive:\n  start_date: 2022-01-01\n"
                "journal:\n  path: /state\n"
            )


class TestDrainTimeoutConfig:
    def test_default(self):
        config = load_config("archive:\n  start_date: 2022-01-01\n")
        assert config.inference_drain_timeout == 300.0

    def test_override(self):
        config = load_config(
            "archive:\n  start_date: 2022-01-01\n"
            "inference:\n  drain_timeout: 42.5\n"
        )
        assert config.inference_drain_timeout == 42.5

    def test_must_be_positive(self):
        with pytest.raises(ConfigError, match="positive"):
            load_config(
                "archive:\n  start_date: 2022-01-01\n"
                "inference:\n  drain_timeout: 0\n"
            )
