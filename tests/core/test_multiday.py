"""Multi-day and multi-satellite (Terra + Aqua) workflow tests."""

import datetime as dt

import pytest

from repro.core import DownloadStage, load_config
from repro.modis import MINI_SWATH, LaadsArchive


def config_for(tmp_path, **archive_overrides):
    archive = {
        "start_date": "2022-01-01",
        "max_granules_per_day": 1,
        "seed": 3,
    }
    archive.update(archive_overrides)
    return load_config(
        {
            "archive": archive,
            "paths": {
                "staging": str(tmp_path / "raw"),
                "preprocessed": str(tmp_path / "tiles"),
                "transfer_out": str(tmp_path / "outbox"),
                "destination": str(tmp_path / "orion"),
            },
            "preprocess": {"workers": 2, "tile_size": 16},
        }
    )


class TestMultiDay:
    def test_time_span_downloads_every_day(self, tmp_path):
        config = config_for(tmp_path, end_date="2022-01-03")
        report = DownloadStage(config, archive=LaadsArchive(seed=3, swath=MINI_SWATH)).run()
        # 3 days x 1 granule x 3 products.
        assert report.files == 9
        assert len(report.granule_sets) == 3
        dates = {gs.key.split(".")[2] for gs in report.granule_sets}
        assert dates == {"2022-01-01", "2022-01-02", "2022-01-03"}

    def test_different_days_have_different_scenes(self, tmp_path):
        import numpy as np

        from repro.netcdf import read as nc_read

        config = config_for(tmp_path, end_date="2022-01-02")
        report = DownloadStage(config, archive=LaadsArchive(seed=3, swath=MINI_SWATH)).run()
        day1 = nc_read(report.granule_sets[0].path_for("021KM"))["radiance"].data
        day2 = nc_read(report.granule_sets[1].path_for("021KM"))["radiance"].data
        assert not np.array_equal(day1, day2)


class TestAqua:
    def test_myd_products_accepted_and_grouped_separately(self, tmp_path):
        """Terra and Aqua observe the same 5-minute slots but are distinct
        acquisitions: their granule sets must not merge."""
        config = config_for(
            tmp_path,
            products=["MOD021KM", "MOD03", "MOD06", "MYD021KM", "MYD03", "MYD06"],
        )
        assert config.products == [
            "MOD021KM", "MOD03", "MOD06_L2", "MYD021KM", "MYD03", "MYD06_L2"
        ]
        report = DownloadStage(config, archive=LaadsArchive(seed=3, swath=MINI_SWATH)).run()
        assert report.files == 6
        # Terra and Aqua form distinct granule sets for the same slot
        # (different equator-crossing times = different scenes).
        assert len(report.granule_sets) == 2
        satellites = {gs.key.split(".")[1] for gs in report.granule_sets}
        assert satellites == {"terra", "aqua"}
        for gs in report.granule_sets:
            assert len(gs.paths) == 3
            gs.path_for("021KM")  # resolves unambiguously

    def test_aqua_only_workflow(self, tmp_path):
        config = config_for(tmp_path, products=["MYD02", "MYD03", "MYD06"])
        report = DownloadStage(config, archive=LaadsArchive(seed=3, swath=MINI_SWATH)).run()
        assert report.files == 3
        gs = report.granule_sets[0]
        assert gs.path_for("021KM").split("/")[-1].startswith("MYD021KM")
