"""Kill-and-resume harness for crash-consistent checkpointing.

For every fault-injection surface, a seeded run is killed mid-flight by a
``crash`` fault (``os._exit`` in a subprocess), then restarted with
``--resume``.  The delivered corpus must be byte-identical to an
uninterrupted run with the same seed, and manifest-verified granules must
not be re-downloaded.
"""

import os
import subprocess
import sys

import pytest

from repro.chaos.surfaces import CRASH_EXIT_CODE

DRIVER = os.path.join(os.path.dirname(__file__), "crash_driver.py")
SRC = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "src")
)

# Stages with a crash surface; "monitor" only observes and has none.
CRASH_STAGES = ["download", "preprocess", "inference", "shipment"]


def run_driver(root, *extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, DRIVER, str(root), *extra],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )


def parse_stats(stdout):
    stats = {}
    for line in stdout.splitlines():
        key, sep, value = line.partition("=")
        if sep:
            stats[key.strip()] = int(value)
    return stats


def read_corpus(root):
    dest = os.path.join(str(root), "data", "orion")
    corpus = {}
    for name in sorted(os.listdir(dest)):
        with open(os.path.join(dest, name), "rb") as handle:
            corpus[name] = handle.read()
    return corpus


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    root = tmp_path_factory.mktemp("uninterrupted")
    proc = run_driver(root)
    assert proc.returncode == 0, proc.stderr
    stats = parse_stats(proc.stdout)
    assert stats["errors"] == 0
    assert stats["shipped"] > 0
    return read_corpus(root), stats


@pytest.mark.parametrize("stage", CRASH_STAGES)
def test_crash_then_resume_matches_uninterrupted(stage, tmp_path, baseline):
    expected_corpus, expected_stats = baseline

    crashed = run_driver(tmp_path, "--crash-stage", stage)
    assert crashed.returncode == CRASH_EXIT_CODE, (
        f"crash fault at {stage!r} did not abort the run: "
        f"rc={crashed.returncode}\n{crashed.stdout}\n{crashed.stderr}"
    )

    resumed = run_driver(tmp_path, "--resume")
    assert resumed.returncode == 0, resumed.stderr
    stats = parse_stats(resumed.stdout)
    assert stats["errors"] == 0
    assert stats["shipped"] == expected_stats["shipped"]

    # Byte-identical delivered corpus: same filenames, same contents.
    assert read_corpus(tmp_path) == expected_corpus

    if stage != "download":
        # Every granule survived the crash with a verified manifest entry,
        # so the resumed run must not re-download anything.
        assert stats["fetched"] == 0
        assert stats["resumed_downloads"] == expected_stats["fetched"]
        assert stats["resumed_items"] > 0
    else:
        # Only granules that never completed before the crash are refetched;
        # together with the journal-resumed ones they cover the full set.
        assert stats["fetched"] + stats["resumed_downloads"] == expected_stats["fetched"]


def test_resume_of_completed_run_is_a_noop(tmp_path, baseline):
    _, expected_stats = baseline

    first = run_driver(tmp_path)
    assert first.returncode == 0, first.stderr

    again = run_driver(tmp_path, "--resume")
    assert again.returncode == 0, again.stderr
    stats = parse_stats(again.stdout)
    assert stats["fetched"] == 0
    assert stats["replayed_items"] == 0
    assert stats["resumed_items"] > 0
    assert stats["shipped"] == expected_stats["shipped"]
    assert stats["errors"] == 0
