"""Pipeline-level behaviour of the content-addressed artifact cache.

The contract the CAS layer must honour, stated as golden-corpus
identities: caching is a *performance* feature, so the delivered corpus
is byte-identical with the cache off, with it cold, with it warm, under
injected corruption and store failures, across a crash + ``--resume``,
and under the streaming / worker-pool / flows / zambeze drivers.  A warm
second run must also actually short-circuit: zero bytes fetched from the
archive, deliveries materialized out of the store.
"""

import hashlib
import json
import os

import pytest

from tests.core.crash_driver import build_raw_config
from tests.core.test_crash_resume import parse_stats, run_driver

from repro.chaos.surfaces import CRASH_EXIT_CODE
from repro.core import EOMLWorkflow, load_config
from repro.core.artifact_cache import open_store
from repro.flows import run_plan_with_flows
from repro.modis import MINI_SWATH, LaadsArchive
from repro.zambeze import run_plan_with_zambeze

GOLDEN = os.path.join(os.path.dirname(__file__), "golden_corpus.json")

with open(GOLDEN) as _handle:
    _GOLDEN = json.load(_handle)


def sha256_file(path):
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 16), b""):
            digest.update(chunk)
    return digest.hexdigest()


def delivered_digests(destination):
    return {
        name: sha256_file(os.path.join(destination, name))
        for name in sorted(os.listdir(destination))
    }


def cached_config(root, cas_dir, chaos=None, streaming=False, fidelity=None):
    raw = build_raw_config(str(root), _GOLDEN["granules"])
    raw["cache"] = {"enabled": True, "dir": str(cas_dir)}
    if chaos is not None:
        raw["chaos"] = chaos
    if streaming:
        raw["runtime"] = {"stream": {"enabled": True}}
    if fidelity is not None:
        stride, threshold = fidelity
        raw["preprocess"] = dict(raw.get("preprocess", {}), coarse_stride=stride)
        raw["inference"] = dict(raw["inference"], refine_threshold=threshold)
    return load_config(raw)


def run_cached(root, cas_dir, **kwargs):
    config = cached_config(root, cas_dir, **kwargs)
    workflow = EOMLWorkflow(
        config, archive=LaadsArchive(seed=_GOLDEN["seed"], swath=MINI_SWATH)
    )
    report = workflow.run(provenance=False)
    return config, report


@pytest.fixture(scope="module")
def warm_cas(tmp_path_factory):
    """A CAS populated by one clean cold run, plus that run's corpus."""
    root = tmp_path_factory.mktemp("cold")
    cas_dir = str(tmp_path_factory.mktemp("cas-shared"))
    config, report = run_cached(root, cas_dir)
    assert report.errors == []
    return cas_dir, delivered_digests(config.destination)


class TestGoldenIdentity:
    def test_cold_run_with_cache_ships_the_golden_corpus(self, warm_cas):
        _, corpus = warm_cas
        assert corpus == _GOLDEN["files"]

    def test_warm_run_short_circuits_every_stage(self, tmp_path, warm_cas):
        cas_dir, _ = warm_cas
        config, report = run_cached(tmp_path, cas_dir)
        assert report.errors == []
        assert delivered_digests(config.destination) == _GOLDEN["files"]
        # The archive is never touched and deliveries come out of the CAS.
        assert report.cache["fetched_bytes"] == 0
        assert report.cache["hits"] > 0
        assert report.cache["misses"] == 0
        assert report.cache["download_cached"] == report.download.files
        assert report.cache["preprocess_cached"] > 0
        assert report.cache["shipment_deduped"] == len(report.shipment.moved)
        assert report.cache["bytes_saved"] > 0

    def test_streaming_driver_warm_run_stays_golden(self, tmp_path, warm_cas):
        cas_dir, _ = warm_cas
        config, report = run_cached(tmp_path, cas_dir, streaming=True)
        assert report.errors == []
        assert delivered_digests(config.destination) == _GOLDEN["files"]
        assert report.cache["fetched_bytes"] == 0

    def test_flows_and_zambeze_drivers_share_the_same_cas(
        self, tmp_path, warm_cas
    ):
        cas_dir, _ = warm_cas
        for name, drive in (
            ("flows", lambda plan: run_plan_with_flows(plan, label="eo-ml")),
            ("zambeze", lambda plan: run_plan_with_zambeze(plan, facility="olcf")),
        ):
            root = tmp_path / name
            config = cached_config(root, cas_dir)
            workflow = EOMLWorkflow(
                config,
                archive=LaadsArchive(seed=_GOLDEN["seed"], swath=MINI_SWATH),
            )
            cas = open_store(config)
            plan = workflow.build_plan(cache=cas)
            drive(plan)
            assert delivered_digests(config.destination) == _GOLDEN["files"]
            # Everything the plan consumed was served out of the store.
            assert cas.counters()["hits"] > 0


class TestChaosSurfaces:
    def test_corrupt_object_is_quarantined_and_refetched(
        self, tmp_path, warm_cas
    ):
        cas_dir, _ = warm_cas
        chaos = {
            "seed": 0,
            "faults": [
                {"stage": "cache", "kind": "cache_corrupt", "rate": 1.0, "times": 2}
            ],
        }
        config, report = run_cached(tmp_path, cas_dir, chaos=chaos)
        assert report.errors == []
        # The digest check caught the poisoned object before handout: it
        # went to quarantine and the stage fell back to the real source.
        assert report.cache["corrupt_evictions"] >= 1
        assert report.manifest_mismatches == 0
        assert delivered_digests(config.destination) == _GOLDEN["files"]
        quarantine = os.path.join(cas_dir, "quarantine")
        assert os.path.isdir(quarantine) and os.listdir(quarantine)

    def test_enospc_on_store_is_absorbed(self, tmp_path):
        cas_dir = tmp_path / "cas"
        chaos = {
            "seed": 0,
            "faults": [
                {"stage": "cache", "kind": "cache_enospc", "rate": 1.0, "times": 3}
            ],
        }
        config, report = run_cached(tmp_path / "run", cas_dir, chaos=chaos)
        assert report.errors == []
        assert report.cache["store_errors"] >= 1
        assert delivered_digests(config.destination) == _GOLDEN["files"]


class TestCrashResume:
    @pytest.mark.parametrize("stage", ["download", "preprocess"])
    def test_crash_then_resume_with_cache_converges(self, stage, tmp_path):
        cas_dir = str(tmp_path / "cas")

        crashed = run_driver(
            tmp_path, "--crash-stage", stage, "--cache", cas_dir
        )
        assert crashed.returncode == CRASH_EXIT_CODE, (
            f"crash fault at {stage!r} did not abort the run: "
            f"rc={crashed.returncode}\n{crashed.stdout}\n{crashed.stderr}"
        )

        resumed = run_driver(tmp_path, "--resume", "--cache", cas_dir)
        assert resumed.returncode == 0, resumed.stderr
        stats = parse_stats(resumed.stdout)
        assert stats["errors"] == 0
        dest = os.path.join(str(tmp_path), "data", "orion")
        assert delivered_digests(dest) == _GOLDEN["files"]

    def test_pool_workers_share_the_cas(self, tmp_path):
        cas_dir = str(tmp_path / "cas")

        cold = run_driver(tmp_path / "a", "--workers", "2", "--cache", cas_dir)
        assert cold.returncode == 0, cold.stderr

        warm = run_driver(tmp_path / "b", "--workers", "2", "--cache", cas_dir)
        assert warm.returncode == 0, warm.stderr
        stats = parse_stats(warm.stdout)
        assert stats["errors"] == 0
        # Worker processes resolved their inputs from the shared store.
        assert stats["fetched_bytes"] == 0
        dest = os.path.join(str(tmp_path / "b"), "data", "orion")
        assert delivered_digests(dest) == _GOLDEN["files"]


class TestProgressiveFidelity:
    def test_refinement_is_deterministic_across_cache_states(
        self, tmp_path
    ):
        """Coarse-first + refine produces the same corpus cold and warm."""
        cas_dir = tmp_path / "cas"
        fidelity = (2, 1e9)  # refine every tile: margin always below 1e9
        config_a, report_a = run_cached(
            tmp_path / "a", cas_dir, fidelity=fidelity
        )
        assert report_a.errors == []
        assert report_a.cache["refined_tiles"] > 0

        config_b, report_b = run_cached(
            tmp_path / "b", cas_dir, fidelity=fidelity
        )
        assert report_b.errors == []
        assert report_b.cache["refined_tiles"] == report_a.cache["refined_tiles"]
        assert delivered_digests(config_b.destination) == delivered_digests(
            config_a.destination
        )

    def test_default_fidelity_knobs_preserve_the_golden_corpus(self, tmp_path):
        # coarse_stride=1 / refine_threshold=None is the pinned default:
        # the golden corpus asserts it in TestGoldenIdentity; here we pin
        # the config surface so a default drift is caught loudly.
        config = cached_config(tmp_path, tmp_path / "cas")
        assert config.coarse_stride == 1
        assert config.refine_threshold is None
