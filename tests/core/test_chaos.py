"""The chaos engine: plans, deterministic injection, surfaces, and the
workflow-level acceptance run.

Three layers are pinned here:

* the **plan** (YAML contract: parsing, validation, round-trips);
* the **engine** (decisions are a function of (seed, spec, key) — never
  of arrival order — so concurrent stages reproduce exactly);
* the **workflow**: chaos off is a zero-overhead passthrough
  (byte-identical artifacts), and a seeded plan spanning four-plus fault
  kinds leaves the run *degraded but complete* — the paper's operational
  reality, survived.
"""

import os
from types import SimpleNamespace

import numpy as np
import pytest

from repro.chaos import (
    FAULT_KINDS,
    STAGES,
    ChaosArchive,
    ChaosTransferClient,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    build_injector,
    chaos_atomic_write,
    chaos_stall,
    damage_file,
    load_plan,
)
from repro.core import EOMLWorkflow, load_config
from repro.modis import MINI_SWATH, LaadsArchive
from repro.netcdf import Dataset, NcFormatError, read as nc_read
from repro.transfer import TransferError
from repro.util.config import ConfigError


def small_dataset():
    ds = Dataset()
    ds.create_dimension("x", 8)
    ds.create_variable("v", "f4", ("x",), np.arange(8, dtype=np.float32))
    return ds


def make_config(tmp_path, chaos=None, granules=2, **download):
    mapping = {
        "archive": {"start_date": "2022-01-01", "max_granules_per_day": granules,
                    "seed": 3},
        "paths": {
            "staging": str(tmp_path / "raw"),
            "preprocessed": str(tmp_path / "tiles"),
            "transfer_out": str(tmp_path / "outbox"),
            "destination": str(tmp_path / "orion"),
            "quarantine": str(tmp_path / "quarantine"),
        },
        "download": {"workers": 2, "backoff_base": 0.001, "backoff_total": 0.05,
                     **download},
        "preprocess": {"workers": 2, "tile_size": 16},
        "inference": {"poll_interval": 0.05},
    }
    if chaos is not None:
        mapping["chaos"] = chaos
    return load_config(mapping)


class TestFaultPlanParsing:
    def test_yaml_text_with_chaos_wrapper(self):
        plan = load_plan(
            "chaos:\n"
            "  seed: 7\n"
            "  faults:\n"
            "    - stage: download\n"
            "      kind: http_transient\n"
            "      rate: 0.5\n"
            "      times: 2\n"
        )
        assert plan.seed == 7
        assert plan.enabled and plan.active
        assert plan.faults == (
            FaultSpec("download", "http_transient", rate=0.5, times=2),
        )

    def test_bare_mapping(self):
        plan = load_plan({"faults": [{"stage": "shipment", "kind": "wan_degrade"}]})
        assert plan.seed == 0
        assert plan.stages() == ("shipment",)
        assert plan.kinds() == ("wan_degrade",)

    def test_empty_plan_is_inactive(self):
        plan = load_plan({})
        assert not plan.active
        assert build_injector(plan) is None
        assert build_injector(None) is None

    def test_disabled_plan_is_inactive(self):
        plan = load_plan(
            {"enabled": False,
             "faults": [{"stage": "download", "kind": "slow_fetch"}]}
        )
        assert not plan.active
        assert build_injector(plan) is None

    @pytest.mark.parametrize(
        "faults",
        [
            [{"stage": "orbit", "kind": "slow_fetch"}],
            [{"stage": "download", "kind": "gamma_ray"}],
            [{"stage": "download", "kind": "slow_fetch", "rate": 1.5}],
            [{"stage": "download", "kind": "slow_fetch", "times": 0}],
            [{"stage": "download", "kind": "slow_fetch", "latency": -1}],
            ["not-a-mapping"],
            "not-a-list",
        ],
    )
    def test_malformed_plans_rejected(self, faults):
        with pytest.raises(ConfigError):
            load_plan({"faults": faults})

    def test_non_mapping_document_rejected(self):
        with pytest.raises(ConfigError):
            load_plan("- just\n- a\n- list\n")

    def test_permanent_kinds_force_unbounded_times(self):
        spec = FaultSpec("download", "http_permanent", times=3)
        assert spec.times is None  # permanent damage does not heal
        assert FaultSpec("preprocess", "corrupt_tile", times=1).times is None
        assert FaultSpec("download", "http_transient", times=3).times == 3

    def test_with_seed_and_round_trip(self):
        plan = load_plan({"seed": 1, "faults": [
            {"stage": "preprocess", "kind": "torn_write", "rate": 0.25},
        ]})
        reseeded = plan.with_seed(99)
        assert reseeded.seed == 99 and reseeded.faults == plan.faults
        assert FaultPlan.from_mapping(plan.to_mapping()) == plan

    def test_stage_and_kind_vocabulary(self):
        assert STAGES == ("download", "preprocess", "monitor", "inference",
                          "shipment", "agent", "net", "cache")
        assert set(FAULT_KINDS) >= {"http_transient", "torn_write", "corrupt_tile",
                                    "wan_degrade", "worker_stall"}
        assert set(FAULT_KINDS) >= {"partition", "blackout", "flaky",
                                    "slow_link", "reset"}
        assert set(FAULT_KINDS) >= {"cache_corrupt", "cache_enospc"}


class TestFaultInjector:
    def plan(self, **spec_kwargs):
        return FaultPlan(seed=11, faults=(FaultSpec(**spec_kwargs),))

    def test_rate_one_selects_every_key(self):
        chaos = FaultInjector(self.plan(stage="download", kind="http_transient",
                                        rate=1.0, times=1))
        for key in ("a", "b", "c"):
            assert chaos.would_select("download", "http_transient", key)

    def test_times_caps_firing_per_key(self):
        chaos = FaultInjector(self.plan(stage="download", kind="http_transient",
                                        rate=1.0, times=2))
        assert len(chaos.fire("download", "http_transient", "f")) == 1
        assert len(chaos.fire("download", "http_transient", "f")) == 1
        assert chaos.fire("download", "http_transient", "f") == []  # budget spent
        assert len(chaos.fire("download", "http_transient", "g")) == 1  # per key

    def test_unbounded_fault_fires_forever(self):
        chaos = FaultInjector(self.plan(stage="download", kind="http_permanent"))
        for _ in range(5):
            assert chaos.fire("download", "http_permanent", "f")
        assert chaos.faults_injected == 5

    def test_unmatched_site_is_a_no_op(self):
        chaos = FaultInjector(self.plan(stage="download", kind="http_transient"))
        assert chaos.fire("shipment", "wan_degrade", "f") == []
        assert chaos.faults_injected == 0

    def test_selection_is_deterministic_and_order_independent(self):
        plan = self.plan(stage="preprocess", kind="torn_write", rate=0.5, times=1)
        keys = [f"scene-{i}" for i in range(40)]
        first = FaultInjector(plan)
        hit_forward = [k for k in keys if first.fire("preprocess", "torn_write", k)]
        second = FaultInjector(plan)
        hit_backward = [k for k in reversed(keys)
                        if second.fire("preprocess", "torn_write", k)]
        assert sorted(hit_forward) == sorted(hit_backward)
        assert 0 < len(hit_forward) < len(keys)  # a real subset at rate 0.5

    def test_seed_changes_selection(self):
        keys = [f"scene-{i}" for i in range(40)]
        spec = dict(stage="preprocess", kind="torn_write", rate=0.5, times=1)
        a = FaultInjector(FaultPlan(seed=1, faults=(FaultSpec(**spec),)))
        b = FaultInjector(FaultPlan(seed=2, faults=(FaultSpec(**spec),)))
        assert (
            [k for k in keys if a.would_select("preprocess", "torn_write", k)]
            != [k for k in keys if b.would_select("preprocess", "torn_write", k)]
        )

    def test_would_select_moves_no_counters(self):
        chaos = FaultInjector(self.plan(stage="download", kind="http_transient",
                                        rate=1.0, times=1))
        assert chaos.would_select("download", "http_transient", "f")
        assert chaos.faults_injected == 0
        assert len(chaos.fire("download", "http_transient", "f")) == 1

    def test_ledger_and_summary_accounting(self):
        plan = FaultPlan(seed=0, faults=(
            FaultSpec("download", "http_transient", times=1),
            FaultSpec("shipment", "wan_degrade", times=1, latency=0.2),
        ))
        chaos = FaultInjector(plan)
        chaos.fire("download", "http_transient", "a")
        chaos.fire("shipment", "wan_degrade", "b")
        chaos.fire("shipment", "wan_degrade", "c")
        assert chaos.counts_by_kind() == {"http_transient": 1, "wan_degrade": 2}
        assert chaos.counts_by_stage() == {"download": 1, "shipment": 2}
        summary = chaos.summary()
        assert summary["faults_injected"] == 3 == chaos.faults_injected
        assert summary["by_kind"]["wan_degrade"] == 2
        event = chaos.ledger[-1]
        assert event.ordinal == 1 and event.latency == 0.2
        assert "wan_degrade" in event.describe()


class TestChaosSurfaces:
    def injector(self, stage, kind, **kwargs):
        return FaultInjector(
            FaultPlan(seed=0, faults=(FaultSpec(stage, kind, **kwargs),))
        )

    def test_damage_file_truncates(self, tmp_path):
        path = tmp_path / "whole.bin"
        path.write_bytes(b"x" * 100)
        damage_file(str(path), keep_fraction=0.25)
        assert path.stat().st_size == 25
        with pytest.raises(ValueError):
            damage_file(str(path), keep_fraction=1.0)

    def test_atomic_write_without_chaos(self, tmp_path):
        import hashlib

        final = tmp_path / "out.nc"
        nbytes, digest = chaos_atomic_write(small_dataset(), str(final))
        assert final.stat().st_size == nbytes
        # The digest computed during the write matches the final bytes.
        assert digest == hashlib.sha256(final.read_bytes()).hexdigest()
        assert not os.path.exists(str(final) + ".part")
        nc_read(str(final))  # parses cleanly

    def test_torn_write_leaves_part_and_raises(self, tmp_path):
        chaos = self.injector("preprocess", "torn_write", times=1)
        final = tmp_path / "tiles_a.nc"
        with pytest.raises(OSError, match="torn write"):
            chaos_atomic_write(small_dataset(), str(final), chaos=chaos,
                               stage="preprocess", key="a")
        assert not final.exists()  # never renamed
        assert os.path.exists(str(final) + ".part")
        # The retry of the same key succeeds (times budget spent) and
        # the completed write replaces the torn temp file.
        chaos_atomic_write(small_dataset(), str(final), chaos=chaos,
                           stage="preprocess", key="a")
        assert final.exists() and not os.path.exists(str(final) + ".part")

    def test_corrupt_tile_is_crawler_visible_but_unreadable(self, tmp_path):
        chaos = self.injector("preprocess", "corrupt_tile")
        final = tmp_path / "tiles_a.nc"
        chaos_atomic_write(small_dataset(), str(final), chaos=chaos,
                           stage="preprocess", key="a")
        assert final.exists()  # well-named, crawler would trigger on it
        with pytest.raises(NcFormatError):
            nc_read(str(final))

    def test_chaos_stall_sleeps_and_none_passthrough(self):
        slept = []
        chaos = self.injector("inference", "worker_stall", times=1, latency=0.3)
        assert chaos_stall(chaos, "inference", "f", sleeper=slept.append) == 0.3
        assert slept == [0.3]
        assert chaos_stall(chaos, "inference", "f", sleeper=slept.append) == 0.0
        assert chaos_stall(None, "inference", "f", sleeper=slept.append) == 0.0
        assert slept == [0.3]

    def test_chaos_archive_failures_and_delegation(self):
        fetched = []

        class Inner:
            seed = 42

            def fetch(self, ref, bands=None):
                fetched.append(ref.filename)
                return "dataset"

        chaos = FaultInjector(FaultPlan(seed=0, faults=(
            FaultSpec("download", "http_transient", times=1),
            FaultSpec("download", "slow_fetch", times=1, latency=0.1),
        )))
        slept = []
        archive = ChaosArchive(Inner(), chaos, sleeper=slept.append)
        assert archive.seed == 42  # everything but fetch delegates
        ref = SimpleNamespace(filename="granule-1")
        with pytest.raises(OSError, match="503"):
            archive.fetch(ref)
        assert fetched == []       # the failure happened at the archive
        assert slept == [0.1]      # after the slow stream stalled
        assert archive.fetch(ref) == "dataset"  # the retry goes through

    def test_chaos_archive_permanent_never_recovers(self):
        class Inner:
            def fetch(self, ref, bands=None):  # pragma: no cover - unreachable
                raise AssertionError("permanent fault must not reach the archive")

        chaos = FaultInjector(FaultPlan(seed=0, faults=(
            FaultSpec("download", "http_permanent"),
        )))
        archive = ChaosArchive(Inner(), chaos)
        for _ in range(4):
            with pytest.raises(OSError, match="permanent"):
                archive.fetch(SimpleNamespace(filename="granule-1"))

    def test_chaos_transfer_client_wan_degrade_then_recovery(self, tmp_path):
        src, dst = tmp_path / "src", tmp_path / "dst"
        src.mkdir()
        (src / "tiles_a.nc").write_bytes(b"CDF-labelled")
        chaos = self.injector("shipment", "wan_degrade", times=1)
        client = ChaosTransferClient(chaos, retries=2, sleeper=lambda _s: None)
        moved = client.transfer(str(src), str(dst), ["tiles_a.nc"])
        assert [os.path.basename(p) for p in moved] == ["tiles_a.nc"]
        assert client.retries_used >= 1

    def test_chaos_transfer_client_exhaustion_raises(self, tmp_path):
        src, dst = tmp_path / "src", tmp_path / "dst"
        src.mkdir()
        (src / "tiles_a.nc").write_bytes(b"CDF-labelled")
        chaos = self.injector("shipment", "wan_degrade", times=None)
        client = ChaosTransferClient(chaos, retries=2, sleeper=lambda _s: None)
        with pytest.raises(TransferError, match="WAN degraded"):
            client.transfer(str(src), str(dst), ["tiles_a.nc"])


class TestConfigIntegration:
    def test_chaos_section_parses_into_plan(self, tmp_path):
        config = make_config(tmp_path, chaos={
            "seed": 5,
            "faults": [{"stage": "download", "kind": "slow_fetch", "rate": 0.5}],
        })
        assert isinstance(config.chaos, FaultPlan)
        assert config.chaos.seed == 5 and config.chaos.active

    def test_absent_chaos_section_yields_none(self, tmp_path):
        assert make_config(tmp_path).chaos is None

    def test_malformed_chaos_section_fails_config_load(self, tmp_path):
        with pytest.raises(ConfigError):
            make_config(tmp_path, chaos={"faults": [{"stage": "nope",
                                                     "kind": "slow_fetch"}]})


class TestCliChaosFlags:
    def test_chaos_seed_without_plan_is_an_error(self, tmp_path, capsys):
        from repro.cli import main

        config = tmp_path / "wf.yaml"
        config.write_text(
            "archive:\n  start_date: 2022-01-01\n  max_granules_per_day: 1\n"
        )
        assert main(["run", str(config), "--chaos-seed", "9"]) == 2
        assert "needs a chaos plan" in capsys.readouterr().err

    def test_chaos_flag_loads_and_reseeds_plan(self, tmp_path, monkeypatch, capsys):
        from repro import cli

        config_path = tmp_path / "wf.yaml"
        config_path.write_text(
            "archive:\n  start_date: 2022-01-01\n  max_granules_per_day: 1\n"
        )
        plan_path = tmp_path / "plan.yaml"
        plan_path.write_text(
            "chaos:\n  seed: 4\n  faults:\n"
            "    - stage: download\n      kind: slow_fetch\n      latency: 0.0\n"
        )
        captured = {}

        class FakeWorkflow:
            def __init__(self, config):
                captured["chaos"] = config.chaos

            def run(self, provenance=True, resume=False):
                raise SystemExit(0)  # the plumbing, not the pipeline, is under test

        monkeypatch.setattr("repro.core.EOMLWorkflow", FakeWorkflow)
        with pytest.raises(SystemExit):
            cli.main(["run", str(config_path), "--chaos", str(plan_path),
                      "--chaos-seed", "77"])
        assert captured["chaos"].seed == 77
        assert captured["chaos"].kinds() == ("slow_fetch",)
        assert "chaos:" in capsys.readouterr().out


@pytest.fixture(scope="module")
def mini_archive():
    return LaadsArchive(seed=3, swath=MINI_SWATH)


def artifact_bytes(root):
    """Every delivered artifact under ``root`` as {name: bytes}."""
    out = {}
    for dirpath, _dirnames, filenames in os.walk(root):
        for name in filenames:
            with open(os.path.join(dirpath, name), "rb") as handle:
                out[name] = handle.read()
    return out


class TestZeroOverheadPassthrough:
    def test_disabled_chaos_is_byte_identical_to_no_chaos(self, tmp_path,
                                                          mini_archive):
        disabled = {
            "enabled": False,
            "seed": 1,
            "faults": [{"stage": "download", "kind": "http_permanent"}],
        }
        plain = EOMLWorkflow(
            make_config(tmp_path / "plain"), archive=mini_archive
        ).run(provenance=False)
        chaotic = EOMLWorkflow(
            make_config(tmp_path / "disabled", chaos=disabled), archive=mini_archive
        ).run(provenance=False)
        for report in (plain, chaotic):
            assert report.chaos is None
            assert not report.errors
            assert report.quarantined == 0
        assert chaotic.download.nbytes == plain.download.nbytes
        assert chaotic.download.retry_attempts == plain.download.retry_attempts == 0
        assert [g.key for g in chaotic.download.granule_sets] == \
               [g.key for g in plain.download.granule_sets]
        assert chaotic.total_tiles == plain.total_tiles
        assert chaotic.labelled_tiles == plain.labelled_tiles
        # The delivered artifacts are byte-for-byte the same.
        plain_files = artifact_bytes(tmp_path / "plain" / "orion")
        chaotic_files = artifact_bytes(tmp_path / "disabled" / "orion")
        assert plain_files.keys() == chaotic_files.keys() and plain_files
        for name in plain_files:
            assert plain_files[name] == chaotic_files[name], name
        # Resilience counters exist (dashboards rely on the keys) at zero.
        snap = plain.metrics.snapshot()
        assert snap.get("eo_ml.retries{stage=download}", 0) == 0
        assert snap.get("eo_ml.breaker_open", 0) == 0


class TestChaosEndToEnd:
    """The acceptance run: >= 4 fault kinds across the five stages, one
    seeded plan, and the workflow finishes degraded-but-complete."""

    PLAN = {
        "seed": 13,
        "faults": [
            {"stage": "download", "kind": "http_transient", "rate": 0.4, "times": 1},
            {"stage": "download", "kind": "http_permanent", "rate": 0.08},
            {"stage": "download", "kind": "torn_write", "rate": 0.3, "times": 1},
            {"stage": "download", "kind": "slow_fetch", "rate": 0.3, "times": 1,
             "latency": 0.002},
            {"stage": "preprocess", "kind": "worker_stall", "rate": 1.0, "times": 1,
             "latency": 0.002},
            {"stage": "shipment", "kind": "wan_degrade", "rate": 0.4, "times": 1,
             "latency": 0.002},
        ],
    }

    def test_workflow_survives_multi_kind_fault_plan(self, tmp_path, mini_archive):
        config = make_config(
            tmp_path, chaos=self.PLAN, granules=4,
            retries=3, on_exhausted="skip", breaker_threshold=12,
        )
        report = EOMLWorkflow(config, archive=mini_archive).run()

        # The run completed; the permanently failing granule cost one
        # scene (quarantined), everything else was labelled and shipped.
        assert report.chaos is not None
        by_kind = report.chaos["by_kind"]
        assert len(by_kind) >= 4, by_kind
        assert report.chaos["faults_injected"] == sum(by_kind.values())
        assert report.total_tiles > 0
        assert report.labelled_tiles >= 0.9 * report.total_tiles
        assert report.quarantined >= 1
        assert len(report.download.incomplete) == 1
        assert report.download.failed and "failed after" in report.download.failed[0]
        assert report.download.retried >= 1        # transients recovered
        assert report.download.retry_attempts >= 1
        assert report.shipment is not None
        assert report.shipment.error is None       # WAN degrade was absorbed
        assert report.shipment.retries >= 1
        assert len(report.shipment.moved) == len(report.inference)

        # Errors are reported, not raised.
        assert any("incomplete scene dropped" in e for e in report.errors)

        # The metrics snapshot accounts for every injected fault.
        snap = report.metrics.snapshot()
        for kind, count in by_kind.items():
            assert snap[f"eo_ml.faults_injected{{kind={kind}}}"] == count
        assert snap["eo_ml.retries{stage=download}"] == report.download.retry_attempts
        assert snap["eo_ml.retries{stage=shipment}"] == report.shipment.retries
        assert (
            snap["eo_ml.quarantined{stage=download}"]
            == len(report.download.failed) + len(report.download.incomplete)
        )

    def test_same_seed_reproduces_the_same_fault_set(self, tmp_path, mini_archive):
        kinds = {}
        for run in ("a", "b"):
            config = make_config(
                tmp_path / run, chaos=self.PLAN, granules=4,
                retries=3, on_exhausted="skip", breaker_threshold=12,
            )
            report = EOMLWorkflow(config, archive=mini_archive).run(provenance=False)
            kinds[run] = (report.chaos["by_kind"],
                          sorted(report.download.incomplete))
        assert kinds["a"] == kinds["b"]
