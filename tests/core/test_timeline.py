"""WallClockTimeline tests."""

import pytest

from repro.core.timeline import WallClockTimeline


class TestWallClockTimeline:
    def test_spans_and_breakdown_order(self):
        timeline = WallClockTimeline()
        timeline.begin("download")
        timeline.end("download")
        timeline.begin("preprocess")
        timeline.end("preprocess")
        breakdown = timeline.breakdown()
        assert [b.stage for b in breakdown] == ["download", "preprocess"]
        assert all(b.duration >= 0 for b in breakdown)

    def test_end_without_begin(self):
        timeline = WallClockTimeline()
        with pytest.raises(KeyError):
            timeline.end("ghost")

    def test_worker_gauges(self):
        timeline = WallClockTimeline()
        timeline.workers("download", +3)
        series = timeline.series("download")
        assert series.at(timeline.now + 1) == 3
        timeline.workers("download", -3)
        assert timeline.series("download").at(timeline.now + 1) == 0

    def test_gaps_non_negative(self):
        timeline = WallClockTimeline()
        timeline.begin("a")
        timeline.end("a")
        timeline.begin("b")
        timeline.end("b")
        gaps = timeline.gaps()
        assert len(gaps) == 1
        (src, dst, gap) = gaps[0]
        assert (src, dst) == ("a", "b")
        assert gap >= 0

    def test_render_empty(self):
        assert "no activity" in WallClockTimeline().render()

    def test_render_with_activity(self):
        timeline = WallClockTimeline()
        timeline.workers("preprocess", 4)
        timeline.workers("preprocess", -4)
        text = timeline.render()
        assert "workers:preprocess" in text
        assert "peak=4" in text
