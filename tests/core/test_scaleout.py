"""Horizontal scale-out equivalence and crash recovery.

The multi-process pool must be *invisible* in the output: a run sharded
across N worker processes ships the same golden corpus, byte for byte,
as the sequential run — including when a worker is killed mid-stage and
the run is resumed from the journal.  These tests drive the real
workflow (and the subprocess crash driver) at the golden-corpus seed.
"""

import hashlib
import json
import os
import subprocess
import sys

import pytest

from tests.core.crash_driver import build_raw_config

from repro.core import EOMLWorkflow, load_config
from repro.modis import MINI_SWATH, LaadsArchive

GOLDEN = os.path.join(os.path.dirname(__file__), "golden_corpus.json")
DRIVER = os.path.join(os.path.dirname(__file__), "crash_driver.py")
SRC = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "src")
)


def sha256_file(path):
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 16), b""):
            digest.update(chunk)
    return digest.hexdigest()


def delivered_digests(destination):
    return {
        name: sha256_file(os.path.join(destination, name))
        for name in sorted(os.listdir(destination))
    }


def load_golden():
    with open(GOLDEN) as handle:
        return json.load(handle)


def run_golden(tmp_path, runtime=None):
    golden = load_golden()
    raw = build_raw_config(str(tmp_path), golden["granules"])
    if runtime:
        raw["runtime"] = runtime
    config = load_config(raw)
    workflow = EOMLWorkflow(
        config, archive=LaadsArchive(seed=golden["seed"], swath=MINI_SWATH)
    )
    report = workflow.run(provenance=False)
    return golden, config, report


def run_driver(root, *extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, DRIVER, str(root), *extra],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )


class TestGoldenEquivalence:
    def test_two_workers_ship_the_golden_corpus(self, tmp_path):
        golden, config, report = run_golden(tmp_path, runtime={"workers": 2})
        assert report.errors == []
        assert delivered_digests(config.destination) == golden["files"]
        scaleout = report.scaleout
        assert scaleout["enabled"] is True
        assert scaleout["workers_launched"] == 2
        assert scaleout["units_executed"] > 0
        assert scaleout["busy_seconds"] > 0
        assert len(scaleout["per_worker"]) == 2
        # Every executed unit is attributed to exactly one worker.
        assert sum(w["units"] for w in scaleout["per_worker"]) == (
            scaleout["units_executed"]
        )

    def test_elastic_pool_ships_the_golden_corpus(self, tmp_path):
        golden, config, report = run_golden(
            tmp_path,
            runtime={
                "workers": 1,
                "elastic": {
                    "enabled": True,
                    "min_workers": 1,
                    "max_workers": 3,
                    "tasks_per_worker_target": 1.0,
                    "idle_retire_seconds": 0.05,
                },
            },
        )
        assert report.errors == []
        assert delivered_digests(config.destination) == golden["files"]
        assert report.scaleout["enabled"] is True
        # Demand (6 downloads at once against a 1-worker floor with a
        # target of 1 task/worker) must have forced at least one
        # scale-out; the idle tail must have retired at least one.
        assert report.scaleout["scale_out_events"] > 0
        assert report.scaleout["scale_in_events"] > 0

    def test_streaming_with_workers_ships_the_golden_corpus(self, tmp_path):
        golden, config, report = run_golden(
            tmp_path, runtime={"workers": 2, "stream": {"enabled": True}}
        )
        assert report.errors == []
        assert delivered_digests(config.destination) == golden["files"]

    def test_single_process_reports_zero_scaleout(self, tmp_path):
        _, _, report = run_golden(tmp_path)
        assert report.scaleout == {
            "enabled": False,
            "units_executed": 0,
            "busy_seconds": 0.0,
            "requeues": 0,
            "respawns": 0,
            "scale_out_events": 0,
            "scale_in_events": 0,
            "workers_launched": 0,
            "per_worker": [],
        }
        # The metric keys exist even when nothing scaled out.
        snapshot = report.metrics.snapshot()
        for key in (
            "eo_ml.pool.units_executed",
            "eo_ml.pool.requeues",
            "eo_ml.pool.respawns",
            "eo_ml.pool.scale_out_events",
            "eo_ml.pool.scale_in_events",
            "eo_ml.pool.workers_launched",
        ):
            assert snapshot[key] == 0


class TestMultiprocessCrashRecovery:
    """Kill a worker process mid-stage, resume, require the golden bytes."""

    @pytest.mark.parametrize("stage", ["download", "inference"])
    def test_worker_kill_then_resume_ships_golden(self, stage, tmp_path):
        golden = load_golden()

        crashed = run_driver(
            tmp_path, "--workers", "2", "--crash-stage", stage,
            "--granules", str(golden["granules"]),
        )
        # The chaos crash kills *worker* processes now.  The pool
        # requeues the unit once onto a fresh worker; the respawned
        # injector deterministically fires again, so the requeue budget
        # exhausts and the parent aborts with a nonzero exit (a
        # different path from the parent's own os._exit, but still a
        # hard failure the operator must resume from).
        assert crashed.returncode != 0, (
            f"crash fault at {stage!r} did not abort the pooled run:\n"
            f"{crashed.stdout}\n{crashed.stderr}"
        )

        resumed = run_driver(
            tmp_path, "--workers", "2", "--resume",
            "--granules", str(golden["granules"]),
        )
        assert resumed.returncode == 0, resumed.stderr

        dest = os.path.join(str(tmp_path), "data", "orion")
        assert delivered_digests(dest) == golden["files"]

    def test_preprocess_crash_then_resume_ships_golden(self, tmp_path):
        # The preprocess crash surface fires inside the worker during
        # the model-bootstrap scene as well; resume must still converge.
        golden = load_golden()
        crashed = run_driver(
            tmp_path, "--workers", "2", "--crash-stage", "preprocess",
            "--granules", str(golden["granules"]),
        )
        assert crashed.returncode != 0
        resumed = run_driver(
            tmp_path, "--workers", "2", "--resume",
            "--granules", str(golden["granules"]),
        )
        assert resumed.returncode == 0, resumed.stderr
        dest = os.path.join(str(tmp_path), "data", "orion")
        assert delivered_digests(dest) == golden["files"]
