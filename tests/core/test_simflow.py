"""Simulated end-to-end workflow tests (the Fig. 6 / Fig. 7 engine)."""

import pytest

from repro.core import SimulatedEOMLWorkflow, SimWorkflowParams


@pytest.fixture(scope="module")
def result():
    return SimulatedEOMLWorkflow(SimWorkflowParams(num_granule_sets=12)).run()


class TestSimulatedWorkflow:
    def test_completes_and_ships_everything(self, result):
        assert result.tiles == 12 * 150
        assert result.files_shipped == 12
        assert result.transfer is not None
        assert result.transfer.files_done == 12

    def test_stage_order(self, result):
        spans = result.stage_spans
        for stage in ("download_launch", "download", "preprocess", "inference", "shipment"):
            assert stage in spans
        assert spans["download_launch"][1] <= spans["download"][0] + 1e-9
        assert spans["download"][1] <= spans["preprocess"][0] + 1e-9
        assert spans["preprocess"][1] <= spans["shipment"][0] + 1e-9

    def test_download_launch_is_5_63s(self, result):
        start, end = result.stage_spans["download_launch"]
        assert end - start == pytest.approx(5.63)

    def test_flow_hop_latency_near_50ms(self, result):
        assert result.flow_hop_latency == pytest.approx(0.05, abs=0.01)

    def test_inference_overlaps_preprocessing(self, result):
        """Fig. 6's asynchrony: inference starts before preprocessing ends."""
        assert result.stage_spans["inference"][0] < result.stage_spans["preprocess"][1]

    def test_worker_gauges_match_allocation(self, result):
        assert result.tracer.series("workers:download").max == 3
        # 32 workers are provisioned but only 12 tasks exist; surplus
        # workers exit at spawn, so the plateau equals the task count.
        assert result.tracer.series("workers:preprocess").max == 12
        assert result.tracer.series("workers:inference").max == 1

    def test_preprocess_gauge_reaches_allocation_with_enough_work(self):
        run = SimulatedEOMLWorkflow(SimWorkflowParams(num_granule_sets=40)).run()
        assert run.tracer.series("workers:preprocess").max == 32

    def test_workers_scale_in_after_stages(self, result):
        """Every gauge returns to zero: elastic scale-in happened."""
        for gauge in ("workers:download", "workers:preprocess", "workers:inference"):
            assert result.tracer.series(gauge).at(result.makespan + 1) == 0

    def test_download_and_preprocess_do_not_overlap(self, result):
        """The download barrier: no preprocess worker before downloads end."""
        dl_end = result.stage_spans["download"][1]
        series = result.tracer.series("workers:preprocess")
        assert series.at(dl_end - 0.5) == 0

    def test_deterministic(self):
        params = SimWorkflowParams(num_granule_sets=6, seed=9)
        a = SimulatedEOMLWorkflow(params).run()
        b = SimulatedEOMLWorkflow(params).run()
        assert a.makespan == b.makespan
        assert a.stage_spans == b.stage_spans

    def test_flow_runs_batch_fresh_files(self, result):
        assert 1 <= result.flow_runs <= 12

    def test_elastic_mode_completes_with_demand_driven_blocks(self):
        """Elastic scale-out finishes the same workload; blocks arrive on
        demand, so allocation never exceeds the static ceiling."""
        static = SimulatedEOMLWorkflow(
            SimWorkflowParams(num_granule_sets=24, seed=6)
        ).run()
        elastic = SimulatedEOMLWorkflow(
            SimWorkflowParams(num_granule_sets=24, seed=6, elastic=True)
        ).run()
        assert elastic.files_shipped == static.files_shipped == 24
        static_peak = static.tracer.series("workers:preprocess").max
        elastic_peak = elastic.tracer.series("workers:preprocess").max
        assert elastic_peak <= static_peak
        # Elastic still brings up more than one block when demand warrants.
        assert elastic_peak > 8

    def test_survives_injected_failures(self):
        """With flaky downloads AND flaky preprocess workers, the pipeline
        still completes the full workload — slower than a clean run."""
        clean = SimulatedEOMLWorkflow(SimWorkflowParams(num_granule_sets=12, seed=4)).run()
        flaky = SimulatedEOMLWorkflow(
            SimWorkflowParams(
                num_granule_sets=12, seed=4,
                download_failure_rate=0.2, preprocess_failure_rate=0.15,
            )
        ).run()
        assert flaky.files_shipped == 12
        assert flaky.tiles == clean.tiles
        assert flaky.makespan > clean.makespan

    def test_paper_scale_full_day(self):
        """A full MODIS day (288 granule sets, 43,200 tiles) on 10 nodes
        completes and ships everything."""
        run = SimulatedEOMLWorkflow(
            SimWorkflowParams(num_granule_sets=288, preprocess_nodes=10, seed=2)
        ).run()
        assert run.files_shipped == 288
        assert run.tiles == 288 * 150
        assert run.makespan > 0
        # Preprocessing at 10 nodes x 8 workers sustains Table-I-class
        # throughput over the whole day.
        pre_start, pre_end = run.stage_spans["preprocess"]
        throughput = run.tiles / (pre_end - pre_start)
        assert 180 < throughput < 340

    def test_telemetry_rollup(self, result):
        snap = result.metrics.snapshot()
        assert snap["eo_ml.tiles"] == 12 * 150
        assert snap["eo_ml.files{stage=download}"] == 12
        assert snap["eo_ml.files{stage=shipment}"] == 12
        assert snap["eo_ml.stage_seconds.count"] == 5  # five spans
        assert "eo_ml.stage_seconds.p95" in snap
        rendered = result.metrics.render()
        assert "eo_ml.tiles 1800" in rendered
