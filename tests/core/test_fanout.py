"""Instrument x model fan-out: one config, four branches, same bytes.

A ``{modis, abi} x {ricc, heuristic}`` config must fan the plan out into
four branches that deliver into per-branch destination directories, with
each branch's labels attributed to its own model — and the per-branch
corpus must be byte-identical whichever engine drives the plan (barrier,
streaming, flows, zambeze, sharded worker pool), including across a
crash and ``--resume``.
"""

import hashlib
import os

import pytest

from tests.core.crash_driver import build_raw_config
from tests.core.test_crash_resume import (
    CRASH_STAGES,
    parse_stats,
    run_driver,
)

from repro.chaos.surfaces import CRASH_EXIT_CODE
from repro.core import EOMLWorkflow, load_config
from repro.core.branches import branch_tag, expand_branches, is_fanout
from repro.flows import RunStatus, run_plan_with_flows
from repro.instruments import get_model
from repro.modis import MINI_SWATH, LaadsArchive
from repro.netcdf import read as nc_read
from repro.zambeze import run_plan_with_zambeze

GRANULES = 1
SEED = 3
INSTRUMENTS = ["modis", "abi"]
MODELS = ["ricc", "heuristic"]
BRANCHES = [f"{inst}+{mdl}" for inst in INSTRUMENTS for mdl in MODELS]


def fanout_raw(root, granules=GRANULES):
    raw = build_raw_config(str(root), granules)
    raw["archive"]["instruments"] = list(INSTRUMENTS)
    raw["inference"] = dict(raw["inference"], models=list(MODELS))
    return raw


def make_workflow(root, granules=GRANULES, runtime=None):
    raw = fanout_raw(root, granules)
    if runtime:
        raw["runtime"] = runtime
    config = load_config(raw)
    # The injected archive stands in for the primary instrument (modis);
    # the abi branch builds its own from the registry.
    return EOMLWorkflow(config, archive=LaadsArchive(seed=SEED, swath=MINI_SWATH))


def read_corpus(destination):
    """``branch/name -> sha256`` over the per-branch destination tree."""
    corpus = {}
    for branch in sorted(os.listdir(destination)):
        branch_dir = os.path.join(destination, branch)
        for name in sorted(os.listdir(branch_dir)):
            with open(os.path.join(branch_dir, name), "rb") as handle:
                corpus[f"{branch}/{name}"] = hashlib.sha256(
                    handle.read()
                ).hexdigest()
    return corpus


@pytest.fixture(scope="module")
def barrier(tmp_path_factory):
    root = tmp_path_factory.mktemp("fanout-barrier")
    workflow = make_workflow(root)
    report = workflow.run(provenance=False)
    assert report.errors == []
    return report, workflow.config, read_corpus(workflow.config.destination)


class TestBranchExpansion:
    def test_expand_is_the_instruments_major_product(self, tmp_path):
        config = load_config(fanout_raw(tmp_path))
        assert is_fanout(config)
        assert expand_branches(config) == [
            ("modis", "ricc"), ("modis", "heuristic"),
            ("abi", "ricc"), ("abi", "heuristic"),
        ]
        assert [branch_tag(i, m) for i, m in expand_branches(config)] == BRANCHES

    def test_single_branch_config_is_not_fanout(self, tmp_path):
        config = load_config(build_raw_config(str(tmp_path), 1))
        assert not is_fanout(config)
        assert expand_branches(config) == [("modis", "ricc")]


class TestBarrierFanout:
    def test_every_branch_delivers(self, barrier):
        report, config, corpus = barrier
        assert sorted(os.listdir(config.destination)) == sorted(BRANCHES)
        delivered_branches = {key.split("/")[0] for key in corpus}
        assert delivered_branches == set(BRANCHES)
        assert len(report.shipment.moved) == len(corpus)

    def test_download_and_preprocess_are_per_instrument_only(self, barrier):
        _report, config, _corpus = barrier
        # One staging/preprocessed subtree per instrument, not per branch.
        assert sorted(os.listdir(config.staging)) == sorted(INSTRUMENTS)
        assert sorted(
            d for d in os.listdir(config.preprocessed)
            if os.path.isdir(os.path.join(config.preprocessed, d))
        ) == sorted(INSTRUMENTS)

    def test_labels_attributed_to_the_branch_model(self, barrier):
        _report, config, corpus = barrier
        for key in corpus:
            branch, name = key.split("/", 1)
            model_name = branch.split("+")[1]
            ds = nc_read(os.path.join(config.destination, branch, name))
            assert (
                ds["label"].attributes["classified_by"]
                == get_model(model_name).attribution
            ), key
            assert ds.get_attr("aicca_classes") is not None

    def test_plan_nodes_are_branch_qualified(self, barrier):
        _report, config, _corpus = barrier
        plan = EOMLWorkflow(config).build_plan()
        names = [node.name for node in plan.nodes]
        for inst in INSTRUMENTS:
            assert f"download@{inst}" in names
            assert f"preprocess@{inst}" in names
        for branch in BRANCHES:
            assert f"model@{branch}" in names
            assert f"inference@{branch}" in names
            assert f"shipment@{branch}" in names


class TestDriverEquivalence:
    """Same fan-out plan, other engines, same bytes."""

    def test_streaming_matches_barrier(self, barrier, tmp_path):
        _report, _config, expected = barrier
        workflow = make_workflow(
            tmp_path, runtime={"stream": {"enabled": True}}
        )
        report = workflow.run(provenance=False)
        assert report.errors == []
        assert read_corpus(workflow.config.destination) == expected

    def test_worker_pool_matches_barrier(self, barrier, tmp_path):
        _report, _config, expected = barrier
        workflow = make_workflow(tmp_path, runtime={"workers": 2})
        report = workflow.run(provenance=False)
        assert report.errors == []
        assert report.scaleout["enabled"]
        assert report.scaleout["units_executed"] > 0
        assert read_corpus(workflow.config.destination) == expected

    def test_flows_engine_matches_barrier(self, barrier, tmp_path):
        _report, _config, expected = barrier
        workflow = make_workflow(tmp_path)
        plan = workflow.build_plan()
        run, execution = run_plan_with_flows(plan, label="eo-ml-fanout")
        assert run.status == RunStatus.SUCCEEDED
        for branch in BRANCHES:
            shipment = execution.state[f"shipment@{branch}"]
            assert shipment is not None and shipment.error is None
        assert read_corpus(workflow.config.destination) == expected

    def test_zambeze_orchestrator_matches_barrier(self, barrier, tmp_path):
        _report, _config, expected = barrier
        workflow = make_workflow(tmp_path)
        plan = workflow.build_plan()
        report, _execution = run_plan_with_zambeze(plan, facility="olcf")
        assert report.succeeded
        assert not report.errors
        assert read_corpus(workflow.config.destination) == expected


class TestCrashResume:
    @pytest.mark.parametrize("stage", CRASH_STAGES)
    def test_crash_then_resume_matches_barrier(self, stage, barrier, tmp_path):
        _report, _config, expected = barrier
        crashed = run_driver(
            tmp_path, "--fanout", "--granules", str(GRANULES),
            "--crash-stage", stage,
        )
        assert crashed.returncode == CRASH_EXIT_CODE, (
            f"crash fault at {stage!r} did not abort the fan-out run: "
            f"rc={crashed.returncode}\n{crashed.stdout}\n{crashed.stderr}"
        )
        resumed = run_driver(
            tmp_path, "--fanout", "--granules", str(GRANULES), "--resume"
        )
        assert resumed.returncode == 0, resumed.stderr
        stats = parse_stats(resumed.stdout)
        assert stats["errors"] == 0
        corpus = read_corpus(
            os.path.join(str(tmp_path), "data", "orion")
        )
        assert corpus == expected

    def test_resume_of_completed_run_is_a_noop(self, tmp_path):
        first = run_driver(tmp_path, "--fanout", "--granules", str(GRANULES))
        assert first.returncode == 0, first.stderr
        again = run_driver(
            tmp_path, "--fanout", "--granules", str(GRANULES), "--resume"
        )
        assert again.returncode == 0, again.stderr
        stats = parse_stats(again.stdout)
        assert stats["errors"] == 0
        assert stats["fetched"] == 0
        assert stats["resumed_downloads"] > 0
