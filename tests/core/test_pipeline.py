"""Integration tests: the real five-stage workflow on synthetic granules."""

import os
import time

import numpy as np
import pytest

from repro.core import (
    DirectoryCrawler,
    DownloadStage,
    EOMLWorkflow,
    InferenceWorker,
    PreprocessStage,
    ShipmentStage,
    StreamingClassifier,
    load_config,
)
from repro.modis import MINI_SWATH, LaadsArchive
from repro.netcdf import read as nc_read
from repro.ricc import AICCAModel


def make_config(tmp_path, granules=2, ship=True, poll=0.05):
    return load_config(
        {
            "archive": {
                "start_date": "2022-01-01",
                "max_granules_per_day": granules,
                "seed": 3,
            },
            "paths": {
                "staging": str(tmp_path / "raw"),
                "preprocessed": str(tmp_path / "tiles"),
                "transfer_out": str(tmp_path / "outbox"),
                "destination": str(tmp_path / "orion"),
            },
            "download": {"workers": 3},
            "preprocess": {"workers": 4, "tile_size": 16},
            "inference": {"workers": 1, "poll_interval": poll},
            "shipment": {"enabled": ship},
        }
    )


@pytest.fixture(scope="module")
def mini_archive():
    return LaadsArchive(seed=3, swath=MINI_SWATH)


class TestDownloadStage:
    def test_downloads_all_products(self, tmp_path, mini_archive):
        config = make_config(tmp_path)
        report = DownloadStage(config, archive=mini_archive).run()
        assert report.files == 6  # 2 granules x 3 products
        assert len(report.granule_sets) == 2
        for granule_set in report.granule_sets:
            assert len(granule_set.paths) == 3
            for path in granule_set.paths.values():
                assert os.path.exists(path)
                assert not path.endswith(".part")

    def test_granule_set_family_lookup(self, tmp_path, mini_archive):
        config = make_config(tmp_path)
        report = DownloadStage(config, archive=mini_archive).run()
        gs = report.granule_sets[0]
        assert gs.path_for("021KM").endswith(".nc")
        with pytest.raises(KeyError):
            gs.path_for("99")


class TestPreprocessStage:
    def test_produces_tile_files(self, tmp_path, mini_archive):
        config = make_config(tmp_path)
        download = DownloadStage(config, archive=mini_archive).run()
        report = PreprocessStage(config).run(download.granule_sets)
        assert report.total_tiles > 0
        produced = [r for r in report.results if r.tile_path]
        assert produced
        ds = nc_read(produced[0].tile_path)
        assert ds["radiance"].data.shape[1:] == (16, 16, 6)
        # All stored tiles honour the selection rule.
        assert (ds["cloud_fraction"].data > 0.3).all()
        # Labels start unclassified.
        assert (ds["label"].data == -1).all()


class TestMonitorAndInference:
    def test_crawler_triggers_and_inference_labels(self, tmp_path, mini_archive):
        config = make_config(tmp_path)
        download = DownloadStage(config, archive=mini_archive).run()
        preprocess = PreprocessStage(config).run(download.granule_sets)
        tile_paths = [r.tile_path for r in preprocess.results if r.tile_path]
        tiles = np.concatenate([nc_read(p)["radiance"].data for p in tile_paths]).astype(
            np.float32
        )
        model, _ = AICCAModel.train(
            tiles, num_classes=4, latent_dim=4, hidden=(32,), epochs=3, seed=0
        )
        worker = InferenceWorker(model, config)
        crawler = DirectoryCrawler(config.preprocessed, trigger=worker.submit,
                                   poll_interval=0.05)
        with worker, crawler:
            deadline = time.monotonic() + 30
            while len(worker.results) < len(tile_paths) and time.monotonic() < deadline:
                time.sleep(0.05)
        assert len(worker.results) == len(tile_paths)
        assert not worker.errors
        out = nc_read(worker.results[0].out_path)
        assert (out["label"].data >= 0).all()
        assert int(out.get_attr("aicca_classes")[0]) == 4

    def test_crawler_ignores_partial_and_foreign_files(self, tmp_path):
        directory = tmp_path / "watch"
        directory.mkdir()
        seen = []
        crawler = DirectoryCrawler(str(directory), trigger=seen.append, poll_interval=0.05)
        (directory / "tiles_a.nc.part").write_bytes(b"partial")
        (directory / "random.txt").write_bytes(b"nope")
        (directory / "tiles_a.nc").write_bytes(b"CDF")
        fresh = crawler.scan_once()
        assert fresh == [str(directory / "tiles_a.nc")]
        # Second scan: nothing new.
        assert crawler.scan_once() == []

    def test_crawler_survives_trigger_errors(self, tmp_path):
        directory = tmp_path / "watch"
        directory.mkdir()

        def bad_trigger(path):
            raise RuntimeError("inference endpoint offline")

        crawler = DirectoryCrawler(str(directory), trigger=bad_trigger, poll_interval=0.05)
        (directory / "tiles_a.nc").write_bytes(b"CDF")
        crawler.scan_once()
        assert len(crawler.errors) == 1


class TestEndToEnd:
    def test_full_workflow(self, tmp_path, mini_archive):
        config = make_config(tmp_path)
        workflow = EOMLWorkflow(config, archive=mini_archive)
        report = workflow.run()
        assert report.total_tiles > 0
        assert report.labelled_tiles == report.total_tiles
        assert not report.errors
        # Shipment delivered every labelled file to the destination.
        assert report.shipment is not None
        assert len(report.shipment.moved) == len(report.inference)
        for path in report.shipment.moved:
            assert os.path.exists(path)
            labelled = nc_read(path)
            assert (labelled["label"].data >= 0).all()
        # The timeline recorded all stages in order.
        stages = [b.stage for b in report.breakdown]
        assert stages.index("download") < stages.index("preprocess")
        assert "inference" in stages and "shipment" in stages
        rendered = report.timeline.render()
        assert "workers:download" in rendered
        # Telemetry rollup is consistent with the report.
        snap = report.metrics.snapshot()
        assert snap["eo_ml.tiles"] == report.total_tiles
        assert snap["eo_ml.files{stage=download}"] == report.download.files
        assert snap["eo_ml.files{stage=shipment}"] == len(report.shipment.moved)
        assert snap["eo_ml.stage_seconds.count"] == len(report.breakdown)

    def test_workflow_without_shipment(self, tmp_path, mini_archive):
        config = make_config(tmp_path, ship=False)
        report = EOMLWorkflow(config, archive=mini_archive).run()
        assert report.shipment is None
        assert report.labelled_tiles > 0

    def test_workflow_with_pretrained_model(self, tmp_path, mini_archive):
        config = make_config(tmp_path)
        # Train a model on a different day's tiles first.
        boot = EOMLWorkflow(make_config(tmp_path / "boot"), archive=mini_archive).run()
        model_path = str(tmp_path / "model.npz")
        EOMLWorkflow(make_config(tmp_path / "boot2"), archive=mini_archive)  # unused twin
        # Reuse the bootstrapped model via explicit injection.
        workflow = EOMLWorkflow(config, archive=mini_archive)
        tiles = np.concatenate(
            [nc_read(r.tile_path)["radiance"].data for r in boot.preprocess.results if r.tile_path]
        ).astype(np.float32)
        model, _ = AICCAModel.train(tiles, num_classes=3, latent_dim=4, hidden=(32,), epochs=3)
        model.save(model_path)
        workflow.model = AICCAModel.load(model_path)
        report = workflow.run()
        assert report.labelled_tiles == report.total_tiles


class TestFlowsDrivenInference:
    def test_inference_via_globus_flow(self, tmp_path, mini_archive):
        """Section III stage 3 runs inference *through a Globus Flow*;
        the same flows engine drives the real stage functions here."""
        from repro.flows import FlowsEngine, RunStatus
        from repro.ricc import AICCAModel
        from repro.sim import Simulation

        config = make_config(tmp_path)
        download = DownloadStage(config, archive=mini_archive).run()
        preprocess = PreprocessStage(config).run(download.granule_sets)
        tile_paths = [r.tile_path for r in preprocess.results if r.tile_path]
        tiles = np.concatenate(
            [nc_read(p)["radiance"].data for p in tile_paths]
        ).astype(np.float32)
        model, _ = AICCAModel.train(
            tiles, num_classes=3, latent_dim=4, hidden=(32,), epochs=3, seed=0
        )

        from repro.core.inference import infer_tile_file
        from repro.core.monitor import DirectoryCrawler

        discovered = []
        crawler = DirectoryCrawler(config.preprocessed, trigger=discovered.append)
        crawler.scan_once()
        assert sorted(discovered) == sorted(tile_paths)

        def crawl_action(engine, params):
            return {"paths": sorted(discovered)}

        def infer_action(engine, params):
            results = [
                infer_tile_file(model, path, config.transfer_out)
                for path in params["paths"]
            ]
            return {"labelled": [r.out_path for r in results]}

        flow = {
            "StartAt": "Crawl",
            "States": {
                "Crawl": {"Type": "Action", "ActionUrl": "crawler",
                           "ResultPath": "found", "Next": "Infer"},
                "Infer": {"Type": "Action", "ActionUrl": "infer",
                           "Parameters": {"paths": "$.found.paths"},
                           "ResultPath": "out", "Next": "Done"},
                "Done": {"Type": "Succeed"},
            },
        }
        sim = Simulation()
        engine = FlowsEngine(sim, {"crawler": crawl_action, "infer": infer_action})
        run = engine.run(flow)
        sim.run()
        assert run.status is RunStatus.SUCCEEDED
        labelled = run.document["out"]["labelled"]
        assert len(labelled) == len(tile_paths)
        for path in labelled:
            assert (nc_read(path)["label"].data >= 0).all()


class TestStreaming:
    def test_streaming_classifier(self, tmp_path, mini_archive):
        config = make_config(tmp_path, granules=3)
        download = DownloadStage(config, archive=mini_archive).run()
        preprocess = PreprocessStage(config).run(download.granule_sets[:1])
        tiles = np.concatenate(
            [nc_read(r.tile_path)["radiance"].data for r in preprocess.results if r.tile_path]
        ).astype(np.float32)
        model, _ = AICCAModel.train(tiles, num_classes=3, latent_dim=4, hidden=(32,), epochs=3)
        streamer = StreamingClassifier(model=model, config=config)
        results = list(streamer.run(iter(download.granule_sets[1:])))
        assert len(results) == 2
        assert streamer.total_tiles == sum(r.tiles for r in results)
        assert streamer.recent_rate_tiles_per_s() is not None
        if streamer.total_tiles:
            assert streamer.dominant_classes(top=2)

    def test_class_drift_requires_history(self, tmp_path, mini_archive):
        config = make_config(tmp_path)
        model = None
        streamer = StreamingClassifier(model=model, config=config)
        with pytest.raises(ValueError):
            streamer.class_drift(2, 2)
