"""Tokenization + sharding tests (the distributed-training consumer)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.sharding import (
    Shard,
    TileIndex,
    assign_to_ranks,
    plan_shards,
    tokenize,
    write_shards,
)
from repro.core.tiles import Tile, tiles_to_dataset
from repro.netcdf import read as nc_read, write as nc_write


def make_tile_file(path, n, label_of, size=8, bands=2, seed=0):
    rng = np.random.default_rng(seed)
    tiles = []
    for index in range(n):
        tiles.append(
            Tile(
                data=rng.normal(size=(size, size, bands)).astype(np.float32),
                row=index, col=0, latitude=0.0, longitude=0.0,
                cloud_fraction=0.5, mean_optical_thickness=1.0,
                mean_cloud_top_pressure=800.0, label=label_of(index),
            )
        )
    nc_write(tiles_to_dataset(tiles), path)
    return path


class TestTokenize:
    def test_shapes(self):
        tiles = np.arange(2 * 8 * 8 * 3, dtype=np.float32).reshape(2, 8, 8, 3)
        tokens = tokenize(tiles, patch_size=4)
        assert tokens.shape == (2, 4, 4 * 4 * 3)

    def test_patch_content_exact(self):
        tiles = np.arange(1 * 4 * 4 * 1, dtype=np.float32).reshape(1, 4, 4, 1)
        tokens = tokenize(tiles, patch_size=2)
        # First patch = the top-left 2x2 block in row-major order.
        np.testing.assert_array_equal(tokens[0, 0], [0, 1, 4, 5])
        np.testing.assert_array_equal(tokens[0, 1], [2, 3, 6, 7])
        np.testing.assert_array_equal(tokens[0, 2], [8, 9, 12, 13])

    def test_roundtrip_pixel_count(self):
        tiles = np.random.default_rng(0).normal(size=(3, 16, 16, 6)).astype(np.float32)
        tokens = tokenize(tiles, patch_size=8)
        assert tokens.size == tiles.size

    def test_validation(self):
        with pytest.raises(ValueError):
            tokenize(np.zeros((2, 8, 8)), 4)  # missing channel axis
        with pytest.raises(ValueError):
            tokenize(np.zeros((2, 8, 8, 1)), 3)  # 3 does not divide 8


class TestPlanShards:
    def test_shard_sizes(self, tmp_path):
        path = make_tile_file(str(tmp_path / "t.nc"), 10, lambda i: i % 2)
        shards = plan_shards([path], shard_size=4)
        assert [s.size for s in shards] == [4, 4, 2]
        assert [s.shard_id for s in shards] == [0, 1, 2]

    def test_class_interleave_balances_labels(self, tmp_path):
        # 24 tiles, 3 classes in blocks: without interleave shards would be
        # class-pure; with it each shard gets ~balanced classes.
        path = make_tile_file(str(tmp_path / "t.nc"), 24, lambda i: i // 8)
        shards = plan_shards([path], shard_size=6, class_interleave=True)
        for shard in shards:
            histogram = shard.class_histogram
            assert len(histogram) == 3
            assert max(histogram.values()) - min(histogram.values()) <= 1

    def test_no_interleave_shuffles(self, tmp_path):
        path = make_tile_file(str(tmp_path / "t.nc"), 24, lambda i: i // 8)
        a = plan_shards([path], shard_size=6, class_interleave=False, seed=1)
        b = plan_shards([path], shard_size=6, class_interleave=False, seed=2)
        assert [t.index for t in a[0].tiles] != [t.index for t in b[0].tiles]

    def test_multiple_files(self, tmp_path):
        paths = [
            make_tile_file(str(tmp_path / f"t{i}.nc"), 5, lambda j: 0, seed=i)
            for i in range(3)
        ]
        shards = plan_shards(paths, shard_size=7)
        assert sum(s.size for s in shards) == 15

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            plan_shards([], shard_size=0)
        with pytest.raises(ValueError):
            plan_shards([], shard_size=4)


class TestWriteShards:
    def test_materializes_and_roundtrips(self, tmp_path):
        path = make_tile_file(str(tmp_path / "t.nc"), 9, lambda i: i % 3, seed=5)
        shards = plan_shards([path], shard_size=4, seed=5)
        out = write_shards(shards, str(tmp_path / "shards"))
        assert len(out) == 3
        source = nc_read(path)["radiance"].data
        first = nc_read(out[0])
        assert first["radiance"].data.shape[0] == 4
        # Every shard tile matches its source tile bit-for-bit.
        for tile_ref, stored in zip(shards[0].tiles, first["radiance"].data):
            np.testing.assert_array_equal(stored, source[tile_ref.index])
        labels = first["label"].data
        np.testing.assert_array_equal(labels, [t.label for t in shards[0].tiles])


class TestAssignToRanks:
    def test_balanced_equal_shards(self):
        shards = [Shard(shard_id=i, tiles=[_dummy_tile()] * 10) for i in range(8)]
        assignment = assign_to_ranks(shards, world_size=4)
        sizes = [sum(10 for _ in ranks) for ranks in assignment]
        assert sizes == [20, 20, 20, 20]
        assert sorted(s for ranks in assignment for s in ranks) == list(range(8))

    def test_lpt_bound_property(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            shards = [
                Shard(shard_id=i, tiles=[_dummy_tile()] * int(rng.integers(1, 50)))
                for i in range(int(rng.integers(2, 30)))
            ]
            world = int(rng.integers(1, 8))
            assignment = assign_to_ranks(shards, world)
            by_id = {s.shard_id: s.size for s in shards}
            loads = [sum(by_id[s] for s in ranks) for ranks in assignment]
            total = sum(by_id.values())
            optimal_lb = max(total / world, max(by_id.values()))
            assert max(loads) <= 4 / 3 * optimal_lb + 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            assign_to_ranks([], 0)


def _dummy_tile():
    return TileIndex(path="x", index=0, label=0)


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=60),
    shard_size=st.integers(min_value=1, max_value=20),
    classes=st.integers(min_value=1, max_value=5),
)
def test_plan_covers_every_tile_exactly_once_property(tmp_path_factory, n, shard_size, classes):
    tmp = tmp_path_factory.mktemp("shards")
    path = make_tile_file(str(tmp / "t.nc"), n, lambda i: i % classes)
    shards = plan_shards([path], shard_size=shard_size)
    seen = [(t.path, t.index) for s in shards for t in s.tiles]
    assert len(seen) == n
    assert len(set(seen)) == n
    assert all(s.size <= shard_size for s in shards)
