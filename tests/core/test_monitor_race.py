"""Crawler vs. writer races: exactly-once triggers, never a partial.

A writer thread publishes tile files the way every stage does (temp
``.part`` name + atomic rename, via the chaos-aware write path) while
the crawler polls concurrently.  The contract under test is the
monitor stage's core promise — presence implies completeness:

* each published file triggers **exactly once**, even with a background
  poll loop and a main-thread ``scan_once`` hammering the directory;
* a trigger never observes a partial: the path parses as NetCDF at
  trigger time;
* a torn writer's ``.part`` corpse (chaos ``torn_write``) is refused
  forever, and counted.
"""

import os
import threading
import time
from collections import Counter

import numpy as np

from repro.chaos import FaultInjector, FaultPlan, FaultSpec, chaos_atomic_write
from repro.core import DirectoryCrawler
from repro.netcdf import Dataset, read as nc_read


def tile_dataset(index):
    ds = Dataset()
    ds.create_dimension("x", 64)
    ds.create_variable(
        "v", "f4", ("x",), np.full(64, float(index), dtype=np.float32)
    )
    ds.set_attr("index", index)
    return ds


class TriggerProbe:
    """Records every trigger and validates the file at trigger time."""

    def __init__(self):
        self.counts = Counter()
        self.violations = []
        self._lock = threading.Lock()

    def __call__(self, path):
        if path.endswith(".part"):
            self.violations.append(f"triggered on a temp file: {path}")
        try:
            nc_read(path)  # a partial would fail to parse
        except Exception as exc:  # noqa: BLE001 - recorded for the assert
            self.violations.append(f"unparseable at trigger time: {path}: {exc}")
        with self._lock:
            self.counts[path] += 1


class TestCrawlerWriterRace:
    def test_exactly_once_and_never_partial(self, tmp_path):
        directory = str(tmp_path)
        probe = TriggerProbe()
        num_files = 12
        # Every first write of every key is torn (rate 1, times 1): the
        # writer leaves a .part corpse mid-race and retries, exactly the
        # failure mode the crawler must be immune to.
        chaos = FaultInjector(FaultPlan(seed=5, faults=(
            FaultSpec("preprocess", "torn_write", rate=1.0, times=1),
        )))
        published = []

        def writer():
            for index in range(num_files):
                name = f"tiles_{index:03d}.nc"
                final = os.path.join(directory, name)
                while True:
                    try:
                        chaos_atomic_write(tile_dataset(index), final,
                                           chaos=chaos, stage="preprocess",
                                           key=name)
                        break
                    except OSError:
                        time.sleep(0.002)  # crashed worker; a retry re-runs it
                published.append(final)
                time.sleep(0.003)

        crawler = DirectoryCrawler(directory, trigger=probe, poll_interval=0.005)
        thread = threading.Thread(target=writer)
        with crawler:
            thread.start()
            # Hammer scan_once from this thread while the loop polls: the
            # scan lock must still deliver exactly-once triggers.
            while thread.is_alive():
                crawler.scan_once()
                time.sleep(0.001)
            thread.join()
            deadline = time.monotonic() + 10
            while len(probe.counts) < num_files and time.monotonic() < deadline:
                crawler.scan_once()
                time.sleep(0.005)

        assert probe.violations == []
        assert sorted(probe.counts) == sorted(published)
        assert all(count == 1 for count in probe.counts.values()), probe.counts
        assert not crawler.errors
        # Every torn first attempt fired and was survived.
        assert chaos.counts_by_kind() == {"torn_write": num_files}

    def test_abandoned_torn_write_is_refused_forever(self, tmp_path):
        directory = str(tmp_path)
        probe = TriggerProbe()
        chaos = FaultInjector(FaultPlan(seed=5, faults=(
            FaultSpec("preprocess", "torn_write", rate=1.0, times=1),
        )))
        final = os.path.join(directory, "tiles_dead.nc")
        try:
            chaos_atomic_write(tile_dataset(0), final, chaos=chaos,
                               stage="preprocess", key="tiles_dead.nc")
        except OSError:
            pass  # the writer "died" here; nobody retries
        assert os.path.exists(final + ".part") and not os.path.exists(final)

        crawler = DirectoryCrawler(directory, trigger=probe, poll_interval=0.005)
        for _ in range(5):
            assert crawler.scan_once() == []
        assert probe.counts == {}
        assert crawler.partials_seen == 1  # seen, counted, refused

    def test_stable_size_gate_defers_growing_files(self, tmp_path):
        directory = str(tmp_path)
        seen = []
        crawler = DirectoryCrawler(directory, trigger=seen.append,
                                   poll_interval=0.005, require_stable_size=True)
        path = os.path.join(directory, "tiles_grow.nc")
        with open(path, "wb") as handle:
            handle.write(b"CDF" + b"\0" * 10)
        assert crawler.scan_once() == []   # first sighting: size recorded
        with open(path, "ab") as handle:
            handle.write(b"\0" * 10)       # still growing
        assert crawler.scan_once() == []   # size changed: still deferred
        assert crawler.scan_once() == [path]  # two stable sightings: trigger
        assert seen == [path]
        assert crawler.scan_once() == []   # and only once
