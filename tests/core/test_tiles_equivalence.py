"""The selection-first ``extract_tiles`` against a naive reference.

The optimized extraction gathers only selected tiles through fancy
indexing and computes the per-tile reductions with vectorized masked
sums.  These tests pin its behaviour to the original implementation: a
full-swath tile cube walked tile by tile in Python.

Two equivalence notions are exercised deliberately:

* everything derived without masking (tile data, order, row/col,
  lat/lon means, cloud fraction) must match **exactly**;
* the cloudy-pixel tau/ctp means are masked-sum reductions in the
  optimized path and compressed-array means in the reference — same
  mathematical value, potentially different last-ulp rounding — so they
  are compared with a tight tolerance;
* the fixed-seed golden test then shows the end artifact — the tile
  *file* — is byte-identical anyway, because float64 means survive the
  round-trip through the file's float32/float64 columns unchanged.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.tiles import Tile, extract_tiles, tiles_to_dataset
from repro.netcdf import to_bytes


def naive_extract_tiles(
    radiance,
    cloud_mask,
    land_mask,
    latitude,
    longitude,
    tile_size,
    optical_thickness=None,
    cloud_top_pressure=None,
    cloud_threshold=0.3,
    max_land_fraction=0.0,
    source="",
):
    """The pre-optimization implementation, kept verbatim as the oracle:
    materialize the full-swath band-tile cube, then loop in Python."""

    def view(field_2d, tile):
        rows = field_2d.shape[0] // tile
        cols = field_2d.shape[1] // tile
        return field_2d[: rows * tile, : cols * tile].reshape(
            rows, tile, cols, tile
        ).swapaxes(1, 2)

    bands = radiance.shape[0]
    cloud_tiles = view(cloud_mask.astype(np.float32), tile_size)
    land_tiles = view(land_mask.astype(np.float32), tile_size)
    cloud_frac = cloud_tiles.mean(axis=(2, 3))
    land_frac = land_tiles.mean(axis=(2, 3))
    selected = (land_frac <= max_land_fraction + 1e-12) & (cloud_frac > cloud_threshold)
    lat_tiles = view(latitude.astype(np.float64), tile_size)
    lon_tiles = view(longitude.astype(np.float64), tile_size)
    band_tiles = np.stack([view(radiance[b], tile_size) for b in range(bands)], axis=-1)
    tau_tiles = (
        view(optical_thickness.astype(np.float64), tile_size)
        if optical_thickness is not None
        else None
    )
    ctp_tiles = (
        view(cloud_top_pressure.astype(np.float64), tile_size)
        if cloud_top_pressure is not None
        else None
    )
    out = []
    for row, col in zip(*np.nonzero(selected)):
        cloudy = cloud_tiles[row, col] > 0.5
        mean_tau = (
            float(tau_tiles[row, col][cloudy].mean())
            if tau_tiles is not None and cloudy.any()
            else float("nan")
        )
        mean_ctp = (
            float(ctp_tiles[row, col][cloudy].mean())
            if ctp_tiles is not None and cloudy.any()
            else float("nan")
        )
        out.append(
            Tile(
                data=np.ascontiguousarray(band_tiles[row, col]).astype(np.float32),
                row=int(row),
                col=int(col),
                latitude=float(lat_tiles[row, col].mean()),
                longitude=float(lon_tiles[row, col].mean()),
                cloud_fraction=float(cloud_frac[row, col]),
                mean_optical_thickness=mean_tau,
                mean_cloud_top_pressure=mean_ctp,
                source=source,
            )
        )
    return out


def random_swath(rng, lines, pixels, bands, cloud_p, land_p):
    radiance = rng.normal(size=(bands, lines, pixels)).astype(np.float32)
    cloud = rng.uniform(size=(lines, pixels)) < cloud_p
    land = rng.uniform(size=(lines, pixels)) < land_p
    lat = rng.uniform(-90, 90, size=(lines, pixels))
    lon = rng.uniform(-180, 180, size=(lines, pixels))
    tau = rng.uniform(0, 40, size=(lines, pixels))
    ctp = rng.uniform(150, 1050, size=(lines, pixels))
    return radiance, cloud, land, lat, lon, tau, ctp


def assert_tiles_equivalent(optimized, reference):
    assert len(optimized) == len(reference)
    for new, old in zip(optimized, reference):
        # Selection, ordering and unmasked reductions: exact.
        assert (new.row, new.col) == (old.row, old.col)
        assert new.data.dtype == old.data.dtype == np.float32
        np.testing.assert_array_equal(new.data, old.data)
        assert new.latitude == old.latitude
        assert new.longitude == old.longitude
        assert new.cloud_fraction == old.cloud_fraction
        assert new.source == old.source
        # Masked means: same value, summation order may differ by an ulp.
        np.testing.assert_allclose(
            new.mean_optical_thickness, old.mean_optical_thickness,
            rtol=1e-12, equal_nan=True,
        )
        np.testing.assert_allclose(
            new.mean_cloud_top_pressure, old.mean_cloud_top_pressure,
            rtol=1e-12, equal_nan=True,
        )


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    lines=st.integers(16, 70),
    pixels=st.integers(16, 70),
    bands=st.integers(1, 4),
    tile_size=st.integers(2, 16),
    cloud_p=st.floats(0.0, 1.0),
    land_p=st.floats(0.0, 0.4),
    threshold=st.floats(0.0, 0.9),
    max_land=st.floats(0.0, 0.5),
)
def test_extract_tiles_matches_naive_reference(
    seed, lines, pixels, bands, tile_size, cloud_p, land_p, threshold, max_land
):
    rng = np.random.default_rng(seed)
    radiance, cloud, land, lat, lon, tau, ctp = random_swath(
        rng, lines, pixels, bands, cloud_p, land_p
    )
    kwargs = dict(
        optical_thickness=tau,
        cloud_top_pressure=ctp,
        cloud_threshold=threshold,
        max_land_fraction=max_land,
        source="hypothesis",
    )
    optimized = extract_tiles(radiance, cloud, land, lat, lon, tile_size, **kwargs)
    reference = naive_extract_tiles(radiance, cloud, land, lat, lon, tile_size, **kwargs)
    assert_tiles_equivalent(optimized, reference)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**32 - 1), tile_size=st.integers(2, 12))
def test_extract_tiles_without_mod06_fields(seed, tile_size):
    rng = np.random.default_rng(seed)
    radiance, cloud, land, lat, lon, _, _ = random_swath(rng, 40, 40, 2, 0.7, 0.1)
    optimized = extract_tiles(radiance, cloud, land, lat, lon, tile_size)
    reference = naive_extract_tiles(radiance, cloud, land, lat, lon, tile_size)
    assert_tiles_equivalent(optimized, reference)
    for tile in optimized:
        assert np.isnan(tile.mean_optical_thickness)
        assert np.isnan(tile.mean_cloud_top_pressure)


def test_extract_tiles_empty_selection():
    rng = np.random.default_rng(3)
    radiance, cloud, land, lat, lon, tau, ctp = random_swath(rng, 32, 32, 3, 0.0, 0.0)
    assert extract_tiles(radiance, cloud, land, lat, lon, 8,
                         optical_thickness=tau, cloud_top_pressure=ctp) == []


def test_golden_tile_file_bytes_identical():
    """End-to-end golden check: the serialized tile *file* produced from
    the optimized extraction is byte-for-byte what the naive pipeline
    wrote — last-ulp drift in the means, if any, does not reach disk."""
    rng = np.random.default_rng(20260805)
    radiance, cloud, land, lat, lon, tau, ctp = random_swath(rng, 96, 96, 6, 0.65, 0.05)
    kwargs = dict(
        optical_thickness=tau,
        cloud_top_pressure=ctp,
        max_land_fraction=0.2,  # per-pixel land noise: pure-ocean tiles are rare
        source="golden",
    )
    optimized = extract_tiles(radiance, cloud, land, lat, lon, 16, **kwargs)
    reference = naive_extract_tiles(radiance, cloud, land, lat, lon, 16, **kwargs)
    assert optimized, "golden swath must select at least one tile"
    raw_new = to_bytes(tiles_to_dataset(optimized, source="golden"))
    raw_old = to_bytes(tiles_to_dataset(reference, source="golden"))
    assert raw_new == raw_old
