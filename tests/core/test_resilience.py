"""The resilience matrix: stage x fault kind x recovery outcome.

Faults are injected through the deterministic chaos engine
(:mod:`repro.chaos`) rather than ad-hoc test doubles, so every case
states its schedule declaratively and the same seed always reproduces
the same damage.  For each cell the matrix asserts the *hardening
contract*: transient faults are retried with real backoff (never
immediately), permanent faults quarantine the damaged work item while
the rest of the batch completes, the circuit breaker fails fast during
an outage, and the workflow reports errors instead of crashing.

Resume/idempotence and the simulated HTTP failure model keep their
original coverage at the bottom of the file.
"""

import os

import pytest

from repro.chaos import FaultInjector, FaultPlan, FaultSpec
from repro.core import (
    DownloadStage,
    EOMLWorkflow,
    InferenceWorker,
    PreprocessStage,
    ShipmentStage,
    load_config,
    preprocess_granule_set,
)
from repro.core.download import ARCHIVE_HOST
from repro.modis import MINI_SWATH, LaadsArchive
from repro.net import CircuitBreaker, HttpServer
from repro.net.http import HttpError
from repro.sim import Simulation


def make_config(tmp_path, retries=2, skip=True, granules=2, chaos=None, **download):
    mapping = {
        "archive": {"start_date": "2022-01-01", "max_granules_per_day": granules,
                    "seed": 3},
        "paths": {
            "staging": str(tmp_path / "raw"),
            "preprocessed": str(tmp_path / "tiles"),
            "transfer_out": str(tmp_path / "outbox"),
            "destination": str(tmp_path / "orion"),
            "quarantine": str(tmp_path / "quarantine"),
        },
        "download": {"workers": 2, "retries": retries, "skip_existing": skip,
                     "backoff_base": 0.001, "backoff_total": 0.05, **download},
        "preprocess": {"workers": 2, "tile_size": 16},
        "inference": {"poll_interval": 0.05},
    }
    if chaos is not None:
        mapping["chaos"] = chaos
    return load_config(mapping)


def injector(stage, kind, rate=1.0, times=1, latency=0.002, seed=0):
    return FaultInjector(FaultPlan(seed=seed, faults=(
        FaultSpec(stage, kind, rate=rate, times=times, latency=latency),
    )))


def fresh_archive():
    return LaadsArchive(seed=3, swath=MINI_SWATH)


class RecordingSleeper:
    """Stands in for time.sleep; keeps the delays a stage asked for."""

    def __init__(self):
        self.slept = []

    def __call__(self, seconds):
        self.slept.append(seconds)


# ---------------------------------------------------------------------------
# Download stage
# ---------------------------------------------------------------------------

class TestDownloadResilience:
    @pytest.mark.parametrize("kind", ["http_transient", "torn_write"])
    def test_transient_faults_recovered_by_retry(self, tmp_path, kind):
        """Matrix: download x {http_transient, torn_write} -> recovered."""
        config = make_config(tmp_path, retries=3)
        chaos = injector("download", kind, rate=1.0, times=1)
        sleeper = RecordingSleeper()
        stage = DownloadStage(config, archive=fresh_archive(), chaos=chaos,
                              sleeper=sleeper)
        report = stage.run()
        assert report.files == 6
        assert len(report.granule_sets) == 2
        assert report.retried == 6          # every file failed once, recovered
        assert report.retry_attempts == 6
        assert report.failed == [] and report.incomplete == []
        assert chaos.counts_by_kind() == {kind: 6}
        # Recovery slept a real backoff delay before every retry.
        assert len(sleeper.slept) == 6 and all(s > 0 for s in sleeper.slept)
        # No torn temp files survive recovery.
        assert [n for n in os.listdir(config.staging) if n.endswith(".part")] == []
        assert stage.breaker.state(ARCHIVE_HOST) == CircuitBreaker.CLOSED

    def test_slow_fetch_recovered_with_injected_latency(self, tmp_path):
        """Matrix: download x slow_fetch -> recovered (slower, not broken)."""
        config = make_config(tmp_path)
        chaos = injector("download", "slow_fetch", latency=0.001)
        sleeper = RecordingSleeper()
        report = DownloadStage(config, archive=fresh_archive(), chaos=chaos,
                               sleeper=sleeper).run()
        assert report.files == 6
        assert report.retried == 0          # latency is not failure
        assert chaos.counts_by_kind() == {"slow_fetch": 6}
        assert sleeper.slept == [0.001] * 6

    def test_permanent_fault_skip_quarantines_scene(self, tmp_path):
        """Matrix: download x http_permanent -> quarantined (skip mode)."""
        config = make_config(tmp_path, retries=1, on_exhausted="skip",
                             breaker_threshold=50)
        chaos = injector("download", "http_permanent")
        report = DownloadStage(config, archive=fresh_archive(), chaos=chaos).run()
        assert report.granule_sets == []    # every product of every scene failed
        assert len(report.failed) == 6
        assert all("failed after 2 attempts" in message for message in report.failed)
        assert report.files == 0

    def test_permanent_fault_raise_mode_aborts(self, tmp_path):
        """Matrix: download x http_permanent -> raise (default policy)."""
        config = make_config(tmp_path, retries=1)
        chaos = injector("download", "http_permanent")
        with pytest.raises(RuntimeError, match="failed after"):
            DownloadStage(config, archive=fresh_archive(), chaos=chaos).run()

    def test_partial_scene_dropped_not_returned(self, tmp_path):
        """A scene that lost one product never reaches the barrier."""
        config = make_config(tmp_path, retries=1, on_exhausted="skip",
                             breaker_threshold=50)
        # Seed 3 at rate 0.15 deterministically hits a strict subset of
        # the six filenames; the hit scenes are dropped, the rest survive.
        chaos = injector("download", "http_permanent", rate=0.15, seed=3)
        stage = DownloadStage(config, archive=fresh_archive(), chaos=chaos)
        hit = [ref for ref in stage.plan()
               if chaos.would_select("download", "http_permanent", ref.filename)]
        assert 0 < len(hit) < 6  # the probe confirms a genuine subset
        report = stage.run()
        dropped_scenes = {ref.gid.scene_key for ref in hit}
        assert set(report.incomplete) == dropped_scenes
        assert all(gs.key not in dropped_scenes for gs in report.granule_sets)
        for granule_set in report.granule_sets:
            assert len(granule_set.paths) == 3

    def test_backoff_consulted_never_immediate_retry(self, tmp_path):
        """Regression: retries must sleep the policy's delay, not spin.

        The delays handed to the sleeper must be exactly the
        BackoffPolicy schedule for each retried file — proof the stage
        consulted the policy instead of retrying immediately.
        """
        config = make_config(tmp_path, retries=3, workers=1)
        chaos = injector("download", "http_transient", rate=1.0, times=2)
        sleeper = RecordingSleeper()
        stage = DownloadStage(config, archive=fresh_archive(), chaos=chaos,
                              sleeper=sleeper)
        report = stage.run()
        assert report.files == 6 and report.retry_attempts == 12
        expected = sorted(
            config.download_backoff.delay(attempt, key=ref.filename)
            for ref in stage.plan()
            for attempt in range(2)
        )
        assert sorted(sleeper.slept) == expected
        assert all(delay > 0 for delay in sleeper.slept)

    def test_breaker_opens_and_fails_fast_during_outage(self, tmp_path):
        """Matrix: download x http_permanent -> breaker open (fail fast)."""
        config = make_config(tmp_path, retries=1, on_exhausted="skip",
                             workers=1, breaker_threshold=3)
        chaos = injector("download", "http_permanent")
        stage = DownloadStage(config, archive=fresh_archive(), chaos=chaos)
        report = stage.run()
        assert report.breaker_trips >= 1
        assert stage.breaker.state(ARCHIVE_HOST) != CircuitBreaker.CLOSED
        # Once open, later granules were refused without touching the
        # archive at all.
        assert any("circuit open" in message for message in report.failed)
        assert chaos.counts_by_kind()["http_permanent"] < 12  # fewer fetches


# ---------------------------------------------------------------------------
# Preprocess stage
# ---------------------------------------------------------------------------

@pytest.fixture()
def downloaded(tmp_path):
    config = make_config(tmp_path)
    report = DownloadStage(config, archive=fresh_archive()).run()
    return config, report.granule_sets


class TestPreprocessResilience:
    def test_worker_stall_recovered(self, downloaded):
        """Matrix: preprocess x worker_stall -> recovered (slower only)."""
        config, granule_sets = downloaded
        chaos = injector("preprocess", "worker_stall", latency=0.001)
        report = PreprocessStage(config, chaos=chaos).run(granule_sets)
        assert report.quarantined == []
        assert len(report.results) == 2 and report.total_tiles > 0
        assert chaos.counts_by_kind() == {"worker_stall": 2}

    def test_torn_write_quarantines_task_and_continues(self, downloaded):
        """Matrix: preprocess x torn_write -> quarantined, siblings fine."""
        config, granule_sets = downloaded
        # Seed 0 at rate 0.5 deterministically tears exactly scene .000.
        chaos = injector("preprocess", "torn_write", rate=0.5, seed=0)
        report = PreprocessStage(config, chaos=chaos).run(granule_sets)
        assert [q.key for q in report.quarantined] == ["scene.terra.2022-01-01.000"]
        assert "torn write" in report.quarantined[0].error
        assert "scene.terra.2022-01-01.000" in report.quarantined[0].describe()
        # The sibling granule still preprocessed.
        assert [r.key for r in report.results] == ["scene.terra.2022-01-01.001"]
        assert report.total_tiles > 0

    def test_corrupt_tile_quarantined_downstream_at_inference(self, downloaded):
        """Matrix: preprocess x corrupt_tile -> inference quarantines it."""
        config, granule_sets = downloaded
        chaos = injector("preprocess", "corrupt_tile")
        report = PreprocessStage(config, chaos=chaos).run(granule_sets)
        # The write "succeeded": well-named files a crawler will trigger on.
        tile_paths = [r.tile_path for r in report.results if r.tile_path]
        assert len(tile_paths) == 2
        # The model is never reached — parsing fails first — so a stub
        # suffices; the worker must quarantine and keep consuming.
        worker = InferenceWorker(object(), config, workers=1)
        with worker:
            for path in tile_paths:
                worker.submit(path)
            worker.drain(timeout=30.0)
        assert worker.results == []
        assert len(worker.quarantined) == 2
        assert sorted(q.key for q in worker.quarantined) == sorted(tile_paths)
        for path in tile_paths:
            assert not os.path.exists(path)  # moved out of the crawl dir
            assert os.path.exists(
                os.path.join(config.quarantine, os.path.basename(path))
            )

    def test_workflow_reports_errors_instead_of_crashing(self, tmp_path):
        """Matrix (workflow level): quarantines land in report.errors."""
        chaos_section = {
            "seed": 0,
            "faults": [{"stage": "preprocess", "kind": "torn_write",
                        "rate": 0.5, "times": 1}],
        }
        config = make_config(tmp_path, chaos=chaos_section)
        report = EOMLWorkflow(config, archive=fresh_archive()).run(provenance=False)
        assert len(report.preprocess.quarantined) == 1
        assert any("preprocess quarantined" in e for e in report.errors)
        assert report.labelled_tiles == report.total_tiles > 0  # the survivor
        assert report.quarantined == 1
        snap = report.metrics.snapshot()
        assert snap["eo_ml.quarantined{stage=preprocess}"] == 1
        assert snap["eo_ml.faults_injected{kind=torn_write}"] == 1


# ---------------------------------------------------------------------------
# Shipment stage
# ---------------------------------------------------------------------------

def stage_outbox(config, names=("tiles_a.nc", "tiles_b.nc")):
    os.makedirs(config.transfer_out, exist_ok=True)
    for name in names:
        with open(os.path.join(config.transfer_out, name), "wb") as handle:
            handle.write(b"CDF" + name.encode())
    return list(names)


class TestShipmentResilience:
    def test_wan_degrade_recovered_by_retry(self, tmp_path):
        """Matrix: shipment x wan_degrade (transient) -> recovered."""
        config = make_config(tmp_path)
        names = stage_outbox(config)
        chaos = injector("shipment", "wan_degrade", times=1, latency=0.0)
        report = ShipmentStage(config, chaos=chaos).run()
        assert report.error is None
        assert sorted(os.path.basename(p) for p in report.moved) == sorted(names)
        assert report.retries >= len(names)  # each file's first move failed
        assert chaos.counts_by_kind() == {"wan_degrade": len(names)}

    def test_wan_degrade_exhaustion_reported_not_raised(self, tmp_path):
        """Matrix: shipment x wan_degrade (persistent) -> reported error."""
        config = make_config(tmp_path)
        stage_outbox(config)
        chaos = injector("shipment", "wan_degrade", times=None, latency=0.0)
        report = ShipmentStage(config, chaos=chaos).run()   # must not raise
        assert report.moved == []
        assert report.error is not None and "WAN degraded" in report.error
        assert report.retries == config.shipment_retries

    def test_empty_outbox_is_a_clean_no_op(self, tmp_path):
        config = make_config(tmp_path)
        report = ShipmentStage(config, chaos=injector("shipment", "wan_degrade")).run()
        assert report.moved == [] and report.error is None


# ---------------------------------------------------------------------------
# Resume / idempotence (original coverage, chaos-free paths)
# ---------------------------------------------------------------------------

class TestResume:
    def test_second_download_run_skips_everything(self, tmp_path):
        config = make_config(tmp_path)
        archive = fresh_archive()
        first = DownloadStage(config, archive=archive).run()
        assert first.skipped == 0
        second = DownloadStage(config, archive=archive).run()
        assert second.skipped == second.files == first.files
        # Same manifests either way.
        assert [g.key for g in second.granule_sets] == [g.key for g in first.granule_sets]

    def test_skip_existing_disabled_refetches(self, tmp_path):
        config = make_config(tmp_path, skip=False)
        archive = fresh_archive()
        DownloadStage(config, archive=archive).run()
        second = DownloadStage(config, archive=archive).run()
        assert second.skipped == 0

    def test_preprocess_resume_is_idempotent(self, tmp_path):
        config = make_config(tmp_path)
        archive = fresh_archive()
        download = DownloadStage(config, archive=archive).run()
        first = PreprocessStage(config).run(download.granule_sets)
        mtimes = {
            r.tile_path: os.path.getmtime(r.tile_path)
            for r in first.results if r.tile_path
        }
        second = PreprocessStage(config).run(download.granule_sets)
        assert second.total_tiles == first.total_tiles
        for result in second.results:
            if result.tile_path:
                # The file was not rewritten.
                assert os.path.getmtime(result.tile_path) == mtimes[result.tile_path]

    def test_preprocess_skip_reports_tile_count_from_file(self, tmp_path):
        config = make_config(tmp_path)
        archive = fresh_archive()
        download = DownloadStage(config, archive=archive).run()
        gs = download.granule_sets[0]
        first = preprocess_granule_set(gs, config.preprocessed, 16, 0.3, 0.0)
        again = preprocess_granule_set(gs, config.preprocessed, 16, 0.3, 0.0)
        assert again.tiles == first.tiles
        assert again.tile_path == first.tile_path

    def test_rerun_after_chaos_run_heals_the_damage(self, tmp_path):
        """A chaos-free re-run on the same directories completes the work
        a faulted run left behind (the operational recovery story)."""
        config = make_config(tmp_path, retries=1, on_exhausted="skip",
                             breaker_threshold=50)
        chaos = injector("download", "http_permanent", rate=0.15, seed=3)
        faulted = DownloadStage(config, archive=fresh_archive(), chaos=chaos).run()
        assert faulted.incomplete  # the fault cost at least one scene
        healed = DownloadStage(config, archive=fresh_archive()).run()
        assert healed.incomplete == [] and healed.failed == []
        assert len(healed.granule_sets) == 2
        assert healed.skipped == faulted.files  # prior successes reused


# ---------------------------------------------------------------------------
# Simulated HTTP failure model (the sim twin of the same failure surface)
# ---------------------------------------------------------------------------

class TestHttpFailureInjection:
    def test_failure_rate_fails_some_requests(self):
        sim = Simulation()
        server = HttpServer(sim, request_overhead=0.0, failure_rate=0.5, seed=1)
        outcomes = {"ok": 0, "failed": 0}

        def client(i):
            try:
                yield server.request(100, label=f"f{i}")
                outcomes["ok"] += 1
            except HttpError:
                outcomes["failed"] += 1

        for i in range(40):
            sim.process(client(i))
        sim.run()
        assert outcomes["ok"] + outcomes["failed"] == 40
        assert 5 < outcomes["failed"] < 35
        assert server.requests_failed == outcomes["failed"]

    def test_retry_loop_eventually_succeeds(self):
        sim = Simulation()
        server = HttpServer(sim, request_overhead=0.1, failure_rate=0.3, seed=2)
        done = {}

        def client():
            attempts = 0
            while True:
                attempts += 1
                try:
                    result = yield server.request(1000, label="retry-me")
                    done["attempts"] = attempts
                    done["finished"] = result.finished_at
                    return
                except HttpError:
                    continue

        sim.process(client())
        sim.run()
        assert done["attempts"] >= 1
        assert done["finished"] > 0

    def test_invalid_failure_rate(self):
        sim = Simulation()
        with pytest.raises(ValueError):
            HttpServer(sim, failure_rate=1.5)
