"""Failure injection and resume/idempotence tests."""

import os

import pytest

from repro.core import DownloadStage, PreprocessStage, load_config, preprocess_granule_set
from repro.modis import MINI_SWATH, LaadsArchive
from repro.net import HttpServer
from repro.net.http import HttpError
from repro.netcdf import read as nc_read
from repro.sim import Simulation


def make_config(tmp_path, retries=2, skip=True, granules=2):
    return load_config(
        {
            "archive": {"start_date": "2022-01-01", "max_granules_per_day": granules,
                        "seed": 3},
            "paths": {
                "staging": str(tmp_path / "raw"),
                "preprocessed": str(tmp_path / "tiles"),
                "transfer_out": str(tmp_path / "outbox"),
                "destination": str(tmp_path / "orion"),
            },
            "download": {"workers": 2, "retries": retries, "skip_existing": skip},
            "preprocess": {"workers": 2, "tile_size": 16},
        }
    )


class FlakyArchive(LaadsArchive):
    """Fails the first ``failures`` fetch calls, then recovers."""

    def __init__(self, failures, **kwargs):
        super().__init__(**kwargs)
        self.failures_left = failures
        self.fetch_calls = 0

    def fetch(self, ref, bands=None):
        self.fetch_calls += 1
        if self.failures_left > 0:
            self.failures_left -= 1
            raise OSError("503 Service Unavailable")
        return super().fetch(ref, bands)


class TestDownloadRetries:
    def test_transient_failures_recovered(self, tmp_path):
        config = make_config(tmp_path, retries=3)
        archive = FlakyArchive(2, seed=3, swath=MINI_SWATH)
        report = DownloadStage(config, archive=archive).run()
        assert report.files == 6
        assert report.retried >= 1
        assert archive.fetch_calls == 6 + 2  # every failure retried

    def test_exhausted_retries_raise(self, tmp_path):
        config = make_config(tmp_path, retries=1)
        archive = FlakyArchive(100, seed=3, swath=MINI_SWATH)
        with pytest.raises(RuntimeError, match="failed after"):
            DownloadStage(config, archive=archive).run()

    def test_no_partial_files_after_failure(self, tmp_path):
        config = make_config(tmp_path, retries=0)
        archive = FlakyArchive(1, seed=3, swath=MINI_SWATH)
        try:
            DownloadStage(config, archive=archive).run()
        except RuntimeError:
            pass
        leftovers = [n for n in os.listdir(config.staging) if n.endswith(".part")]
        assert leftovers == []


class TestResume:
    def test_second_download_run_skips_everything(self, tmp_path):
        config = make_config(tmp_path)
        archive = LaadsArchive(seed=3, swath=MINI_SWATH)
        first = DownloadStage(config, archive=archive).run()
        assert first.skipped == 0
        second = DownloadStage(config, archive=archive).run()
        assert second.skipped == second.files == first.files
        # Same manifests either way.
        assert [g.key for g in second.granule_sets] == [g.key for g in first.granule_sets]

    def test_skip_existing_disabled_refetches(self, tmp_path):
        config = make_config(tmp_path, skip=False)
        archive = LaadsArchive(seed=3, swath=MINI_SWATH)
        DownloadStage(config, archive=archive).run()
        second = DownloadStage(config, archive=archive).run()
        assert second.skipped == 0

    def test_preprocess_resume_is_idempotent(self, tmp_path):
        config = make_config(tmp_path)
        archive = LaadsArchive(seed=3, swath=MINI_SWATH)
        download = DownloadStage(config, archive=archive).run()
        first = PreprocessStage(config).run(download.granule_sets)
        mtimes = {
            r.tile_path: os.path.getmtime(r.tile_path)
            for r in first.results if r.tile_path
        }
        second = PreprocessStage(config).run(download.granule_sets)
        assert second.total_tiles == first.total_tiles
        for result in second.results:
            if result.tile_path:
                # The file was not rewritten.
                assert os.path.getmtime(result.tile_path) == mtimes[result.tile_path]

    def test_preprocess_skip_reports_tile_count_from_file(self, tmp_path):
        config = make_config(tmp_path)
        archive = LaadsArchive(seed=3, swath=MINI_SWATH)
        download = DownloadStage(config, archive=archive).run()
        gs = download.granule_sets[0]
        first = preprocess_granule_set(gs, config.preprocessed, 16, 0.3, 0.0)
        again = preprocess_granule_set(gs, config.preprocessed, 16, 0.3, 0.0)
        assert again.tiles == first.tiles
        assert again.tile_path == first.tile_path


class TestHttpFailureInjection:
    def test_failure_rate_fails_some_requests(self):
        sim = Simulation()
        server = HttpServer(sim, request_overhead=0.0, failure_rate=0.5, seed=1)
        outcomes = {"ok": 0, "failed": 0}

        def client(i):
            try:
                yield server.request(100, label=f"f{i}")
                outcomes["ok"] += 1
            except HttpError:
                outcomes["failed"] += 1

        for i in range(40):
            sim.process(client(i))
        sim.run()
        assert outcomes["ok"] + outcomes["failed"] == 40
        assert 5 < outcomes["failed"] < 35
        assert server.requests_failed == outcomes["failed"]

    def test_retry_loop_eventually_succeeds(self):
        sim = Simulation()
        server = HttpServer(sim, request_overhead=0.1, failure_rate=0.3, seed=2)
        done = {}

        def client():
            attempts = 0
            while True:
                attempts += 1
                try:
                    result = yield server.request(1000, label="retry-me")
                    done["attempts"] = attempts
                    done["finished"] = result.finished_at
                    return
                except HttpError:
                    continue

        sim.process(client())
        sim.run()
        assert done["attempts"] >= 1
        assert done["finished"] > 0

    def test_invalid_failure_rate(self):
        sim = Simulation()
        with pytest.raises(ValueError):
            HttpServer(sim, failure_rate=1.5)
