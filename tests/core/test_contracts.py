"""Published file-contract tests."""

import datetime as dt

import numpy as np
import pytest

from repro.core.contracts import (
    ContractViolation,
    GRANULE_MOD02,
    GRANULE_MOD03,
    GRANULE_MOD06,
    LABELLED_TILE_FILE,
    TILE_FILE,
    contract_for_product,
)
from repro.core.tiles import extract_tiles, tiles_to_dataset
from repro.modis import MINI_SWATH, GranuleId, generate_granule
from repro.netcdf import Dataset

DATE = dt.date(2022, 1, 1)


def tile_dataset(labelled=False):
    rng = np.random.default_rng(0)
    radiance = rng.normal(size=(1, 48, 48)).astype(np.float32)
    cloud = np.ones((48, 48), dtype=bool)
    land = np.zeros((48, 48), dtype=bool)
    lat = np.zeros((48, 48))
    lon = np.zeros((48, 48))
    tiles = extract_tiles(radiance, cloud, land, lat, lon, tile_size=16)
    if labelled:
        for tile in tiles:
            tile.label = 7
    ds = tiles_to_dataset(tiles, source="g0")
    if labelled:
        ds.set_attr("aicca_classes", 42)
    return ds


class TestGranuleContracts:
    @pytest.mark.parametrize(
        "product,contract",
        [("MOD021KM", GRANULE_MOD02), ("MOD03", GRANULE_MOD03), ("MOD06_L2", GRANULE_MOD06)],
    )
    def test_generated_granules_conform(self, product, contract):
        ds = generate_granule(GranuleId(product, DATE, 5), MINI_SWATH, seed=1)
        contract.validate(ds)  # must not raise

    def test_contract_for_product_lookup(self):
        assert contract_for_product("MYD021KM") is GRANULE_MOD02
        assert contract_for_product("MOD06_L2") is GRANULE_MOD06
        with pytest.raises(KeyError):
            contract_for_product("MOD99X")

    def test_missing_variable_detected(self):
        ds = generate_granule(GranuleId("MOD03", DATE, 5), MINI_SWATH, seed=1)
        del ds.variables["latitude"]
        with pytest.raises(ContractViolation, match="missing variable 'latitude'"):
            GRANULE_MOD03.validate(ds)

    def test_out_of_range_detected(self):
        ds = generate_granule(GranuleId("MOD03", DATE, 5), MINI_SWATH, seed=1)
        ds["latitude"].data[0, 0] = 444.0
        with pytest.raises(ContractViolation, match="values above"):
            GRANULE_MOD03.validate(ds)

    def test_wrong_dimensions_detected(self):
        ds = Dataset()
        ds.create_dimension("line", 4)
        ds.create_dimension("pixel", 4)
        ds.create_dimension("band", 2)
        ds.create_variable(
            "radiance", "f4", ("line", "pixel", "band"),  # wrong order
            np.zeros((4, 4, 2), dtype=np.float32),
        )
        ds.set_attr("granule", "x")
        ds.set_attr("product", "MOD021KM")
        ds.set_attr("acquisition_date", "2022-01-01")
        ds.set_attr("band_list", np.array([6, 7], dtype=np.int32))
        with pytest.raises(ContractViolation, match="dimensions"):
            GRANULE_MOD02.validate(ds)

    def test_missing_attribute_detected(self):
        ds = generate_granule(GranuleId("MOD021KM", DATE, 5), MINI_SWATH, seed=1)
        del ds.attributes["band_list"]
        with pytest.raises(ContractViolation, match="band_list"):
            GRANULE_MOD02.validate(ds)


class TestTileContracts:
    def test_tile_file_conforms(self):
        TILE_FILE.validate(tile_dataset())

    def test_labelled_contract_rejects_unlabelled(self):
        ds = tile_dataset(labelled=False)
        ds.set_attr("aicca_classes", 42)
        with pytest.raises(ContractViolation, match="below"):
            LABELLED_TILE_FILE.validate(ds)

    def test_labelled_file_conforms(self):
        LABELLED_TILE_FILE.validate(tile_dataset(labelled=True))

    def test_record_dimension_required(self):
        ds = tile_dataset()
        # Rebuild with a fixed 'tile' dimension instead of the record dim.
        fixed = Dataset()
        fixed.create_dimension("tile", ds["radiance"].shape[0])
        for name in ("y", "x", "band"):
            fixed.create_dimension(name, ds.dimensions[name].size)
        for name, var in ds.variables.items():
            fixed.create_variable(name, var.nc_type, var.dim_names, var.data)
        for key, value in ds.attributes.items():
            fixed.attributes[key] = value
        with pytest.raises(ContractViolation, match="record dimension"):
            TILE_FILE.validate(fixed)

    def test_describe_is_readable(self):
        text = TILE_FILE.describe()
        assert "contract tile file:" in text
        assert "variable radiance(tile, y, x, band)" in text
        assert "attribute :source_granule" in text


class TestPipelineIntegration:
    def test_inference_rejects_malformed_tile_file(self, tmp_path):
        """A corrupt tile file is rejected at the stage boundary with a
        contract message, not a numpy stack trace."""
        from repro.core.inference import infer_tile_file
        from repro.netcdf import write as nc_write

        bad = Dataset()
        bad.create_dimension("tile", None)
        bad.create_dimension("y", 4)
        bad.create_variable("radiance", "f4", ("tile", "y"),
                            np.zeros((2, 4), dtype=np.float32))
        path = str(tmp_path / "tiles_bad.nc")
        nc_write(bad, path)
        with pytest.raises(ContractViolation):
            infer_tile_file(None, path, str(tmp_path / "out"))
