"""Tile extraction and selection tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.tiles import dataset_to_tiles, extract_tiles, tiles_to_dataset
from repro.netcdf import from_bytes, to_bytes


def make_swath(lines=64, pixels=48, bands=2):
    """A controlled swath: left half ocean, right half land; top half cloudy."""
    radiance = np.ones((bands, lines, pixels), dtype=np.float32)
    cloud = np.zeros((lines, pixels), dtype=bool)
    cloud[: lines // 2, :] = True
    land = np.zeros((lines, pixels), dtype=bool)
    land[:, pixels // 2 :] = True
    lat = np.linspace(10, 20, lines)[:, None] * np.ones((1, pixels))
    lon = np.linspace(-60, -50, pixels)[None, :] * np.ones((lines, 1))
    return radiance, cloud, land, lat, lon


class TestExtraction:
    def test_selects_only_cloudy_ocean(self):
        radiance, cloud, land, lat, lon = make_swath()
        tiles = extract_tiles(radiance, cloud, land, lat, lon, tile_size=16)
        # Grid: 4 rows x 3 cols; land occupies cols >= 24 (cols 1.5-2.9) ->
        # only col 0 is land-free; cloud covers rows 0-31 -> rows 0, 1.
        assert len(tiles) == 2
        for tile in tiles:
            assert tile.col == 0
            assert tile.row in (0, 1)
            assert tile.cloud_fraction == pytest.approx(1.0)
            assert tile.data.shape == (16, 16, 2)

    def test_threshold_boundary_is_strict(self):
        """Selection needs cloud fraction strictly above the threshold."""
        radiance, cloud, land, lat, lon = make_swath()
        land[:] = False
        cloud[:] = False
        cloud[:, :] = False
        # Tile (0,0): exactly 30% cloud pixels.
        cloud[:16, :16] = False
        n_cloudy = int(0.3 * 256)
        flat = np.zeros(256, dtype=bool)
        flat[:n_cloudy] = True
        cloud[:16, :16] = flat.reshape(16, 16)
        tiles = extract_tiles(radiance, cloud, land, lat, lon, tile_size=16,
                              cloud_threshold=0.3)
        assert all(not (t.row == 0 and t.col == 0) for t in tiles)

    def test_partial_edge_tiles_discarded(self):
        radiance, cloud, land, lat, lon = make_swath(lines=70, pixels=50)
        land[:] = False
        cloud[:] = True
        tiles = extract_tiles(radiance, cloud, land, lat, lon, tile_size=16)
        # 70//16=4 rows, 50//16=3 cols.
        assert len(tiles) == 12

    def test_land_tolerance(self):
        radiance, cloud, land, lat, lon = make_swath()
        cloud[:] = True
        # A sliver of land in an otherwise ocean tile.
        land[:] = False
        land[0, 0] = True
        strict = extract_tiles(radiance, cloud, land, lat, lon, tile_size=16)
        loose = extract_tiles(
            radiance, cloud, land, lat, lon, tile_size=16, max_land_fraction=0.05
        )
        assert len(loose) == len(strict) + 1

    def test_metadata_from_mod06(self):
        radiance, cloud, land, lat, lon = make_swath()
        land[:] = False
        tau = np.where(cloud, 12.0, 0.0)
        ctp = np.where(cloud, 700.0, 1013.25)
        tiles = extract_tiles(
            radiance, cloud, land, lat, lon, tile_size=16,
            optical_thickness=tau, cloud_top_pressure=ctp,
        )
        assert tiles
        for tile in tiles:
            assert tile.mean_optical_thickness == pytest.approx(12.0)
            assert tile.mean_cloud_top_pressure == pytest.approx(700.0)

    def test_tile_geolocation_is_center_mean(self):
        radiance, cloud, land, lat, lon = make_swath()
        land[:] = False
        cloud[:] = True
        tiles = extract_tiles(radiance, cloud, land, lat, lon, tile_size=16)
        first = next(t for t in tiles if t.row == 0 and t.col == 0)
        assert first.latitude == pytest.approx(lat[:16, :16].mean())
        assert first.longitude == pytest.approx(lon[:16, :16].mean())

    def test_validation(self):
        radiance, cloud, land, lat, lon = make_swath()
        with pytest.raises(ValueError):
            extract_tiles(radiance[0], cloud, land, lat, lon, tile_size=16)
        with pytest.raises(ValueError):
            extract_tiles(radiance, cloud[:10], land, lat, lon, tile_size=16)
        with pytest.raises(ValueError):
            extract_tiles(radiance, cloud, land, lat, lon, tile_size=1)
        with pytest.raises(ValueError):
            extract_tiles(radiance, cloud, land, lat, lon, tile_size=16, cloud_threshold=2.0)

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        threshold=st.floats(min_value=0.0, max_value=0.9),
    )
    def test_selection_invariants_property(self, seed, threshold):
        """Every selected tile satisfies the selection predicate exactly."""
        rng = np.random.default_rng(seed)
        lines = pixels = 48
        radiance = rng.normal(size=(1, lines, pixels)).astype(np.float32)
        cloud = rng.uniform(size=(lines, pixels)) < 0.5
        land = rng.uniform(size=(lines, pixels)) < 0.2
        lat = np.zeros((lines, pixels))
        lon = np.zeros((lines, pixels))
        tiles = extract_tiles(
            radiance, cloud, land, lat, lon, tile_size=16, cloud_threshold=threshold
        )
        land_view = land.reshape(3, 16, 3, 16).swapaxes(1, 2)
        cloud_view = cloud.reshape(3, 16, 3, 16).swapaxes(1, 2)
        selected = {(t.row, t.col) for t in tiles}
        for row in range(3):
            for col in range(3):
                lf = land_view[row, col].mean()
                cf = cloud_view[row, col].mean()
                expected = lf == 0.0 and cf > threshold
                assert ((row, col) in selected) == expected


class TestTileDataset:
    def test_roundtrip_through_netcdf(self):
        radiance, cloud, land, lat, lon = make_swath()
        land[:] = False
        tiles = extract_tiles(radiance, cloud, land, lat, lon, tile_size=16, source="g0")
        ds = tiles_to_dataset(tiles, source="g0")
        clone = from_bytes(to_bytes(ds))
        rebuilt = dataset_to_tiles(clone)
        assert len(rebuilt) == len(tiles)
        for original, copy in zip(tiles, rebuilt):
            np.testing.assert_allclose(copy.data, original.data, rtol=1e-6)
            assert copy.row == original.row
            assert copy.label is None  # unclassified placeholder -1 -> None

    def test_labels_roundtrip(self):
        radiance, cloud, land, lat, lon = make_swath()
        land[:] = False
        tiles = extract_tiles(radiance, cloud, land, lat, lon, tile_size=16)
        for index, tile in enumerate(tiles):
            tile.label = index % 42
        ds = tiles_to_dataset(tiles)
        rebuilt = dataset_to_tiles(from_bytes(to_bytes(ds)))
        assert [t.label for t in rebuilt] == [t.label for t in tiles]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            tiles_to_dataset([])
