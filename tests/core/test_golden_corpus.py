"""Golden-corpus equivalence: the refactor must not move a byte.

``golden_corpus.json`` pins the SHA-256 of every file a fixed-seed
end-to-end run ships to the destination.  Any change to the stage
internals — including re-expressing them over the unified runtime — must
leave this corpus byte-identical; a legitimate numerical change must
regenerate the fixture *deliberately* (see the header it carries).
"""

import hashlib
import json
import os

from tests.core.crash_driver import build_raw_config

from repro.core import EOMLWorkflow, load_config
from repro.modis import MINI_SWATH, LaadsArchive

GOLDEN = os.path.join(os.path.dirname(__file__), "golden_corpus.json")


def sha256_file(path):
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 16), b""):
            digest.update(chunk)
    return digest.hexdigest()


def test_fixed_seed_run_ships_the_golden_corpus(tmp_path):
    with open(GOLDEN) as handle:
        golden = json.load(handle)

    config = load_config(build_raw_config(str(tmp_path), golden["granules"]))
    workflow = EOMLWorkflow(
        config, archive=LaadsArchive(seed=golden["seed"], swath=MINI_SWATH)
    )
    report = workflow.run(provenance=False)
    assert report.errors == []

    delivered = {
        name: sha256_file(os.path.join(config.destination, name))
        for name in sorted(os.listdir(config.destination))
    }
    assert delivered == golden["files"]
