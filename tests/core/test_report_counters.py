"""WorkflowReport resilience accounting: quarantined rollup and journal counters."""

import pytest

from repro.core import EOMLWorkflow
from repro.core.download import DownloadReport
from repro.core.preprocess import PreprocessReport
from repro.core.workflow import WorkflowReport
from repro.modis import MINI_SWATH, LaadsArchive

from .test_pipeline import make_config


def synthetic_report(**overrides):
    download = overrides.pop("download", DownloadReport(
        granule_sets=[], files=0, nbytes=0, seconds=0.1))
    preprocess = overrides.pop("preprocess", PreprocessReport(results=[], seconds=0.1))
    return WorkflowReport(
        download=download,
        preprocess=preprocess,
        inference=[],
        shipment=None,
        **overrides,
    )


class TestQuarantinedRollup:
    def test_empty_report_counts_zero(self):
        assert synthetic_report().quarantined == 0

    def test_sums_across_all_stages(self):
        report = synthetic_report(
            download=DownloadReport(
                granule_sets=[], files=0, nbytes=0, seconds=0.1,
                failed=["MOD02.a", "MOD02.b"],
                incomplete=["scene-1"],
            ),
            preprocess=PreprocessReport(
                results=[], seconds=0.1, quarantined=[object(), object()]),
            inference_quarantined=[object()],
        )
        assert report.quarantined == 2 + 1 + 2 + 1

    def test_journal_counters_default_to_zero(self):
        report = synthetic_report()
        assert report.resumed_items == 0
        assert report.replayed_items == 0
        assert report.manifest_mismatches == 0
        assert report.journal is None


@pytest.fixture(scope="module")
def mini_archive():
    return LaadsArchive(seed=3, swath=MINI_SWATH)


class TestJournalCounterRollup:
    def test_clean_run_reports_zero_counters(self, tmp_path, mini_archive):
        config = make_config(tmp_path)
        report = EOMLWorkflow(config, archive=mini_archive).run(provenance=False)
        assert report.errors == []
        assert report.resumed_items == 0
        assert report.replayed_items == 0
        assert report.manifest_mismatches == 0
        # Counters exist (at zero) in the metrics snapshot even on clean
        # runs, so dashboard key sets stay stable.
        snapshot = report.metrics.snapshot()
        assert snapshot["eo_ml.resumed_items"] == 0
        assert snapshot["eo_ml.replayed_items"] == 0
        assert snapshot["eo_ml.manifest_mismatches"] == 0
        assert report.journal is not None
        assert report.journal["manifest_entries"] > 0

    def test_resumed_run_rolls_counters_into_report_and_metrics(
            self, tmp_path, mini_archive):
        config = make_config(tmp_path)
        first = EOMLWorkflow(config, archive=mini_archive).run(provenance=False)
        assert first.errors == []

        second = EOMLWorkflow(config, archive=mini_archive).run(
            provenance=False, resume=True)
        assert second.errors == []
        assert second.resumed_items > 0
        assert second.replayed_items == 0
        assert second.manifest_mismatches == 0
        assert second.download.resumed == first.download.files
        snapshot = second.metrics.snapshot()
        assert snapshot["eo_ml.resumed_items"] == second.resumed_items
        assert snapshot["eo_ml.replayed_items"] == 0
        # The delivered corpus is unchanged: shipment skipped everything
        # that already verified at the destination.
        assert len(second.shipment.moved) == len(first.shipment.moved)
