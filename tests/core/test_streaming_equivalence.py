"""Streaming-vs-barrier equivalence: pipelining must not move a byte.

The streaming topology reorders *when* work happens — scenes preprocess
while later downloads are still in flight, labelled files ship while the
inference queue drains — but the delivered corpus must be byte-identical
to the barrier pipeline (and to the pinned ``golden_corpus.json``),
including when a streaming run is crashed mid-flight and resumed.
"""

import hashlib
import json
import os

import pytest

from tests.core.crash_driver import build_raw_config
from tests.core.test_crash_resume import (
    CRASH_STAGES,
    parse_stats,
    read_corpus,
    run_driver,
)

from repro.chaos.surfaces import CRASH_EXIT_CODE
from repro.core import EOMLWorkflow, load_config
from repro.modis import MINI_SWATH, LaadsArchive

GOLDEN = os.path.join(os.path.dirname(__file__), "golden_corpus.json")


def sha256_file(path):
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 16), b""):
            digest.update(chunk)
    return digest.hexdigest()


def test_streaming_run_ships_the_golden_corpus(tmp_path):
    with open(GOLDEN) as handle:
        golden = json.load(handle)

    raw = build_raw_config(str(tmp_path), golden["granules"])
    raw["runtime"] = {"stream": {"enabled": True}}
    config = load_config(raw)
    workflow = EOMLWorkflow(
        config, archive=LaadsArchive(seed=golden["seed"], swath=MINI_SWATH)
    )
    report = workflow.run(provenance=False)
    assert report.errors == []

    delivered = {
        name: sha256_file(os.path.join(config.destination, name))
        for name in sorted(os.listdir(config.destination))
    }
    assert delivered == golden["files"]

    # The report carries the streaming accounting the paper's Fig. 6
    # overlap claims: per-edge channel stats and stage-overlap seconds.
    assert report.stream is not None and report.stream["enabled"]
    edges = report.stream["edges"]
    assert set(edges) == {
        "download->model", "model->preprocess", "inference->shipment",
    }
    for stats in edges.values():
        assert stats["closed"]
        assert stats["max_depth"] >= 0
        assert stats["producer_stall_seconds"] >= 0.0
    assert edges["download->model"]["items"] > 0
    assert edges["inference->shipment"]["items"] == len(report.inference)
    assert all(v >= 0.0 for v in report.stage_overlap_seconds.values())


def test_streaming_report_matches_barrier_report(tmp_path):
    def run(mode_dir, streaming):
        raw = build_raw_config(str(tmp_path / mode_dir), 2)
        config = load_config(raw)
        workflow = EOMLWorkflow(
            config, archive=LaadsArchive(seed=3, swath=MINI_SWATH)
        )
        return workflow.run(provenance=False, streaming=streaming), config

    barrier, _ = run("barrier", streaming=False)
    streamed, _ = run("streamed", streaming=True)
    assert barrier.stream is None
    assert streamed.stream is not None
    # Same work observed either way: granules, tiles, labels, shipments.
    assert streamed.download.files == barrier.download.files
    assert streamed.total_tiles == barrier.total_tiles
    assert len(streamed.inference) == len(barrier.inference)
    assert sorted(os.path.basename(p) for p in streamed.shipment.moved) == \
        sorted(os.path.basename(p) for p in barrier.shipment.moved)


@pytest.mark.parametrize("stage", CRASH_STAGES)
def test_streaming_crash_then_resume_matches_golden(stage, tmp_path):
    with open(GOLDEN) as handle:
        golden = json.load(handle)

    crashed = run_driver(tmp_path, "--streaming", "--crash-stage", stage)
    assert crashed.returncode == CRASH_EXIT_CODE, (
        f"crash fault at {stage!r} did not abort the streaming run: "
        f"rc={crashed.returncode}\n{crashed.stdout}\n{crashed.stderr}"
    )

    resumed = run_driver(tmp_path, "--streaming", "--resume")
    assert resumed.returncode == 0, resumed.stderr
    stats = parse_stats(resumed.stdout)
    assert stats["errors"] == 0

    corpus = {
        name: hashlib.sha256(blob).hexdigest()
        for name, blob in read_corpus(tmp_path).items()
    }
    assert corpus == golden["files"]


def test_streaming_resume_of_completed_run_is_a_noop(tmp_path):
    first = run_driver(tmp_path, "--streaming")
    assert first.returncode == 0, first.stderr

    again = run_driver(tmp_path, "--streaming", "--resume")
    assert again.returncode == 0, again.stderr
    stats = parse_stats(again.stdout)
    assert stats["fetched"] == 0
    assert stats["replayed_items"] == 0
    assert stats["resumed_items"] > 0
    assert stats["errors"] == 0
