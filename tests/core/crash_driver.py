"""Subprocess driver for the kill-and-resume harness.

Runs the real five-stage workflow in its own process so an injected
``crash`` fault (``os._exit``) kills a *whole process*, exactly like a
Slurm preemption — then the harness launches this driver again with
``--resume`` and checks the delivered corpus.

Usage:
    python crash_driver.py ROOT [--crash-stage STAGE] [--resume]

Prints ``key=value`` lines the harness parses.
"""

import argparse
import os
import sys


def build_raw_config(root: str, granules: int) -> dict:
    return {
        "archive": {
            "start_date": "2022-01-01",
            "max_granules_per_day": granules,
            "seed": 3,
        },
        "paths": {
            "staging": os.path.join(root, "data", "raw"),
            "preprocessed": os.path.join(root, "data", "tiles"),
            "transfer_out": os.path.join(root, "data", "outbox"),
            "destination": os.path.join(root, "data", "orion"),
            "quarantine": os.path.join(root, "data", "quarantine"),
        },
        "download": {"workers": 2},
        "preprocess": {"workers": 2},
        "inference": {"workers": 1, "poll_interval": 0.05},
        "journal": {"dir": os.path.join(root, "data", "journal")},
    }


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("root", help="run directory (all paths live under it)")
    parser.add_argument("--crash-stage", default=None,
                        help="inject a seeded crash fault at this stage")
    parser.add_argument("--resume", action="store_true")
    parser.add_argument("--granules", type=int, default=2)
    parser.add_argument("--streaming", action="store_true",
                        help="run the streaming dataflow topology")
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="run stages across N worker processes")
    parser.add_argument("--fanout", action="store_true",
                        help="fan the plan out per instrument x model "
                             "(modis+abi x ricc+heuristic)")
    parser.add_argument("--cache", default=None, metavar="DIR",
                        help="enable the content-addressed cache rooted at DIR")
    args = parser.parse_args()

    from repro.core import EOMLWorkflow, load_config
    from repro.modis import MINI_SWATH, LaadsArchive

    raw = build_raw_config(args.root, args.granules)
    if args.fanout:
        raw["archive"]["instruments"] = ["modis", "abi"]
        raw["inference"] = dict(raw["inference"], models=["ricc", "heuristic"])
    runtime = {}
    if args.streaming:
        runtime["stream"] = {"enabled": True}
    if args.workers is not None:
        runtime["workers"] = args.workers
    if runtime:
        raw["runtime"] = runtime
    if args.cache:
        raw["cache"] = {"enabled": True, "dir": args.cache}
    if args.crash_stage:
        raw["chaos"] = {
            "seed": 0,
            "faults": [{"stage": args.crash_stage, "kind": "crash"}],
        }
    config = load_config(raw)
    workflow = EOMLWorkflow(config, archive=LaadsArchive(seed=3, swath=MINI_SWATH))
    report = workflow.run(provenance=False, resume=args.resume)

    shipped = len(report.shipment.moved) if report.shipment else 0
    fetched = report.download.files - report.download.skipped - report.download.resumed
    print(f"fetched={fetched}")
    print(f"resumed_downloads={report.download.resumed}")
    print(f"resumed_items={report.resumed_items}")
    print(f"replayed_items={report.replayed_items}")
    print(f"manifest_mismatches={report.manifest_mismatches}")
    print(f"shipped={shipped}")
    print(f"errors={len(report.errors)}")
    print(f"pool_units={report.scaleout['units_executed']}")
    print(f"pool_requeues={report.scaleout['requeues']}")
    print(f"pool_workers={report.scaleout['workers_launched']}")
    print(f"cache_hits={report.cache['hits']}")
    print(f"cache_stores={report.cache['stores']}")
    print(f"download_cached={report.cache['download_cached']}")
    print(f"fetched_bytes={report.cache['fetched_bytes']}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
