"""The inference micro-batcher against the per-file path.

Cross-file fusion (``batch_files > 1``) concatenates the tiles of every
queued file into one encoder/assign call and scatters the labels back.
These tests pin the fused path to the per-file path: identical labels,
identical output bytes, identical quarantine behaviour — plus the
``drain`` deadline-edge regression and the float32/float64 assign
equivalence the fusion relies on.
"""

import os
import threading
import time

import numpy as np
import pytest

from repro.core.config import load_config
from repro.core.inference import InferenceWorker, infer_tile_file
from repro.core.tiles import extract_tiles, tiles_to_dataset
from repro.netcdf import write as nc_write
from repro.ricc import AICCAModel

TILE = 8
BANDS = 6


def make_config(tmp_path, batch_files=1, workers=1):
    return load_config(
        {
            "archive": {"start_date": "2022-01-01", "seed": 3},
            "paths": {
                "staging": str(tmp_path / "raw"),
                "preprocessed": str(tmp_path / "tiles"),
                "transfer_out": str(tmp_path / "outbox"),
                "destination": str(tmp_path / "orion"),
                "quarantine": str(tmp_path / "quarantine"),
            },
            "preprocess": {"tile_size": TILE},
            "inference": {"workers": workers, "batch_files": batch_files},
        }
    )


def make_tile_file(path, seed, lines=32, pixels=32):
    """A contract-satisfying tile NetCDF, like preprocess writes."""
    rng = np.random.default_rng(seed)
    tiles = extract_tiles(
        radiance=rng.normal(size=(BANDS, lines, pixels)).astype(np.float32),
        cloud_mask=rng.uniform(size=(lines, pixels)) < 0.8,
        land_mask=np.zeros((lines, pixels), dtype=bool),
        latitude=rng.uniform(-60, 60, size=(lines, pixels)),
        longitude=rng.uniform(-180, 180, size=(lines, pixels)),
        tile_size=TILE,
        optical_thickness=rng.uniform(0, 30, size=(lines, pixels)),
        cloud_top_pressure=rng.uniform(200, 900, size=(lines, pixels)),
        source=os.path.basename(path),
    )
    assert tiles
    nc_write(tiles_to_dataset(tiles, source=os.path.basename(path)), path)
    return path


@pytest.fixture(scope="module")
def model():
    rng = np.random.default_rng(7)
    train = rng.normal(size=(48, TILE, TILE, BANDS)).astype(np.float32)
    trained, _history = AICCAModel.train(
        train, num_classes=4, latent_dim=6, hidden=(32,), epochs=3, seed=0
    )
    return trained


def run_worker(model, config, paths):
    worker = InferenceWorker(model, config)
    with worker:
        for path in paths:
            worker.submit(path)
        worker.drain(timeout=30.0)
    return worker


class TestMicroBatchEquivalence:
    def test_fused_labels_match_per_file(self, tmp_path, model):
        """batch_files=4 and batch_files=1 produce byte-identical output."""
        src_a = tmp_path / "a"
        src_b = tmp_path / "b"
        for directory in (src_a, src_b):
            directory.mkdir()
        names = [f"tiles_g{i}.nc" for i in range(5)]
        for i, name in enumerate(names):
            make_tile_file(str(src_a / name), seed=i)
            make_tile_file(str(src_b / name), seed=i)

        fused_config = make_config(tmp_path / "fused", batch_files=4)
        serial_config = make_config(tmp_path / "serial", batch_files=1)
        fused = run_worker(model, fused_config, [str(src_a / n) for n in names])
        serial = run_worker(model, serial_config, [str(src_b / n) for n in names])
        assert not fused.errors and not serial.errors
        assert len(fused.results) == len(serial.results) == len(names)

        for name in names:
            with open(os.path.join(fused_config.transfer_out, name), "rb") as handle:
                fused_bytes = handle.read()
            with open(os.path.join(serial_config.transfer_out, name), "rb") as handle:
                serial_bytes = handle.read()
            assert fused_bytes == serial_bytes

    def test_fused_matches_infer_tile_file(self, tmp_path, model):
        """The fused worker output equals the plain one-shot function."""
        src = make_tile_file(str(tmp_path / "tiles_x.nc"), seed=11)
        reference_dir = tmp_path / "reference"
        result = infer_tile_file(model, src, str(reference_dir))

        config = make_config(tmp_path / "worker", batch_files=8)
        worker = run_worker(model, config, [src])
        assert len(worker.results) == 1
        assert worker.results[0].tiles == result.tiles
        with open(result.out_path, "rb") as handle:
            expected = handle.read()
        with open(worker.results[0].out_path, "rb") as handle:
            actual = handle.read()
        assert actual == expected

    def test_fuses_files_with_different_tile_counts(self, tmp_path, model):
        """Files sharing a tile shape fuse even at different tile counts."""
        small = make_tile_file(str(tmp_path / "tiles_small.nc"), seed=1, lines=16, pixels=16)
        big = make_tile_file(str(tmp_path / "tiles_big.nc"), seed=2, lines=40, pixels=40)
        config = make_config(tmp_path / "out", batch_files=8)
        worker = run_worker(model, config, [small, big])
        assert not worker.errors
        assert len(worker.results) == 2

    def test_corrupt_file_quarantines_alone_in_batch(self, tmp_path, model):
        """One poisoned file in a fused batch must not sink its peers."""
        good = make_tile_file(str(tmp_path / "tiles_good.nc"), seed=5)
        bad = str(tmp_path / "tiles_bad.nc")
        with open(bad, "wb") as handle:
            handle.write(b"CDF\x01 this is not a tile file")
        config = make_config(tmp_path / "out", batch_files=8)
        worker = run_worker(model, config, [good, bad])
        assert len(worker.results) == 1
        assert worker.results[0].src_path == good
        assert [q.key for q in worker.quarantined] == [bad]
        assert os.path.exists(
            os.path.join(config.quarantine, os.path.basename(bad))
        )


class TestAssignDtypes:
    def test_float32_and_float64_assign_identical_labels(self, model):
        rng = np.random.default_rng(13)
        batch32 = rng.normal(size=(64, TILE, TILE, BANDS)).astype(np.float32)
        labels32 = model.assign(batch32)
        labels64 = model.assign(batch32.astype(np.float64))
        np.testing.assert_array_equal(labels32, labels64)

    def test_encode_preserves_float32(self, model):
        rng = np.random.default_rng(13)
        batch = rng.normal(size=(8, TILE, TILE, BANDS)).astype(np.float32)
        assert model.autoencoder.encode(batch).dtype == np.float32
        assert model.autoencoder.encode(batch.astype(np.float64)).dtype == np.float64


class TestDrain:
    def test_drain_zero_timeout_when_settled(self, tmp_path, model):
        """Regression: drain must re-check the counters at the deadline,
        so an already-settled queue never raises on timeout=0."""
        src = make_tile_file(str(tmp_path / "tiles_y.nc"), seed=21)
        config = make_config(tmp_path / "out")
        worker = InferenceWorker(model, config)
        with worker:
            worker.submit(src)
            worker.drain(timeout=30.0)
            # Everything has settled; an exhausted deadline is still fine.
            worker.drain(timeout=0.0)
        worker.drain(timeout=0.0)

    def test_drain_nothing_submitted(self, tmp_path, model):
        worker = InferenceWorker(model, make_config(tmp_path / "out"))
        worker.drain(timeout=0.0)

    def test_on_result_fires_before_drain_observes_settled(self, tmp_path, model):
        # The streaming hand-off contract: every published file has been
        # delivered to the callback by the time drain() returns, so a
        # downstream consumer reading the stream misses nothing.
        src = make_tile_file(str(tmp_path / "tiles_s.nc"), seed=23)
        handed_off = []
        config = make_config(tmp_path / "out")
        worker = InferenceWorker(
            model, config, on_result=lambda r: handed_off.append(r.out_path)
        )
        with worker:
            worker.submit(src)
            worker.drain(timeout=30.0)
            assert handed_off == [r.out_path for r in worker.results]
            assert len(handed_off) == 1

    def test_drain_stray_kwarg_is_a_type_error(self, tmp_path, model):
        # The deprecated poll= compatibility shim is gone: any stray
        # keyword (including poll=) is a genuine caller bug.
        worker = InferenceWorker(model, make_config(tmp_path / "out"))
        with pytest.raises(TypeError, match="unexpected keyword"):
            worker.drain(timeout=0.0, poll=0.01)

    def test_drain_without_poll_warns_nothing(self, tmp_path, model):
        import warnings

        worker = InferenceWorker(model, make_config(tmp_path / "out"))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            worker.drain(timeout=0.0)

    def test_drain_raises_when_work_outstanding(self, tmp_path, model):
        worker = InferenceWorker(model, make_config(tmp_path / "out"))
        # Never started: the submission can never settle.
        worker.submit(str(tmp_path / "tiles_never.nc"))
        with pytest.raises(TimeoutError):
            worker.drain(timeout=0.05)

    def test_drain_blocks_without_busy_poll(self, tmp_path, model):
        """drain() returns promptly once a slow submission settles."""
        src = make_tile_file(str(tmp_path / "tiles_z.nc"), seed=22)
        config = make_config(tmp_path / "out")
        worker = InferenceWorker(model, config)
        with worker:
            def late_submit():
                time.sleep(0.15)
                worker.submit(src)

            thread = threading.Thread(target=late_submit)
            worker.submit(src)  # ensure drain has something pending
            thread.start()
            worker.drain(timeout=30.0)
            thread.join()
            worker.drain(timeout=5.0)
        assert len(worker.results) == 2
