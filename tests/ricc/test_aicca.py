"""AICCA atlas and EWC continual-learning tests."""

import numpy as np
import pytest

from repro.ricc import AICCAModel, EWCTrainer, RotationInvariantAutoencoder
from repro.ricc.evaluate import adjusted_rand_index

from tests.ricc.test_autoencoder import toy_tiles


def regime_tiles(n_per=20, size=8, channels=2, seed=0):
    """Tiles from three visually distinct synthetic regimes + truth labels."""
    rng = np.random.default_rng(seed)
    n = 3 * n_per
    tiles = np.zeros((n, size, size, channels))
    truth = np.repeat([0, 1, 2], n_per)
    for index in range(n):
        regime = truth[index]
        if regime == 0:  # bright, smooth
            tiles[index] = 0.8 + rng.normal(0, 0.03, (size, size, channels))
        elif regime == 1:  # dark, smooth
            tiles[index] = 0.1 + rng.normal(0, 0.03, (size, size, channels))
        else:  # high-frequency checker
            checker = ((np.arange(size)[:, None] + np.arange(size)[None, :]) % 2).astype(float)
            tiles[index, :, :, :] = checker[:, :, None] * 0.9 + rng.normal(
                0, 0.03, (size, size, channels)
            )
    order = rng.permutation(n)
    return tiles[order], truth[order]


class TestAICCA:
    def test_train_and_assign_recovers_regimes(self):
        tiles, truth = regime_tiles(n_per=16)
        model, history = AICCAModel.train(
            tiles, num_classes=3, latent_dim=4, hidden=(32,), epochs=20, lr=2e-3, seed=0
        )
        labels = model.assign(tiles)
        assert adjusted_rand_index(labels, truth) > 0.8
        assert model.num_classes == 3
        assert len(history) == 20

    def test_assign_is_rotation_consistent(self):
        """Rotated tiles receive the same class (mostly) as originals."""
        tiles, _ = regime_tiles(n_per=16)
        model, _ = AICCAModel.train(
            tiles, num_classes=3, latent_dim=4, hidden=(32,), epochs=25, lr=2e-3, seed=1
        )
        from repro.ricc import transform_batch

        base = model.assign(tiles)
        rotated = model.assign(transform_batch(tiles, 1))
        agreement = float((base == rotated).mean())
        assert agreement > 0.85

    def test_class_statistics(self):
        tiles, truth = regime_tiles(n_per=10)
        model, _ = AICCAModel.train(
            tiles, num_classes=3, latent_dim=4, hidden=(32,), epochs=10, seed=2
        )
        labels = model.assign(tiles)
        n = labels.shape[0]
        rng = np.random.default_rng(0)
        stats = model.class_statistics(
            labels,
            {
                "optical_thickness": rng.uniform(1, 30, n),
                "cloud_top_pressure": rng.uniform(200, 900, n),
                "cloud_fraction": rng.uniform(0.3, 1.0, n),
            },
        )
        assert sum(s.count for s in stats) == n
        assert all(1 <= s.mean_optical_thickness <= 30 for s in stats)

    def test_class_statistics_validation(self):
        tiles, _ = regime_tiles(n_per=10)
        model, _ = AICCAModel.train(tiles, num_classes=2, latent_dim=4, hidden=(32,), epochs=3)
        labels = model.assign(tiles)
        with pytest.raises(KeyError):
            model.class_statistics(labels, {})
        with pytest.raises(ValueError):
            model.class_statistics(
                labels,
                {
                    "optical_thickness": np.zeros(5),
                    "cloud_top_pressure": np.zeros(5),
                    "cloud_fraction": np.zeros(5),
                },
            )

    def test_save_load_roundtrip(self, tmp_path):
        tiles, _ = regime_tiles(n_per=10)
        model, _ = AICCAModel.train(tiles, num_classes=3, latent_dim=4, hidden=(32,), epochs=5)
        path = str(tmp_path / "aicca.npz")
        model.save(path)
        clone = AICCAModel.load(path)
        np.testing.assert_array_equal(clone.assign(tiles), model.assign(tiles))

    def test_evaluate_produces_report(self):
        tiles, truth = regime_tiles(n_per=12)
        model, _ = AICCAModel.train(
            tiles, num_classes=3, latent_dim=4, hidden=(32,), epochs=15, seed=4
        )
        report = model.evaluate(tiles, truth=truth)
        assert report.n_clusters <= 3
        assert -1.0 <= report.silhouette <= 1.0
        assert report.ari_vs_truth is not None


class TestEWC:
    def test_ewc_retains_old_task_better_than_naive(self):
        """After training on task B, the EWC model reconstructs task A
        better than a naively fine-tuned twin."""
        task_a = toy_tiles(n=24, seed=10)
        task_b = 1.0 - toy_tiles(n=24, seed=20)  # inverted: a different regime

        def make_model():
            model = RotationInvariantAutoencoder((8, 8, 2), 6, (48,), seed=7)
            model.train(task_a, epochs=15, batch_size=12, lr=2e-3, seed=7)
            return model

        naive = make_model()
        naive.train(task_b, epochs=15, batch_size=12, lr=2e-3, seed=8)

        protected = make_model()
        trainer = EWCTrainer(protected, ewc_lambda=20.0)
        trainer.consolidate(task_a)
        trainer.train_task(task_b, epochs=15, batch_size=12, lr=2e-3, seed=8)

        assert protected.reconstruction_error(task_a) < naive.reconstruction_error(task_a)
        assert trainer.tasks_consolidated == 1
        assert trainer.penalty() >= 0.0

    def test_no_penalty_before_consolidation(self):
        model = RotationInvariantAutoencoder((8, 8, 2), 4, (32,))
        trainer = EWCTrainer(model, ewc_lambda=10.0)
        assert trainer.penalty() == 0.0
        # train_task without consolidation == plain training (no hook).
        trainer.train_task(toy_tiles(n=8), epochs=1, batch_size=8)

    def test_validation(self):
        model = RotationInvariantAutoencoder((8, 8, 2), 4, (32,))
        with pytest.raises(ValueError):
            EWCTrainer(model, ewc_lambda=-1.0)
