"""Layer and optimizer tests, including numerical gradient checks."""

import numpy as np
import pytest

from repro.ricc.layers import Activation, Dense, Sequential
from repro.ricc.optim import SGD, Adam


def numerical_grad(loss_fn, value, eps=1e-6):
    grad = np.zeros_like(value)
    flat_value = value.ravel()
    flat_grad = grad.ravel()
    for index in range(flat_value.size):
        original = flat_value[index]
        flat_value[index] = original + eps
        up = loss_fn()
        flat_value[index] = original - eps
        down = loss_fn()
        flat_value[index] = original
        flat_grad[index] = (up - down) / (2 * eps)
    return grad


class TestGradients:
    @pytest.mark.parametrize("activation", ["relu", "tanh", "sigmoid", "linear"])
    def test_network_gradcheck(self, activation):
        """Backprop matches numerical gradients through a two-layer net."""
        rng = np.random.default_rng(0)
        net = Sequential(
            [Dense(5, 7, rng), Activation(activation), Dense(7, 3, rng)]
        )
        x = rng.normal(size=(4, 5)) + 0.1  # offset avoids relu kinks at 0
        target = rng.normal(size=(4, 3))

        def loss_fn():
            out = net.forward(x)
            return float(((out - target) ** 2).mean())

        out = net.forward(x)
        grad_out = 2.0 * (out - target) / out.size
        net.zero_grad()
        grad_x = net.backward(grad_out)

        for name, value, grad in net.params():
            numeric = numerical_grad(loss_fn, value)
            np.testing.assert_allclose(grad, numeric, rtol=1e-4, atol=1e-6, err_msg=name)

        def loss_of_x():
            return float(((net.forward(x) - target) ** 2).mean())

        numeric_x = numerical_grad(loss_of_x, x)
        np.testing.assert_allclose(grad_x, numeric_x, rtol=1e-4, atol=1e-6)

    def test_grad_accumulation(self):
        rng = np.random.default_rng(1)
        layer = Dense(3, 2, rng)
        x = rng.normal(size=(5, 3))
        layer.forward(x)
        layer.backward(np.ones((5, 2)))
        first = layer.grad_w.copy()
        layer.forward(x)
        layer.backward(np.ones((5, 2)))
        np.testing.assert_allclose(layer.grad_w, 2 * first)
        layer.zero_grad()
        assert (layer.grad_w == 0).all()

    def test_backward_before_forward(self):
        layer = Dense(2, 2, np.random.default_rng(0))
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((1, 2)))

    def test_unknown_activation(self):
        with pytest.raises(ValueError):
            Activation("swish9000")

    def test_sigmoid_stable_at_extremes(self):
        act = Activation("sigmoid")
        out = act.forward(np.array([[-1000.0, 1000.0]]))
        assert np.isfinite(out).all()
        assert out[0, 0] == pytest.approx(0.0, abs=1e-12)
        assert out[0, 1] == pytest.approx(1.0, abs=1e-12)


class TestOptimizers:
    def _quadratic_descent(self, optimizer, steps=300):
        value = np.array([5.0, -3.0])
        grad = np.zeros(2)
        for _ in range(steps):
            grad[:] = 2 * value  # d/dv ||v||^2
            optimizer.step([("v", value, grad)])
        return value

    def test_sgd_converges(self):
        final = self._quadratic_descent(SGD(lr=0.1))
        assert np.abs(final).max() < 1e-6

    def test_sgd_momentum_converges(self):
        final = self._quadratic_descent(SGD(lr=0.05, momentum=0.9))
        assert np.abs(final).max() < 1e-4

    def test_adam_converges(self):
        final = self._quadratic_descent(Adam(lr=0.1), steps=500)
        assert np.abs(final).max() < 1e-4

    def test_adam_state_is_per_parameter(self):
        opt = Adam(lr=0.1)
        a = np.array([1.0])
        b = np.array([100.0])
        for _ in range(10):
            opt.step([("a", a, 2 * a), ("b", b, 2 * b)])
        assert a[0] != b[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            SGD(lr=-1.0)
        with pytest.raises(ValueError):
            SGD(lr=0.1, momentum=1.5)
        with pytest.raises(ValueError):
            Adam(lr=0.0)
