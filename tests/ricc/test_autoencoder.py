"""Rotation-invariant autoencoder and rotinv machinery tests."""

import numpy as np
import pytest

from repro.ricc import (
    NUM_TRANSFORMS,
    RotationInvariantAutoencoder,
    dihedral_transforms,
    invariance_gap,
    transform_batch,
)


def toy_tiles(n=48, size=8, channels=2, seed=0):
    """Tiles from two synthetic 'regimes': smooth gradients and checkers."""
    rng = np.random.default_rng(seed)
    tiles = np.zeros((n, size, size, channels), dtype=np.float64)
    for index in range(n):
        if index % 2 == 0:
            ramp = np.linspace(0, 1, size)
            tiles[index, :, :, 0] = ramp[None, :] * rng.uniform(0.5, 1.0)
            tiles[index, :, :, 1] = ramp[:, None] * rng.uniform(0.5, 1.0)
        else:
            checker = ((np.arange(size)[:, None] + np.arange(size)[None, :]) % 2).astype(float)
            tiles[index, :, :, 0] = checker * rng.uniform(0.5, 1.0)
            tiles[index, :, :, 1] = (1 - checker) * rng.uniform(0.5, 1.0)
        tiles[index] += rng.normal(0, 0.02, size=(size, size, channels))
    return tiles


class TestDihedral:
    def test_eight_unique_transforms(self):
        rng = np.random.default_rng(0)
        tile = rng.normal(size=(6, 6, 2))
        transforms = dihedral_transforms(tile)
        assert len(transforms) == NUM_TRANSFORMS
        flattened = {t.tobytes() for t in transforms}
        assert len(flattened) == NUM_TRANSFORMS  # generic tile: all distinct

    def test_identity_is_first(self):
        tile = np.random.default_rng(1).normal(size=(4, 4, 1))
        np.testing.assert_array_equal(dihedral_transforms(tile)[0], tile)

    def test_batch_matches_single(self):
        rng = np.random.default_rng(2)
        tiles = rng.normal(size=(3, 5, 5, 2))
        for index in range(NUM_TRANSFORMS):
            batched = transform_batch(tiles, index)
            for tile_index in range(3):
                expected = dihedral_transforms(tiles[tile_index])[index]
                np.testing.assert_array_equal(batched[tile_index], expected)

    def test_rotation_group_closure(self):
        """Applying rot90 four times returns the original."""
        tiles = np.random.default_rng(3).normal(size=(2, 4, 4, 1))
        result = tiles
        for _ in range(4):
            result = transform_batch(result, 1)
        np.testing.assert_array_equal(result, tiles)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            dihedral_transforms(np.zeros((4, 5, 1)))
        with pytest.raises(ValueError):
            transform_batch(np.zeros((1, 4, 5, 1)), 0)
        with pytest.raises(ValueError):
            transform_batch(np.zeros((1, 4, 4, 1)), 9)


class TestAutoencoder:
    def test_shapes(self):
        model = RotationInvariantAutoencoder((8, 8, 2), latent_dim=5, hidden=(32,))
        tiles = toy_tiles(n=4)
        assert model.encode(tiles).shape == (4, 5)
        assert model.reconstruct(tiles).shape == (4, 128)

    def test_training_reduces_loss(self):
        tiles = toy_tiles(n=32)
        model = RotationInvariantAutoencoder((8, 8, 2), latent_dim=8, hidden=(64,), seed=1)
        history = model.train(tiles, epochs=15, batch_size=16, lr=2e-3, seed=1)
        assert history[-1].loss < history[0].loss * 0.7
        assert model.trained_epochs == 15

    def test_invariance_improves_with_training(self):
        """Training with the RI loss shrinks the latent spread across
        rotations relative to the untrained network."""
        tiles = toy_tiles(n=32)
        model = RotationInvariantAutoencoder(
            (8, 8, 2), latent_dim=8, hidden=(64,), lambda_inv=2.0, seed=2
        )
        before = invariance_gap(model.encoder.forward, tiles)
        model.train(tiles, epochs=25, batch_size=16, lr=2e-3, seed=2)
        after = invariance_gap(model.encoder.forward, tiles)
        assert after < before * 0.6

    def test_ri_model_more_invariant_than_plain(self):
        """Ablation: lambda_inv=0 trains a plain AE; its encoder is less
        rotation invariant than the RI-trained twin."""
        tiles = toy_tiles(n=32)
        plain = RotationInvariantAutoencoder((8, 8, 2), 8, (64,), lambda_inv=0.0, seed=3)
        invariant = RotationInvariantAutoencoder((8, 8, 2), 8, (64,), lambda_inv=2.0, seed=3)
        plain.train(tiles, epochs=20, batch_size=16, lr=2e-3, seed=3)
        invariant.train(tiles, epochs=20, batch_size=16, lr=2e-3, seed=3)
        assert invariance_gap(invariant.encoder.forward, tiles) < invariance_gap(
            plain.encoder.forward, tiles
        )

    def test_training_deterministic(self):
        tiles = toy_tiles(n=16)

        def run():
            model = RotationInvariantAutoencoder((8, 8, 2), 4, (32,), seed=5)
            model.train(tiles, epochs=3, batch_size=8, seed=5)
            return model.encode(tiles)

        np.testing.assert_array_equal(run(), run())

    def test_save_load_roundtrip(self, tmp_path):
        tiles = toy_tiles(n=16)
        model = RotationInvariantAutoencoder((8, 8, 2), 4, (32,), seed=6)
        model.train(tiles, epochs=2, batch_size=8, seed=6)
        path = str(tmp_path / "ricc.npz")
        model.save(path)
        clone = RotationInvariantAutoencoder.load(path)
        np.testing.assert_allclose(clone.encode(tiles), model.encode(tiles))

    def test_validation(self):
        with pytest.raises(ValueError):
            RotationInvariantAutoencoder((8, 7, 2))
        with pytest.raises(ValueError):
            RotationInvariantAutoencoder((8, 8, 2), latent_dim=0)
        model = RotationInvariantAutoencoder((8, 8, 2))
        with pytest.raises(ValueError):
            model.encode(np.zeros((2, 4, 4, 2)))
        with pytest.raises(ValueError):
            model.train(np.zeros((1, 8, 8, 2)))
