"""Agglomerative clustering tests, cross-checked against scipy."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy.cluster.hierarchy import fcluster, linkage as scipy_linkage

from repro.ricc.cluster import AgglomerativeClustering
from repro.ricc.evaluate import adjusted_rand_index


def blobs(n_per=20, centers=((0, 0), (10, 0), (0, 10)), spread=0.5, seed=0):
    rng = np.random.default_rng(seed)
    parts, truth = [], []
    for label, center in enumerate(centers):
        parts.append(rng.normal(center, spread, size=(n_per, len(center))))
        truth.extend([label] * n_per)
    return np.vstack(parts), np.array(truth)


class TestClustering:
    @pytest.mark.parametrize("linkage", ["ward", "average", "complete", "single"])
    def test_recovers_well_separated_blobs(self, linkage):
        x, truth = blobs()
        labels = AgglomerativeClustering(n_clusters=3, linkage=linkage).fit_predict(x)
        assert adjusted_rand_index(labels, truth) == pytest.approx(1.0)

    @pytest.mark.parametrize("linkage", ["ward", "average", "complete", "single"])
    def test_matches_scipy_partition(self, linkage):
        """Our cut at k clusters equals scipy's for generic data."""
        rng = np.random.default_rng(3)
        x = rng.normal(size=(40, 4))
        ours = AgglomerativeClustering(n_clusters=5, linkage=linkage).fit_predict(x)
        theirs = fcluster(scipy_linkage(x, method=linkage), t=5, criterion="maxclust")
        assert adjusted_rand_index(ours, theirs) == pytest.approx(1.0)

    def test_merge_history_recorded(self):
        x, _ = blobs(n_per=5)
        model = AgglomerativeClustering(n_clusters=3).fit(x)
        assert len(model.merges_) == x.shape[0] - 3
        # Ward merge distances are non-decreasing for well-behaved data.
        distances = [m.distance for m in model.merges_]
        assert all(b >= a - 1e-9 for a, b in zip(distances, distances[1:]))

    def test_centroids_shape_and_position(self):
        x, truth = blobs()
        model = AgglomerativeClustering(n_clusters=3).fit(x)
        assert model.centroids_.shape == (3, 2)
        # Each centroid lies near one of the true centers.
        for centroid in model.centroids_:
            nearest = min(
                np.linalg.norm(centroid - np.array(c)) for c in ((0, 0), (10, 0), (0, 10))
            )
            assert nearest < 1.0

    def test_predict_nearest_centroid(self):
        x, truth = blobs()
        model = AgglomerativeClustering(n_clusters=3).fit(x)
        probe = np.array([[0.2, 0.1], [9.8, -0.1], [0.0, 10.3]])
        labels = model.predict(probe)
        assert len(set(labels.tolist())) == 3

    def test_n_clusters_one(self):
        x, _ = blobs(n_per=4)
        labels = AgglomerativeClustering(n_clusters=1).fit_predict(x)
        assert (labels == 0).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            AgglomerativeClustering(n_clusters=0)
        with pytest.raises(ValueError):
            AgglomerativeClustering(n_clusters=2, linkage="centroid")
        with pytest.raises(ValueError):
            AgglomerativeClustering(n_clusters=10).fit(np.zeros((3, 2)))
        with pytest.raises(RuntimeError):
            AgglomerativeClustering(n_clusters=2).predict(np.zeros((1, 2)))

    def test_predict_dimension_mismatch(self):
        x, _ = blobs(n_per=4)
        model = AgglomerativeClustering(n_clusters=2).fit(x)
        with pytest.raises(ValueError):
            model.predict(np.zeros((1, 7)))

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        n=st.integers(min_value=6, max_value=30),
        k=st.integers(min_value=1, max_value=5),
    )
    def test_partition_invariants_property(self, seed, n, k):
        """Any fit yields exactly k labels covering 0..k-1, sizes sum to n."""
        k = min(k, n)
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(n, 3))
        model = AgglomerativeClustering(n_clusters=k).fit(x)
        labels = model.labels_
        assert labels.shape == (n,)
        assert set(labels.tolist()) == set(range(k))
        assert model.centroids_.shape == (k, 3)
        # Centroids really are the member means.
        for label in range(k):
            np.testing.assert_allclose(
                model.centroids_[label], x[labels == label].mean(axis=0)
            )
