"""Fine-tuning and model-merging tests (Section V adaptation features)."""

import numpy as np
import pytest

from repro.ricc import RotationInvariantAutoencoder
from repro.ricc.adaptation import fine_tune, merge_models

from tests.ricc.test_autoencoder import toy_tiles


def pretrained(seed=7, epochs=12):
    model = RotationInvariantAutoencoder((8, 8, 2), 6, (48,), seed=seed)
    model.train(toy_tiles(n=32, seed=1), epochs=epochs, batch_size=16, lr=2e-3, seed=seed)
    return model


class TestFineTune:
    def test_frozen_layers_do_not_move(self):
        model = pretrained()
        first_dense = model.encoder.layers[0]
        frozen_before = first_dense.w.copy()
        fine_tune(model, toy_tiles(n=16, seed=2), freeze_encoder_layers=1, epochs=3)
        np.testing.assert_array_equal(first_dense.w, frozen_before)

    def test_unfrozen_layers_do_move(self):
        model = pretrained()
        head = model.encoder.layers[-1]
        head_before = head.w.copy()
        fine_tune(model, toy_tiles(n=16, seed=2), freeze_encoder_layers=1, epochs=3)
        assert not np.array_equal(head.w, head_before)

    def test_adaptation_improves_on_new_data(self):
        """Fine-tuning on the shifted dataset reduces its reconstruction
        error relative to the unadapted pretrained model."""
        model = pretrained()
        shifted = 1.0 - toy_tiles(n=24, seed=9)
        error_before = model.reconstruction_error(shifted)
        fine_tune(model, shifted, freeze_encoder_layers=1, epochs=10, lr=1e-3)
        assert model.reconstruction_error(shifted) < error_before * 0.9

    def test_freeze_count_validation(self):
        model = pretrained(epochs=1)
        with pytest.raises(ValueError):
            fine_tune(model, toy_tiles(n=8), freeze_encoder_layers=99)
        with pytest.raises(ValueError):
            fine_tune(model, toy_tiles(n=8), freeze_encoder_layers=-1)


class TestMerge:
    def test_merge_identical_models_is_identity(self):
        a = pretrained(epochs=4)
        merged = merge_models([a, a])
        tiles = toy_tiles(n=8)
        np.testing.assert_allclose(merged.encode(tiles), a.encode(tiles))

    def test_merged_interpolates_parents(self):
        """A merged model's error on each parent's data sits near (and can
        beat) the worse parent — the model-soup property for siblings
        fine-tuned from the same ancestor."""
        ancestor = pretrained(epochs=10)
        data_a = toy_tiles(n=24, seed=3)
        data_b = toy_tiles(n=24, seed=4)

        import copy

        parent_a = copy.deepcopy(ancestor)
        parent_a.train(data_a, epochs=4, batch_size=12, lr=5e-4, seed=3)
        parent_b = copy.deepcopy(ancestor)
        parent_b.train(data_b, epochs=4, batch_size=12, lr=5e-4, seed=4)

        merged = merge_models([parent_a, parent_b])
        for data in (data_a, data_b):
            worst = max(
                parent_a.reconstruction_error(data), parent_b.reconstruction_error(data)
            )
            assert merged.reconstruction_error(data) < worst * 1.5

    def test_weights_normalized(self):
        a = pretrained(epochs=2)
        b = pretrained(seed=8, epochs=2)
        merged_even = merge_models([a, b])
        merged_scaled = merge_models([a, b], weights=[2.0, 2.0])
        tiles = toy_tiles(n=4)
        np.testing.assert_allclose(merged_even.encode(tiles), merged_scaled.encode(tiles))

    def test_all_weight_on_one_parent(self):
        a = pretrained(epochs=2)
        b = pretrained(seed=8, epochs=2)
        merged = merge_models([a, b], weights=[1.0, 0.0])
        tiles = toy_tiles(n=4)
        np.testing.assert_allclose(merged.encode(tiles), a.encode(tiles))

    def test_validation(self):
        a = pretrained(epochs=1)
        with pytest.raises(ValueError):
            merge_models([])
        with pytest.raises(ValueError):
            merge_models([a], weights=[1.0, 2.0])
        with pytest.raises(ValueError):
            merge_models([a, a], weights=[0.0, 0.0])
        different = RotationInvariantAutoencoder((8, 8, 2), 6, (32,))
        with pytest.raises(ValueError):
            merge_models([a, different])
