"""Cluster evaluation metric tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ricc.cluster import AgglomerativeClustering
from repro.ricc.evaluate import (
    adjusted_rand_index,
    cluster_stability,
    quality_report,
    silhouette_score,
)


def blobs(n_per=15, seed=0):
    rng = np.random.default_rng(seed)
    x = np.vstack(
        [rng.normal(c, 0.4, size=(n_per, 2)) for c in ((0, 0), (8, 0), (0, 8))]
    )
    truth = np.repeat([0, 1, 2], n_per)
    return x, truth


class TestSilhouette:
    def test_separated_blobs_score_high(self):
        x, truth = blobs()
        assert silhouette_score(x, truth) > 0.7

    def test_random_labels_score_low(self):
        x, truth = blobs()
        rng = np.random.default_rng(1)
        shuffled = rng.permutation(truth)
        assert silhouette_score(x, shuffled) < 0.2

    def test_matches_manual_two_cluster_case(self):
        x = np.array([[0.0, 0.0], [0.0, 1.0], [10.0, 0.0], [10.0, 1.0]])
        labels = np.array([0, 0, 1, 1])
        # a = 1 for each point; b = distance to other pair ~ 10.0x
        score = silhouette_score(x, labels)
        assert score > 0.85

    def test_requires_two_clusters(self):
        with pytest.raises(ValueError):
            silhouette_score(np.zeros((3, 2)), np.zeros(3))


class TestARI:
    def test_identical_partitions(self):
        labels = np.array([0, 0, 1, 1, 2, 2])
        assert adjusted_rand_index(labels, labels) == pytest.approx(1.0)

    def test_label_permutation_invariant(self):
        a = np.array([0, 0, 1, 1, 2, 2])
        b = np.array([5, 5, 9, 9, 1, 1])
        assert adjusted_rand_index(a, b) == pytest.approx(1.0)

    def test_independent_labelings_near_zero(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 4, size=2000)
        b = rng.integers(0, 4, size=2000)
        assert abs(adjusted_rand_index(a, b)) < 0.05

    def test_against_scipy_contingency_identity(self):
        """Cross-check on a known example from the literature."""
        a = np.array([0, 0, 0, 1, 1, 1])
        b = np.array([0, 0, 1, 1, 2, 2])
        # Hand-computed: sum_ij C(n_ij,2)=2, sum_a=6, sum_b=3, total=15.
        # expected = 6*3/15 = 1.2; max = 4.5; ari = (2-1.2)/(4.5-1.2)
        assert adjusted_rand_index(a, b) == pytest.approx((2 - 1.2) / (4.5 - 1.2))

    def test_mismatched_shapes(self):
        with pytest.raises(ValueError):
            adjusted_rand_index(np.zeros(3), np.zeros(4))

    @settings(max_examples=25, deadline=None)
    @given(
        labels=st.lists(st.integers(min_value=0, max_value=3), min_size=2, max_size=40),
        offset=st.integers(min_value=1, max_value=7),
    )
    def test_relabeling_invariance_property(self, labels, offset):
        a = np.array(labels)
        b = (a + offset) % 11  # a consistent relabeling
        assert adjusted_rand_index(a, b) == pytest.approx(1.0)


class TestStabilityAndReport:
    def test_stable_structure_scores_high(self):
        x, _ = blobs(n_per=20)

        def fit(subset):
            return AgglomerativeClustering(n_clusters=3).fit_predict(subset)

        assert cluster_stability(x, fit, n_boot=4, seed=1) > 0.9

    def test_noise_scores_lower(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(60, 2))

        def fit(subset):
            return AgglomerativeClustering(n_clusters=3).fit_predict(subset)

        structured, _ = blobs(n_per=20)
        noise_score = cluster_stability(x, fit, n_boot=4, seed=2)
        blob_score = cluster_stability(structured, fit, n_boot=4, seed=2)
        assert noise_score < blob_score

    def test_quality_report_fields(self):
        x, truth = blobs()

        def fit(subset):
            return AgglomerativeClustering(n_clusters=3).fit_predict(subset)

        labels = fit(x)
        report = quality_report(x, labels, fit, truth=truth)
        assert report.n_clusters == 3
        assert report.ari_vs_truth == pytest.approx(1.0)
        assert report.acceptable()

    def test_validation(self):
        x, _ = blobs()
        with pytest.raises(ValueError):
            cluster_stability(x, lambda s: np.zeros(s.shape[0]), n_boot=1)
        with pytest.raises(ValueError):
            cluster_stability(x, lambda s: np.zeros(s.shape[0]), subsample=0.01)
