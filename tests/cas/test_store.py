"""Unit tests for the content-addressed store: layout, integrity, GC."""

import hashlib
import os

import pytest

from repro.cas import CASStore, object_relpath


def digest_of(payload: bytes) -> str:
    return hashlib.sha256(payload).hexdigest()


@pytest.fixture
def store(tmp_path):
    return CASStore(str(tmp_path / "cas"), durable=False)


class TestLayout:
    def test_object_relpath_shards_by_prefix(self):
        digest = "ab" + "c" * 62
        assert object_relpath(digest) == os.path.join("ab", "c" * 62)

    def test_store_bytes_lands_in_sharded_layout(self, store):
        payload = b"hello cas"
        digest = digest_of(payload)
        assert store.store_bytes(payload, digest) == digest
        obj = os.path.join(store.root, "objects", object_relpath(digest))
        assert os.path.isfile(obj)
        assert open(obj, "rb").read() == payload

    def test_store_file_computes_digest(self, store, tmp_path):
        src = tmp_path / "src.bin"
        src.write_bytes(b"x" * 4096)
        assert store.store_file(str(src)) == digest_of(b"x" * 4096)

    def test_duplicate_store_is_deduped(self, store):
        payload = b"same bytes"
        digest = digest_of(payload)
        store.store_bytes(payload, digest)
        store.store_bytes(payload, digest)
        counters = store.counters()
        assert counters["stores"] == 1
        assert counters["dedup_stores"] == 1

    def test_claimed_digest_mismatch_is_refused(self, store, tmp_path):
        src = tmp_path / "torn.bin"
        src.write_bytes(b"actual content")
        wrong = digest_of(b"something else")
        assert store.store_file(str(src), digest=wrong) is None
        assert not store.has(wrong)
        assert store.counters()["store_errors"] == 1


class TestMaterialize:
    def test_roundtrip(self, store, tmp_path):
        payload = b"roundtrip" * 100
        digest = digest_of(payload)
        store.store_bytes(payload, digest)
        dest = tmp_path / "out" / "artifact.bin"
        assert store.materialize(digest, str(dest)) == len(payload)
        assert dest.read_bytes() == payload
        assert store.counters()["hits"] == 1

    def test_absent_object_is_a_miss(self, store, tmp_path):
        assert store.materialize("0" * 64, str(tmp_path / "x")) is None
        assert store.counters()["misses"] == 1

    def test_corrupt_object_quarantined_not_delivered(self, store, tmp_path):
        payload = b"will rot" * 50
        digest = digest_of(payload)
        store.store_bytes(payload, digest)
        obj = os.path.join(store.root, "objects", object_relpath(digest))
        with open(obj, "r+b") as handle:
            handle.write(b"ROT")
        dest = tmp_path / "poisoned.bin"
        assert store.materialize(digest, str(dest)) is None
        assert not dest.exists()
        assert not os.path.exists(obj)  # moved aside
        assert os.path.exists(os.path.join(store.root, "quarantine", digest))
        counters = store.counters()
        assert counters["corrupt_evictions"] == 1
        assert counters["misses"] == 1

    def test_load_bytes_verifies_too(self, store):
        payload = b"in-memory object"
        digest = digest_of(payload)
        store.store_bytes(payload, digest)
        assert store.load_bytes(digest) == payload
        obj = os.path.join(store.root, "objects", object_relpath(digest))
        with open(obj, "r+b") as handle:
            handle.write(b"???")
        assert store.load_bytes(digest) is None
        assert store.counters()["corrupt_evictions"] == 1


class TestDerivedKeys:
    def test_put_get_roundtrip(self, store):
        record = {"digest": "ab" * 32, "tiles": 7}
        store.put_key("tiles:modis:scene-1:ts=32", record)
        assert store.get_key("tiles:modis:scene-1:ts=32") == record
        assert store.counters()["key_hits"] == 1

    def test_missing_key_counts_a_key_miss(self, store):
        assert store.get_key("granule:modis:3:nothing") is None
        assert store.counters()["key_misses"] == 1


class TestPinsAndGC:
    def _populate(self, store, count: int, size: int = 1024):
        digests = []
        for index in range(count):
            payload = bytes([index]) * size
            digest = digest_of(payload)
            store.store_bytes(payload, digest)
            digests.append(digest)
        return digests

    def test_gc_respects_budget_oldest_first(self, store):
        digests = self._populate(store, 4)
        # Ages: refresh the two newest so the two oldest are victims.
        for digest in digests[2:]:
            path = os.path.join(store.root, "objects", object_relpath(digest))
            os.utime(path, (2_000_000_000, 2_000_000_000))
        for digest in digests[:2]:
            path = os.path.join(store.root, "objects", object_relpath(digest))
            os.utime(path, (1_000_000_000, 1_000_000_000))
        report = store.gc(budget_bytes=2 * 1024)
        assert report["evicted"] == 2
        assert not store.has(digests[0]) and not store.has(digests[1])
        assert store.has(digests[2]) and store.has(digests[3])

    def test_gc_never_evicts_pinned(self, store):
        digests = self._populate(store, 3)
        store.pin(digests[0], owner="run-a")
        report = store.gc(budget_bytes=0)
        assert store.has(digests[0])
        assert report["evicted"] == 2
        # Unpinned, the survivor becomes collectable.
        store.unpin(digests[0], owner="run-a")
        assert store.gc(budget_bytes=0)["evicted"] == 1

    def test_pin_is_per_owner(self, store):
        (digest,) = self._populate(store, 1)
        store.pin(digest, owner="a")
        store.pin(digest, owner="b")
        store.unpin(digest, owner="a")
        assert store.pinned(digest)
        store.unpin(digest, owner="b")
        assert not store.pinned(digest)

    def test_no_budget_gc_is_inventory_only(self, store):
        self._populate(store, 3)
        report = store.gc()
        assert report["evicted"] == 0
        assert report["scanned"] == 3

    def test_stats_counts_objects_and_bytes(self, store):
        self._populate(store, 2, size=512)
        stats = store.stats()
        assert stats["objects"] == 2
        assert stats["total_bytes"] == 2 * 512
