"""Concurrency safety of the CAS: racing writers may never tear an object.

Two layers:

* a **fork-based stress test** — real processes all storing the same
  digest (and materializing it back) at once, the exact co-located
  pool-worker / site-agent race the store's unique-temp-name + atomic
  rename protocol exists for;
* a **Hypothesis interleaving** — two logical actors whose store /
  materialize / gc steps are interleaved in every order the shrinker
  finds interesting, with the invariant that a reader sees either a
  miss or the complete, digest-verified content — never torn bytes.
"""

import hashlib
import multiprocessing
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.cas import CASStore, object_relpath


def _digest(payload: bytes) -> str:
    return hashlib.sha256(payload).hexdigest()


def _race_store(root: str, payload: bytes, out_dir: str, index: int) -> None:
    store = CASStore(root, durable=False)
    digest = _digest(payload)
    assert store.store_bytes(payload, digest) == digest
    dest = os.path.join(out_dir, f"copy-{index}.bin")
    assert store.materialize(digest, dest) == len(payload)
    with open(dest, "rb") as handle:
        assert hashlib.sha256(handle.read()).hexdigest() == digest


class TestForkStress:
    def test_many_processes_store_same_digest(self, tmp_path):
        """N processes racing on one digest: exactly one object, no tears."""
        root = str(tmp_path / "cas")
        out_dir = str(tmp_path / "out")
        os.makedirs(out_dir)
        payload = os.urandom(256 * 1024)
        digest = _digest(payload)
        ctx = multiprocessing.get_context("fork")
        procs = [
            ctx.Process(target=_race_store, args=(root, payload, out_dir, index))
            for index in range(8)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        store = CASStore(root, durable=False)
        obj = os.path.join(root, "objects", object_relpath(digest))
        assert os.path.isfile(obj)
        with open(obj, "rb") as handle:
            assert hashlib.sha256(handle.read()).hexdigest() == digest
        # No leftover temp files from the race.
        leftovers = [
            name
            for dirpath, _, names in os.walk(os.path.join(root, "objects"))
            for name in names
            if ".part." in name
        ]
        assert leftovers == []
        assert store.stats()["objects"] == 1

    def test_store_file_race_from_processes(self, tmp_path):
        """store_file's copy-in staging also races safely."""
        src = tmp_path / "src.bin"
        payload = os.urandom(64 * 1024)
        src.write_bytes(payload)
        root = str(tmp_path / "cas")

        def worker() -> None:
            store = CASStore(root, durable=False)
            assert store.store_file(str(src)) == _digest(payload)

        ctx = multiprocessing.get_context("fork")
        procs = [ctx.Process(target=worker) for _ in range(6)]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        store = CASStore(root, durable=False)
        assert store.load_bytes(_digest(payload)) == payload


# Each actor's script: a sequence of (op, object-index) steps over a
# tiny object universe, so interleavings collide on the same digests.
_STEP = st.tuples(
    st.sampled_from(["store", "materialize", "load", "gc"]),
    st.integers(min_value=0, max_value=2),
)


class TestInterleaving:
    @given(
        script_a=st.lists(_STEP, max_size=6),
        script_b=st.lists(_STEP, max_size=6),
        schedule=st.lists(st.booleans(), max_size=12),
    )
    @settings(max_examples=40, deadline=None)
    def test_two_actors_never_observe_torn_state(
        self, tmp_path_factory, script_a, script_b, schedule
    ):
        tmp_path = tmp_path_factory.mktemp("interleave")
        root = str(tmp_path / "cas")
        payloads = [bytes([33 + index]) * (1024 * (index + 1)) for index in range(3)]
        digests = [_digest(payload) for payload in payloads]
        actors = [
            (CASStore(root, durable=False), list(script_a), "a"),
            (CASStore(root, durable=False), list(script_b), "b"),
        ]
        dest_counter = [0]

        def run_step(store: CASStore, op: str, index: int, tag: str) -> None:
            digest = digests[index]
            if op == "store":
                result = store.store_bytes(payloads[index], digest)
                assert result == digest
            elif op == "materialize":
                dest_counter[0] += 1
                dest = os.path.join(
                    str(tmp_path), f"out-{tag}-{dest_counter[0]}.bin"
                )
                nbytes = store.materialize(digest, dest)
                if nbytes is not None:  # a hit must be the true content
                    with open(dest, "rb") as handle:
                        assert handle.read() == payloads[index]
            elif op == "load":
                payload = store.load_bytes(digest)
                assert payload is None or payload == payloads[index]
            else:  # gc with a budget that keeps one object's worth
                store.gc(budget_bytes=2048)

        # Deterministic round-robin scheduler driven by the boolean tape.
        tape = iter(schedule + [True] * 24)
        while any(script for _, script, _ in actors):
            pick = 0 if next(tape) else 1
            store, script, tag = actors[pick]
            if not script:
                store, script, tag = actors[1 - pick]
            op, index = script.pop(0)
            run_step(store, op, index, tag)

        # Whatever survived GC must verify; counters stay consistent.
        survivor_store = CASStore(root, durable=False)
        for digest, payload in zip(digests, payloads):
            loaded = survivor_store.load_bytes(digest)
            assert loaded is None or loaded == payload
        assert survivor_store.counters()["corrupt_evictions"] == 0
