#!/usr/bin/env python
"""Layering check: ``repro.runtime`` must never import ``repro.core``.

The unified stage runtime is the layer *under* the stages — the flows
engine and the zambeze orchestrator execute runtime plans without the
local stage implementations, so an import edge from ``repro.runtime``
into ``repro.core`` would invert the architecture (and reintroduce the
cycle the refactor removed).  This script walks the runtime package's
ASTs and fails loudly on any ``import``/``from`` that resolves into a
forbidden layer.  Run from the repo root:

    python tools/check_layering.py

Exit status 0 = clean, 1 = violation(s) printed to stderr.
"""

from __future__ import annotations

import ast
import os
import sys

# (package under scrutiny, layers it must not import)
RULES = [
    ("src/repro/runtime", ("repro.core",)),
    # The local workflow must run with zero control-plane dependency:
    # repro.server drives core remotely, never the other way around.
    ("src/repro/core", ("repro.server",)),
    ("src/repro/runtime", ("repro.server",)),
    # The stages are instrument-agnostic: they reach MODIS/ABI only
    # through the repro.instruments registry interface, never directly —
    # that's what keeps data sources pluggable.
    ("src/repro/core", ("repro.modis", "repro.abi")),
    # And the interface layer must not depend on its consumers.
    ("src/repro/instruments", ("repro.core", "repro.server")),
    # The content-addressed store is a leaf shared by stages, pool
    # workers, and site agents: it may depend only on the bottom
    # utility layer, never on any of its consumers.
    ("src/repro/cas", ("repro.core", "repro.server", "repro.runtime",
                       "repro.instruments", "repro.modis", "repro.abi")),
]


def imported_modules(tree: ast.AST):
    """Yield (module_name, line) for every import statement in the tree."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield alias.name, node.lineno
        elif isinstance(node, ast.ImportFrom):
            # Relative imports (level > 0) stay inside the package and
            # cannot cross into another top-level layer.
            if node.level == 0 and node.module:
                yield node.module, node.lineno


def violations(package_dir: str, forbidden: tuple) -> list:
    found = []
    for dirpath, _dirnames, filenames in os.walk(package_dir):
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            with open(path, encoding="utf-8") as handle:
                tree = ast.parse(handle.read(), filename=path)
            for module, line in imported_modules(tree):
                for layer in forbidden:
                    if module == layer or module.startswith(layer + "."):
                        found.append(f"{path}:{line}: imports {module} "
                                     f"(forbidden layer {layer})")
    return found


def main(root: str = ".") -> int:
    failures = []
    for package, forbidden in RULES:
        package_dir = os.path.join(root, package)
        if not os.path.isdir(package_dir):
            failures.append(f"{package_dir}: package not found")
            continue
        failures.extend(violations(package_dir, tuple(forbidden)))
    if failures:
        for failure in failures:
            print(failure, file=sys.stderr)
        return 1
    print("layering ok: runtime, core, instruments, and cas respect "
          "the forbidden-layer rules")
    return 0


if __name__ == "__main__":
    sys.exit(main())
