#!/usr/bin/env python
"""From labelled tiles to distributed-training shards.

The abstract's closing claim: the workflow's throughput "is essential for
dynamic tokenization and sharding of petascale satellite data for
distributed AI model training and inferencing at scale across thousands
of GPUs."  This example is that consumer: run the workflow, then pack the
labelled tile files into class-interleaved shards, patchify a shard into
ViT tokens, and assign shards to simulated GPU ranks with a balanced
partition.

Run:  python examples/training_shards.py
"""

import os
import tempfile
from collections import Counter

from repro.core import EOMLWorkflow, load_config
from repro.core.sharding import assign_to_ranks, plan_shards, tokenize, write_shards
from repro.modis import MINI_SWATH, LaadsArchive
from repro.netcdf import read as nc_read

SEED = 21
SHARD_SIZE = 64
WORLD_SIZE = 8


def main() -> None:
    with tempfile.TemporaryDirectory() as root:
        config = load_config(
            {
                "archive": {"start_date": "2022-01-01", "max_granules_per_day": 4,
                            "seed": SEED},
                "paths": {
                    "staging": f"{root}/raw",
                    "preprocessed": f"{root}/tiles",
                    "transfer_out": f"{root}/outbox",
                    "destination": f"{root}/orion",
                },
                "preprocess": {"workers": 4, "tile_size": 16},
                "inference": {"num_classes": 6},
            }
        )
        print("running the workflow to produce labelled tiles ...")
        report = EOMLWorkflow(config, archive=LaadsArchive(seed=SEED, swath=MINI_SWATH)).run()
        labelled = sorted(
            os.path.join(config.destination, name)
            for name in os.listdir(config.destination)
        )
        print(f"{report.labelled_tiles} labelled tiles across {len(labelled)} files")

        shards = plan_shards(labelled, shard_size=SHARD_SIZE, class_interleave=True,
                             seed=SEED)
        print(f"\nplanned {len(shards)} shards of <= {SHARD_SIZE} tiles:")
        for shard in shards:
            histogram = Counter(shard.class_histogram)
            mix = " ".join(f"c{k}:{v}" for k, v in sorted(histogram.items()))
            print(f"  shard {shard.shard_id}: {shard.size:3d} tiles  [{mix}]")

        out = write_shards(shards, f"{root}/shards")
        first = nc_read(out[0])
        tiles = first["radiance"].data
        tokens = tokenize(tiles, patch_size=4)
        print(f"\nshard 0 materialized: {tiles.shape} tiles -> "
              f"{tokens.shape} ViT tokens (patch 4x4)")

        assignment = assign_to_ranks(shards, world_size=WORLD_SIZE)
        sizes = {s.shard_id: s.size for s in shards}
        print(f"\nassignment across {WORLD_SIZE} ranks (tiles per rank):")
        for rank, shard_ids in enumerate(assignment):
            load = sum(sizes[s] for s in shard_ids)
            print(f"  rank {rank}: shards {shard_ids} -> {load} tiles")
        loads = [sum(sizes[s] for s in ranks) for ranks in assignment]
        nonzero = [l for l in loads if l]
        if nonzero:
            print(f"balance: max/min = {max(nonzero) / min(nonzero):.2f}")


if __name__ == "__main__":
    main()
