#!/usr/bin/env python
"""AICCA atlas demo: classify ocean-cloud tiles on a swath (Fig. 1 analog).

Builds a training corpus of ocean-cloud tiles from several synthetic
MODIS granules, trains the rotationally invariant autoencoder +
agglomerative clustering (RICC), evaluates cluster quality, and then
classifies a held-out swath — printing the per-class physical-property
table and an ASCII map of class labels across the swath's tile grid
(the textual cousin of the paper's Fig. 1b).

Run:  python examples/aicca_atlas.py
"""

import datetime as dt

import numpy as np

from repro.core.tiles import extract_tiles
from repro.modis import MINI_SWATH, GranuleId, generate_granule
from repro.ricc import AICCAModel

TRAIN_GRANULES = 6
NUM_CLASSES = 8  # 42 in the paper; scaled to the corpus size here
SEED = 7


def granule_tiles(index: int, date: dt.date):
    """Extract ocean-cloud tiles for one granule (MOD02 + MOD06 fusion)."""
    mod02 = generate_granule(GranuleId("MOD021KM", date, index), MINI_SWATH, seed=SEED)
    mod03 = generate_granule(GranuleId("MOD03", date, index), MINI_SWATH, seed=SEED)
    mod06 = generate_granule(GranuleId("MOD06_L2", date, index), MINI_SWATH, seed=SEED)
    return extract_tiles(
        radiance=mod02["radiance"].data,
        cloud_mask=mod06["cloud_mask"].data.astype(bool),
        land_mask=mod06["land_mask"].data.astype(bool),
        latitude=mod03["latitude"].data,
        longitude=mod03["longitude"].data,
        tile_size=MINI_SWATH.tile_size,
        optical_thickness=mod06["cloud_optical_thickness"].data,
        cloud_top_pressure=mod06["cloud_top_pressure"].data,
        source=mod02.get_attr("granule"),
    ), mod02.get_attr("true_regime")


def main() -> None:
    date = dt.date(2022, 1, 1)
    train_tiles, regimes = [], []
    for index in range(TRAIN_GRANULES):
        tiles, regime = granule_tiles(index, date)
        train_tiles.extend(tiles)
        regimes.extend([regime] * len(tiles))
    corpus = np.stack([t.data for t in train_tiles])
    print(f"training corpus: {corpus.shape[0]} ocean-cloud tiles "
          f"({corpus.shape[1]}x{corpus.shape[2]}x{corpus.shape[3]}) from "
          f"{TRAIN_GRANULES} granules, regimes: {sorted(set(regimes))}")

    model, history = AICCAModel.train(
        corpus, num_classes=NUM_CLASSES, latent_dim=8, hidden=(96,),
        epochs=12, lr=2e-3, seed=SEED,
    )
    print(f"trained RICC: loss {history[0].loss:.4f} -> {history[-1].loss:.4f}, "
          f"invariance {history[0].invariance_loss:.4f} -> {history[-1].invariance_loss:.4f}")

    report = model.evaluate(corpus)
    print(f"cluster quality: silhouette {report.silhouette:.3f}, "
          f"stability {report.stability:.3f} over {report.n_clusters} classes")

    # Classify a held-out granule and draw its tile-label map.
    held_out, regime = granule_tiles(TRAIN_GRANULES + 3, date)
    if not held_out:
        print("held-out granule had no ocean-cloud tiles; try another index")
        return
    tiles_array = np.stack([t.data for t in held_out])
    labels = model.assign(tiles_array)
    stats = model.class_statistics(
        labels,
        {
            "optical_thickness": np.array([t.mean_optical_thickness for t in held_out]),
            "cloud_top_pressure": np.array([t.mean_cloud_top_pressure for t in held_out]),
            "cloud_fraction": np.array([t.cloud_fraction for t in held_out]),
        },
    )
    print(f"\nheld-out swath (true regime: {regime}): "
          f"{len(held_out)} ocean-cloud tiles classified")
    print(f"{'class':>5} {'tiles':>5} {'mean COT':>9} {'mean CTP':>9} {'mean CF':>8}")
    for s in stats:
        print(f"{s.label:>5} {s.count:>5} {s.mean_optical_thickness:>9.2f} "
              f"{s.mean_cloud_top_pressure:>9.1f} {s.mean_cloud_fraction:>8.2f}")

    rows = MINI_SWATH.tile_rows
    cols = MINI_SWATH.tile_cols
    grid = [["."] * cols for _ in range(rows)]
    for tile, label in zip(held_out, labels):
        grid[tile.row][tile.col] = "0123456789abcdefghijklmnopqrstuvwxyz"[label % 36]
    print("\ntile-label map ('.' = land / clear / rejected):")
    for row in grid:
        print("  " + " ".join(row))

    # Fig. 1 as actual images: (a) the swath composite, (b) the class map.
    import numpy as _np

    from repro.modis.quicklook import class_map, swath_composite, write_ppm

    gid = GranuleId("MOD021KM", date, TRAIN_GRANULES + 3)
    ds02 = generate_granule(gid, MINI_SWATH, seed=SEED)
    ds06 = generate_granule(GranuleId("MOD06_L2", date, TRAIN_GRANULES + 3),
                            MINI_SWATH, seed=SEED)
    composite = swath_composite(
        ds02["radiance"].data,
        list(_np.asarray(ds02.get_attr("band_list"))),
        land_mask=ds06["land_mask"].data.astype(bool),
    )
    write_ppm("fig1a_swath.ppm", composite)
    labels_by_grid = {(t.row, t.col): int(l) for t, l in zip(held_out, labels)}
    write_ppm(
        "fig1b_classes.ppm",
        class_map((MINI_SWATH.lines, MINI_SWATH.pixels), MINI_SWATH.tile_size,
                  labels_by_grid, num_classes=NUM_CLASSES),
    )
    print("\nwrote fig1a_swath.ppm and fig1b_classes.ppm (view with any image tool)")


if __name__ == "__main__":
    main()
