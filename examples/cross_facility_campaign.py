#!/usr/bin/env python
"""Cross-facility campaign: EO-ML as Zambeze-style orchestrated activities.

Section V-A plans to "use the Zambeze orchestration framework to
facilitate remote configuration, invocation, and monitoring of workflow
components" across DOE facilities.  This example runs the EO-ML stages as
a campaign: OLCF's agent offers download + preprocess, a second
facility's agent offers the downstream class analysis, credentials gate
each dispatch, and the orchestrator routes activities by capability.

The plugins call the *real* workflow stages on synthetic granules.

Run:  python examples/cross_facility_campaign.py
"""

import tempfile

import numpy as np

from repro.core import DownloadStage, PreprocessStage, load_config
from repro.modis import MINI_SWATH, LaadsArchive
from repro.netcdf import read as nc_read
from repro.ricc import AICCAModel
from repro.zambeze import (
    ActivityKind,
    Campaign,
    CampaignActivity,
    FacilityAgent,
    MessageBus,
    Orchestrator,
)

SEED = 13


def main() -> None:
    with tempfile.TemporaryDirectory() as root:
        config = load_config(
            {
                "archive": {"start_date": "2022-01-01", "max_granules_per_day": 3,
                            "seed": SEED},
                "paths": {
                    "staging": f"{root}/raw",
                    "preprocessed": f"{root}/tiles",
                    "transfer_out": f"{root}/outbox",
                    "destination": f"{root}/orion",
                },
                "preprocess": {"workers": 4, "tile_size": 16},
            }
        )
        archive = LaadsArchive(seed=SEED, swath=MINI_SWATH)
        state = {}

        # -- facility plugins wrap the real stages -------------------------
        def download_plugin(params):
            report = DownloadStage(config, archive=archive).run()
            state["granule_sets"] = report.granule_sets
            return {"files": report.files, "bytes": report.nbytes}

        def preprocess_plugin(params):
            report = PreprocessStage(config).run(state["granule_sets"])
            state["tile_paths"] = [r.tile_path for r in report.results if r.tile_path]
            return {"tiles": report.total_tiles, "files": len(state["tile_paths"])}

        def analyze_plugin(params):
            tiles = np.concatenate(
                [nc_read(p)["radiance"].data for p in state["tile_paths"]]
            ).astype(np.float32)
            model, _ = AICCAModel.train(
                tiles, num_classes=params["classes"], latent_dim=6, hidden=(48,),
                epochs=6, seed=SEED,
            )
            labels = model.assign(tiles)
            unique, counts = np.unique(labels, return_counts=True)
            return {int(u): int(c) for u, c in zip(unique, counts)}

        # -- the fabric: bus, credentialed agents, orchestrator ------------
        bus = MessageBus()
        orchestrator = Orchestrator(
            bus, credentials={"olcf": "olcf-token", "nersc": "nersc-token"}
        )
        olcf = FacilityAgent("olcf", bus, credential="olcf-token")
        olcf.register_plugin("laads-download", download_plugin)
        olcf.register_plugin("preprocess", preprocess_plugin)
        nersc = FacilityAgent("nersc", bus, credential="nersc-token")
        nersc.register_plugin("cloud-analysis", analyze_plugin)
        orchestrator.register_agent(olcf)
        orchestrator.register_agent(nersc)

        campaign = Campaign(
            "eo-ml-cross-facility",
            [
                CampaignActivity("download", ActivityKind.COMPUTE, facility="olcf",
                                 capability="laads-download"),
                CampaignActivity("preprocess", ActivityKind.COMPUTE, facility="olcf",
                                 capability="preprocess", depends_on=["download"],
                                 max_retries=1),
                CampaignActivity("analyze", ActivityKind.COMPUTE,
                                 capability="cloud-analysis",
                                 parameters={"classes": 5},
                                 depends_on=["preprocess"]),
            ],
        )

        print(f"running campaign {campaign.name!r} across "
              f"{sorted(orchestrator.agents)} ...")
        report = orchestrator.run(campaign)

        print(f"\ncampaign succeeded: {report.succeeded} "
              f"({report.dispatches} dispatches, {report.retries} retries)")
        for name, status in report.statuses.items():
            print(f"  {name:<10} {status:<10} -> {report.results.get(name)}")
        print(f"\nOLCF executed {olcf.executed} activities; "
              f"NERSC executed {nersc.executed}")
        print("\nmessage-bus log (first dispatch/status events):")
        for event in list(orchestrator.log)[:6]:
            print(f"  {event}")


if __name__ == "__main__":
    main()
