#!/usr/bin/env python
"""Scaling study: regenerate Figs. 4-5 and Table I on the facility model.

Sweeps workers (1..128) and nodes (1..10) for strong and weak scaling of
the preprocessing stage on the simulated Defiant cluster, printing every
measurement next to the paper's published value, then fits the Universal
Scalability Law to the measured curves to recover contention parameters.

Run:  python examples/scaling_study.py
"""

import numpy as np

from repro.analysis import (
    HEADLINE,
    TABLE1_STRONG_NODES,
    TABLE1_STRONG_WORKERS,
    TABLE1_WEAK_NODES,
    TABLE1_WEAK_WORKERS,
    headline_run,
    render_comparison,
    shape_error,
    strong_scaling_nodes,
    strong_scaling_workers,
    weak_scaling_nodes,
    weak_scaling_workers,
)
from repro.hpc import fit_usl


def main() -> None:
    print("strong scaling over workers (Fig. 4a / Table I)...")
    sw = strong_scaling_workers(repeats=5)
    print(render_comparison("workers", sw.throughput_map(), TABLE1_STRONG_WORKERS))
    print(f"shape deviation: {shape_error(sw.throughput_map(), TABLE1_STRONG_WORKERS):.3f}\n")

    print("strong scaling over nodes (Fig. 4b / Table I)...")
    sn = strong_scaling_nodes(repeats=5)
    print(render_comparison("nodes", sn.throughput_map(), TABLE1_STRONG_NODES))
    print(f"shape deviation: {shape_error(sn.throughput_map(), TABLE1_STRONG_NODES):.3f}\n")

    print("weak scaling over workers (Fig. 5a / Table I)...")
    ww = weak_scaling_workers(repeats=5)
    print(render_comparison("workers", ww.throughput_map(), TABLE1_WEAK_WORKERS))

    print("\nweak scaling over nodes (Fig. 5b / Table I)...")
    wn = weak_scaling_nodes(repeats=5)
    print(render_comparison("nodes", wn.throughput_map(), TABLE1_WEAK_NODES))
    times = wn.completion_map()
    print(f"weak-node completion spread (ideal = flat): "
          f"{times[10] / times[1]:.2f}x from 1 to 10 nodes\n")

    # Recover the contention law from our own measurements, as an analyst
    # would from Table I.
    counts = [p.concurrency for p in sw.points if p.concurrency <= 64]
    tputs = [p.mean_tiles_per_s for p in sw.points if p.concurrency <= 64]
    model, base = fit_usl(counts, tputs)
    print(f"USL fit to measured worker curve: sigma={model.sigma:.3f} "
          f"kappa={model.kappa:.5f} base={base:.2f} tiles/s "
          f"(peak concurrency ~ {model.peak_concurrency():.0f} workers)")

    head = headline_run(repeats=5)
    print(f"\nheadline: {head.tiles} tiles on 80 workers / 10 nodes in "
          f"{head.mean_seconds:.1f}s +/- {head.std_seconds:.1f} "
          f"(paper: {HEADLINE['seconds']}s)")


if __name__ == "__main__":
    main()
