#!/usr/bin/env python
"""Define the EO-ML pipeline in CWL, compile it, run it on the flow engine.

Section V-A: "our goal is to enable users to define, customize, and
execute EO-ML workflows using high-level languages like the Common
Workflow Language (CWL) or Globus Flows."  Here a domain scientist writes
the pipeline as a CWL Workflow (YAML); the compiler turns it into a flow
definition; the engine runs it against action providers backed by the
real stages; the published registry then shares it for reuse.

Run:  python examples/cwl_pipeline.py
"""

import tempfile

import numpy as np

from repro.core import DownloadStage, PreprocessStage, load_config
from repro.flows import FlowRegistry, FlowsEngine, cwl_to_flow, extract_outputs
from repro.modis import MINI_SWATH, LaadsArchive
from repro.netcdf import read as nc_read
from repro.ricc import AICCAModel
from repro.sim import Simulation
from repro.util.yamlish import loads as yaml_loads

SEED = 17

CWL_DOCUMENT = """
cwlVersion: v1.2
class: Workflow
doc: EO-ML cloud classification, user-authored in CWL
inputs:
  day: string
  max_granules: int
  classes: int
outputs:
  class_histogram:
    outputSource: classify/histogram
steps:
  acquire:
    run: laads-download
    in:
      day: day
      max_granules: max_granules
    out: [granule_sets]
  tile:
    run: tile-preprocess
    in:
      granule_sets: acquire/granule_sets
    out: [tile_files]
  classify:
    run: aicca-classify
    in:
      tile_files: tile/tile_files
      classes: classes
    out: [histogram]
"""


def main() -> None:
    with tempfile.TemporaryDirectory() as root:
        config = load_config(
            {
                "archive": {"start_date": "2022-01-01", "max_granules_per_day": 3,
                            "seed": SEED},
                "paths": {
                    "staging": f"{root}/raw",
                    "preprocessed": f"{root}/tiles",
                    "transfer_out": f"{root}/outbox",
                    "destination": f"{root}/orion",
                },
                "preprocess": {"workers": 4, "tile_size": 16},
            }
        )
        archive = LaadsArchive(seed=SEED, swath=MINI_SWATH)
        state = {}

        def download_provider(engine, params):
            report = DownloadStage(config, archive=archive).run()
            state["sets"] = report.granule_sets[: params["max_granules"]]
            return {"granule_sets": [g.key for g in state["sets"]]}

        def preprocess_provider(engine, params):
            report = PreprocessStage(config).run(state["sets"])
            paths = [r.tile_path for r in report.results if r.tile_path]
            return {"tile_files": paths}

        def classify_provider(engine, params):
            tiles = np.concatenate(
                [nc_read(p)["radiance"].data for p in params["tile_files"]]
            ).astype(np.float32)
            model, _ = AICCAModel.train(
                tiles, num_classes=params["classes"], latent_dim=6, hidden=(48,),
                epochs=6, seed=SEED,
            )
            unique, counts = np.unique(model.assign(tiles), return_counts=True)
            return {"histogram": {int(u): int(c) for u, c in zip(unique, counts)}}

        doc = yaml_loads(CWL_DOCUMENT)
        definition, order = cwl_to_flow(doc)
        print(f"compiled CWL workflow: steps {order} -> "
              f"{len(definition['States'])} flow states")

        sim = Simulation()
        engine = FlowsEngine(
            sim,
            {
                "laads-download": download_provider,
                "tile-preprocess": preprocess_provider,
                "aicca-classify": classify_provider,
            },
            action_latency=0.05,
        )
        run = engine.run(definition, {"day": "2022-01-01", "max_granules": 3, "classes": 5})
        sim.run()
        print(f"flow run {run.status.value} in {run.duration:.2f} simulated seconds "
              f"({len(run.history)} states)")

        outputs = extract_outputs(doc, run.document)
        print(f"workflow outputs: {outputs}")

        registry = FlowRegistry()
        published = registry.publish(
            "eo-ml-cwl", definition, owner="climate-team",
            description="compiled from CWL", tags=["climate", "cwl"],
        )
        print(f"published to the federated registry as "
              f"{published.name} v{published.version}; "
              f"searchable: {[f.name for f in registry.search('cwl')]}")


if __name__ == "__main__":
    main()
