#!/usr/bin/env python
"""Multi-facility simulation: the full Fig. 2 pipeline on the DES twin.

Runs the simulated end-to-end workflow — LAADS downloads through Globus
Compute, the download barrier, Parsl-over-Slurm preprocessing on Defiant,
the asynchronous monitor + Globus Flow inference, and Globus Transfer
shipment to Frontier/Orion — then prints the Fig. 6 worker timeline, the
Fig. 7 latency breakdown, and the automation event log's highlights.

Run:  python examples/multi_facility_simulation.py
"""

from repro.analysis import automation_timeline, latency_breakdown, render_table
from repro.core import SimWorkflowParams


def main() -> None:
    params = SimWorkflowParams(num_granule_sets=40, seed=1)

    print("== Fig. 6: automation timeline ==")
    timeline = automation_timeline(params, samples=300)
    print(timeline.render())
    print(f"inference overlapped the preprocessing tail by {timeline.overlap_s:.1f}s")
    print(render_table(
        ["stage", "worker-seconds"],
        [(stage, round(ws, 1)) for stage, ws in timeline.worker_seconds.items()],
        title="resource usage",
    ))

    print("\n== Fig. 7: latency breakdown ==")
    breakdown = latency_breakdown(params)
    print(render_table(
        ["stage", "seconds"],
        [(name, round(seconds, 3)) for name, seconds in breakdown.rows()],
    ))
    print(render_table(
        ["hop", "gap (s)"],
        [(name, round(gap, 3)) for name, gap in breakdown.gaps.items()],
        title="inter-stage gaps (the paper calls these 'inconsequential')",
    ))
    print(f"end-to-end makespan: {breakdown.makespan_s:.1f}s for "
          f"{params.num_granule_sets} granule sets "
          f"({params.num_granule_sets * params.tiles_per_file} tiles)")


if __name__ == "__main__":
    main()
