#!/usr/bin/env python
"""Quickstart: the full five-stage EO-ML workflow on a laptop.

Configures the workflow exactly the way the paper's users do — a YAML
document — then runs the real pipeline end to end on synthetic MODIS
granules: download -> preprocess -> monitor & trigger -> inference ->
shipment.  Prints the per-stage report and a terminal rendering of the
Fig. 6-style worker timeline.

Run:  python examples/quickstart.py
"""

import tempfile

from repro.core import EOMLWorkflow, load_config
from repro.modis import MINI_SWATH, LaadsArchive
from repro.util.units import format_bytes

CONFIG_YAML = """
name: quickstart
archive:
  products: [MOD02, MOD03, MOD06]
  start_date: 2022-01-01        # the paper's benchmark day
  max_granules_per_day: 3
  seed: 42
paths:
  staging: {root}/raw
  preprocessed: {root}/tiles
  transfer_out: {root}/outbox
  destination: {root}/orion
download:
  workers: 3                    # Fig. 6's allocation
preprocess:
  workers: 4
  tile_size: 16
  cloud_threshold: 0.3
inference:
  workers: 1
shipment:
  enabled: true
"""


def main() -> None:
    with tempfile.TemporaryDirectory() as root:
        config = load_config(CONFIG_YAML.format(root=root))
        # MINI_SWATH keeps granules laptop-sized; the structure (three
        # products, tiling, masks) is identical to the full-scale system.
        workflow = EOMLWorkflow(config, archive=LaadsArchive(seed=config.seed, swath=MINI_SWATH))

        print(f"running workflow {config.name!r} for {config.start_date} ...")
        report = workflow.run()

        print("\n== stage report ==")
        print(f"download:   {report.download.files} files, "
              f"{format_bytes(report.download.nbytes)} in {report.download.seconds:.2f}s")
        print(f"preprocess: {report.total_tiles} ocean-cloud tiles from "
              f"{len(report.preprocess.results)} granules "
              f"({report.preprocess.throughput_tiles_per_s:.1f} tiles/s)")
        print(f"inference:  {report.labelled_tiles} tiles labelled across "
              f"{len(report.inference)} files")
        if report.shipment:
            print(f"shipment:   {len(report.shipment.moved)} files "
                  f"({format_bytes(report.shipment.nbytes)}) delivered to Orion stand-in")
        if report.errors:
            print(f"errors: {report.errors}")

        print("\n== stage latency breakdown (Fig. 7 analog) ==")
        for stage in report.breakdown:
            print(f"  {stage.stage:<12} {stage.duration:8.3f}s")

        print("\n== worker timeline (Fig. 6 analog) ==")
        print(report.timeline.render())


if __name__ == "__main__":
    main()
