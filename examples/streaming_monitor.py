#!/usr/bin/env python
"""Streaming inference: classify granules as they arrive.

Section V motivates "inferring with batch as well as streaming data" for
environmental situational awareness.  This example downloads a stream of
granule sets, pushes each through preprocess + classify the moment it
lands, and prints rolling class statistics and the class-mix drift signal
between the first and second halves of the stream.

Run:  python examples/streaming_monitor.py
"""

import tempfile

import numpy as np

from repro.core import DownloadStage, PreprocessStage, StreamingClassifier, load_config
from repro.modis import MINI_SWATH, LaadsArchive
from repro.netcdf import read as nc_read
from repro.ricc import AICCAModel

SEED = 5


def main() -> None:
    with tempfile.TemporaryDirectory() as root:
        config = load_config(
            {
                "archive": {"start_date": "2022-01-01", "max_granules_per_day": 8,
                            "seed": SEED},
                "paths": {
                    "staging": f"{root}/raw",
                    "preprocessed": f"{root}/tiles",
                    "transfer_out": f"{root}/outbox",
                    "destination": f"{root}/orion",
                },
                "preprocess": {"workers": 4, "tile_size": 16},
            }
        )
        archive = LaadsArchive(seed=SEED, swath=MINI_SWATH)

        print("downloading the granule stream...")
        download = DownloadStage(config, archive=archive).run()

        # Train the atlas on the first two granule sets.
        boot = PreprocessStage(config).run(download.granule_sets[:2])
        corpus = np.concatenate(
            [nc_read(r.tile_path)["radiance"].data for r in boot.results if r.tile_path]
        ).astype(np.float32)
        model, _ = AICCAModel.train(
            corpus, num_classes=6, latent_dim=8, hidden=(64,), epochs=8, seed=SEED
        )
        print(f"atlas trained on {corpus.shape[0]} tiles, {model.num_classes} classes")

        streamer = StreamingClassifier(model=model, config=config)
        print("\nstreaming the remaining granules:")
        for batch in streamer.run(iter(download.granule_sets[2:])):
            top = ", ".join(f"c{label}:{count}" for label, count in
                            sorted(batch.class_counts.items())[:4])
            print(f"  {batch.key}: {batch.tiles:3d} tiles in {batch.seconds:5.2f}s  [{top}]")

        print(f"\ntotals: {streamer.total_tiles} tiles; dominant classes: "
              f"{streamer.dominant_classes(top=3)}")
        rate = streamer.recent_rate_tiles_per_s()
        print(f"rolling throughput: {rate:.1f} tiles/s")
        halves = len(streamer.history) // 2
        if halves >= 1 and len(streamer.history) >= 2 * halves:
            drift = streamer.class_drift(halves, halves)
            print(f"class-mix drift between stream halves: {drift:.3f} "
                  "(0 = identical cloud populations)")


if __name__ == "__main__":
    main()
