#!/usr/bin/env python
"""Foundation-model adaptation: fine-tune and merge RICC models.

Section V: foundation models "can be further adapted for a host of new
tasks and applications via fine tuning, requiring relatively less amount
of data", and the pipeline "will evolve to facilitate model merging, data
efficient learning".  This example:

1. pretrains a RICC "foundation" autoencoder on a broad tile corpus;
2. adapts it to a small, distribution-shifted dataset by fine-tuning
   with frozen early layers, versus training from scratch on the same
   small data (the data-efficiency comparison);
3. merges two sibling adaptations into one model and shows the merged
   model serves both regimes.

Run:  python examples/model_adaptation.py
"""

import copy
import datetime as dt

import numpy as np

from repro.core.tiles import extract_tiles
from repro.modis import MINI_SWATH, GranuleId, generate_granule
from repro.ricc import RotationInvariantAutoencoder, fine_tune, merge_models

SEED = 23


def corpus_tiles(granules, seed):
    date = dt.date(2022, 1, 1)
    tiles = []
    for index in range(granules):
        mod02 = generate_granule(GranuleId("MOD021KM", date, index), MINI_SWATH, seed=seed)
        mod06 = generate_granule(GranuleId("MOD06_L2", date, index), MINI_SWATH, seed=seed)
        mod03 = generate_granule(GranuleId("MOD03", date, index), MINI_SWATH, seed=seed)
        tiles.extend(
            extract_tiles(
                radiance=mod02["radiance"].data,
                cloud_mask=mod06["cloud_mask"].data.astype(bool),
                land_mask=mod06["land_mask"].data.astype(bool),
                latitude=mod03["latitude"].data,
                longitude=mod03["longitude"].data,
                tile_size=MINI_SWATH.tile_size,
            )
        )
    return np.stack([t.data for t in tiles])


def main() -> None:
    print("pretraining the foundation model on a broad corpus ...")
    foundation = RotationInvariantAutoencoder(
        (MINI_SWATH.tile_size, MINI_SWATH.tile_size, 6), latent_dim=8, hidden=(96,),
        seed=SEED,
    )
    broad = corpus_tiles(granules=5, seed=SEED)
    foundation.train(broad, epochs=15, batch_size=32, lr=2e-3, seed=SEED)
    print(f"  corpus {broad.shape[0]} tiles; "
          f"reconstruction error {foundation.reconstruction_error(broad):.5f}")

    # Two shifted target domains (e.g. successor sensors / new regions).
    domain_a = 1.05 - corpus_tiles(granules=2, seed=SEED + 50)
    domain_b = corpus_tiles(granules=2, seed=SEED + 80)[:, :, :, ::-1] * 0.9

    print("\n-- data-efficient adaptation (small target data) --")
    adapted = copy.deepcopy(foundation)
    fine_tune(adapted, domain_a, freeze_encoder_layers=1, epochs=8, lr=1e-3, seed=1)

    scratch = RotationInvariantAutoencoder(
        (MINI_SWATH.tile_size, MINI_SWATH.tile_size, 6), latent_dim=8, hidden=(96,),
        seed=SEED + 1,
    )
    scratch.train(domain_a, epochs=8, batch_size=32, lr=1e-3, seed=1)

    print(f"  domain A ({domain_a.shape[0]} tiles):")
    print(f"    foundation (unadapted): {foundation.reconstruction_error(domain_a):.5f}")
    print(f"    fine-tuned:             {adapted.reconstruction_error(domain_a):.5f}")
    print(f"    trained from scratch:   {scratch.reconstruction_error(domain_a):.5f}")

    print("\n-- model merging (two sibling adaptations) --")
    sibling_b = copy.deepcopy(foundation)
    fine_tune(sibling_b, domain_b, freeze_encoder_layers=1, epochs=8, lr=1e-3, seed=2)
    merged = merge_models([adapted, sibling_b])
    rows = [
        ("adapted-to-A", adapted),
        ("adapted-to-B", sibling_b),
        ("merged", merged),
    ]
    print(f"  {'model':<14}{'err(A)':>10}{'err(B)':>10}{'err(broad)':>12}")
    for name, model in rows:
        print(f"  {name:<14}{model.reconstruction_error(domain_a):>10.5f}"
              f"{model.reconstruction_error(domain_b):>10.5f}"
              f"{model.reconstruction_error(broad):>12.5f}")


if __name__ == "__main__":
    main()
