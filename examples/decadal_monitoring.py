#!/usr/bin/env python
"""Decadal monitoring: detect cloud-population change from AICCA labels.

The paper's science goal: "classifying different cloud types over the
oceans and monitoring their changes over decades" (Section V).  This
example simulates a multi-year archive in which closed-cell
stratocumulus gradually gives way to open-cell convection (the canonical
warming-response hypothesis), labels every year's tiles with a trained
atlas, and runs the Mann-Kendall trend detector over the per-class
frequency series.

Run:  python examples/decadal_monitoring.py
"""

import tempfile

import numpy as np

from repro.analysis import class_frequency_series, detect_changing_classes
from repro.core.tiles import Tile, tiles_to_dataset
from repro.modis.synthesis import synthesize_scene
from repro.netcdf import write as nc_write
from repro.ricc import AICCAModel

SEED = 31
TILE = 16
YEARS = range(2000, 2014)


def regime_tiles(regime: str, count: int, rng: np.random.Generator) -> np.ndarray:
    """Ocean-cloud tiles drawn from one generating regime."""
    tiles = []
    while len(tiles) < count:
        scene = synthesize_scene((TILE * 4, TILE * 4), rng, regime=regime)
        # Use optical thickness + CTP as a 2-channel "radiance" proxy so
        # the regimes are separable the way the real bands make them.
        stack = np.stack(
            [scene.tau / 30.0, scene.ctp / 1013.0], axis=-1
        ).astype(np.float32)
        for row in range(4):
            for col in range(4):
                block = stack[row * TILE:(row + 1) * TILE, col * TILE:(col + 1) * TILE]
                cloud = scene.cloud_mask[row * TILE:(row + 1) * TILE,
                                          col * TILE:(col + 1) * TILE]
                if cloud.mean() > 0.3:
                    tiles.append(block)
                if len(tiles) == count:
                    return np.stack(tiles)
    return np.stack(tiles)


def main() -> None:
    rng = np.random.default_rng(SEED)
    print("training the atlas on a mixed-regime corpus ...")
    corpus = np.concatenate([
        regime_tiles("closed_cell_sc", 80, rng),
        regime_tiles("open_cell_sc", 80, rng),
        regime_tiles("cirrus", 80, rng),
    ])
    model, _ = AICCAModel.train(
        corpus, num_classes=6, latent_dim=6, hidden=(64,), epochs=10, seed=SEED
    )

    with tempfile.TemporaryDirectory() as root:
        files_by_year = {}
        for year in YEARS:
            # The imposed change: closed-cell Sc share decays 70% -> 31%.
            closed_share = 0.7 - 0.03 * (year - 2000)
            n_total = 90
            n_closed = int(round(closed_share * n_total))
            n_open = int(round((0.9 - closed_share) * n_total))
            n_cirrus = n_total - n_closed - n_open
            tiles_arr = np.concatenate([
                regime_tiles("closed_cell_sc", n_closed, rng),
                regime_tiles("open_cell_sc", n_open, rng),
                regime_tiles("cirrus", n_cirrus, rng),
            ])
            labels = model.assign(tiles_arr)
            tile_objs = []
            for index in range(tiles_arr.shape[0]):
                tile_objs.append(
                    Tile(
                        data=tiles_arr[index], row=index, col=0,
                        latitude=-15.0, longitude=-85.0, cloud_fraction=0.6,
                        mean_optical_thickness=10.0, mean_cloud_top_pressure=800.0,
                        label=int(labels[index]),
                    )
                )
            path = f"{root}/labels_{year}.nc"
            nc_write(tiles_to_dataset(tile_objs, source=f"year-{year}"), path)
            files_by_year[str(year)] = [path]

        series = class_frequency_series(files_by_year, num_classes=model.num_classes)
        print(f"built a {len(series.periods)}-year frequency series over "
              f"{series.counts.sum()} labelled tiles\n")
        print("year  " + "  ".join(f"c{c}" for c in series.classes))
        for row, year in enumerate(series.periods):
            shares = "  ".join(f"{series.fractions[row, col]:.2f}"
                               for col in range(len(series.classes)))
            print(f"{year}  {shares}")

        changing = detect_changing_classes(series, alpha=0.05)
        print(f"\nMann-Kendall detections (alpha=0.05): {len(changing)} class(es)")
        for label, result in changing:
            print(f"  class {label}: {result.direction}, "
                  f"slope {result.slope * 100:+.2f} %/year, p={result.p_value:.2g}")
        if not changing:
            print("  (none — try more years or a stronger imposed drift)")


if __name__ == "__main__":
    main()
