#!/usr/bin/env python
"""Continual learning: periodic retraining without catastrophic forgetting.

Section V: "AI applications are continually trained periodically on new
data without catastrophically forgetting what had been learned
previously."  This example trains the RICC autoencoder on a first epoch
of MODIS-like tiles, then retrains on a later epoch whose cloud regimes
differ, comparing naive fine-tuning against Elastic Weight Consolidation
— the retained reconstruction quality on the original data is the
forgetting metric.

Run:  python examples/continual_learning.py
"""

import datetime as dt

import numpy as np

from repro.core.tiles import extract_tiles
from repro.modis import MINI_SWATH, GranuleId, generate_granule
from repro.ricc import EWCTrainer, RotationInvariantAutoencoder

SEED = 11


def epoch_tiles(date: dt.date, granules: int, seed: int) -> np.ndarray:
    """Ocean-cloud tiles for one data epoch."""
    tiles = []
    for index in range(granules):
        mod02 = generate_granule(GranuleId("MOD021KM", date, index), MINI_SWATH, seed=seed)
        mod06 = generate_granule(GranuleId("MOD06_L2", date, index), MINI_SWATH, seed=seed)
        mod03 = generate_granule(GranuleId("MOD03", date, index), MINI_SWATH, seed=seed)
        tiles.extend(
            extract_tiles(
                radiance=mod02["radiance"].data,
                cloud_mask=mod06["cloud_mask"].data.astype(bool),
                land_mask=mod06["land_mask"].data.astype(bool),
                latitude=mod03["latitude"].data,
                longitude=mod03["longitude"].data,
                tile_size=MINI_SWATH.tile_size,
            )
        )
    return np.stack([t.data for t in tiles])


def fresh_model() -> RotationInvariantAutoencoder:
    return RotationInvariantAutoencoder(
        (MINI_SWATH.tile_size, MINI_SWATH.tile_size, 6),
        latent_dim=8, hidden=(96,), seed=SEED,
    )


def successor_instrument(tiles: np.ndarray) -> np.ndarray:
    """Simulate a successor sensor (VIIRS-like): permuted band order and
    inverted radiometric calibration.  Continual learning across missions
    is exactly the enduring-observation scenario Section V raises."""
    permuted = tiles[:, :, :, ::-1]
    return (1.1 - permuted).astype(tiles.dtype)


def main() -> None:
    task_a = epoch_tiles(dt.date(2002, 7, 1), granules=4, seed=SEED)
    task_b = successor_instrument(epoch_tiles(dt.date(2022, 1, 1), granules=4, seed=SEED + 100))
    print(f"epoch A: {task_a.shape[0]} tiles (MODIS, 2002); "
          f"epoch B: {task_b.shape[0]} tiles (successor instrument, 2022)")

    # Baseline: train on A, then naively fine-tune on B.
    naive = fresh_model()
    naive.train(task_a, epochs=30, batch_size=32, lr=2e-3, seed=SEED)
    err_a_before = naive.reconstruction_error(task_a)
    naive.train(task_b, epochs=20, batch_size=32, lr=2e-3, seed=SEED + 1)

    # EWC: consolidate after A, penalize drift while training on B.
    protected = fresh_model()
    protected.train(task_a, epochs=30, batch_size=32, lr=2e-3, seed=SEED)
    trainer = EWCTrainer(protected, ewc_lambda=50.0)
    trainer.consolidate(task_a)
    trainer.train_task(task_b, epochs=20, batch_size=32, lr=2e-3, seed=SEED + 1)

    rows = [
        ("epoch A error after training A", err_a_before, err_a_before),
        ("epoch A error after training B", naive.reconstruction_error(task_a),
         protected.reconstruction_error(task_a)),
        ("epoch B error after training B", naive.reconstruction_error(task_b),
         protected.reconstruction_error(task_b)),
    ]
    print(f"\n{'':<34}{'naive':>10}{'EWC':>10}")
    for name, naive_err, ewc_err in rows:
        print(f"{name:<34}{naive_err:>10.5f}{ewc_err:>10.5f}")

    forgetting_naive = naive.reconstruction_error(task_a) / err_a_before
    forgetting_ewc = protected.reconstruction_error(task_a) / err_a_before
    print(f"\nforgetting factor (1.0 = none): naive {forgetting_naive:.2f}, "
          f"EWC {forgetting_ewc:.2f}")
    print(f"EWC penalty at end of training: {trainer.penalty():.6f}")


if __name__ == "__main__":
    main()
