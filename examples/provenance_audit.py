#!/usr/bin/env python
"""Provenance audit: trace every delivered product back to its sources.

Section V-A's reproducibility goal in action: run the workflow with
lineage recording on, then answer the questions an auditor (or a
scientist with a suspicious result) asks — where did this labelled file
come from, what would be invalidated if a granule were recalled, and
which activities must re-run to regenerate an artifact.

Run:  python examples/provenance_audit.py
"""

import tempfile

from repro.core import EOMLWorkflow, load_config
from repro.modis import MINI_SWATH, LaadsArchive
from repro.provenance import ancestry, build_graph, impact, regeneration_plan, to_dot

SEED = 9


def main() -> None:
    with tempfile.TemporaryDirectory() as root:
        config = load_config(
            {
                "archive": {"start_date": "2022-01-01", "max_granules_per_day": 2,
                            "seed": SEED},
                "paths": {
                    "staging": f"{root}/raw",
                    "preprocessed": f"{root}/tiles",
                    "transfer_out": f"{root}/outbox",
                    "destination": f"{root}/orion",
                },
                "preprocess": {"workers": 2, "tile_size": 16},
            }
        )
        report = EOMLWorkflow(config, archive=LaadsArchive(seed=SEED, swath=MINI_SWATH)).run()
        store = report.provenance
        summary = store.summary()
        print(f"recorded {summary['entities']} entities across "
              f"{summary['activities']} activities "
              f"({summary['failed_activities']} failed)")

        graph = build_graph(store)
        delivered = [e for e in store.entities.values() if e.kind == "delivered_file"]
        target = delivered[0]
        print(f"\naudit target: {target.uri}")

        upstream = ancestry(graph, target.entity_id)
        by_kind = {}
        for node in upstream:
            if node in store.entities:
                by_kind.setdefault(store.entities[node].kind, []).append(
                    store.entities[node].uri
                )
        print("ancestry (what it was derived from):")
        for kind, uris in sorted(by_kind.items()):
            print(f"  {kind}: {len(uris)} artifact(s)")
            for uri in uris[:3]:
                print(f"    - {uri}")

        plan = regeneration_plan(graph, target.entity_id)
        print(f"\nregeneration plan ({len(plan)} activities, in order):")
        for activity_id in plan:
            activity = store.activities[activity_id]
            print(f"  {activity_id}: {activity.kind} by {activity.agent} "
                  f"({activity.duration:.3f}s)")

        # Impact analysis: suppose a source granule were recalled.
        granule = next(e for e in store.entities.values() if e.kind == "granule")
        downstream = impact(graph, granule.entity_id)
        print(f"\nif {granule.uri.split('/')[-1]} were recalled, "
              f"{len(downstream)} derived artifact(s) would be invalidated")

        dot = to_dot(graph)
        print(f"\nGraphviz export: {len(dot.splitlines())} lines "
              f"(render with `dot -Tsvg`); first lines:")
        for line in dot.splitlines()[:4]:
            print(f"  {line}")


if __name__ == "__main__":
    main()
