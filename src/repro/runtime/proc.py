"""Multi-process execution tier: picklable envelopes, a process-spanning
channel, and an elastic worker-process pool.

PR 5's :class:`~repro.runtime.channel.StreamChannel` pipelines stages
inside one process; this module is its cross-process counterpart, the
horizontal scale-out the paper's Fig. 6 runs across facility cores:

* :class:`ProcChannel` — a bounded, backpressured FIFO with the same
  ``put``/``get``/``close``/``relax``/``stats`` contract as
  ``StreamChannel``, built on :mod:`multiprocessing` primitives so the
  two ends may live in different processes.  Items are serialized
  (pickled) at the boundary, so only picklable tokens may cross.
* :class:`WorkEnvelope` / :class:`EnvelopeResult` — the picklable
  work-unit envelope.  A :class:`~repro.runtime.unit.WorkUnit` itself
  closes over live stage objects (archives, journals, models) and never
  crosses a process boundary; the envelope carries the *description* of
  the work (kind + sharding key + payload), and each worker process
  rebuilds its stage context once and drives the real
  :class:`~repro.runtime.executor.StageExecutor` middleware locally —
  the same shape as a control-plane site agent.
* :class:`ProcWorkerPool` — N worker processes fed through per-worker
  bounded channels, with crash detection (a dead worker's in-flight
  envelopes are requeued up to ``max_requeues`` times, then their
  futures fail with :class:`WorkerCrashed`), elastic scale-out/in
  driven by backlog depth through an
  :class:`~repro.runtime.elastic.ElasticPolicy`, and per-worker
  accounting (units executed, busy seconds, scale events).

Worker code is addressed by a ``"module:callable"`` target string (a
factory that receives the spec payload and returns the envelope
handler), so the spec stays picklable under any start method.

This module (like the whole ``repro.runtime`` package) must not import
``repro.core``.
"""

from __future__ import annotations

import importlib
import multiprocessing
import os
from multiprocessing import connection as mp_connection
import queue as queue_mod
import threading
import time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.runtime.channel import DEFAULT_CAPACITY, ChannelStats, StreamClosed
from repro.runtime.elastic import ElasticPolicy

__all__ = [
    "WorkEnvelope",
    "EnvelopeResult",
    "WorkerSpec",
    "WorkerCrashed",
    "WorkerTaskError",
    "PoolFuture",
    "WorkerStats",
    "PoolStats",
    "ProcChannel",
    "ProcWorkerPool",
]

# How long a blocked producer sleeps between bound re-checks, and the
# granularity at which close()/relax() from another process is observed.
_WAIT_SLICE = 0.05

# Envelope kind reserved for the pool's own retire hand-shake.
_RETIRE_KIND = "__retire__"


def _preferred_context() -> multiprocessing.context.BaseContext:
    """Fork where available (cheap, inherits loaded modules); the
    platform default elsewhere.  Specs and envelopes stay picklable, so
    spawn works too — fork is a fast path, not a correctness need."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


# ---------------------------------------------------------------------------
# The picklable work-unit envelope
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WorkEnvelope:
    """One unit of work, serialized at the process boundary.

    ``kind`` routes inside the worker (one worker serves every stage),
    ``key`` is the sharding/journal key (a granule filename, a scene
    key, a tile-file basename), ``payload`` is the stage-specific
    picklable input.  ``ticket`` is pool bookkeeping, assigned at
    submit time.
    """

    kind: str
    key: str
    payload: Any = None
    ticket: int = -1


@dataclass(frozen=True)
class EnvelopeResult:
    """What a worker sends back for one envelope.

    ``counters`` carries monotonic-counter deltas the handler accrued
    while executing this envelope (journal resume/replay counts,
    breaker trips), so the parent can fold per-worker accounting into
    the run report without shared memory.
    """

    ticket: int
    kind: str
    key: str
    ok: bool
    value: Any = None
    error: Optional[str] = None
    seconds: float = 0.0
    worker_id: int = -1
    pid: int = 0
    counters: Dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class WorkerSpec:
    """How a worker process builds its handler.

    ``target`` is a ``"module:callable"`` factory; the worker imports it
    and calls ``factory(payload)`` once at startup.  The returned
    handler is called with each :class:`WorkEnvelope` and its return
    value becomes ``EnvelopeResult.value``.  A handler exposing a
    ``counters()`` method (returning a flat name -> number mapping) gets
    per-envelope deltas shipped back automatically.
    """

    target: str
    payload: Any = None


class WorkerCrashed(RuntimeError):
    """A worker process died executing an envelope and the requeue
    budget is exhausted (or the pool was terminated mid-flight)."""


class WorkerTaskError(RuntimeError):
    """The handler raised inside the worker; the message is the original
    exception's text, so parent-side quarantine records match the
    single-process path byte for byte."""


def _resolve_target(target: str) -> Callable[[Any], Callable[[WorkEnvelope], Any]]:
    module_name, sep, attr = target.partition(":")
    if not sep or not module_name or not attr:
        raise ValueError(
            f"worker target must be 'module:callable', got {target!r}"
        )
    obj: Any = importlib.import_module(module_name)
    for part in attr.split("."):
        obj = getattr(obj, part)
    return obj


# ---------------------------------------------------------------------------
# ProcChannel — StreamChannel across a process boundary
# ---------------------------------------------------------------------------


class ProcChannel:
    """A closable bounded FIFO whose ends may live in different processes.

    Mirrors :class:`~repro.runtime.channel.StreamChannel`: ``put``
    blocks while a bounded channel is full and raises
    :class:`StreamClosed` on a closed one; ``get`` returns
    ``(True, item)`` or ``(False, None)`` once closed-and-drained (or on
    timeout); ``relax()`` drops the bound; ``stats()`` reports the same
    :class:`~repro.runtime.channel.ChannelStats`.  The queue itself is
    unbounded — the bound is enforced by shared put/get counters — so
    ``relax()`` can lift it without rebuilding the pipe.

    Must be handed to child processes at spawn time (as a ``Process``
    argument or by fork inheritance); a channel cannot be shipped
    through another channel.
    """

    def __init__(
        self,
        edge: str,
        capacity: int = DEFAULT_CAPACITY,
        bounded: bool = True,
        ctx: Optional[multiprocessing.context.BaseContext] = None,
    ):
        if capacity < 1:
            raise ValueError(f"channel capacity must be >= 1, got {capacity}")
        self.edge = edge
        self.capacity = capacity
        self._bounded_at_birth = bounded
        ctx = ctx or _preferred_context()
        self._queue = ctx.Queue()
        self._closed_ev = ctx.Event()
        self._relaxed = ctx.Event()
        if not bounded:
            self._relaxed.set()
        # One lock guards every shared counter (raw Values carry none).
        self._lock = ctx.Lock()
        self._puts = ctx.Value("q", 0, lock=False)
        self._gets = ctx.Value("q", 0, lock=False)
        self._max_depth = ctx.Value("q", 0, lock=False)
        self._stall = ctx.Value("d", 0.0, lock=False)
        self._wait = ctx.Value("d", 0.0, lock=False)

    # -- producer side --------------------------------------------------------

    def put(self, item: Any) -> None:
        """Enqueue one token; blocks while the bounded channel is full.

        Raises :class:`StreamClosed` if the channel was closed — same
        contract as the in-process channel: a late put is a programming
        error, never a silent drop.
        """
        stall_started: Optional[float] = None
        while True:
            with self._lock:
                closed = self._closed_ev.is_set()
                depth = self._puts.value - self._gets.value
                if closed or self._relaxed.is_set() or depth < self.capacity:
                    if stall_started is not None:
                        self._stall.value += time.monotonic() - stall_started
                    if closed:
                        raise StreamClosed(f"channel {self.edge} is closed")
                    self._puts.value += 1
                    depth += 1
                    if depth > self._max_depth.value:
                        self._max_depth.value = depth
                    break
            if stall_started is None:
                stall_started = time.monotonic()
            time.sleep(_WAIT_SLICE)
        self._queue.put(item)

    def close(self) -> None:
        """End the stream (idempotent); consumers drain what remains."""
        self._closed_ev.set()

    def relax(self) -> None:
        """Drop the capacity bound so a blocked producer can finish."""
        self._relaxed.set()

    # -- consumer side --------------------------------------------------------

    def get(self, timeout: Optional[float] = None) -> Tuple[bool, Any]:
        """Dequeue one token: ``(True, item)``, or ``(False, None)`` when
        the channel is closed and drained (or ``timeout`` elapsed)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        wait_started: Optional[float] = None

        def accrue() -> None:
            if wait_started is not None:
                with self._lock:
                    self._wait.value += time.monotonic() - wait_started

        while True:
            slice_ = _WAIT_SLICE
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    try:
                        item = self._queue.get_nowait()
                    except queue_mod.Empty:
                        accrue()
                        return False, None
                    with self._lock:
                        self._gets.value += 1
                    accrue()
                    return True, item
                slice_ = min(slice_, remaining)
            try:
                item = self._queue.get(timeout=slice_)
            except queue_mod.Empty:
                if self._closed_ev.is_set() and len(self) == 0:
                    accrue()
                    return False, None
                if wait_started is None:
                    wait_started = time.monotonic()
                continue
            with self._lock:
                self._gets.value += 1
            accrue()
            return True, item

    def __iter__(self) -> Iterator[Any]:
        while True:
            ok, item = self.get()
            if not ok:
                return
            yield item

    # -- introspection --------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed_ev.is_set()

    def __len__(self) -> int:
        with self._lock:
            return self._puts.value - self._gets.value

    def stats(self) -> ChannelStats:
        with self._lock:
            return ChannelStats(
                edge=self.edge,
                capacity=self.capacity,
                bounded=self._bounded_at_birth,
                items=self._puts.value,
                max_depth=self._max_depth.value,
                producer_stall_seconds=self._stall.value,
                consumer_wait_seconds=self._wait.value,
                closed=self._closed_ev.is_set(),
            )


# ---------------------------------------------------------------------------
# The worker process main loop
# ---------------------------------------------------------------------------


def _counter_snapshot(handler: Any) -> Dict[str, float]:
    counters = getattr(handler, "counters", None)
    if not callable(counters):
        return {}
    try:
        return {str(k): float(v) for k, v in dict(counters()).items()}
    except Exception:  # noqa: BLE001 - accounting must never kill a worker
        return {}


def _worker_main(
    spec: WorkerSpec, worker_id: int, tasks: ProcChannel, results: Any
) -> None:
    """One worker process: build the handler, then serve envelopes.

    Failures inside the handler are *results* (``ok=False``), so one bad
    unit never kills the process; a genuine crash (an injected
    ``os._exit``, a SIGKILL, an OOM) simply stops the loop mid-envelope
    and the parent's liveness sweep requeues the work.

    ``results`` is this worker's **private** write-end of a pipe — never
    a queue shared with other workers.  A shared ``mp.Queue`` guards its
    pipe with one cross-process write-lock, and a worker killed inside
    the window between writing its bytes and releasing that lock (the
    chaos ``crash`` fault does exactly this on a busy single-core box)
    would poison the lock for every worker spawned after it.  With one
    single-writer pipe per worker there is no lock to abandon, and a
    death mid-write surfaces to the parent as EOF on the read end.
    """

    def send(message: Any) -> bool:
        try:
            results.send(message)
            return True
        except (BrokenPipeError, EOFError, OSError):
            return False  # parent is gone; nothing left to report to

    try:
        factory = _resolve_target(spec.target)
        handler = factory(spec.payload)
    except BaseException as exc:  # noqa: BLE001 - reported, then exit
        send(("spawn_failed", worker_id, f"{type(exc).__name__}: {exc}"))
        return
    send(("ready", worker_id, os.getpid()))
    while True:
        ok, envelope = tasks.get()
        if not ok or envelope.kind == _RETIRE_KIND:
            break
        before = _counter_snapshot(handler)
        started = time.monotonic()
        try:
            value = handler(envelope)
            error = None
            succeeded = True
        except Exception as exc:  # noqa: BLE001 - shipped to the parent
            value = None
            error = str(exc) or type(exc).__name__
            succeeded = False
        seconds = time.monotonic() - started
        after = _counter_snapshot(handler)
        deltas = {
            key: after[key] - before.get(key, 0.0)
            for key in after
            if after[key] != before.get(key, 0.0)
        }
        delivered = send(
            (
                "result",
                EnvelopeResult(
                    ticket=envelope.ticket,
                    kind=envelope.kind,
                    key=envelope.key,
                    ok=succeeded,
                    value=value,
                    error=error,
                    seconds=seconds,
                    worker_id=worker_id,
                    pid=os.getpid(),
                    counters=deltas,
                ),
            )
        )
        if not delivered:
            return
    send(("retired", worker_id))
    results.close()


# ---------------------------------------------------------------------------
# Futures and accounting
# ---------------------------------------------------------------------------


class PoolFuture:
    """A minimal future for pool submissions (``concurrent.futures``
    surface: ``done``/``result``/``add_done_callback``).  Callbacks run
    on the pool's dispatch thread — keep them short."""

    def __init__(self) -> None:
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._value: Any = None
        self._error: Optional[BaseException] = None
        self._callbacks: List[Callable[["PoolFuture"], None]] = []

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> Any:
        if not self._event.wait(timeout):
            raise TimeoutError("pool future not settled in time")
        if self._error is not None:
            raise self._error
        return self._value

    def exception(self, timeout: Optional[float] = None) -> Optional[BaseException]:
        if not self._event.wait(timeout):
            raise TimeoutError("pool future not settled in time")
        return self._error

    def add_done_callback(self, fn: Callable[["PoolFuture"], None]) -> None:
        with self._lock:
            if not self._event.is_set():
                self._callbacks.append(fn)
                return
        fn(self)

    def _settle(self, value: Any = None, error: Optional[BaseException] = None) -> None:
        with self._lock:
            if self._event.is_set():
                return
            self._value = value
            self._error = error
            callbacks, self._callbacks = self._callbacks, []
            self._event.set()
        for fn in callbacks:
            fn(self)


@dataclass
class WorkerStats:
    """One worker process's lifetime accounting."""

    worker_id: int
    pid: int = 0
    units: int = 0
    busy_seconds: float = 0.0
    alive: bool = False


@dataclass
class PoolStats:
    """The pool's rollup (always-present zeros when nothing ran)."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    requeues: int = 0
    respawns: int = 0
    scale_out_events: int = 0
    scale_in_events: int = 0
    workers_launched: int = 0
    workers: List[WorkerStats] = field(default_factory=list)
    counters: Dict[str, float] = field(default_factory=dict)

    @property
    def units_executed(self) -> int:
        return sum(w.units for w in self.workers)

    @property
    def busy_seconds(self) -> float:
        return sum(w.busy_seconds for w in self.workers)


@dataclass
class _Ticket:
    envelope: WorkEnvelope
    future: PoolFuture
    requeues: int = 0
    owner: Optional[int] = None  # worker_id once dispatched


class _WorkerHandle:
    def __init__(self, worker_id: int, process: Any, channel: ProcChannel, conn: Any):
        self.worker_id = worker_id
        self.process = process
        self.channel = channel
        self.conn = conn  # read end of this worker's private result pipe
        self.pid = 0
        self.inflight: set = set()  # dispatched, unresolved tickets
        self.retiring = False
        self.broken = False  # read end hit EOF / went bad
        self.last_active = time.monotonic()
        self.stats = WorkerStats(worker_id=worker_id)


# ---------------------------------------------------------------------------
# ProcWorkerPool
# ---------------------------------------------------------------------------


class ProcWorkerPool:
    """An elastic pool of worker processes fed through ProcChannels.

    Each worker gets its own bounded task channel (so ownership of every
    dispatched envelope is exact, and a dead worker's work is requeued
    precisely) and its own single-writer result pipe (so a worker killed
    mid-report can never wedge the others — see :func:`_worker_main`).
    A dispatch thread in the parent multiplexes the result pipes with
    ``multiprocessing.connection.wait``, sweeps liveness, applies the
    :class:`ElasticPolicy` against the undispatched backlog, and feeds
    idle workers — ``dispatch_depth`` envelopes per worker keep the next
    unit queued locally while the current one executes.
    """

    def __init__(
        self,
        spec: WorkerSpec,
        policy: Optional[ElasticPolicy] = None,
        *,
        name: str = "pool",
        max_requeues: int = 1,
        dispatch_depth: int = 2,
        poll_interval: float = 0.02,
        start_method: Optional[str] = None,
    ):
        if max_requeues < 0:
            raise ValueError("max_requeues must be >= 0")
        if dispatch_depth < 1:
            raise ValueError("dispatch_depth must be >= 1")
        self.spec = spec
        self.policy = policy or ElasticPolicy.fixed(1)
        self.name = name
        self.max_requeues = max_requeues
        self.dispatch_depth = dispatch_depth
        self.poll_interval = poll_interval
        self._ctx = (
            multiprocessing.get_context(start_method)
            if start_method
            else _preferred_context()
        )
        self._lock = threading.Lock()
        self._pending: deque = deque()  # tickets awaiting dispatch
        self._tickets: Dict[int, _Ticket] = {}
        self._next_ticket = 0
        self._next_worker = 0
        self._workers: Dict[int, _WorkerHandle] = {}
        self._stats = PoolStats()
        self._spawn_error: Optional[str] = None
        self._closing = False
        self._terminated = False
        self._thread: Optional[threading.Thread] = None
        self._started = False

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "ProcWorkerPool":
        if self._started:
            raise RuntimeError("pool already started")
        self._started = True
        for _ in range(max(1, self.policy.min_workers)):
            self._spawn()
        self._thread = threading.Thread(
            target=self._dispatch_loop, name=f"{self.name}-dispatch", daemon=True
        )
        self._thread.start()
        return self

    def submit(self, envelope: WorkEnvelope) -> PoolFuture:
        """Enqueue one envelope; returns a future for its result."""
        if not self._started or self._thread is None:
            raise RuntimeError("pool is not started")
        future = PoolFuture()
        with self._lock:
            if self._closing:
                raise RuntimeError("pool is closing; no new work accepted")
            ticket_id = self._next_ticket
            self._next_ticket += 1
            ticket = _Ticket(envelope=replace(envelope, ticket=ticket_id), future=future)
            self._tickets[ticket_id] = ticket
            self._pending.append(ticket_id)
            self._stats.submitted += 1
        return future

    def gather(self, futures: Iterable[PoolFuture]) -> Iterator[Any]:
        """Yield results in completion order; raises on the first
        failed future (same shape as ``LocalComputeEndpoint.gather``)."""
        futures = list(futures)
        settled: "queue_mod.Queue[PoolFuture]" = queue_mod.Queue()
        for future in futures:
            future.add_done_callback(settled.put)
        for _ in futures:
            yield settled.get().result()

    def backlog(self) -> int:
        """Undispatched envelopes — the queue depth elasticity watches."""
        with self._lock:
            return len(self._pending)

    def stats(self) -> PoolStats:
        with self._lock:
            workers = [
                WorkerStats(
                    worker_id=h.stats.worker_id,
                    pid=h.stats.pid,
                    units=h.stats.units,
                    busy_seconds=h.stats.busy_seconds,
                    alive=h.process.is_alive(),
                )
                for h in self._workers.values()
            ] + [w for w in self._stats.workers]
            workers.sort(key=lambda w: w.worker_id)
            return PoolStats(
                submitted=self._stats.submitted,
                completed=self._stats.completed,
                failed=self._stats.failed,
                requeues=self._stats.requeues,
                respawns=self._stats.respawns,
                scale_out_events=self._stats.scale_out_events,
                scale_in_events=self._stats.scale_in_events,
                workers_launched=self._stats.workers_launched,
                workers=workers,
                counters=dict(self._stats.counters),
            )

    def close(self, timeout: float = 60.0) -> None:
        """Drain outstanding work, retire every worker, join (idempotent)."""
        if not self._started or self._thread is None:
            return
        with self._lock:
            self._closing = True
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():  # wedged: fall back to terminate
            self.terminate()
            return
        self._thread = None

    def terminate(self) -> None:
        """Kill every worker now; outstanding futures fail (idempotent)."""
        with self._lock:
            self._closing = True
            self._terminated = True
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        for handle in list(self._workers.values()):
            if handle.process.is_alive():
                handle.process.terminate()
            handle.process.join(timeout=5.0)
            try:
                handle.conn.close()
            except OSError:
                pass
        with self._lock:
            self._workers.clear()
            outstanding = list(self._tickets.values())
            self._tickets.clear()
            self._pending.clear()
        for ticket in outstanding:
            ticket.future._settle(error=WorkerCrashed("pool terminated"))

    def __enter__(self) -> "ProcWorkerPool":
        if not self._started:
            self.start()
        return self

    def __exit__(self, exc_type: Any, *exc_info: Any) -> None:
        if exc_type is not None:
            self.terminate()
        else:
            self.close()

    # -- dispatch-thread internals -------------------------------------------

    def _spawn(self) -> _WorkerHandle:
        worker_id = self._next_worker
        self._next_worker += 1
        channel = ProcChannel(
            f"{self.name}:w{worker_id}",
            capacity=max(self.dispatch_depth, 1) + 1,
            ctx=self._ctx,
        )
        reader, writer = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_worker_main,
            args=(self.spec, worker_id, channel, writer),
            name=f"{self.name}-{worker_id}",
            daemon=True,
        )
        process.start()
        # Drop the parent's copy of the write end right away: the worker
        # now holds the only one, so its death surfaces as EOF — and no
        # later-forked sibling can inherit a stray copy that would keep
        # the pipe open past the owner's death.
        writer.close()
        handle = _WorkerHandle(worker_id, process, channel, reader)
        with self._lock:
            self._workers[worker_id] = handle
            self._stats.workers_launched += 1
        return handle

    def _live_workers(self) -> List[_WorkerHandle]:
        return [h for h in self._workers.values() if not h.retiring]

    def _handle_message(self, message: Tuple[Any, ...]) -> None:
        kind = message[0]
        if kind == "ready":
            _, worker_id, pid = message
            handle = self._workers.get(worker_id)
            if handle is not None:
                handle.pid = pid
                handle.stats.pid = pid
            return
        if kind == "spawn_failed":
            _, worker_id, error = message
            self._spawn_error = error
            return
        if kind == "retired":
            _, worker_id = message
            handle = self._workers.get(worker_id)
            if handle is not None:
                handle.process.join(timeout=5.0)
                self._forget(handle)
            return
        if kind != "result":
            return
        result: EnvelopeResult = message[1]
        with self._lock:
            ticket = self._tickets.pop(result.ticket, None)
            handle = self._workers.get(result.worker_id)
            if handle is not None:
                handle.inflight.discard(result.ticket)
                handle.last_active = time.monotonic()
                handle.stats.units += 1
                handle.stats.busy_seconds += result.seconds
            for key, delta in result.counters.items():
                self._stats.counters[key] = self._stats.counters.get(key, 0.0) + delta
            if ticket is None:
                return  # duplicate after a requeue raced a slow worker
            if result.ok:
                self._stats.completed += 1
            else:
                self._stats.failed += 1
        if result.ok:
            ticket.future._settle(value=result.value)
        else:
            ticket.future._settle(error=WorkerTaskError(result.error or "worker task failed"))

    def _drain_conn(self, handle: _WorkerHandle) -> None:
        """Pull every complete message still sitting in a worker's pipe."""
        while not handle.broken:
            try:
                if not handle.conn.poll():
                    return
                message = handle.conn.recv()
            except (EOFError, OSError):
                handle.broken = True
                return
            self._handle_message(message)

    def _reap_dead(self) -> bool:
        """Requeue (or fail) the work a dead worker held."""
        progressed = False
        for handle in list(self._workers.values()):
            if handle.process.is_alive():
                continue
            progressed = True
            # A fully-written result may still sit in the pipe; settle it
            # before deciding what died in flight.
            self._drain_conn(handle)
            orphans: List[_Ticket] = []
            with self._lock:
                for ticket_id in sorted(handle.inflight):
                    ticket = self._tickets.get(ticket_id)
                    if ticket is not None:
                        orphans.append(ticket)
                handle.inflight.clear()
            was_retiring = handle.retiring
            self._forget(handle)
            exhausted: List[_Ticket] = []
            with self._lock:
                for ticket in orphans:
                    if ticket.requeues < self.max_requeues:
                        ticket.requeues += 1
                        ticket.owner = None
                        self._stats.requeues += 1
                        self._pending.appendleft(ticket.envelope.ticket)
                    else:
                        self._tickets.pop(ticket.envelope.ticket, None)
                        self._stats.failed += 1
                        exhausted.append(ticket)
            for ticket in exhausted:
                envelope = ticket.envelope
                ticket.future._settle(
                    error=WorkerCrashed(
                        f"worker {handle.worker_id} (pid {handle.pid}) died "
                        f"executing {envelope.kind}:{envelope.key} "
                        f"(attempt {ticket.requeues + 1})"
                    )
                )
        return progressed

    def _forget(self, handle: _WorkerHandle) -> None:
        handle.process.join(timeout=0.1)
        try:
            handle.conn.close()
        except OSError:
            pass
        with self._lock:
            self._workers.pop(handle.worker_id, None)
            final = WorkerStats(
                worker_id=handle.stats.worker_id,
                pid=handle.stats.pid,
                units=handle.stats.units,
                busy_seconds=handle.stats.busy_seconds,
                alive=False,
            )
            self._stats.workers.append(final)

    def _apply_policy(self) -> None:
        with self._lock:
            backlog = len(self._pending)
            closing = self._closing and not self._tickets and not self._pending
        if closing:
            return
        live = self._live_workers()
        decision = self.policy.decide(backlog, len(live))
        if decision > 0 and self._spawn_error is not None:
            return  # the factory is broken; respawning would loop forever
        if decision > 0:
            below_floor = len(live) < max(1, self.policy.min_workers)
            self._spawn()
            with self._lock:
                if below_floor and self._stats.workers_launched > max(
                    1, self.policy.min_workers
                ):
                    self._stats.respawns += 1
                elif not below_floor:
                    self._stats.scale_out_events += 1
        elif decision < 0:
            now = time.monotonic()
            for handle in live:
                if handle.inflight or now - handle.last_active < self.policy.idle_retire_seconds:
                    continue
                handle.retiring = True
                handle.channel.put(WorkEnvelope(kind=_RETIRE_KIND, key=""))
                with self._lock:
                    self._stats.scale_in_events += 1
                break

    def _dispatch(self) -> bool:
        progressed = False
        while True:
            candidates = [
                h
                for h in self._live_workers()
                if h.pid and h.process.is_alive() and len(h.inflight) < self.dispatch_depth
            ]
            if not candidates:
                return progressed
            with self._lock:
                if not self._pending:
                    return progressed
                ticket_id = self._pending.popleft()
                ticket = self._tickets.get(ticket_id)
            if ticket is None:
                continue
            target = min(candidates, key=lambda h: (len(h.inflight), h.worker_id))
            with self._lock:
                ticket.owner = target.worker_id
                target.inflight.add(ticket_id)
            target.channel.put(ticket.envelope)
            progressed = True

    def _retire_all(self, timeout: float = 30.0) -> None:
        deadline = time.monotonic() + timeout
        for handle in self._live_workers():
            handle.retiring = True
            try:
                handle.channel.put(WorkEnvelope(kind=_RETIRE_KIND, key=""))
            except StreamClosed:
                pass
        while self._workers and time.monotonic() < deadline:
            self._pump(self.poll_interval)
            self._reap_dead()
        for handle in list(self._workers.values()):
            if handle.process.is_alive():
                handle.process.terminate()
            self._forget(handle)

    def _fail_pending_on_spawn_error(self) -> None:
        with self._lock:
            error = self._spawn_error
            if error is None or self._workers or self._closing:
                return
            outstanding = [
                self._tickets.pop(tid) for tid in list(self._pending)
                if tid in self._tickets
            ]
            self._pending.clear()
        for ticket in outstanding:
            ticket.future._settle(
                error=WorkerCrashed(f"worker startup failed: {error}")
            )

    def _pump(self, timeout: float) -> bool:
        """Multiplex every live worker's result pipe; returns True if any
        message arrived.  A readable pipe is drained completely — EOF
        (the worker died or retired) just stops reads; the liveness
        sweep owns the consequences."""
        with self._lock:
            conns = {h.conn: h for h in self._workers.values() if not h.broken}
        if not conns:
            if timeout > 0:
                time.sleep(timeout)
            return False
        try:
            ready = mp_connection.wait(list(conns), timeout=timeout)
        except OSError:
            return False
        progressed = False
        for conn in ready:
            handle = conns[conn]
            while True:
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    handle.broken = True
                    break
                progressed = True
                self._handle_message(message)
                try:
                    if not conn.poll():
                        break
                except (EOFError, OSError):
                    handle.broken = True
                    break
        return progressed

    def _dispatch_loop(self) -> None:
        while True:
            self._pump(self.poll_interval)
            self._reap_dead()
            with self._lock:
                terminated = self._terminated
                drained = self._closing and not self._tickets and not self._pending
            if terminated:
                return
            if drained:
                self._retire_all()
                return
            self._apply_policy()
            self._dispatch()
            self._fail_pending_on_spawn_error()
