"""Declarative pipeline plans: stages as nodes, policies as edges.

A :class:`PipelinePlan` states the workflow's structure — the download
barrier, the monitor/inference overlap — as data instead of interleaved
control flow:

* an ``after`` edge is a **barrier**: the node's body runs only once
  every named predecessor has completed (the paper's "preprocessing is
  delayed until all downloads are complete");
* an ``overlaps`` edge is a **concurrency window**: the node's ``scope``
  (a context manager holding its live resources — worker threads, the
  crawler) is entered *before* the overlapped node runs and its body
  (the drain/finalize step) runs after, which is exactly Fig. 6's
  asynchronous monitor-trigger;
* a ``stream`` edge is a **per-item dataflow**: the producer hands
  tokens (completed scenes, labelled file names) to the consumer through
  a bounded :class:`~repro.runtime.channel.StreamChannel` while both
  bodies run, so makespan approaches max(stage) instead of sum(stages).

:class:`PlanExecution` carries the mechanics of honouring those edges
for *any* driver: the local :class:`PlanRunner` walks nodes in listed
order (stream channels relaxed, so the buffered hand-off still flows),
:class:`StreamingPlanRunner` runs stream-connected nodes concurrently
under backpressure, and the flows engine (state-machine states) and the
zambeze orchestrator (campaign activities) call
:meth:`PlanExecution.run_node` from their own schedulers — same plan,
three engines.  This module must not import ``repro.core``; nodes close
over their stage objects.
"""

from __future__ import annotations

import threading
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.runtime.channel import StreamChannel, StreamConfig, StreamHub

__all__ = [
    "PlanError",
    "StageNode",
    "PipelinePlan",
    "PlanExecution",
    "PlanRunner",
    "StreamingPlanRunner",
    "STREAMS_KEY",
]


class PlanError(ValueError):
    """A plan is malformed or was driven out of contract."""


# Reserved state key under which a plan execution publishes its
# StreamHub, so node bodies can look up their channels without the
# runtime ever importing stage code.
STREAMS_KEY = "@streams"


@dataclass(frozen=True)
class StageNode:
    """One pipeline stage: a body plus its structural edges.

    ``run`` receives the shared mutable state mapping and returns the
    node's value (stored under ``state[name]``).  ``counts`` maps that
    value to the keyword counts reported when the node ends (timeline
    annotations).  ``when`` gates the node (a skipped node stores
    ``None`` and still satisfies its dependents' barriers).  ``stream``
    names producer nodes this node consumes tokens from; unlike
    ``after`` it is not a barrier — a concurrent runner starts both ends
    together and the channel carries the ordering.
    """

    name: str
    run: Callable[[Dict[str, Any]], Any]
    workers: int = 0
    after: Tuple[str, ...] = ()
    overlaps: Tuple[str, ...] = ()
    stream: Tuple[str, ...] = ()
    scope: Optional[Callable[[Dict[str, Any]], Any]] = None
    when: Optional[Callable[[Dict[str, Any]], bool]] = None
    counts: Optional[Callable[[Any], Dict[str, Any]]] = None


class PipelinePlan:
    """A validated sequence of stage nodes with explicit edges."""

    def __init__(self, nodes: List[StageNode]):
        self.nodes = list(nodes)
        self._by_name: Dict[str, StageNode] = {}
        for node in self.nodes:
            if node.name == STREAMS_KEY:
                raise PlanError(f"node name {STREAMS_KEY!r} is reserved")
            if node.name in self._by_name:
                raise PlanError(f"duplicate node name {node.name!r}")
            self._by_name[node.name] = node
        seen: set = set()
        for node in self.nodes:
            for dep in (*node.after, *node.overlaps, *node.stream):
                if dep == node.name:
                    raise PlanError(f"node {node.name!r} references itself")
                if dep not in self._by_name:
                    raise PlanError(
                        f"node {node.name!r} references unknown node {dep!r}"
                    )
                if dep not in seen:
                    raise PlanError(
                        f"node {node.name!r} must come after {dep!r} in the plan"
                    )
            seen.add(node.name)

    @property
    def names(self) -> List[str]:
        return [node.name for node in self.nodes]

    def node(self, name: str) -> StageNode:
        try:
            return self._by_name[name]
        except KeyError:
            raise PlanError(f"plan has no node {name!r}") from None

    def edges(self) -> List[Tuple[str, str, str]]:
        """All (src, dst, kind) edges, kind in {"after", "overlaps", "stream"}."""
        out: List[Tuple[str, str, str]] = []
        for node in self.nodes:
            out.extend((dep, node.name, "after") for dep in node.after)
            out.extend((dep, node.name, "overlaps") for dep in node.overlaps)
            out.extend((dep, node.name, "stream") for dep in node.stream)
        return out

    def stream_edges(self) -> List[Tuple[str, str]]:
        """All (producer, consumer) stream edges in plan order."""
        return [
            (dep, node.name) for node in self.nodes for dep in node.stream
        ]

    def owners_of(self, name: str) -> List[StageNode]:
        """Nodes whose concurrency window opens when ``name`` runs."""
        return [node for node in self.nodes if name in node.overlaps]


class PlanExecution:
    """One run of a plan: barrier checks, scope windows, stream channels.

    Drivers call :meth:`run_node` in any order that satisfies the
    ``after`` edges; violations raise :class:`PlanError` instead of
    silently reordering the pipeline.  Hooks mirror the wall-clock
    timeline's vocabulary: ``on_begin(name)``, ``on_end(name, **counts)``
    and ``on_workers(name, delta)``.

    Stream channels are created for every ``stream`` edge and published
    in ``state[STREAMS_KEY]`` as a :class:`~repro.runtime.channel.
    StreamHub`.  They are **bounded only when** ``concurrent=True`` (a
    runner that genuinely overlaps producer and consumer); sequential
    drivers — the listed-order :class:`PlanRunner`, the flows engine,
    the zambeze orchestrator — get relaxed (unbounded) channels, so the
    producer's full output buffers and the consumer drains it afterwards
    with identical bodies and no deadlock.  A node's outgoing channels
    are closed when its body returns (or raises, or the node skips), and
    its incoming channels are relaxed once it can no longer consume.
    """

    def __init__(
        self,
        plan: PipelinePlan,
        state: Optional[Dict[str, Any]] = None,
        on_begin: Optional[Callable[[str], None]] = None,
        on_end: Optional[Callable[..., None]] = None,
        on_workers: Optional[Callable[[str, int], None]] = None,
        stream: Optional[StreamConfig] = None,
        concurrent: bool = False,
    ):
        self.plan = plan
        self.state: Dict[str, Any] = state if state is not None else {}
        self.done: set = set()
        self.skipped: set = set()
        self._entered: Dict[str, Any] = {}
        self._on_begin = on_begin
        self._on_end = on_end
        self._on_workers = on_workers
        self._lock = threading.RLock()
        self.stream_config = stream or StreamConfig()
        self.hub = StreamHub()
        for src, dst in plan.stream_edges():
            bounded = concurrent and self.stream_config.edge_enabled(src, dst)
            self.hub.connect(
                src,
                dst,
                StreamChannel(
                    f"{src}->{dst}",
                    capacity=self.stream_config.edge_capacity(src, dst),
                    bounded=bounded,
                ),
            )
        if len(self.hub):
            self.state[STREAMS_KEY] = self.hub

    def _enter(self, node: StageNode) -> None:
        with self._lock:
            if node.name in self._entered or node.name in self.done:
                return
            scope = (
                node.scope(self.state) if node.scope is not None else nullcontext()
            )
            scope.__enter__()
            self._entered[node.name] = scope
            if self._on_workers is not None and node.workers:
                self._on_workers(node.name, node.workers)

    def _settle_streams(self, node: StageNode) -> None:
        """A finished (or skipped, or dead) node's channel obligations:
        its outputs end, and its inputs will never be consumed again."""
        self.hub.close_outputs(node.name)
        self.hub.relax_inputs(node.name)

    def run_node(self, name: str) -> Any:
        node = self.plan.node(name)
        with self._lock:
            if name in self.done:
                raise PlanError(f"node {name!r} already ran")
            missing = [dep for dep in node.after if dep not in self.done]
        if missing:
            raise PlanError(
                f"node {name!r} ran before its barrier: waiting on {missing}"
            )
        if node.when is not None and not node.when(self.state):
            with self._lock:
                self.state[name] = None
                self.done.add(name)
                self.skipped.add(name)
            self._settle_streams(node)
            return None
        # Open the concurrency windows of overlap owners whose gate
        # passes — their resources must be live while this node works.
        for owner in self.plan.owners_of(name):
            if owner.when is None or owner.when(self.state):
                self._enter(owner)
        # An overlap owner whose partners were all skipped still needs
        # its own scope before its body runs.
        with self._lock:
            if node.overlaps and name not in self._entered:
                self._enter(node)
            entered_as_owner = name in self._entered
        if self._on_begin is not None:
            self._on_begin(name)
        if not entered_as_owner and self._on_workers is not None and node.workers:
            self._on_workers(name, node.workers)
        try:
            value = node.run(self.state)
        finally:
            if entered_as_owner:
                with self._lock:
                    scope = self._entered.pop(name)
                # Scope teardown (worker joins) precedes channel close,
                # so scope-owned producers finish their last puts first.
                scope.__exit__(None, None, None)
            if self._on_workers is not None and node.workers:
                self._on_workers(name, -node.workers)
            self._settle_streams(node)
        with self._lock:
            self.state[name] = value
            self.done.add(name)
        if self._on_end is not None:
            counts = node.counts(value) if node.counts is not None else {}
            self._on_end(name, **counts)
        return value

    def close(self) -> None:
        """Tear down open windows and end every channel (aborted runs)."""
        with self._lock:
            names = list(reversed(list(self._entered)))
        for name in names:
            with self._lock:
                scope = self._entered.pop(name, None)
            if scope is not None:
                scope.__exit__(None, None, None)
        self.hub.close_all()


class PlanRunner:
    """The local sequential driver: nodes in listed order, edges enforced."""

    def __init__(
        self,
        on_begin: Optional[Callable[[str], None]] = None,
        on_end: Optional[Callable[..., None]] = None,
        on_workers: Optional[Callable[[str, int], None]] = None,
    ):
        self._on_begin = on_begin
        self._on_end = on_end
        self._on_workers = on_workers

    def _execution(
        self, plan: PipelinePlan, state: Optional[Dict[str, Any]]
    ) -> PlanExecution:
        return PlanExecution(
            plan,
            state=state,
            on_begin=self._on_begin,
            on_end=self._on_end,
            on_workers=self._on_workers,
        )

    def run(
        self, plan: PipelinePlan, state: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        execution = self._execution(plan, state)
        try:
            for node in plan.nodes:
                execution.run_node(node.name)
        finally:
            execution.close()
        return execution.state


class StreamingPlanRunner(PlanRunner):
    """The concurrent driver: one thread per node, channels bounded.

    ``after`` edges are still honoured (a dependent waits for its
    predecessors to finish), but stream-connected nodes start together
    and exchange tokens through backpressured channels.  A stream edge
    disabled in the :class:`~repro.runtime.channel.StreamConfig` falls
    back to barrier semantics: its channel stays unbounded and the
    consumer additionally waits for the producer to finish.

    Failure containment: a node that raises closes its outputs (its
    consumers see end-of-stream and finish with what arrived) and
    relaxes its inputs (its producers never block on a dead consumer);
    nodes whose ``after`` dependencies failed are marked aborted without
    running.  The first error is re-raised once every thread has
    settled, so no channel is left holding a blocked producer.
    """

    def __init__(
        self,
        on_begin: Optional[Callable[[str], None]] = None,
        on_end: Optional[Callable[..., None]] = None,
        on_workers: Optional[Callable[[str, int], None]] = None,
        stream: Optional[StreamConfig] = None,
    ):
        # Hooks (timeline, journal checkpoints) are not thread-safe;
        # serialize them across node threads.
        hook_lock = threading.Lock()

        def locked(hook):
            if hook is None:
                return None

            def call(*args, **kwargs):
                with hook_lock:
                    return hook(*args, **kwargs)

            return call

        super().__init__(
            on_begin=locked(on_begin),
            on_end=locked(on_end),
            on_workers=locked(on_workers),
        )
        self.stream_config = stream or StreamConfig()

    def _execution(
        self, plan: PipelinePlan, state: Optional[Dict[str, Any]]
    ) -> PlanExecution:
        return PlanExecution(
            plan,
            state=state,
            on_begin=self._on_begin,
            on_end=self._on_end,
            on_workers=self._on_workers,
            stream=self.stream_config,
            concurrent=True,
        )

    def _wait_deps(self, node: StageNode) -> List[str]:
        """Events this node's thread awaits before running its body:
        every ``after`` edge, plus stream producers whose edge is
        disabled (per-edge barrier fallback)."""
        deps = list(node.after)
        for src in node.stream:
            if (
                not self.stream_config.edge_enabled(src, node.name)
                and src not in deps
            ):
                deps.append(src)
        return deps

    def run(
        self, plan: PipelinePlan, state: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        execution = self._execution(plan, state)
        finished = {node.name: threading.Event() for node in plan.nodes}
        aborted: set = set()
        errors: List[BaseException] = []
        guard = threading.Lock()

        def drive(node: StageNode) -> None:
            ok = True
            try:
                deps = self._wait_deps(node)
                for dep in deps:
                    finished[dep].wait()
                with guard:
                    dead = any(dep in aborted for dep in deps)
                if dead:
                    ok = False
                else:
                    execution.run_node(node.name)
            except BaseException as exc:  # noqa: BLE001 - re-raised after join
                ok = False
                with guard:
                    errors.append(exc)
            finally:
                if not ok:
                    with guard:
                        aborted.add(node.name)
                    # run_node settles channels itself on every path it
                    # reaches; an aborted node must settle its own.
                    execution.hub.close_outputs(node.name)
                    execution.hub.relax_inputs(node.name)
                finished[node.name].set()

        threads = [
            threading.Thread(
                target=drive, args=(node,), name=f"plan-{node.name}"
            )
            for node in plan.nodes
        ]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        finally:
            execution.close()
        if errors:
            raise errors[0]
        return execution.state
