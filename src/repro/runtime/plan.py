"""Declarative pipeline plans: stages as nodes, policies as edges.

A :class:`PipelinePlan` states the workflow's structure — the download
barrier, the monitor/inference overlap — as data instead of interleaved
control flow:

* an ``after`` edge is a **barrier**: the node's body runs only once
  every named predecessor has completed (the paper's "preprocessing is
  delayed until all downloads are complete");
* an ``overlaps`` edge is a **concurrency window**: the node's ``scope``
  (a context manager holding its live resources — worker threads, the
  crawler) is entered *before* the overlapped node runs and its body
  (the drain/finalize step) runs after, which is exactly Fig. 6's
  asynchronous monitor-trigger.

:class:`PlanExecution` carries the mechanics of honouring those edges
for *any* driver: the local :class:`PlanRunner` walks nodes in listed
order, while the flows engine (state-machine states) and the zambeze
orchestrator (campaign activities) call :meth:`PlanExecution.run_node`
from their own schedulers — same plan, three engines.  This module must
not import ``repro.core``; nodes close over their stage objects.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["PlanError", "StageNode", "PipelinePlan", "PlanExecution", "PlanRunner"]


class PlanError(ValueError):
    """A plan is malformed or was driven out of contract."""


@dataclass(frozen=True)
class StageNode:
    """One pipeline stage: a body plus its structural edges.

    ``run`` receives the shared mutable state mapping and returns the
    node's value (stored under ``state[name]``).  ``counts`` maps that
    value to the keyword counts reported when the node ends (timeline
    annotations).  ``when`` gates the node (a skipped node stores
    ``None`` and still satisfies its dependents' barriers).
    """

    name: str
    run: Callable[[Dict[str, Any]], Any]
    workers: int = 0
    after: Tuple[str, ...] = ()
    overlaps: Tuple[str, ...] = ()
    scope: Optional[Callable[[Dict[str, Any]], Any]] = None
    when: Optional[Callable[[Dict[str, Any]], bool]] = None
    counts: Optional[Callable[[Any], Dict[str, Any]]] = None


class PipelinePlan:
    """A validated sequence of stage nodes with explicit edges."""

    def __init__(self, nodes: List[StageNode]):
        self.nodes = list(nodes)
        self._by_name: Dict[str, StageNode] = {}
        for node in self.nodes:
            if node.name in self._by_name:
                raise PlanError(f"duplicate node name {node.name!r}")
            self._by_name[node.name] = node
        seen: set = set()
        for node in self.nodes:
            for dep in (*node.after, *node.overlaps):
                if dep == node.name:
                    raise PlanError(f"node {node.name!r} references itself")
                if dep not in self._by_name:
                    raise PlanError(
                        f"node {node.name!r} references unknown node {dep!r}"
                    )
                if dep not in seen:
                    raise PlanError(
                        f"node {node.name!r} must come after {dep!r} in the plan"
                    )
            seen.add(node.name)

    @property
    def names(self) -> List[str]:
        return [node.name for node in self.nodes]

    def node(self, name: str) -> StageNode:
        try:
            return self._by_name[name]
        except KeyError:
            raise PlanError(f"plan has no node {name!r}") from None

    def edges(self) -> List[Tuple[str, str, str]]:
        """All (src, dst, kind) edges, kind in {"after", "overlaps"}."""
        out: List[Tuple[str, str, str]] = []
        for node in self.nodes:
            out.extend((dep, node.name, "after") for dep in node.after)
            out.extend((dep, node.name, "overlaps") for dep in node.overlaps)
        return out

    def owners_of(self, name: str) -> List[StageNode]:
        """Nodes whose concurrency window opens when ``name`` runs."""
        return [node for node in self.nodes if name in node.overlaps]


class PlanExecution:
    """One run of a plan: barrier checks, scope windows, worker hooks.

    Drivers call :meth:`run_node` in any order that satisfies the
    ``after`` edges; violations raise :class:`PlanError` instead of
    silently reordering the pipeline.  Hooks mirror the wall-clock
    timeline's vocabulary: ``on_begin(name)``, ``on_end(name, **counts)``
    and ``on_workers(name, delta)``.
    """

    def __init__(
        self,
        plan: PipelinePlan,
        state: Optional[Dict[str, Any]] = None,
        on_begin: Optional[Callable[[str], None]] = None,
        on_end: Optional[Callable[..., None]] = None,
        on_workers: Optional[Callable[[str, int], None]] = None,
    ):
        self.plan = plan
        self.state: Dict[str, Any] = state if state is not None else {}
        self.done: set = set()
        self.skipped: set = set()
        self._entered: Dict[str, Any] = {}
        self._on_begin = on_begin
        self._on_end = on_end
        self._on_workers = on_workers

    def _enter(self, node: StageNode) -> None:
        if node.name in self._entered or node.name in self.done:
            return
        scope = node.scope(self.state) if node.scope is not None else nullcontext()
        scope.__enter__()
        self._entered[node.name] = scope
        if self._on_workers is not None and node.workers:
            self._on_workers(node.name, node.workers)

    def run_node(self, name: str) -> Any:
        node = self.plan.node(name)
        if name in self.done:
            raise PlanError(f"node {name!r} already ran")
        missing = [dep for dep in node.after if dep not in self.done]
        if missing:
            raise PlanError(
                f"node {name!r} ran before its barrier: waiting on {missing}"
            )
        if node.when is not None and not node.when(self.state):
            self.state[name] = None
            self.done.add(name)
            self.skipped.add(name)
            return None
        # Open the concurrency windows of overlap owners whose gate
        # passes — their resources must be live while this node works.
        for owner in self.plan.owners_of(name):
            if owner.when is None or owner.when(self.state):
                self._enter(owner)
        # An overlap owner whose partners were all skipped still needs
        # its own scope before its body runs.
        if node.overlaps and name not in self._entered:
            self._enter(node)
        entered_as_owner = name in self._entered
        if self._on_begin is not None:
            self._on_begin(name)
        if not entered_as_owner and self._on_workers is not None and node.workers:
            self._on_workers(name, node.workers)
        try:
            value = node.run(self.state)
        finally:
            if entered_as_owner:
                scope = self._entered.pop(name)
                scope.__exit__(None, None, None)
            if self._on_workers is not None and node.workers:
                self._on_workers(name, -node.workers)
        self.state[name] = value
        self.done.add(name)
        if self._on_end is not None:
            counts = node.counts(value) if node.counts is not None else {}
            self._on_end(name, **counts)
        return value

    def close(self) -> None:
        """Tear down any concurrency window still open (aborted runs)."""
        for name in reversed(list(self._entered)):
            scope = self._entered.pop(name)
            scope.__exit__(None, None, None)


class PlanRunner:
    """The local driver: nodes in listed order, edges enforced."""

    def __init__(
        self,
        on_begin: Optional[Callable[[str], None]] = None,
        on_end: Optional[Callable[..., None]] = None,
        on_workers: Optional[Callable[[str, int], None]] = None,
    ):
        self._on_begin = on_begin
        self._on_end = on_end
        self._on_workers = on_workers

    def run(
        self, plan: PipelinePlan, state: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        execution = PlanExecution(
            plan,
            state=state,
            on_begin=self._on_begin,
            on_end=self._on_end,
            on_workers=self._on_workers,
        )
        try:
            for node in plan.nodes:
                execution.run_node(node.name)
        finally:
            execution.close()
        return execution.state
