"""The stage executor: one composed middleware chain under every stage.

Stages keep their own concurrency substrates (the Globus-Compute-like
endpoint, the Parsl-like DataFlowKernel, inference worker threads) and
submit ``executor.execute(unit)`` closures to them; the executor itself
is thread-safe because all per-execution state lives in the
:class:`~repro.runtime.unit.UnitContext`.
"""

from __future__ import annotations

import time
from typing import Any, Callable, List, Sequence

from repro.runtime.middleware import (
    CacheMiddleware,
    ChaosMiddleware,
    JournalMiddleware,
    MetricsMiddleware,
    Middleware,
    PrecheckMiddleware,
    QuarantineMiddleware,
    RetryMiddleware,
)
from repro.runtime.unit import DONE, UnitContext, UnitResult, WorkUnit

__all__ = ["StageExecutor", "build_executor"]


class StageExecutor:
    """Run work units through an ordered middleware stack."""

    def __init__(self, middleware: Sequence[Middleware] = ()):
        self.middleware: List[Middleware] = list(middleware)

    def execute(self, unit: WorkUnit) -> UnitResult:
        ctx = UnitContext(unit)
        return self._invoke(0, ctx)

    def _invoke(self, index: int, ctx: UnitContext) -> UnitResult:
        if index == len(self.middleware):
            value = ctx.unit.body(ctx)
            if isinstance(value, UnitResult):
                return value
            return UnitResult(outcome=DONE, value=value)
        layer = self.middleware[index]
        return layer(ctx, lambda: self._invoke(index + 1, ctx))


def build_executor(
    journal: Any = None,
    chaos: Any = None,
    metrics: Any = None,
    sleeper: Callable[[float], None] = time.sleep,
    cache: Any = None,
) -> StageExecutor:
    """The canonical stack (outermost first):

    Metrics > Quarantine > Journal > Cache > Chaos > Precheck > Retry > body.

    Metrics wraps everything so resumed and quarantined units are
    counted too; Quarantine sits outside Journal so a failed unit never
    records a completion; Cache sits inside Journal so a CAS hit still
    records a completion (resume semantics identical with the cache on
    or off) but outside Chaos/Retry so a hit neither stalls nor burns an
    attempt; Chaos precedes Precheck so a stalled worker stalls before
    it can short-circuit; Precheck precedes Retry so a skip never
    consults the circuit breaker or burns an attempt.
    """
    return StageExecutor(
        [
            MetricsMiddleware(metrics),
            QuarantineMiddleware(),
            JournalMiddleware(journal),
            CacheMiddleware(cache),
            ChaosMiddleware(chaos, sleeper=sleeper),
            PrecheckMiddleware(),
            RetryMiddleware(sleeper=sleeper),
        ]
    )
