"""Work units: the one vocabulary every stage speaks.

A :class:`WorkUnit` is one retriable, journalable, chaos-injectable item
of stage work — one granule download, one granule-set preprocess, one
tile-file inference, one shipment move.  Stages *produce* units; the
:class:`~repro.runtime.executor.StageExecutor` runs them through an
ordered middleware stack that supplies every cross-cutting behaviour
(journal resume/complete, chaos stalls, retry/backoff/breaker,
quarantine-and-continue, per-unit metrics) exactly once, so no stage
hand-wires its own copy.

This module (and the whole ``repro.runtime`` package) must never import
``repro.core``: the flows engine and the zambeze orchestrator execute
the same units and plans without pulling in the local stage
implementations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

__all__ = [
    "DONE",
    "RESUMED",
    "SKIPPED",
    "CACHED",
    "RETRIED",
    "FAILED",
    "QUARANTINED",
    "OUTCOMES",
    "SUCCESS_OUTCOMES",
    "UnitFailed",
    "UnitResult",
    "RetrySpec",
    "FailurePolicy",
    "CachePolicy",
    "WorkUnit",
    "UnitContext",
]

# Unit outcomes.  The first five are successes (work is, or already was,
# done); the last two are handled failures (recorded, never raised).
DONE = "done"            # fresh work completed this run
RESUMED = "resumed"      # journaled completion verified; zero work redone
SKIPPED = "skipped"      # precheck short-circuit (artifact already present)
CACHED = "cached"        # materialized from the content-addressed store
RETRIED = "retried"      # completed after >= 1 retried failure
FAILED = "failed"        # retry budget exhausted, policy says record
QUARANTINED = "quarantined"  # body error set aside, policy says continue

OUTCOMES = (DONE, RESUMED, SKIPPED, CACHED, RETRIED, FAILED, QUARANTINED)
# Outcomes the journal records as completions.  CACHED is included: a
# materialized artifact is as real as a fetched one, and resume must be
# able to verify it on the next run.
SUCCESS_OUTCOMES = (DONE, RETRIED, SKIPPED, CACHED)


class UnitFailed(RuntimeError):
    """A unit exhausted its retry budget under an abort-the-run policy."""


@dataclass
class UnitResult:
    """What one executed unit produced.

    ``payload`` carries the extra key/values the journal completion
    records (``tiles``, ``sha256``, ...); ``journal=False`` suppresses
    the completion record even on a success outcome (a delivered file
    whose destination digest mismatched must stay redoable).
    """

    outcome: str
    value: Any = None
    artifact: Optional[str] = None
    payload: Dict[str, Any] = field(default_factory=dict)
    error: Optional[str] = None
    attempts: int = 0
    seconds: float = 0.0
    journal: bool = True

    @property
    def ok(self) -> bool:
        return self.outcome in (DONE, RESUMED, SKIPPED, CACHED, RETRIED)


@dataclass(frozen=True)
class RetrySpec:
    """How RetryMiddleware treats this unit's failures."""

    retries: int = 0
    backoff: Any = None                 # net.retry.BackoffPolicy
    breaker: Any = None                 # net.retry.CircuitBreaker
    host: str = ""
    retry_on: Tuple[type, ...] = (OSError, RuntimeError)
    sleeper: Optional[Callable[[float], None]] = None
    # Runs before every attempt; whatever it raises aborts the unit
    # immediately (wall-clock deadlines), never retried.
    before_attempt: Optional[Callable[[], None]] = None


@dataclass(frozen=True)
class FailurePolicy:
    """What QuarantineMiddleware does when a unit cannot succeed.

    ``on_exhausted`` decides the retry-exhaustion fate: ``"raise"``
    aborts the stage with :class:`UnitFailed`, ``"record"`` returns a
    FAILED result and lets siblings continue.  ``catch`` lists exception
    types (outside any retry loop) converted to QUARANTINED results;
    ``on_caught`` is the side-effect hook (move the file aside, record
    the error) invoked with the error message.
    """

    on_exhausted: str = "raise"
    describe: Optional[Callable[[int, str], str]] = None  # (attempts, error)
    cleanup: Optional[Callable[[], None]] = None
    catch: Tuple[type, ...] = ()
    on_caught: Optional[Callable[[str], None]] = None


@dataclass(frozen=True)
class CachePolicy:
    """How CacheMiddleware treats this unit against the artifact store.

    ``lookup(ctx, cas)`` runs *before* the body (but after the journal's
    resume decision): return a CACHED :class:`UnitResult` to
    short-circuit, or ``None`` to fall through to the work.  ``store(ctx,
    cas, result)`` runs after a successful body and publishes whatever
    the unit produced into the store; it must never raise — the cache is
    an optimization, a failed store only means a future miss.
    """

    lookup: Optional[Callable[["UnitContext", Any], Optional[UnitResult]]] = None
    store: Optional[Callable[["UnitContext", Any, UnitResult], None]] = None


@dataclass
class WorkUnit:
    """One item of stage work plus its policies.

    ``journal_phase`` places the unit in the journal protocol:

    * ``"unit"`` — full cycle: resume decision, write-ahead intent (via
      :meth:`UnitContext.begin`), completion on success;
    * ``"open"`` — resume + intent only (the completion belongs to a
      later unit, e.g. inference parse before a fused assign);
    * ``"close"`` — completion only (the intent was written by the
      matching ``"open"`` unit);
    * ``"off"`` — the journal never sees this unit (monitor triggers).
    """

    stage: str
    key: str
    body: Callable[["UnitContext"], Any]
    precheck: Optional[Callable[["UnitContext"], Optional[UnitResult]]] = None
    journal_phase: str = "unit"
    retry: Optional[RetrySpec] = None
    failure: FailurePolicy = field(default_factory=FailurePolicy)
    cache: Optional[CachePolicy] = None
    stall: bool = True  # eligible for injected worker_stall faults


class UnitContext:
    """Mutable per-execution state threaded through the middleware."""

    def __init__(self, unit: WorkUnit, chaos: Any = None, journal: Any = None):
        self.unit = unit
        self.chaos = chaos
        self.journal = journal
        self.decision = None       # journal ResumeDecision, set by middleware
        self.attempt = 0           # 1-based inside the retry loop
        self._intent_written = False

    @property
    def redo(self) -> bool:
        """Did the journal rule the on-disk artifact untrustworthy?"""
        return self.decision is not None and self.decision.redo

    def begin(self) -> None:
        """Write the journal's write-ahead intent, exactly once.

        Bodies call this at the point where work becomes observable, so
        precheck short-circuits (skip_existing) record completions
        without ever writing an intent — the same protocol the stages
        spoke before the runtime existed.
        """
        if (
            self.journal is not None
            and not self._intent_written
            and self.unit.journal_phase in ("unit", "open")
        ):
            self.journal.intent(self.unit.stage, self.unit.key)
            self._intent_written = True
