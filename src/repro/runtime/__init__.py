"""repro.runtime — the unified stage runtime.

One :class:`StageExecutor` with an ordered middleware stack (metrics,
quarantine, journal, cache, chaos, precheck, retry) runs the
:class:`WorkUnit`\\ s every stage produces, and one declarative
:class:`PipelinePlan` states the workflow's structure (download barrier,
monitor/inference overlap) as explicit edges that the local
:class:`PlanRunner`, the flows engine, and the zambeze orchestrator can
all drive.

Layering contract: this package must not import ``repro.core`` (checked
by ``tools/check_layering.py`` and CI).
"""

from repro.runtime.channel import (
    DEFAULT_CAPACITY,
    ChannelStats,
    StreamChannel,
    StreamClosed,
    StreamConfig,
    StreamHub,
    StreamWriter,
    edge_name,
)
from repro.runtime.elastic import ElasticPolicy
from repro.runtime.executor import StageExecutor, build_executor
from repro.runtime.middleware import (
    CacheMiddleware,
    ChaosMiddleware,
    JournalMiddleware,
    MetricsMiddleware,
    Middleware,
    PrecheckMiddleware,
    QuarantineMiddleware,
    RetryMiddleware,
)
from repro.runtime.proc import (
    EnvelopeResult,
    PoolFuture,
    PoolStats,
    ProcChannel,
    ProcWorkerPool,
    WorkEnvelope,
    WorkerCrashed,
    WorkerSpec,
    WorkerStats,
    WorkerTaskError,
)
from repro.runtime.plan import (
    STREAMS_KEY,
    PipelinePlan,
    PlanError,
    PlanExecution,
    PlanRunner,
    StageNode,
    StreamingPlanRunner,
)
from repro.runtime.unit import (
    CACHED,
    DONE,
    FAILED,
    OUTCOMES,
    QUARANTINED,
    RESUMED,
    RETRIED,
    SKIPPED,
    SUCCESS_OUTCOMES,
    CachePolicy,
    FailurePolicy,
    RetrySpec,
    UnitContext,
    UnitFailed,
    UnitResult,
    WorkUnit,
)

__all__ = [
    "DONE",
    "RESUMED",
    "SKIPPED",
    "CACHED",
    "RETRIED",
    "FAILED",
    "QUARANTINED",
    "OUTCOMES",
    "SUCCESS_OUTCOMES",
    "UnitFailed",
    "UnitResult",
    "RetrySpec",
    "FailurePolicy",
    "CachePolicy",
    "WorkUnit",
    "UnitContext",
    "Middleware",
    "MetricsMiddleware",
    "QuarantineMiddleware",
    "JournalMiddleware",
    "CacheMiddleware",
    "ChaosMiddleware",
    "PrecheckMiddleware",
    "RetryMiddleware",
    "StageExecutor",
    "build_executor",
    "PlanError",
    "StageNode",
    "PipelinePlan",
    "PlanExecution",
    "PlanRunner",
    "StreamingPlanRunner",
    "STREAMS_KEY",
    "DEFAULT_CAPACITY",
    "ChannelStats",
    "StreamChannel",
    "StreamClosed",
    "StreamConfig",
    "StreamHub",
    "StreamWriter",
    "edge_name",
    "ElasticPolicy",
    "WorkEnvelope",
    "EnvelopeResult",
    "WorkerSpec",
    "WorkerStats",
    "PoolStats",
    "PoolFuture",
    "ProcChannel",
    "ProcWorkerPool",
    "WorkerCrashed",
    "WorkerTaskError",
]
