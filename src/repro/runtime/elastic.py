"""Elastic worker-pool policy: demand-driven scale-out, idle scale-in.

Fig. 6's adaptive resource management, promoted from the simulator into
the live runtime: :class:`repro.pexec.strategy.ElasticStrategy` models
Parsl's block scale-out against a simulated executor, and this module
states the *decision rule* it uses — so the live process pool
(:mod:`repro.runtime.proc`) and the simulated strategy share one policy
instead of two drifting copies.

The rule is queue-depth driven, exactly as the paper describes ("the
workflow increases resource allocation ... and dynamically scales down
resources as workers complete their tasks"):

* **scale out** while the backlog exceeds ``tasks_per_worker_target``
  tasks per provisioned worker (and the cap allows);
* **scale in** when the backlog is empty and a worker has sat idle for
  ``idle_retire_seconds`` (and the floor allows).

This module (like the whole ``repro.runtime`` package) must not import
``repro.core``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

__all__ = ["ElasticPolicy"]


@dataclass(frozen=True)
class ElasticPolicy:
    """The ``runtime.elastic`` config and its scaling decision rule.

    ``enabled`` is the config switch read by the workflow (a disabled
    policy means a fixed-size pool); the pool itself only consults the
    bounds and the decision methods, so a fixed pool is just
    ``ElasticPolicy.fixed(n)``.  ``min_workers`` may be 0 for consumers
    that scale from nothing (the simulated strategy); the live pool
    always keeps at least one worker.
    """

    enabled: bool = False
    min_workers: int = 1
    max_workers: int = 1
    tasks_per_worker_target: float = 2.0
    idle_retire_seconds: float = 0.5

    def __post_init__(self) -> None:
        if self.min_workers < 0:
            raise ValueError(
                f"min_workers must be >= 0, got {self.min_workers}"
            )
        if self.max_workers < 1:
            raise ValueError(
                f"max_workers must be >= 1, got {self.max_workers}"
            )
        if self.max_workers < self.min_workers:
            raise ValueError(
                f"max_workers ({self.max_workers}) must be >= "
                f"min_workers ({self.min_workers})"
            )
        if self.tasks_per_worker_target <= 0:
            raise ValueError("tasks_per_worker_target must be positive")
        if self.idle_retire_seconds <= 0:
            raise ValueError("idle_retire_seconds must be positive")

    @classmethod
    def fixed(cls, workers: int) -> "ElasticPolicy":
        """A pool pinned at exactly ``workers`` processes."""
        return cls(min_workers=workers, max_workers=workers)

    @classmethod
    def from_mapping(cls, raw: Mapping[str, Any]) -> "ElasticPolicy":
        """Parse the validated ``runtime.elastic`` mapping; raises ValueError."""
        return cls(
            enabled=bool(raw.get("enabled", False)),
            min_workers=int(raw.get("min_workers", 1)),
            max_workers=int(raw.get("max_workers", 4)),
            tasks_per_worker_target=float(raw.get("tasks_per_worker_target", 2.0)),
            idle_retire_seconds=float(raw.get("idle_retire_seconds", 0.5)),
        )

    # -- the decision rule ----------------------------------------------------

    def wants_scale_out(self, queued: int, workers: int) -> bool:
        """Demand check alone, with no cap: backlog exceeds the target.

        This is the exact rule the simulated strategy has always used —
        it applies its own cap in *blocks* rather than workers, so it
        consumes the bare predicate.
        """
        return queued > 0 and (
            workers == 0 or queued > self.tasks_per_worker_target * workers
        )

    def decide(self, queued: int, workers: int) -> int:
        """+1 to add a worker, -1 to retire an idle one, 0 to hold.

        A -1 is advice, not an order: the caller retires a worker only
        if one has actually been idle for ``idle_retire_seconds``.
        """
        if workers < self.min_workers:
            return 1
        if workers < self.max_workers and self.wants_scale_out(queued, workers):
            return 1
        if queued == 0 and workers > self.min_workers:
            return -1
        return 0
