"""Bounded, backpressured channels for plan stream edges.

A :class:`StreamChannel` carries per-item tokens (a completed granule
scene, a labelled file name) from a producing stage to a consuming one —
the Parsl-style pipelined dataflow the paper's Fig. 6 overlap implies.
The channel is *bounded*: a producer that races ahead of its consumer
blocks in :meth:`put` once ``capacity`` items are queued, so a fast
download stage cannot flood memory while preprocessing lags.  Both ends
account their waiting (producer stall seconds, consumer wait seconds)
and the high-water queue depth, which roll up into ``WorkflowReport``.

Sequential drivers (the flows state machine, the zambeze orchestrator)
run the producer's node to completion before the consumer starts, so a
bounded channel would deadlock them; :class:`~repro.runtime.plan.
PlanExecution` therefore creates channels *relaxed* (unbounded) unless a
concurrent runner asks for backpressure, and any driver can
:meth:`relax` a channel to unblock producers whose consumer died.

This module (like the whole ``repro.runtime`` package) must not import
``repro.core``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

__all__ = [
    "DEFAULT_CAPACITY",
    "StreamClosed",
    "ChannelStats",
    "StreamChannel",
    "StreamConfig",
    "StreamWriter",
    "StreamHub",
    "edge_name",
]

DEFAULT_CAPACITY = 8

# How long a blocked producer/consumer sleeps between re-checks; bounds
# the latency of observing close()/relax() from another thread.
_WAIT_SLICE = 0.1


def edge_name(src: str, dst: str) -> str:
    """The canonical ``"src->dst"`` spelling of a stream edge."""
    return f"{src}->{dst}"


class StreamClosed(RuntimeError):
    """A producer put an item into a channel that was already closed."""


@dataclass(frozen=True)
class ChannelStats:
    """One channel's lifetime accounting (rolled into WorkflowReport)."""

    edge: str
    capacity: int
    bounded: bool
    items: int                     # tokens that passed through
    max_depth: int                 # high-water queue occupancy
    producer_stall_seconds: float  # time put() spent blocked on a full queue
    consumer_wait_seconds: float   # time iteration spent blocked on an empty queue
    closed: bool

    def as_dict(self) -> Dict[str, Any]:
        return {
            "capacity": self.capacity,
            "bounded": self.bounded,
            "items": self.items,
            "max_depth": self.max_depth,
            "producer_stall_seconds": self.producer_stall_seconds,
            "consumer_wait_seconds": self.consumer_wait_seconds,
            "closed": self.closed,
        }


class StreamChannel:
    """A closable bounded FIFO connecting one producer to one consumer."""

    def __init__(self, edge: str, capacity: int = DEFAULT_CAPACITY,
                 bounded: bool = True):
        if capacity < 1:
            raise ValueError(f"channel capacity must be >= 1, got {capacity}")
        self.edge = edge
        self.capacity = capacity
        self._bounded = bounded
        # Stats report the configured bound, not the current one: every
        # channel ends relaxed (settling unbounds inputs), which would
        # make the report claim no backpressure was ever applied.
        self._bounded_at_birth = bounded
        self._items: deque = deque()
        self._lock = threading.Lock()
        self._state_changed = threading.Condition(self._lock)
        self._closed = False
        self._put_count = 0
        self._max_depth = 0
        self._producer_stall = 0.0
        self._consumer_wait = 0.0

    # -- producer side --------------------------------------------------------

    def put(self, item: Any) -> None:
        """Enqueue one token; blocks while the bounded queue is full.

        Raises :class:`StreamClosed` if the channel was closed — a closed
        channel means the consumer contract ended, so a late put is a
        programming error, never silently dropped.
        """
        with self._state_changed:
            stall_started: Optional[float] = None
            while (
                self._bounded
                and not self._closed
                and len(self._items) >= self.capacity
            ):
                if stall_started is None:
                    stall_started = time.monotonic()
                self._state_changed.wait(_WAIT_SLICE)
            if stall_started is not None:
                self._producer_stall += time.monotonic() - stall_started
            if self._closed:
                raise StreamClosed(f"channel {self.edge} is closed")
            self._items.append(item)
            self._put_count += 1
            self._max_depth = max(self._max_depth, len(self._items))
            self._state_changed.notify_all()

    def close(self) -> None:
        """End the stream (idempotent); consumers drain what remains."""
        with self._state_changed:
            self._closed = True
            self._state_changed.notify_all()

    def relax(self) -> None:
        """Drop the capacity bound so a blocked producer can finish.

        Used when the consumer will never drain the channel again (its
        node skipped or died): the producer's remaining puts land
        unbounded instead of deadlocking the pipeline.
        """
        with self._state_changed:
            self._bounded = False
            self._state_changed.notify_all()

    # -- consumer side --------------------------------------------------------

    def get(self, timeout: Optional[float] = None) -> Tuple[bool, Any]:
        """Dequeue one token: ``(True, item)``, or ``(False, None)`` when
        the channel is closed and drained (or ``timeout`` elapsed)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._state_changed:
            wait_started: Optional[float] = None
            while not self._items and not self._closed:
                if deadline is not None and time.monotonic() >= deadline:
                    break
                if wait_started is None:
                    wait_started = time.monotonic()
                self._state_changed.wait(_WAIT_SLICE)
            if wait_started is not None:
                self._consumer_wait += time.monotonic() - wait_started
            if self._items:
                item = self._items.popleft()
                self._state_changed.notify_all()
                return True, item
            return False, None

    def __iter__(self) -> Iterator[Any]:
        while True:
            ok, item = self.get()
            if not ok:
                return
            yield item

    # -- introspection --------------------------------------------------------

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def stats(self) -> ChannelStats:
        with self._lock:
            return ChannelStats(
                edge=self.edge,
                capacity=self.capacity,
                bounded=self._bounded_at_birth,
                items=self._put_count,
                max_depth=self._max_depth,
                producer_stall_seconds=self._producer_stall,
                consumer_wait_seconds=self._consumer_wait,
                closed=self._closed,
            )


@dataclass(frozen=True)
class StreamConfig:
    """The ``runtime.stream`` config: global switch plus per-edge knobs.

    ``edges`` maps ``"src->dst"`` to ``{"enabled": bool, "capacity": int}``
    overrides.  A disabled edge falls back to barrier semantics — the
    concurrent runner waits for the producer to finish before the
    consumer starts, and the channel is left unbounded so the buffered
    hand-off still flows through the same bodies.
    """

    enabled: bool = False
    capacity: int = DEFAULT_CAPACITY
    edges: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError(
                f"stream capacity must be >= 1, got {self.capacity}"
            )

    @classmethod
    def from_mapping(cls, raw: Mapping[str, Any]) -> "StreamConfig":
        """Parse the validated ``runtime.stream`` mapping; raises ValueError."""
        enabled = bool(raw.get("enabled", False))
        capacity = int(raw.get("capacity", DEFAULT_CAPACITY))
        edges_raw = raw.get("edges") or {}
        if not isinstance(edges_raw, Mapping):
            raise ValueError("stream.edges must be a mapping of 'src->dst' entries")
        edges: Dict[str, Dict[str, Any]] = {}
        for name, entry in edges_raw.items():
            if "->" not in str(name):
                raise ValueError(
                    f"stream edge {name!r} must be spelled 'src->dst'"
                )
            if not isinstance(entry, Mapping):
                raise ValueError(f"stream edge {name!r} must map to a mapping")
            parsed: Dict[str, Any] = {}
            for key, value in entry.items():
                if key == "enabled":
                    parsed["enabled"] = bool(value)
                elif key == "capacity":
                    cap = int(value)
                    if cap < 1:
                        raise ValueError(
                            f"stream edge {name!r} capacity must be >= 1"
                        )
                    parsed["capacity"] = cap
                else:
                    raise ValueError(
                        f"stream edge {name!r} has unknown key {key!r}"
                    )
            edges[str(name)] = parsed
        return cls(enabled=enabled, capacity=capacity, edges=edges)

    def edge_enabled(self, src: str, dst: str) -> bool:
        entry = self.edges.get(edge_name(src, dst), {})
        return bool(entry.get("enabled", True))

    def edge_capacity(self, src: str, dst: str) -> int:
        entry = self.edges.get(edge_name(src, dst), {})
        return int(entry.get("capacity", self.capacity))


class StreamWriter:
    """The producer-facing fan-out over one node's outgoing channels."""

    def __init__(self, channels: List[StreamChannel]):
        self._channels = channels

    def put(self, item: Any) -> None:
        for channel in self._channels:
            channel.put(item)

    def close(self) -> None:
        for channel in self._channels:
            channel.close()

    def __len__(self) -> int:
        return len(self._channels)


class StreamHub:
    """All of one plan execution's channels, addressed by edge.

    Node bodies reach the hub through the execution state (under
    :data:`~repro.runtime.plan.STREAMS_KEY`) and ask for their
    :meth:`writer` (all outgoing channels) or :meth:`reader` (one
    incoming channel).  The execution closes a node's outputs when the
    node finishes and relaxes its inputs when it can no longer consume.
    """

    def __init__(self) -> None:
        self._channels: Dict[Tuple[str, str], StreamChannel] = {}

    def connect(self, src: str, dst: str, channel: StreamChannel) -> None:
        self._channels[(src, dst)] = channel

    def channel(self, src: str, dst: str) -> StreamChannel:
        try:
            return self._channels[(src, dst)]
        except KeyError:
            raise KeyError(f"no stream edge {edge_name(src, dst)}") from None

    def writer(self, src: str) -> StreamWriter:
        return StreamWriter(
            [ch for (s, _), ch in sorted(self._channels.items()) if s == src]
        )

    def reader(self, dst: str, src: Optional[str] = None) -> StreamChannel:
        incoming = {
            s: ch for (s, d), ch in self._channels.items() if d == dst
        }
        if src is not None:
            return self.channel(src, dst)
        if len(incoming) != 1:
            raise KeyError(
                f"node {dst!r} has {len(incoming)} incoming stream edges; "
                "name the source explicitly"
            )
        return next(iter(incoming.values()))

    def close_outputs(self, src: str) -> None:
        for (s, _), channel in self._channels.items():
            if s == src:
                channel.close()

    def relax_inputs(self, dst: str) -> None:
        for (_, d), channel in self._channels.items():
            if d == dst:
                channel.relax()

    def close_all(self) -> None:
        for channel in self._channels.values():
            channel.close()

    def stats(self) -> List[ChannelStats]:
        return [
            channel.stats()
            for _, channel in sorted(self._channels.items())
        ]

    def __len__(self) -> int:
        return len(self._channels)
