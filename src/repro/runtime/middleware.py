"""The middleware stack: every cross-cutting stage behaviour, once.

Each middleware is a callable ``(ctx, call_next) -> UnitResult`` wrapping
the next layer (onion composition).  The canonical order, outermost
first — see :func:`repro.runtime.executor.build_executor`:

1. :class:`MetricsMiddleware` — times and counts every unit;
2. :class:`QuarantineMiddleware` — converts exhaustion/body errors into
   recorded FAILED/QUARANTINED results per the unit's policy;
3. :class:`JournalMiddleware` — resume decision before the work,
   completion record after it;
4. :class:`CacheMiddleware` — content-addressed short circuits and
   post-success store population, inside the journal (a cache hit still
   records a completion, so resume semantics are identical with the
   cache on or off) but outside chaos/precheck/retry (a hit must not
   burn a retry attempt or consult a breaker);
5. :class:`ChaosMiddleware` — injected worker stalls (the other fault
   surfaces live inside unit bodies, at the exact I/O boundary they
   model);
6. :class:`PrecheckMiddleware` — skip_existing-style short circuits,
   after the journal (a redo decision bypasses them) but before any
   retry machinery (a skip must not consult the circuit breaker);
7. :class:`RetryMiddleware` — bounded retries with backoff and breaker,
   delegating to :func:`repro.net.retry.retry_call`.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Optional

from repro.chaos.surfaces import chaos_stall
from repro.net.retry import RetryExhausted, retry_call
from repro.runtime.unit import (
    CACHED,
    DONE,
    FAILED,
    QUARANTINED,
    RESUMED,
    RETRIED,
    SUCCESS_OUTCOMES,
    UnitContext,
    UnitFailed,
    UnitResult,
)

__all__ = [
    "Middleware",
    "MetricsMiddleware",
    "QuarantineMiddleware",
    "JournalMiddleware",
    "CacheMiddleware",
    "ChaosMiddleware",
    "PrecheckMiddleware",
    "RetryMiddleware",
]

# A middleware is any callable with this shape.
Middleware = Callable[[UnitContext, Callable[[], UnitResult]], UnitResult]


class MetricsMiddleware:
    """Per-unit wall-clock timing and outcome counting.

    Emits ``runtime.unit_seconds`` (histogram) and ``runtime.units``
    (counter labelled by stage and outcome) into the registry the
    workflow already snapshots.  A ``None`` registry costs nothing.
    """

    def __init__(self, metrics: Any = None):
        self.metrics = metrics

    def __call__(self, ctx: UnitContext, call_next: Callable[[], UnitResult]) -> UnitResult:
        if self.metrics is None:
            return call_next()
        started = time.monotonic()
        try:
            result = call_next()
        except Exception:
            self.metrics.counter("runtime.units").inc(
                stage=ctx.unit.stage, outcome="raised"
            )
            raise
        self.metrics.histogram(
            "runtime.unit_seconds", "wall-clock seconds per executed work unit",
            buckets=(0.001, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0),
        ).observe(time.monotonic() - started)
        self.metrics.counter("runtime.units").inc(
            stage=ctx.unit.stage, outcome=result.outcome
        )
        return result


class QuarantineMiddleware:
    """Set-aside-and-continue: failures become results, per unit policy."""

    def __call__(self, ctx: UnitContext, call_next: Callable[[], UnitResult]) -> UnitResult:
        policy = ctx.unit.failure
        try:
            return call_next()
        except RetryExhausted as exc:
            if policy.cleanup is not None:
                policy.cleanup()
            message = (
                policy.describe(exc.attempts, exc.last_error)
                if policy.describe is not None
                else str(exc)
            )
            if policy.on_exhausted == "raise":
                raise UnitFailed(message) from exc
            return UnitResult(outcome=FAILED, error=message, attempts=exc.attempts)
        except policy.catch as exc:
            message = str(exc)
            if policy.on_caught is not None:
                policy.on_caught(message)
            return UnitResult(outcome=QUARANTINED, error=message)


class JournalMiddleware:
    """Crash-consistent bookkeeping around the unit.

    Before the work: take the journal's resume decision; a verified
    completion short-circuits as a RESUMED result carrying the journaled
    payload.  After the work: record the completion for every success
    outcome (unless the result opted out).  The write-ahead *intent* is
    the body's to place, via :meth:`UnitContext.begin`, so skip-existing
    paths never write one — exactly the protocol resume relies on.
    """

    def __init__(self, journal: Any = None):
        self.journal = journal

    def __call__(self, ctx: UnitContext, call_next: Callable[[], UnitResult]) -> UnitResult:
        unit = ctx.unit
        if self.journal is None or unit.journal_phase == "off":
            return call_next()
        ctx.journal = self.journal
        if unit.journal_phase in ("unit", "open"):
            decision = self.journal.resume(unit.stage, unit.key)
            ctx.decision = decision
            if decision.skip:
                payload = dict(decision.payload)
                return UnitResult(
                    outcome=RESUMED,
                    artifact=payload.get("artifact"),
                    payload=payload,
                )
        result = call_next()
        if (
            unit.journal_phase in ("unit", "close")
            and result.journal
            and result.outcome in SUCCESS_OUTCOMES
        ):
            self.journal.complete(
                unit.stage, unit.key, artifact=result.artifact, **result.payload
            )
        return result


class CacheMiddleware:
    """Content-addressed short circuits around the unit body.

    Before the work: run the unit's cache ``lookup`` — a CAS hit returns
    a CACHED result without touching the network or recomputing; the
    enclosing :class:`JournalMiddleware` still records the completion,
    so a later crash+resume verifies the materialized artifact exactly
    like a fetched one.  After the work: ``store`` publishes fresh
    outputs into the CAS so the *next* run (or a co-located tenant)
    hits.  Both hooks are best-effort by contract: any exception is
    swallowed — the cache may only ever change performance, never
    outcome.
    """

    def __init__(self, cache: Any = None):
        self.cache = cache

    def __call__(self, ctx: UnitContext, call_next: Callable[[], UnitResult]) -> UnitResult:
        policy = ctx.unit.cache
        if self.cache is None or policy is None:
            return call_next()
        if policy.lookup is not None:
            try:
                hit = policy.lookup(ctx, self.cache)
            except Exception:
                hit = None
            if hit is not None:
                return hit
        result = call_next()
        # RESUMED carries no fresh bytes and CACHED came *from* the
        # store; neither has anything new to publish.
        if (
            policy.store is not None
            and result.outcome in SUCCESS_OUTCOMES
            and result.outcome not in (RESUMED, CACHED)
        ):
            try:
                policy.store(ctx, self.cache, result)
            except Exception:
                pass
        return result


class ChaosMiddleware:
    """The worker_stall fault surface, uniformly under every stage.

    Other fault kinds keep firing inside unit bodies (torn/corrupt
    writes at the NetCDF boundary, HTTP faults at the archive fetch,
    WAN degradation at the transfer move, crashes in their journaled
    windows) — a stall is the only fault that belongs to "a worker
    picked this unit up", which is precisely what this layer models.
    """

    def __init__(self, chaos: Any = None, sleeper: Callable[[float], None] = time.sleep):
        self.chaos = chaos
        self.sleeper = sleeper

    def __call__(self, ctx: UnitContext, call_next: Callable[[], UnitResult]) -> UnitResult:
        if ctx.chaos is None:
            ctx.chaos = self.chaos
        if self.chaos is not None and ctx.unit.stall:
            chaos_stall(self.chaos, ctx.unit.stage, ctx.unit.key, sleeper=self.sleeper)
        return call_next()


class PrecheckMiddleware:
    """Run the unit's short-circuit probe (skip_existing and friends)."""

    def __call__(self, ctx: UnitContext, call_next: Callable[[], UnitResult]) -> UnitResult:
        probe = ctx.unit.precheck
        if probe is not None:
            result = probe(ctx)
            if result is not None:
                return result
        return call_next()


class RetryMiddleware:
    """Bounded retries with backoff and circuit breaker, via retry_call."""

    def __init__(self, sleeper: Callable[[float], None] = time.sleep):
        self.sleeper = sleeper

    def __call__(self, ctx: UnitContext, call_next: Callable[[], UnitResult]) -> UnitResult:
        spec = ctx.unit.retry
        if spec is None:
            return call_next()

        def attempt() -> UnitResult:
            ctx.attempt += 1
            return call_next()

        result, failures = retry_call(
            attempt,
            retries=spec.retries,
            backoff=spec.backoff,
            key=ctx.unit.key,
            sleeper=spec.sleeper or self.sleeper,
            retry_on=spec.retry_on,
            before_attempt=spec.before_attempt,
            breaker=spec.breaker,
            host=spec.host,
        )
        result.attempts = failures
        if failures and result.outcome == DONE:
            result.outcome = RETRIED
        return result
