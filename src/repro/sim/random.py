"""Seeded, named random-number streams for reproducible simulations.

Every stochastic component draws from its own named stream so that adding
or removing one component never perturbs another's sample sequence — the
standard substream discipline for reproducible discrete-event simulation.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np

__all__ = ["RngStreams"]


class RngStreams:
    """A family of independent :class:`numpy.random.Generator` streams.

    Streams are derived from a root seed and a stream name via SHA-256, so
    ``RngStreams(7).get("network")`` is stable across processes and Python
    versions (unlike ``hash()``).
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def _derive(self, name: str) -> int:
        digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
        return int.from_bytes(digest[:8], "little")

    def get(self, name: str) -> np.random.Generator:
        """The stream for ``name``, created on first use."""
        if name not in self._streams:
            self._streams[name] = np.random.default_rng(self._derive(name))
        return self._streams[name]

    def spawn(self, name: str) -> "RngStreams":
        """A child family, independent of this one's streams."""
        return RngStreams(self._derive(f"spawn:{name}"))
