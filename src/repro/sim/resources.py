"""Shared-resource primitives for the simulation kernel.

Three discrete primitives (:class:`Resource`, :class:`Store`,
:class:`Container`) cover scheduler slots, task queues, and storage pools.
:class:`FluidPipe` is a processor-sharing bandwidth model — concurrent
flows split capacity max-min fairly — used for the LAADS HTTPS server NIC,
WAN links, and the Lustre aggregate-bandwidth model.  Processor sharing is
what produces the paper's Fig. 3 behaviour (per-worker download speed is
overhead-dominated for small files and share-dominated for many workers).
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Deque, Dict, List, Optional

from repro.sim.kernel import Event, Simulation, SimulationError

__all__ = ["Resource", "Store", "Container", "FluidPipe", "Flow"]

_EPS = 1e-9


class Resource:
    """A counted resource with FIFO request queue (like simpy.Resource)."""

    def __init__(self, sim: Simulation, capacity: int):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.users = 0
        self._waiters: Deque[Event] = deque()

    def request(self) -> Event:
        """Returns an event that fires once a slot is held.

        The caller owns the slot after the event fires and must call
        :meth:`release` exactly once.
        """
        event = self.sim.event()
        if self.users < self.capacity:
            self.users += 1
            event.succeed(self)
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        if self.users <= 0:
            raise SimulationError("release() without a held slot")
        if self._waiters:
            waiter = self._waiters.popleft()
            waiter.succeed(self)
        else:
            self.users -= 1

    def cancel(self, request: Event) -> bool:
        """Withdraw a queued (not yet granted) request. Returns True if removed."""
        try:
            self._waiters.remove(request)
            return True
        except ValueError:
            return False

    @property
    def queued(self) -> int:
        return len(self._waiters)


class Store:
    """A FIFO item queue with optional capacity (like simpy.Store)."""

    def __init__(self, sim: Simulation, capacity: float = math.inf):
        if capacity < 1:
            raise SimulationError("store capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple] = deque()

    def put(self, item: Any) -> Event:
        event = self.sim.event()
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
            event.succeed(None)
        elif len(self.items) < self.capacity:
            self.items.append(item)
            event.succeed(None)
        else:
            self._putters.append((event, item))
        return event

    def get(self) -> Event:
        event = self.sim.event()
        if self.items:
            item = self.items.popleft()
            if self._putters:
                put_event, queued_item = self._putters.popleft()
                self.items.append(queued_item)
                put_event.succeed(None)
            event.succeed(item)
        else:
            self._getters.append(event)
        return event

    def cancel_get(self, request: Event) -> bool:
        try:
            self._getters.remove(request)
            return True
        except ValueError:
            return False

    def __len__(self) -> int:
        return len(self.items)


class Container:
    """A continuous quantity with blocking get/put (like simpy.Container)."""

    def __init__(self, sim: Simulation, capacity: float = math.inf, init: float = 0.0):
        if capacity <= 0:
            raise SimulationError("container capacity must be positive")
        if not 0 <= init <= capacity:
            raise SimulationError("initial level out of range")
        self.sim = sim
        self.capacity = capacity
        self.level = float(init)
        self._getters: Deque[tuple] = deque()
        self._putters: Deque[tuple] = deque()

    def get(self, amount: float) -> Event:
        if amount <= 0:
            raise SimulationError("get amount must be positive")
        event = self.sim.event()
        self._getters.append((event, amount))
        self._drain()
        return event

    def put(self, amount: float) -> Event:
        if amount <= 0:
            raise SimulationError("put amount must be positive")
        event = self.sim.event()
        self._putters.append((event, amount))
        self._drain()
        return event

    def _drain(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters and self.level + self._putters[0][1] <= self.capacity + _EPS:
                event, amount = self._putters.popleft()
                self.level = min(self.capacity, self.level + amount)
                event.succeed(None)
                progressed = True
            if self._getters and self.level >= self._getters[0][1] - _EPS:
                event, amount = self._getters.popleft()
                self.level = max(0.0, self.level - amount)
                event.succeed(None)
                progressed = True


class Flow:
    """One active transfer on a :class:`FluidPipe`."""

    __slots__ = ("nbytes", "remaining", "done", "started_at", "finished_at")

    def __init__(self, nbytes: float, done: Event, started_at: float):
        self.nbytes = float(nbytes)
        self.remaining = float(nbytes)
        self.done = done
        self.started_at = started_at
        self.finished_at: Optional[float] = None

    @property
    def duration(self) -> float:
        if self.finished_at is None:
            raise SimulationError("flow has not finished")
        return self.finished_at - self.started_at

    @property
    def mean_rate(self) -> float:
        duration = self.duration
        return self.nbytes / duration if duration > 0 else math.inf


class FluidPipe:
    """Max-min fair processor-sharing bandwidth pipe.

    ``capacity`` is total bytes/second; ``per_flow_cap`` bounds any single
    flow (e.g. a single HTTPS connection's TCP ceiling).  With *n* active
    flows each receives ``min(per_flow_cap, capacity / n)`` — equal split
    is exact max-min fairness when all flows are elastic and identical.
    """

    def __init__(
        self,
        sim: Simulation,
        capacity: float,
        per_flow_cap: Optional[float] = None,
    ):
        if capacity <= 0:
            raise SimulationError("pipe capacity must be positive")
        if per_flow_cap is not None and per_flow_cap <= 0:
            raise SimulationError("per-flow cap must be positive")
        self.sim = sim
        self.capacity = float(capacity)
        self.per_flow_cap = float(per_flow_cap) if per_flow_cap else None
        self._flows: List[Flow] = []
        self._last_update = sim.now
        self._wake_token = 0

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    def current_rate_per_flow(self) -> float:
        if not self._flows:
            return 0.0
        fair = self.capacity / len(self._flows)
        if self.per_flow_cap is not None:
            fair = min(fair, self.per_flow_cap)
        return fair

    def transfer(self, nbytes: float) -> Event:
        """Start a flow of ``nbytes``; returns an event firing on completion.

        The event's value is the finished :class:`Flow` (with timing data).
        """
        if nbytes < 0:
            raise SimulationError("transfer size must be non-negative")
        done = self.sim.event()
        if nbytes == 0:
            zero = Flow(0.0, done, self.sim.now)
            zero.finished_at = self.sim.now
            done.succeed(zero)
            return done
        self._settle()
        flow = Flow(nbytes, done, self.sim.now)
        self._flows.append(flow)
        self._reschedule()
        return done

    def _settle(self) -> None:
        """Advance all flows' progress to the current instant."""
        elapsed = self.sim.now - self._last_update
        self._last_update = self.sim.now
        if elapsed <= 0 or not self._flows:
            return
        rate = self.current_rate_per_flow()
        finished: List[Flow] = []
        for flow in self._flows:
            flow.remaining -= rate * elapsed
            if flow.remaining <= self.capacity * 1e-12 + _EPS:
                flow.remaining = 0.0
                finished.append(flow)
        for flow in finished:
            self._flows.remove(flow)
            flow.finished_at = self.sim.now
            flow.done.succeed(flow)

    def _reschedule(self) -> None:
        """Schedule a wake-up at the earliest flow completion."""
        self._wake_token += 1
        if not self._flows:
            return
        token = self._wake_token
        rate = self.current_rate_per_flow()
        shortest = min(flow.remaining for flow in self._flows)
        delay = shortest / rate
        wake = self.sim.timeout(delay)
        wake._add_callback(lambda _ev: self._on_wake(token))

    def _on_wake(self, token: int) -> None:
        if token != self._wake_token:
            return  # superseded by a newer arrival/departure
        self._settle()
        self._reschedule()
