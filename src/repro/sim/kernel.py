"""Generator-based discrete-event simulation kernel.

This is the substrate on which the facility models run (Slurm scheduler,
Lustre filesystem, WAN links, Globus-like services).  The design follows
the classic process-interaction style: simulation processes are Python
generators that ``yield`` events (timeouts, resource requests, other
processes) and are resumed when those events fire.

The kernel is deliberately small but complete: events carry values or
exceptions, processes are themselves events (so they can be joined),
condition events (:class:`AllOf` / :class:`AnyOf`) compose waits, and
processes may be interrupted (used by the elastic scaling strategy to
retire idle workers, mirroring Parsl's block scale-in in Fig. 6).

Determinism: two events scheduled for the same instant fire in schedule
order (a monotonically increasing tiebreaker), so simulations are exactly
reproducible.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Simulation",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised for kernel-level protocol violations."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    ``cause`` carries an arbitrary payload describing why.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


PENDING = object()


class Event:
    """A one-shot occurrence with an optional value or exception.

    Events move through three states: *pending* (created), *triggered*
    (scheduled on the event queue with a value), and *processed* (callbacks
    have run).  Waiting processes register callbacks.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_processed")

    def __init__(self, sim: "Simulation"):
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._processed = False

    @property
    def triggered(self) -> bool:
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        if not self.triggered:
            raise SimulationError("event has not been triggered")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is PENDING:
            raise SimulationError("event value is not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        if self.triggered:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self.sim._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        if self.triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() requires an exception, got {exception!r}")
        self._ok = False
        self._value = exception
        self.sim._schedule(self)
        return self

    def _add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self.callbacks is None:
            # Already processed: run the callback immediately via the queue
            # to preserve run-to-completion semantics.
            immediate = Event(self.sim)
            immediate.callbacks.append(lambda _ev: callback(self))
            immediate._ok = self._ok
            immediate._value = self._value if self._ok else None
            self.sim._schedule(immediate)
        else:
            self.callbacks.append(callback)


class Timeout(Event):
    """An event that fires after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulation", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim._schedule(self, delay)


class Process(Event):
    """A running simulation process; also an event that fires on return.

    The wrapped generator yields :class:`Event` instances.  When the
    generator returns, the process event succeeds with the return value;
    if it raises, the process event fails with the exception.
    """

    __slots__ = ("_generator", "_waiting_on", "name")

    def __init__(self, sim: "Simulation", generator: Generator, name: str = ""):
        super().__init__(sim)
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(f"process body must be a generator, got {type(generator).__name__}")
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        bootstrap = Event(sim)
        bootstrap._ok = True
        bootstrap._value = None
        bootstrap.callbacks.append(self._resume)
        sim._schedule(bootstrap)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current wait."""
        if self.triggered:
            raise SimulationError("cannot interrupt a finished process")
        if self._waiting_on is None:
            raise SimulationError("cannot interrupt a process that has not started waiting")
        waited = self._waiting_on
        # Detach from the waited event so its eventual firing is ignored.
        if waited.callbacks is not None and self._resume in waited.callbacks:
            waited.callbacks.remove(self._resume)
        self._waiting_on = None
        poke = Event(self.sim)
        poke._ok = False
        poke._value = Interrupt(cause)
        poke.callbacks.append(self._resume)
        self.sim._schedule(poke)

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        try:
            if event._ok:
                target = self._generator.send(event._value)
            else:
                target = self._generator.throw(event._value)
        except StopIteration as stop:
            if not self.triggered:
                self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate into the event graph
            if not self.triggered:
                self.fail(exc)
            return
        if not isinstance(target, Event) or target.sim is not self.sim:
            problem = SimulationError(
                f"process {self.name!r} yielded {target!r}; expected an Event of this simulation"
            )
            self._generator.close()
            if not self.triggered:
                self.fail(problem)
            return
        self._waiting_on = target
        target._add_callback(self._resume)


class _Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    __slots__ = ("events", "_pending")

    def __init__(self, sim: "Simulation", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        for event in self.events:
            if event.sim is not sim:
                raise SimulationError("condition mixes events from different simulations")
        self._pending = len(self.events)
        if not self.events:
            self.succeed([])
        else:
            for event in self.events:
                event._add_callback(self._check)

    def _check(self, event: Event) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when all constituent events have fired; value is their values.

    Fails fast with the first failure.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([e._value for e in self.events])


class AnyOf(_Condition):
    """Fires when any constituent event fires; value is ``(index, value)``."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self.succeed((self.events.index(event), event._value))


class Simulation:
    """The event queue and clock."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: List[tuple] = []
        self._counter = 0

    # -- scheduling -------------------------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        heapq.heappush(self._queue, (self.now + delay, self._counter, event))
        self._counter += 1

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- execution --------------------------------------------------------

    def step(self) -> None:
        """Process the next event in the queue."""
        if not self._queue:
            raise SimulationError("no events to step")
        time, _tie, event = heapq.heappop(self._queue)
        if time < self.now - 1e-12:
            raise SimulationError("event queue time went backwards")
        self.now = max(self.now, time)
        callbacks = event.callbacks
        event.callbacks = None
        event._processed = True
        if callbacks:
            for callback in callbacks:
                callback(event)
        elif not event._ok and not isinstance(event, Process):
            # A failed event nobody waits on is a lost error: surface it.
            raise event._value

    def run(self, until: Optional[float] = None, stop: Optional[Event] = None) -> Any:
        """Run until the queue drains, ``until`` time passes, or ``stop`` fires.

        Returns ``stop``'s value when given and fired.
        """
        while self._queue:
            if stop is not None and stop.processed:
                break
            next_time = self._queue[0][0]
            if until is not None and next_time > until:
                self.now = until
                break
            self.step()
        else:
            if until is not None:
                self.now = max(self.now, until)
        if stop is not None:
            if not stop.triggered:
                raise SimulationError("simulation ran out of events before stop condition")
            if not stop._ok:
                raise stop._value
            return stop._value
        return None

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")
