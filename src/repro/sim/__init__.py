"""Discrete-event simulation kernel: events, processes, resources, tracing."""

from repro.sim.kernel import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    Simulation,
    SimulationError,
    Timeout,
)
from repro.sim.random import RngStreams
from repro.sim.resources import Container, Flow, FluidPipe, Resource, Store
from repro.sim.trace import Span, StepSeries, Tracer

__all__ = [
    "Simulation",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
    "Resource",
    "Store",
    "Container",
    "FluidPipe",
    "Flow",
    "RngStreams",
    "Tracer",
    "Span",
    "StepSeries",
]
