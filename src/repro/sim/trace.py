"""Timeline tracing: per-stage active-worker counts and span records.

Fig. 6 of the paper plots the number of active workers per workflow stage
over time; Fig. 7 reports per-stage latency spans and inter-stage
communication gaps.  :class:`Tracer` records both: point samples of gauge
values (worker counts) and named spans (stage start/stop), and can render
the step-function time series the figures plot.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["Span", "Tracer", "StepSeries"]


@dataclass(frozen=True)
class Span:
    """A named interval, e.g. one task execution or one workflow stage."""

    name: str
    category: str
    start: float
    end: float
    detail: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


class StepSeries:
    """A right-continuous step function built from (time, value) changes."""

    def __init__(self, changes: Sequence[Tuple[float, float]]):
        self.times: List[float] = []
        self.values: List[float] = []
        # Sort by time only (stable), so same-instant changes keep their
        # emission order and the last one wins.
        for time, value in sorted(changes, key=lambda change: change[0]):
            if self.times and abs(time - self.times[-1]) < 1e-12:
                self.values[-1] = value
            else:
                self.times.append(time)
                self.values.append(value)

    def at(self, time: float) -> float:
        """Value at ``time`` (0 before the first change)."""
        index = bisect.bisect_right(self.times, time) - 1
        return self.values[index] if index >= 0 else 0.0

    def sample(self, times: Sequence[float]) -> List[float]:
        return [self.at(t) for t in times]

    @property
    def max(self) -> float:
        return max(self.values) if self.values else 0.0

    def integral(self, start: float, end: float) -> float:
        """Area under the step function over [start, end] (worker-seconds)."""
        if end < start:
            raise ValueError("end before start")
        total = 0.0
        current = self.at(start)
        cursor = start
        index = bisect.bisect_right(self.times, start)
        while index < len(self.times) and self.times[index] < end:
            total += current * (self.times[index] - cursor)
            cursor = self.times[index]
            current = self.values[index]
            index += 1
        total += current * (end - cursor)
        return total


class Tracer:
    """Collects gauge changes and spans during a run."""

    def __init__(self) -> None:
        self._gauges: Dict[str, List[Tuple[float, float]]] = {}
        self._counters: Dict[str, float] = {}
        self.spans: List[Span] = []

    # -- gauges (e.g. active worker counts per stage) ----------------------

    def gauge_set(self, name: str, time: float, value: float) -> None:
        self._gauges.setdefault(name, []).append((time, float(value)))
        self._counters[name] = float(value)

    def gauge_add(self, name: str, time: float, delta: float) -> float:
        value = self._counters.get(name, 0.0) + delta
        if value < -1e-9:
            raise ValueError(f"gauge {name!r} went negative at t={time}")
        self.gauge_set(name, time, value)
        return value

    def gauge_value(self, name: str) -> float:
        return self._counters.get(name, 0.0)

    def series(self, name: str) -> StepSeries:
        return StepSeries(self._gauges.get(name, []))

    def gauge_names(self) -> List[str]:
        return sorted(self._gauges)

    # -- spans --------------------------------------------------------------

    def span(self, name: str, category: str, start: float, end: float, **detail) -> Span:
        if end < start:
            raise ValueError(f"span {name!r} ends before it starts")
        record = Span(name=name, category=category, start=start, end=end, detail=detail)
        self.spans.append(record)
        return record

    def spans_in(self, category: str) -> List[Span]:
        return [s for s in self.spans if s.category == category]

    def category_bounds(self, category: str) -> Optional[Tuple[float, float]]:
        """Earliest start and latest end across a category's spans."""
        spans = self.spans_in(category)
        if not spans:
            return None
        return min(s.start for s in spans), max(s.end for s in spans)

    def makespan(self) -> float:
        if not self.spans:
            return 0.0
        return max(s.end for s in self.spans) - min(s.start for s in self.spans)
