"""Small statistics helpers used by experiment drivers and reports.

Benchmarks in the paper report mean and standard deviation over repeated
iterations (Fig. 3: "Dots represent mean speeds; shading shows standard
deviation"; scaling figures iterate "each data point five times").
:class:`RunningStats` implements Welford's online algorithm so simulators
can accumulate statistics without storing samples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["RunningStats", "summarize", "Summary"]


class RunningStats:
    """Welford online mean/variance accumulator.

    >>> s = RunningStats()
    >>> for x in (1.0, 2.0, 3.0):
    ...     s.add(x)
    >>> s.mean
    2.0
    """

    __slots__ = ("count", "_mean", "_m2", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        value = float(value)
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValueError("no samples")
        return self._mean

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1); zero for a single sample."""
        if self.count == 0:
            raise ValueError("no samples")
        if self.count == 1:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Combine two accumulators (Chan et al. parallel variance)."""
        merged = RunningStats()
        if self.count == 0:
            merged.count = other.count
            merged._mean = other._mean
            merged._m2 = other._m2
            merged.minimum = other.minimum
            merged.maximum = other.maximum
            return merged
        if other.count == 0:
            merged.count = self.count
            merged._mean = self._mean
            merged._m2 = self._m2
            merged.minimum = self.minimum
            merged.maximum = self.maximum
            return merged
        total = self.count + other.count
        delta = other._mean - self._mean
        merged.count = total
        merged._mean = self._mean + delta * other.count / total
        merged._m2 = self._m2 + other._m2 + delta * delta * self.count * other.count / total
        merged.minimum = min(self.minimum, other.minimum)
        merged.maximum = max(self.maximum, other.maximum)
        return merged


@dataclass(frozen=True)
class Summary:
    """Immutable summary of a sample set."""

    count: int
    mean: float
    stdev: float
    minimum: float
    maximum: float
    median: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.4g} sd={self.stdev:.4g} "
            f"min={self.minimum:.4g} med={self.median:.4g} max={self.maximum:.4g}"
        )


def summarize(values: Sequence[float]) -> Summary:
    """Summarize a sequence: count, mean, sample stdev, min, max, median."""
    if not values:
        raise ValueError("cannot summarize an empty sequence")
    ordered = sorted(float(v) for v in values)
    n = len(ordered)
    stats = RunningStats()
    stats.extend(ordered)
    if n % 2 == 1:
        median = ordered[n // 2]
    else:
        median = 0.5 * (ordered[n // 2 - 1] + ordered[n // 2])
    return Summary(
        count=n,
        mean=stats.mean,
        stdev=stats.stdev,
        minimum=ordered[0],
        maximum=ordered[-1],
        median=median,
    )
