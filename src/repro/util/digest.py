"""Shared digest + atomic-publish primitives: one hash loop for everyone.

The workflow's integrity story rests on exactly two operations, and every
layer (journal manifest, content-addressed store, shipment verification,
chaos surfaces) must perform them *identically*:

* :func:`sha256_file` / :func:`digest_file` — streaming SHA-256 of a
  file's content, reading into one reusable buffer so the loop is pure
  hashing, not allocator churn.  ``digest_file`` additionally counts the
  bytes *while hashing*, so callers that need ``(digest, size)`` get a
  pair observed from the same read pass — no second ``stat`` racing a
  concurrent writer.
* :func:`atomic_publish_bytes` — the crash-consistency triple (temp name
  in the same directory, file fsync, ``os.replace``, directory fsync)
  that digests the payload as it streams to disk, so publication and
  integrity recording cost one pass over the bytes.

This module sits below ``repro.util.atomic`` and ``repro.journal`` in
the import graph; both re-export these names for compatibility.
"""

from __future__ import annotations

import hashlib
import os
from typing import Tuple

__all__ = [
    "TEMP_SUFFIX",
    "HASH_SLICE",
    "fsync_dir",
    "sha256_file",
    "digest_file",
    "atomic_publish_bytes",
]

# The shared temp-name convention: writers publish ``<final>.part`` and
# rename; crawlers and shippers skip the suffix unconditionally.
TEMP_SUFFIX = ".part"

# Digest-while-writing slice: large enough to amortize hashlib call
# overhead, small enough to stay cache-friendly.
HASH_SLICE = 4 * 1024 * 1024


def fsync_dir(directory: str) -> None:
    """Best-effort directory fsync (makes a completed rename durable)."""
    try:
        fd = os.open(directory or ".", os.O_RDONLY)
    except OSError:  # platform or filesystem without directory fds
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def sha256_file(path: str, chunk_size: int = HASH_SLICE) -> str:
    """Streaming SHA-256 of a file's content."""
    digest, _ = digest_file(path, chunk_size=chunk_size)
    return digest


def digest_file(path: str, chunk_size: int = HASH_SLICE) -> Tuple[str, int]:
    """Streaming SHA-256 plus byte count, from one read pass.

    Reads into one reusable 4 MiB buffer (``readinto``) instead of
    allocating a fresh bytes object per chunk.  The size is summed from
    the same reads that feed the hash, so the ``(digest, nbytes)`` pair
    always describes a single observation of the file — a concurrent
    writer can never make the size disagree with the digest.
    """
    sha = hashlib.sha256()
    nbytes = 0
    buffer = bytearray(chunk_size)
    view = memoryview(buffer)
    with open(path, "rb") as handle:
        while True:
            got = handle.readinto(buffer)
            if not got:
                break
            sha.update(view[:got])
            nbytes += got
    return sha.hexdigest(), nbytes


def atomic_publish_bytes(
    path: str, payload: bytes, durable: bool = True
) -> Tuple[int, str]:
    """Atomic write that also digests; returns ``(nbytes, sha256_hex)``.

    The payload is hashed in slices *while it streams to the temp file*,
    so publication and integrity recording cost one pass over the bytes
    instead of a write followed by a full re-read.  With ``durable`` the
    temp file is fsynced before the rename and the directory after it,
    so a crash at any instant leaves either the previous content or the
    complete new content — never a torn file under the final name.
    """
    digest = hashlib.sha256()
    view = memoryview(payload)
    temp_path = path + TEMP_SUFFIX
    with open(temp_path, "wb") as handle:
        for start in range(0, len(view), HASH_SLICE):
            chunk = view[start : start + HASH_SLICE]
            handle.write(chunk)
            digest.update(chunk)
        if durable:
            handle.flush()
            os.fsync(handle.fileno())
    os.replace(temp_path, path)
    if durable:
        fsync_dir(os.path.dirname(path))
    return len(payload), digest.hexdigest()
