"""Declarative schema validation for workflow configuration mappings.

The EO-ML workflow is user-configured through a YAML file (Section III,
stage 1): compute endpoint, LAADS credentials, MODIS products, time span,
and local paths.  This module provides a tiny schema language used by
:mod:`repro.core.config` so malformed configurations fail with pointed
error messages instead of deep stack traces mid-run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

__all__ = ["ConfigError", "Field", "Schema", "require_mapping"]


class ConfigError(ValueError):
    """Raised when a configuration mapping fails validation."""

    def __init__(self, path: str, message: str):
        super().__init__(f"{path}: {message}" if path else message)
        self.path = path


_MISSING = object()


@dataclass(frozen=True)
class Field:
    """One schema entry.

    ``convert`` receives the raw value and may raise ``ValueError`` to
    signal a bad value; its message is wrapped with the config path.
    """

    name: str
    convert: Callable[[Any], Any]
    required: bool = True
    default: Any = None
    choices: Optional[Sequence[Any]] = None

    def resolve(self, raw: Any, path: str) -> Any:
        if raw is _MISSING:
            if self.required:
                raise ConfigError(path, f"missing required key {self.name!r}")
            return self.default
        try:
            value = self.convert(raw)
        except ConfigError:
            raise
        except (TypeError, ValueError, KeyError) as exc:
            raise ConfigError(f"{path}.{self.name}" if path else self.name, str(exc)) from exc
        if self.choices is not None and value not in self.choices:
            raise ConfigError(
                f"{path}.{self.name}" if path else self.name,
                f"must be one of {list(self.choices)!r}, got {value!r}",
            )
        return value


class Schema:
    """An ordered collection of fields validating one mapping level."""

    def __init__(self, name: str, fields: Sequence[Field], allow_extra: bool = False):
        self.name = name
        self.fields = list(fields)
        self.allow_extra = allow_extra
        names = [f.name for f in self.fields]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate field names in schema {name!r}")

    def validate(self, raw: Mapping[str, Any], path: str = "") -> Dict[str, Any]:
        path = path or self.name
        require_mapping(raw, path)
        known = {f.name for f in self.fields}
        if not self.allow_extra:
            extra = sorted(set(raw) - known)
            if extra:
                raise ConfigError(path, f"unknown keys {extra!r} (known: {sorted(known)!r})")
        resolved: Dict[str, Any] = {}
        for field in self.fields:
            raw_value = raw.get(field.name, _MISSING)
            resolved[field.name] = field.resolve(raw_value, path)
        return resolved


def require_mapping(value: Any, path: str) -> None:
    if not isinstance(value, Mapping):
        raise ConfigError(path, f"expected a mapping, got {type(value).__name__}")


def string(value: Any) -> str:
    if not isinstance(value, str):
        raise ValueError(f"expected a string, got {type(value).__name__}")
    return value


def integer(value: Any) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(f"expected an integer, got {value!r}")
    return value


def positive_int(value: Any) -> int:
    result = integer(value)
    if result <= 0:
        raise ValueError(f"expected a positive integer, got {result}")
    return result


def number(value: Any) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(f"expected a number, got {value!r}")
    return float(value)


def boolean(value: Any) -> bool:
    if not isinstance(value, bool):
        raise ValueError(f"expected a boolean, got {value!r}")
    return value


def string_list(value: Any) -> List[str]:
    if isinstance(value, str):
        return [value]
    if not isinstance(value, (list, tuple)):
        raise ValueError(f"expected a list of strings, got {type(value).__name__}")
    out = []
    for item in value:
        if not isinstance(item, str):
            raise ValueError(f"expected a list of strings, found {item!r}")
        out.append(item)
    return out
