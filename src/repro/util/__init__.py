"""Shared utilities: units, YAML-subset parsing, config schema, stats, logging."""

from repro.util.units import (
    format_bytes,
    format_duration,
    format_rate,
    parse_bytes,
    parse_duration,
    parse_rate,
)
from repro.util.stats import RunningStats, summarize
from repro.util.yamlish import YamlError, dumps as yaml_dumps, loads as yaml_loads

__all__ = [
    "parse_bytes",
    "parse_rate",
    "parse_duration",
    "format_bytes",
    "format_rate",
    "format_duration",
    "RunningStats",
    "summarize",
    "yaml_loads",
    "yaml_dumps",
    "YamlError",
]
