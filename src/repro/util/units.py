"""Byte-size, rate, and duration unit parsing and formatting.

The workflow configuration surface of the paper ("32GB for MOD02",
"12.5 GB/s Slingshot-10 interconnect") is expressed in human units.  This
module provides a small, strict parser so configs and simulator parameters
can be written the same way.

All byte quantities are decimal (SI) unless an explicit binary suffix
(``KiB``/``MiB``/...) is used, matching how the paper quotes product sizes.
"""

from __future__ import annotations

import re
from typing import Union

__all__ = [
    "parse_bytes",
    "parse_rate",
    "parse_duration",
    "format_bytes",
    "format_rate",
    "format_duration",
    "KB",
    "MB",
    "GB",
    "TB",
    "PB",
    "KiB",
    "MiB",
    "GiB",
    "TiB",
]

KB = 10**3
MB = 10**6
GB = 10**9
TB = 10**12
PB = 10**15

KiB = 2**10
MiB = 2**20
GiB = 2**30
TiB = 2**40

_DECIMAL = {
    "": 1,
    "b": 1,
    "k": KB,
    "kb": KB,
    "m": MB,
    "mb": MB,
    "g": GB,
    "gb": GB,
    "t": TB,
    "tb": TB,
    "p": PB,
    "pb": PB,
}

_BINARY = {
    "kib": KiB,
    "mib": MiB,
    "gib": GiB,
    "tib": TiB,
    "pib": 2**50,
}

_BYTES_RE = re.compile(
    r"^\s*([0-9]+(?:\.[0-9]+)?)\s*([a-zA-Z]*)\s*$",
)

_DURATION_SUFFIX = {
    "": 1.0,
    "s": 1.0,
    "sec": 1.0,
    "secs": 1.0,
    "second": 1.0,
    "seconds": 1.0,
    "ms": 1e-3,
    "us": 1e-6,
    "m": 60.0,
    "min": 60.0,
    "mins": 60.0,
    "minute": 60.0,
    "minutes": 60.0,
    "h": 3600.0,
    "hr": 3600.0,
    "hour": 3600.0,
    "hours": 3600.0,
    "d": 86400.0,
    "day": 86400.0,
    "days": 86400.0,
}


def parse_bytes(value: Union[int, float, str]) -> int:
    """Parse a byte quantity such as ``"32GB"``, ``"8.4 GB"`` or ``1024``.

    Returns an integer number of bytes.  Raises :class:`ValueError` on
    malformed input or unknown suffixes.
    """
    if isinstance(value, bool):
        raise ValueError(f"not a byte quantity: {value!r}")
    if isinstance(value, (int, float)):
        if value < 0:
            raise ValueError(f"byte quantity must be non-negative: {value!r}")
        return int(value)
    match = _BYTES_RE.match(value)
    if match is None:
        raise ValueError(f"cannot parse byte quantity: {value!r}")
    number = float(match.group(1))
    suffix = match.group(2).lower()
    if suffix in _BINARY:
        factor = _BINARY[suffix]
    elif suffix in _DECIMAL:
        factor = _DECIMAL[suffix]
    else:
        raise ValueError(f"unknown byte suffix {match.group(2)!r} in {value!r}")
    return int(round(number * factor))


def parse_rate(value: Union[int, float, str]) -> float:
    """Parse a data rate such as ``"12.5 GB/s"`` or ``"120 MB/sec"``.

    Returns bytes per second as a float.
    """
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        if value < 0:
            raise ValueError(f"rate must be non-negative: {value!r}")
        return float(value)
    if not isinstance(value, str):
        raise ValueError(f"cannot parse rate: {value!r}")
    parts = value.split("/")
    if len(parts) != 2:
        raise ValueError(f"rate must look like '<size>/<time>': {value!r}")
    size_part, time_part = parts[0], parts[1].strip().lower()
    per = _DURATION_SUFFIX.get(time_part)
    if per is None or per <= 0:
        raise ValueError(f"unknown rate time unit {time_part!r} in {value!r}")
    return parse_bytes(size_part) / per


def parse_duration(value: Union[int, float, str]) -> float:
    """Parse a duration such as ``"5m"``, ``"50ms"``, ``"1.5h"`` or ``30``.

    Returns seconds as a float.
    """
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        if value < 0:
            raise ValueError(f"duration must be non-negative: {value!r}")
        return float(value)
    if not isinstance(value, str):
        raise ValueError(f"cannot parse duration: {value!r}")
    match = _BYTES_RE.match(value)
    if match is None:
        raise ValueError(f"cannot parse duration: {value!r}")
    number = float(match.group(1))
    suffix = match.group(2).lower()
    factor = _DURATION_SUFFIX.get(suffix)
    if factor is None:
        raise ValueError(f"unknown duration suffix {match.group(2)!r} in {value!r}")
    return number * factor


def format_bytes(nbytes: Union[int, float]) -> str:
    """Render a byte count with the largest natural decimal suffix."""
    nbytes = float(nbytes)
    if nbytes < 0:
        raise ValueError("byte quantity must be non-negative")
    for suffix, factor in (("PB", PB), ("TB", TB), ("GB", GB), ("MB", MB), ("KB", KB)):
        if nbytes >= factor:
            return f"{nbytes / factor:.2f} {suffix}"
    return f"{int(nbytes)} B"


def format_rate(bytes_per_sec: Union[int, float]) -> str:
    """Render a rate in the most natural decimal unit per second."""
    return f"{format_bytes(bytes_per_sec)}/s"


def format_duration(seconds: Union[int, float]) -> str:
    """Render a duration compactly (``1h02m``, ``44.0s``, ``50.0ms``)."""
    seconds = float(seconds)
    if seconds < 0:
        raise ValueError("duration must be non-negative")
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    if seconds < 60.0:
        return f"{seconds:.1f}s"
    if seconds < 3600.0:
        minutes = int(seconds // 60)
        return f"{minutes}m{seconds - 60 * minutes:04.1f}s"
    hours = int(seconds // 3600)
    minutes = int((seconds - 3600 * hours) // 60)
    return f"{hours}h{minutes:02d}m"
