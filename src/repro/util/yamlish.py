"""A minimal YAML-subset parser and emitter.

The paper's workflow is configured "through a locally available YAML file"
(Section III).  PyYAML is not available offline, so this module implements
the subset of YAML that workflow configurations actually use:

* nested block mappings and block sequences (indentation-scoped),
* flow-style lists (``[a, b, c]``) and mappings (``{a: 1}``),
* scalars: strings (bare, single- and double-quoted), integers, floats,
  booleans (``true``/``false``), ``null``/``~``,
* ``#`` comments and blank lines,
* multi-document input is *not* supported (configs are single documents).

The emitter (:func:`dumps`) produces output that :func:`loads` round-trips,
used to persist resolved workflow configurations next to their results.

This is intentionally *not* a general YAML implementation: anchors, tags,
block scalars, and multiline flow collections raise :class:`YamlError`.
"""

from __future__ import annotations

import re
from typing import Any, List, Optional, Tuple

__all__ = ["loads", "dumps", "YamlError"]


class YamlError(ValueError):
    """Raised when input is outside the supported YAML subset."""

    def __init__(self, message: str, line_no: Optional[int] = None):
        if line_no is not None:
            message = f"line {line_no}: {message}"
        super().__init__(message)
        self.line_no = line_no


_BOOLEANS = {"true": True, "false": False, "yes": True, "no": False, "on": True, "off": False}
_NULLS = {"null", "~", ""}
_INT_RE = re.compile(r"^[+-]?[0-9]+$")
_FLOAT_RE = re.compile(r"^[+-]?([0-9]+\.[0-9]*|\.[0-9]+|[0-9]+)([eE][+-]?[0-9]+)?$")
# Bare keys: any run of characters without YAML structural meaning.
_KEY_RE = re.compile(r"^([^:#{}\[\],&*!|>'\"]+?)\s*:(\s|$)")


def _match_key(content: str, line_no: int):
    """Split ``content`` into (key_token, rest) if it starts a mapping entry.

    Handles bare keys and single/double-quoted keys.  Returns ``None`` when
    the line does not look like ``key: ...``.
    """
    if content[:1] in ('"', "'"):
        quote = content[0]
        end = 1
        while end < len(content):
            if content[end] == quote:
                if quote == "'" and content[end + 1 : end + 2] == "'":
                    end += 2
                    continue
                break
            if quote == '"' and content[end] == "\\":
                end += 2
                continue
            end += 1
        else:
            return None
        after = content[end + 1 :]
        match = re.match(r"^\s*:(\s|$)", after)
        if match is None:
            return None
        return content[: end + 1], after[match.end() :].strip()
    match = _KEY_RE.match(content)
    if match is None:
        return None
    return match.group(1), content[match.end(1) + 1 :].strip()


class _Line:
    __slots__ = ("indent", "content", "no")

    def __init__(self, indent: int, content: str, no: int):
        self.indent = indent
        self.content = content
        self.no = no


def _strip_comment(text: str) -> str:
    """Remove a trailing comment, respecting quoted strings."""
    in_single = False
    in_double = False
    for i, ch in enumerate(text):
        if ch == "'" and not in_double:
            in_single = not in_single
        elif ch == '"' and not in_single:
            in_double = not in_double
        elif ch == "#" and not in_single and not in_double:
            if i == 0 or text[i - 1] in " \t":
                return text[:i].rstrip()
    return text.rstrip()


def _tokenize(text: str) -> List[_Line]:
    lines: List[_Line] = []
    for no, raw in enumerate(text.splitlines(), start=1):
        if "\t" in raw[: len(raw) - len(raw.lstrip())]:
            raise YamlError("tabs are not allowed in indentation", no)
        stripped = _strip_comment(raw)
        if not stripped.strip():
            continue
        indent = len(stripped) - len(stripped.lstrip(" "))
        lines.append(_Line(indent, stripped.strip(), no))
    return lines


def _parse_scalar(token: str, line_no: int) -> Any:
    token = token.strip()
    if token.startswith('"'):
        if not token.endswith('"') or len(token) < 2:
            raise YamlError(f"unterminated double-quoted string: {token!r}", line_no)
        body = token[1:-1]
        return body.replace('\\"', '"').replace("\\n", "\n").replace("\\t", "\t").replace("\\\\", "\\")
    if token.startswith("'"):
        if not token.endswith("'") or len(token) < 2:
            raise YamlError(f"unterminated single-quoted string: {token!r}", line_no)
        return token[1:-1].replace("''", "'")
    lowered = token.lower()
    if lowered in _NULLS:
        return None
    if lowered in _BOOLEANS:
        return _BOOLEANS[lowered]
    if _INT_RE.match(token):
        return int(token)
    if _FLOAT_RE.match(token) and any(c in token for c in ".eE"):
        return float(token)
    if lowered in ("inf", "+inf", ".inf"):
        return float("inf")
    if lowered in ("-inf", "-.inf"):
        return float("-inf")
    if lowered in ("nan", ".nan"):
        return float("nan")
    return token


def _split_flow_items(body: str, line_no: int) -> List[str]:
    items: List[str] = []
    depth = 0
    in_single = False
    in_double = False
    current = []
    for ch in body:
        if ch == "'" and not in_double:
            in_single = not in_single
        elif ch == '"' and not in_single:
            in_double = not in_double
        if not in_single and not in_double:
            if ch in "[{":
                depth += 1
            elif ch in "]}":
                depth -= 1
                if depth < 0:
                    raise YamlError("unbalanced brackets in flow collection", line_no)
            elif ch == "," and depth == 0:
                items.append("".join(current))
                current = []
                continue
        current.append(ch)
    if in_single or in_double:
        raise YamlError("unterminated quote in flow collection", line_no)
    if depth != 0:
        raise YamlError("unbalanced brackets in flow collection", line_no)
    tail = "".join(current).strip()
    if tail or items:
        items.append(tail)
    return [item.strip() for item in items if item.strip() or item == ""]


def _parse_value(token: str, line_no: int) -> Any:
    token = token.strip()
    if token.startswith("["):
        if not token.endswith("]"):
            raise YamlError("flow sequences must close on the same line", line_no)
        body = token[1:-1].strip()
        if not body:
            return []
        return [_parse_value(item, line_no) for item in _split_flow_items(body, line_no)]
    if token.startswith("{"):
        if not token.endswith("}"):
            raise YamlError("flow mappings must close on the same line", line_no)
        body = token[1:-1].strip()
        result = {}
        if not body:
            return result
        for item in _split_flow_items(body, line_no):
            if ":" not in item:
                raise YamlError(f"flow mapping entry lacks ':': {item!r}", line_no)
            key, _, val = item.partition(":")
            result[_parse_scalar(key, line_no)] = _parse_value(val, line_no)
        return result
    if token.startswith("&") or token.startswith("*") or token.startswith("!"):
        raise YamlError(f"anchors/aliases/tags are not supported: {token!r}", line_no)
    if token.startswith("|") or token.startswith(">"):
        raise YamlError("block scalars are not supported", line_no)
    return _parse_scalar(token, line_no)


def _parse_block(lines: List[_Line], pos: int, indent: int) -> Tuple[Any, int]:
    """Parse a block (mapping or sequence) whose items sit at ``indent``."""
    first = lines[pos]
    if first.content.startswith("- "):
        return _parse_sequence(lines, pos, indent)
    if first.content == "-":
        return _parse_sequence(lines, pos, indent)
    return _parse_mapping(lines, pos, indent)


def _parse_sequence(lines: List[_Line], pos: int, indent: int) -> Tuple[List[Any], int]:
    items: List[Any] = []
    while pos < len(lines):
        line = lines[pos]
        if line.indent < indent:
            break
        if line.indent > indent:
            raise YamlError("unexpected indentation", line.no)
        if not (line.content == "-" or line.content.startswith("- ")):
            break
        rest = line.content[1:].strip()
        if not rest:
            # The item body is a nested block on following lines.
            if pos + 1 < len(lines) and lines[pos + 1].indent > indent:
                value, pos = _parse_block(lines, pos + 1, lines[pos + 1].indent)
                items.append(value)
            else:
                items.append(None)
                pos += 1
            continue
        key_match = _match_key(rest, line.no)
        if key_match is not None and not rest.startswith(("[", "{")):
            # Inline first mapping entry: "- key: value"; the remaining keys
            # of the same item appear more-indented on following lines.
            inner_indent = line.indent + 2
            synthetic = [_Line(inner_indent, rest, line.no)]
            pos += 1
            while pos < len(lines) and lines[pos].indent >= inner_indent:
                synthetic.append(lines[pos])
                pos += 1
            value, consumed = _parse_mapping(synthetic, 0, inner_indent)
            if consumed != len(synthetic):
                raise YamlError("malformed sequence item mapping", line.no)
            items.append(value)
            continue
        items.append(_parse_value(rest, line.no))
        pos += 1
    return items, pos


def _parse_mapping(lines: List[_Line], pos: int, indent: int) -> Tuple[dict, int]:
    mapping: dict = {}
    while pos < len(lines):
        line = lines[pos]
        if line.indent < indent:
            break
        if line.indent > indent:
            raise YamlError("unexpected indentation", line.no)
        if line.content.startswith("- "):
            break
        matched = _match_key(line.content, line.no)
        if matched is None:
            raise YamlError(f"expected 'key: value', got {line.content!r}", line.no)
        key_token, rest = matched
        key = _parse_scalar(key_token, line.no)
        if key in mapping:
            raise YamlError(f"duplicate key {key!r}", line.no)
        if rest:
            mapping[key] = _parse_value(rest, line.no)
            pos += 1
            continue
        if pos + 1 < len(lines) and lines[pos + 1].indent > indent:
            value, pos = _parse_block(lines, pos + 1, lines[pos + 1].indent)
            mapping[key] = value
        else:
            mapping[key] = None
            pos += 1
    return mapping, pos


def loads(text: str) -> Any:
    """Parse a YAML-subset document into Python dicts/lists/scalars.

    Empty documents parse to ``None``.
    """
    if text.startswith("---"):
        text = text[3:]
        if "\n---" in text or text.lstrip().startswith("---"):
            raise YamlError("multi-document YAML is not supported")
    lines = _tokenize(text)
    if not lines:
        return None
    first = lines[0]
    is_seq_item = first.content == "-" or first.content.startswith("- ")
    if len(lines) == 1 and not is_seq_item and _match_key(first.content, first.no) is None:
        # A document that is a single scalar or flow collection.
        return _parse_value(first.content, first.no)
    base_indent = lines[0].indent
    for line in lines:
        if line.indent < base_indent:
            raise YamlError("top-level items must share indentation", line.no)
    value, pos = _parse_block(lines, 0, base_indent)
    if pos != len(lines):
        raise YamlError("trailing content after document", lines[pos].no)
    return value


def _needs_quoting(text: str) -> bool:
    if text == "":
        return True
    if text != text.strip():
        return True
    lowered = text.lower()
    if lowered in _BOOLEANS or lowered in _NULLS:
        return True
    if lowered in ("inf", "+inf", "-inf", ".inf", "-.inf", "nan", ".nan"):
        return True
    if _INT_RE.match(text) or (_FLOAT_RE.match(text) and any(c in text for c in ".eE")):
        return True
    return any(ch in text for ch in ":#{}[]\"'\n,&*!|>%@`")


def _dump_scalar(value: Any) -> str:
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        if _needs_quoting(value):
            escaped = value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n").replace("\t", "\\t")
            return f'"{escaped}"'
        return value
    raise YamlError(f"cannot serialize scalar of type {type(value).__name__}")


def _dump(value: Any, indent: int, out: List[str]) -> None:
    pad = " " * indent
    if isinstance(value, dict):
        if not value:
            out.append(f"{pad}{{}}")
            return
        for key, item in value.items():
            key_text = _dump_scalar(key) if not isinstance(key, str) else (
                _dump_scalar(key) if _needs_quoting(key) else key
            )
            if isinstance(item, (dict, list)) and item:
                out.append(f"{pad}{key_text}:")
                _dump(item, indent + 2, out)
            else:
                if isinstance(item, (dict, list)):
                    rendered = "{}" if isinstance(item, dict) else "[]"
                else:
                    rendered = _dump_scalar(item)
                out.append(f"{pad}{key_text}: {rendered}")
        return
    if isinstance(value, list):
        if not value:
            out.append(f"{pad}[]")
            return
        for item in value:
            if isinstance(item, (dict, list)) and item:
                out.append(f"{pad}-")
                _dump(item, indent + 2, out)
            else:
                if isinstance(item, (dict, list)):
                    rendered = "{}" if isinstance(item, dict) else "[]"
                else:
                    rendered = _dump_scalar(item)
                out.append(f"{pad}- {rendered}")
        return
    out.append(f"{pad}{_dump_scalar(value)}")


def dumps(value: Any) -> str:
    """Serialize dicts/lists/scalars to the YAML subset understood by loads."""
    out: List[str] = []
    _dump(value, 0, out)
    return "\n".join(out) + "\n"
