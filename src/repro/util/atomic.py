"""Durable, atomic file publication: temp name + fsync + ``os.replace``.

Every artifact the workflow publishes (granule NetCDFs, tile files,
labelled files, shipped copies, journal manifests) must be either absent
or complete — even across a process crash — because consumers (the
crawler, resume logic, downstream facilities) treat presence as
completeness.  The pattern is the classic crash-consistency triple:
write to a temp name in the same directory, fsync the file so the bytes
are on disk before the rename, ``os.replace`` (atomic on POSIX), then
fsync the directory so the rename itself survives power loss.
"""

from __future__ import annotations

import os

__all__ = ["TEMP_SUFFIX", "atomic_write_bytes", "fsync_dir"]

# The shared temp-name convention: writers publish ``<final>.part`` and
# rename; crawlers and shippers skip the suffix unconditionally.
TEMP_SUFFIX = ".part"


def fsync_dir(directory: str) -> None:
    """Best-effort directory fsync (makes a completed rename durable)."""
    try:
        fd = os.open(directory or ".", os.O_RDONLY)
    except OSError:  # platform or filesystem without directory fds
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: str, payload: bytes, durable: bool = True) -> int:
    """Publish ``payload`` at ``path`` atomically; returns the byte count.

    With ``durable`` (the default) the temp file is fsynced before the
    rename and the directory after it, so a crash at any instant leaves
    either the previous content or the complete new content — never a
    torn file under the final name.
    """
    temp_path = path + TEMP_SUFFIX
    with open(temp_path, "wb") as handle:
        handle.write(payload)
        if durable:
            handle.flush()
            os.fsync(handle.fileno())
    os.replace(temp_path, path)
    if durable:
        fsync_dir(os.path.dirname(path))
    return len(payload)
