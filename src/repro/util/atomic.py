"""Durable, atomic file publication: temp name + fsync + ``os.replace``.

Every artifact the workflow publishes (granule NetCDFs, tile files,
labelled files, shipped copies, journal manifests) must be either absent
or complete — even across a process crash — because consumers (the
crawler, resume logic, downstream facilities) treat presence as
completeness.  The pattern is the classic crash-consistency triple:
write to a temp name in the same directory, fsync the file so the bytes
are on disk before the rename, ``os.replace`` (atomic on POSIX), then
fsync the directory so the rename itself survives power loss.

Deprecated re-exports: ``atomic_publish_bytes`` (and the shared
``TEMP_SUFFIX`` / ``HASH_SLICE`` / ``fsync_dir``) now live in
``repro.util.digest`` so the digest loop has exactly one home shared by
the journal manifest and the content-addressed store.  Import from
``repro.util.digest`` in new code; these names remain here only so
existing imports keep working.
"""

from __future__ import annotations

from repro.util.digest import (  # noqa: F401  (re-export shims)
    HASH_SLICE,
    TEMP_SUFFIX,
    atomic_publish_bytes,
    fsync_dir,
)

__all__ = [
    "TEMP_SUFFIX",
    "HASH_SLICE",
    "atomic_write_bytes",
    "atomic_publish_bytes",
    "fsync_dir",
]


def atomic_write_bytes(path: str, payload: bytes, durable: bool = True) -> int:
    """Publish ``payload`` at ``path`` atomically; returns the byte count.

    With ``durable`` (the default) the temp file is fsynced before the
    rename and the directory after it, so a crash at any instant leaves
    either the previous content or the complete new content — never a
    torn file under the final name.
    """
    nbytes, _ = atomic_publish_bytes(path, payload, durable=durable)
    return nbytes
