"""Durable, atomic file publication: temp name + fsync + ``os.replace``.

Every artifact the workflow publishes (granule NetCDFs, tile files,
labelled files, shipped copies, journal manifests) must be either absent
or complete — even across a process crash — because consumers (the
crawler, resume logic, downstream facilities) treat presence as
completeness.  The pattern is the classic crash-consistency triple:
write to a temp name in the same directory, fsync the file so the bytes
are on disk before the rename, ``os.replace`` (atomic on POSIX), then
fsync the directory so the rename itself survives power loss.
"""

from __future__ import annotations

import hashlib
import os
from typing import Tuple

__all__ = [
    "TEMP_SUFFIX",
    "HASH_SLICE",
    "atomic_write_bytes",
    "atomic_publish_bytes",
    "fsync_dir",
]

# The shared temp-name convention: writers publish ``<final>.part`` and
# rename; crawlers and shippers skip the suffix unconditionally.
TEMP_SUFFIX = ".part"

# Digest-while-writing slice: large enough to amortize hashlib call
# overhead, small enough to stay cache-friendly.
HASH_SLICE = 4 * 1024 * 1024


def fsync_dir(directory: str) -> None:
    """Best-effort directory fsync (makes a completed rename durable)."""
    try:
        fd = os.open(directory or ".", os.O_RDONLY)
    except OSError:  # platform or filesystem without directory fds
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: str, payload: bytes, durable: bool = True) -> int:
    """Publish ``payload`` at ``path`` atomically; returns the byte count.

    With ``durable`` (the default) the temp file is fsynced before the
    rename and the directory after it, so a crash at any instant leaves
    either the previous content or the complete new content — never a
    torn file under the final name.
    """
    nbytes, _ = atomic_publish_bytes(path, payload, durable=durable)
    return nbytes


def atomic_publish_bytes(
    path: str, payload: bytes, durable: bool = True
) -> Tuple[int, str]:
    """Atomic write that also digests; returns ``(nbytes, sha256_hex)``.

    The payload is hashed in slices *while it streams to the temp file*,
    so publication and integrity recording cost one pass over the bytes
    instead of a write followed by a full re-read.
    """
    digest = hashlib.sha256()
    view = memoryview(payload)
    temp_path = path + TEMP_SUFFIX
    with open(temp_path, "wb") as handle:
        for start in range(0, len(view), HASH_SLICE):
            chunk = view[start : start + HASH_SLICE]
            handle.write(chunk)
            digest.update(chunk)
        if durable:
            handle.flush()
            os.fsync(handle.fileno())
    os.replace(temp_path, path)
    if durable:
        fsync_dir(os.path.dirname(path))
    return len(payload), digest.hexdigest()
