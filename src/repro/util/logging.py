"""Lightweight structured logging for workflow components.

Every service in the system (archive, scheduler, transfer, flows, the
workflow orchestrator) emits events through a :class:`EventLog`; this keeps
simulated components free of global ``logging`` state and makes event
streams assertable in tests.  A bridge to :mod:`logging` is provided for
interactive use.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

__all__ = ["Event", "EventLog", "stdlib_bridge"]


@dataclass(frozen=True)
class Event:
    """A single structured log event.

    ``time`` is simulation time (seconds) for simulated components and
    wall-clock offsets for real ones; ``source`` identifies the component;
    ``kind`` is a short machine-readable tag; ``detail`` holds free-form
    payload fields.
    """

    time: float
    source: str
    kind: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        parts = " ".join(f"{k}={v!r}" for k, v in sorted(self.detail.items()))
        return f"[{self.time:12.6f}] {self.source}:{self.kind} {parts}".rstrip()


class EventLog:
    """An append-only event stream with subscription support."""

    def __init__(self) -> None:
        self._events: List[Event] = []
        self._subscribers: List[Callable[[Event], None]] = []

    def emit(self, time: float, source: str, kind: str, **detail: Any) -> Event:
        event = Event(time=float(time), source=source, kind=kind, detail=dict(detail))
        self._events.append(event)
        for subscriber in self._subscribers:
            subscriber(event)
        return event

    def subscribe(self, callback: Callable[[Event], None]) -> None:
        self._subscribers.append(callback)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __getitem__(self, index: int) -> Event:
        return self._events[index]

    def filter(self, source: Optional[str] = None, kind: Optional[str] = None) -> List[Event]:
        """Events matching the given source and/or kind."""
        return [
            event
            for event in self._events
            if (source is None or event.source == source)
            and (kind is None or event.kind == kind)
        ]

    def last(self, source: Optional[str] = None, kind: Optional[str] = None) -> Optional[Event]:
        matches = self.filter(source=source, kind=kind)
        return matches[-1] if matches else None

    def clear(self) -> None:
        self._events.clear()


def stdlib_bridge(log: EventLog, logger_name: str = "repro") -> None:
    """Mirror every event onto a standard-library logger at INFO level."""
    logger = logging.getLogger(logger_name)

    def forward(event: Event) -> None:
        logger.info("%s", event)

    log.subscribe(forward)
