"""Function registry: the Globus-Compute-style function catalog.

Users register a function once and submit it to any endpoint by id; the
paper's download stage is "a remotely executable Globus Compute function"
(Section III, stage 1).  Registration also underpins the federated
pipeline-registry extension (Section V-A), where whole workflow steps are
"registered as executable and shareable functions".
"""

from __future__ import annotations

import hashlib
import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

__all__ = ["RegisteredFunction", "FunctionRegistry"]


@dataclass(frozen=True)
class RegisteredFunction:
    """A registered function with a stable content-derived id."""

    function_id: str
    name: str
    fn: Callable
    description: str = ""
    metadata: Dict[str, Any] = field(default_factory=dict)


class FunctionRegistry:
    """Register and resolve functions by id or name."""

    def __init__(self) -> None:
        self._by_id: Dict[str, RegisteredFunction] = {}
        self._by_name: Dict[str, str] = {}

    def register(
        self,
        fn: Callable,
        name: Optional[str] = None,
        description: str = "",
        **metadata: Any,
    ) -> str:
        """Register ``fn``; returns its function id.

        The id is derived from the function's qualified name and source
        (when available), so re-registering identical code is idempotent.
        """
        if not callable(fn):
            raise TypeError(f"not callable: {fn!r}")
        name = name or getattr(fn, "__name__", "anonymous")
        try:
            source = inspect.getsource(fn)
        except (OSError, TypeError):
            source = repr(fn)
        function_id = hashlib.sha256(f"{name}:{source}".encode()).hexdigest()[:16]
        if function_id not in self._by_id:
            self._by_id[function_id] = RegisteredFunction(
                function_id=function_id,
                name=name,
                fn=fn,
                description=description,
                metadata=dict(metadata),
            )
        self._by_name[name] = function_id
        return function_id

    def resolve(self, ref: str) -> RegisteredFunction:
        """Look up by function id, falling back to name."""
        if ref in self._by_id:
            return self._by_id[ref]
        if ref in self._by_name:
            return self._by_id[self._by_name[ref]]
        raise KeyError(f"unknown function {ref!r}")

    def __len__(self) -> int:
        return len(self._by_id)

    def __contains__(self, ref: str) -> bool:
        return ref in self._by_id or ref in self._by_name
