"""Simulated Globus-Compute endpoint: elastic worker pool on the DES.

Semantics follow the paper's stage 1: tasks queue at the endpoint; workers
pull the next task when done ("If a worker completes its download task and
additional time spans are queued, it automatically begins the next task.
If no further tasks are available, the worker gracefully terminates.").

Worker counts are traced as a gauge so the Fig. 6 automation timeline can
plot active workers per stage.  Functions executed here are *simulation
behaviours*: callables ``fn(ctx, *args)`` returning a generator to run on
the kernel (e.g. "request these bytes from the archive server").
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional

from repro.sim import Event, Simulation, Store, Tracer
from repro.util.logging import EventLog

__all__ = ["ComputeTask", "SimComputeEndpoint"]


class ComputeTask:
    """One submitted task with its result future."""

    __slots__ = ("task_id", "fn", "args", "kwargs", "done", "submitted_at",
                 "started_at", "finished_at")

    def __init__(self, task_id: int, fn: Callable, args: tuple, kwargs: dict, done: Event, now: float):
        self.task_id = task_id
        self.fn = fn
        self.args = args
        self.kwargs = kwargs
        self.done = done
        self.submitted_at = now
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None


class SimComputeEndpoint:
    """An endpoint with up to ``max_workers`` pull-based workers.

    ``startup_latency`` models the cold-start cost of launching a worker
    (part of Fig. 7's 5.63 s download launch); ``task_overhead`` the
    per-task dispatch cost.
    """

    def __init__(
        self,
        sim: Simulation,
        name: str,
        max_workers: int,
        startup_latency: float = 2.0,
        task_overhead: float = 0.05,
        tracer: Optional[Tracer] = None,
        gauge: Optional[str] = None,
        log: Optional[EventLog] = None,
    ):
        if max_workers < 1:
            raise ValueError("endpoint needs at least one worker slot")
        self.sim = sim
        self.name = name
        self.max_workers = max_workers
        self.startup_latency = startup_latency
        self.task_overhead = task_overhead
        self.tracer = tracer
        self.gauge = gauge or f"workers:{name}"
        self.log = log or EventLog()
        self.queue = Store(sim)
        self.active_workers = 0
        self.tasks_completed = 0
        self._next_task = 1
        self._next_worker = 1

    def submit(self, fn: Callable[..., Generator], *args: Any, **kwargs: Any) -> Event:
        """Queue a task; returns a future firing with the task's result."""
        task = ComputeTask(self._next_task, fn, args, kwargs, self.sim.event(), self.sim.now)
        self._next_task += 1
        self.queue.put(task)
        self.log.emit(self.sim.now, self.name, "submit", task_id=task.task_id)
        self._maybe_spawn_worker()
        return task.done

    def map(self, fn: Callable[..., Generator], items: List[Any]) -> List[Event]:
        """Submit ``fn(ctx, item)`` for every item."""
        return [self.submit(fn, item) for item in items]

    # -- worker pool ------------------------------------------------------------

    def _maybe_spawn_worker(self) -> None:
        if self.active_workers >= self.max_workers:
            return
        if len(self.queue) == 0:
            return
        worker_id = self._next_worker
        self._next_worker += 1
        self.active_workers += 1
        if self.tracer is not None:
            self.tracer.gauge_add(self.gauge, self.sim.now, +1)
        self.sim.process(self._worker(worker_id), name=f"{self.name}-worker-{worker_id}")

    def _worker(self, worker_id: int) -> Generator:
        yield self.sim.timeout(self.startup_latency)
        self.log.emit(self.sim.now, self.name, "worker_start", worker=worker_id)
        while len(self.queue) > 0:
            task: ComputeTask = yield self.queue.get()
            task.started_at = self.sim.now
            if self.task_overhead > 0:
                yield self.sim.timeout(self.task_overhead)
            try:
                result = yield self.sim.process(
                    task.fn(self, *task.args, **task.kwargs),
                    name=f"{self.name}-task-{task.task_id}",
                )
            except Exception as exc:  # noqa: BLE001 - forwarded to the future
                task.finished_at = self.sim.now
                task.done.fail(exc)
                continue
            task.finished_at = self.sim.now
            self.tasks_completed += 1
            task.done.succeed(result)
        # "If no further tasks are available, the worker gracefully
        # terminates."
        self.active_workers -= 1
        if self.tracer is not None:
            self.tracer.gauge_add(self.gauge, self.sim.now, -1)
        self.log.emit(self.sim.now, self.name, "worker_exit", worker=worker_id)

    def drain(self) -> Event:
        """An event firing once the queue is empty and all workers exited."""
        done = self.sim.event()

        def poll() -> Generator:
            while len(self.queue) > 0 or self.active_workers > 0:
                yield self.sim.timeout(0.05)
            done.succeed(None)

        self.sim.process(poll(), name=f"{self.name}-drain")
        return done
