"""Real local execution endpoint (threads or processes).

The laptop-scale execution path of the workflow runs genuine Python
callables — granule synthesis, tiling, inference — through the same
endpoint-shaped API the simulator uses, so `repro.core` stage code is
execution-backend agnostic.
"""

from __future__ import annotations

import concurrent.futures as cf
from typing import Any, Callable, Iterable, Iterator, List, Optional, Union

__all__ = ["LocalComputeEndpoint"]


class LocalComputeEndpoint:
    """A worker pool executing real callables.

    ``kind`` selects threads (default; fine for NumPy-heavy work that
    releases the GIL) or processes (for pure-Python CPU-bound functions).
    Usable as a context manager.
    """

    def __init__(self, name: str, max_workers: int, kind: str = "thread"):
        if not isinstance(max_workers, int) or max_workers < 1:
            raise ValueError(
                f"endpoint {name!r} needs max_workers >= 1, got {max_workers!r}"
            )
        if kind not in ("thread", "process"):
            raise ValueError(f"kind must be 'thread' or 'process', got {kind!r}")
        self.name = name
        self.max_workers = max_workers
        self.kind = kind
        if kind == "thread":
            self._pool: cf.Executor = cf.ThreadPoolExecutor(
                max_workers=max_workers, thread_name_prefix=name
            )
        else:
            self._pool = cf.ProcessPoolExecutor(max_workers=max_workers)
        self.tasks_submitted = 0
        self._closed = False

    def submit(self, fn: Callable, *args: Any, **kwargs: Any) -> cf.Future:
        self.tasks_submitted += 1
        return self._pool.submit(fn, *args, **kwargs)

    def map(self, fn: Callable, items: Iterable[Any]) -> List[cf.Future]:
        return [self.submit(fn, item) for item in items]

    def gather(
        self,
        futures: Iterable[cf.Future],
        timeout: Optional[float] = None,
        ordered: bool = False,
    ) -> Union[Iterator[Any], List[Any]]:
        """Yield results as futures complete (completion order).

        The default is a generator in completion order — the shape a
        streaming consumer needs: a slow first submission no longer
        head-of-line-blocks every finished result behind it.  Pass
        ``ordered=True`` for the old behaviour (wait for all, then a
        list in submission order).  Either way the first exception
        encountered is raised; with ``timeout``, :class:`TimeoutError`
        is raised if the futures have not all settled in time.
        """
        futures = list(futures)
        if ordered:
            cf.wait(futures, timeout=timeout)
            return [future.result(timeout=0) for future in futures]

        def results() -> Iterator[Any]:
            for future in cf.as_completed(futures, timeout=timeout):
                yield future.result()

        return results()

    def shutdown(self, wait: bool = True) -> None:
        """Idempotent: safe to call again (e.g. explicit shutdown inside
        a ``with`` block, or both an error path and a finally)."""
        if self._closed:
            return
        self._closed = True
        self._pool.shutdown(wait=wait)

    def __enter__(self) -> "LocalComputeEndpoint":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()
