"""Globus-Compute-like function service: registry + endpoints.

Two endpoint flavours share the submit/future shape: the simulated
endpoint runs behaviours on the discrete-event kernel (used by the
benchmarks), the local endpoint runs real callables on threads/processes
(used by the examples and the real execution path).
"""

from repro.compute.endpoint import ComputeTask, SimComputeEndpoint
from repro.compute.local import LocalComputeEndpoint
from repro.compute.registry import FunctionRegistry, RegisteredFunction

__all__ = [
    "FunctionRegistry",
    "RegisteredFunction",
    "SimComputeEndpoint",
    "ComputeTask",
    "LocalComputeEndpoint",
]
