"""repro: reproduction of the SC'24 multi-facility EO-ML workflow paper.

Top-level package. Subpackages:

- :mod:`repro.util`     — units, YAML subset, config schema, stats, logging
- :mod:`repro.sim`      — discrete-event simulation kernel
- :mod:`repro.netcdf`   — from-scratch NetCDF-3 classic writer/reader
- :mod:`repro.modis`    — synthetic MODIS products and LAADS archive
- :mod:`repro.net`      — network bandwidth/latency substrate
- :mod:`repro.hpc`      — cluster, Slurm-like scheduler, Lustre-like FS
- :mod:`repro.compute`  — Globus-Compute-like function service
- :mod:`repro.transfer` — Globus-Transfer-like data movement
- :mod:`repro.flows`    — Globus-Flows-like state-machine automation
- :mod:`repro.pexec`    — Parsl-like parallel executor
- :mod:`repro.ricc`     — rotationally invariant cloud clustering + AICCA
- :mod:`repro.core`     — the five-stage EO-ML workflow
- :mod:`repro.analysis` — experiment drivers regenerating every figure/table
"""

__version__ = "1.0.0"
