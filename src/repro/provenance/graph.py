"""The provenance lineage graph (networkx view over a ProvenanceStore).

Answers the reproducibility questions Section V-A cares about: *which
granules and which model produced this labelled file?* (ancestry), *what
downstream products are invalidated if this granule was bad?* (impact),
and *can this artifact be regenerated from sources alone?* (completeness).
"""

from __future__ import annotations

from typing import Dict, List, Set

import networkx as nx

from repro.provenance.record import ProvenanceStore

__all__ = ["build_graph", "ancestry", "impact", "regeneration_plan", "to_dot"]


def build_graph(store: ProvenanceStore) -> nx.DiGraph:
    """Directed graph: edges point *forward* in derivation order.

    entity --used-by--> activity --generated--> entity
    """
    graph = nx.DiGraph()
    for entity in store.entities.values():
        graph.add_node(entity.entity_id, node_type="entity", kind=entity.kind, uri=entity.uri)
    for activity in store.activities.values():
        graph.add_node(
            activity.activity_id,
            node_type="activity",
            kind=activity.kind,
            agent=activity.agent,
            status=activity.status,
        )
        for entity_id in activity.used:
            graph.add_edge(entity_id, activity.activity_id, relation="used")
        for entity_id in activity.generated:
            graph.add_edge(activity.activity_id, entity_id, relation="generated")
    if not nx.is_directed_acyclic_graph(graph):
        raise ValueError("provenance graph has a cycle: an entity derives from itself")
    return graph


def ancestry(graph: nx.DiGraph, entity_id: str) -> Set[str]:
    """All upstream nodes (entities and activities) an artifact depends on."""
    if entity_id not in graph:
        raise KeyError(f"unknown node {entity_id!r}")
    return set(nx.ancestors(graph, entity_id))


def impact(graph: nx.DiGraph, entity_id: str) -> Set[str]:
    """All downstream artifacts derived (directly or not) from an entity."""
    if entity_id not in graph:
        raise KeyError(f"unknown node {entity_id!r}")
    return {
        node
        for node in nx.descendants(graph, entity_id)
        if graph.nodes[node]["node_type"] == "entity"
    }


def regeneration_plan(graph: nx.DiGraph, entity_id: str) -> List[str]:
    """Activities to re-run (in dependency order) to regenerate an artifact."""
    upstream = ancestry(graph, entity_id)
    activities = [n for n in upstream if graph.nodes[n]["node_type"] == "activity"]
    order = list(nx.topological_sort(graph.subgraph(upstream | {entity_id})))
    return [n for n in order if n in set(activities)]


def to_dot(graph: nx.DiGraph) -> str:
    """A Graphviz rendering (entities as boxes, activities as ellipses)."""
    lines = ["digraph provenance {", "  rankdir=LR;"]
    for node, data in graph.nodes(data=True):
        shape = "box" if data["node_type"] == "entity" else "ellipse"
        label = f"{data['kind']}\\n{node}"
        lines.append(f'  "{node}" [shape={shape}, label="{label}"];')
    for src, dst, data in graph.edges(data=True):
        lines.append(f'  "{src}" -> "{dst}" [label="{data["relation"]}"];')
    lines.append("}")
    return "\n".join(lines)
