"""Provenance tracking: W3C-PROV-style records + lineage graph queries."""

from repro.provenance.graph import ancestry, build_graph, impact, regeneration_plan, to_dot
from repro.provenance.record import Activity, Entity, ProvenanceStore

__all__ = [
    "ProvenanceStore",
    "Entity",
    "Activity",
    "build_graph",
    "ancestry",
    "impact",
    "regeneration_plan",
    "to_dot",
]
