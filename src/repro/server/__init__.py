"""repro.server — the multi-facility control plane.

The paper's workflow service, made concrete: a central HTTP service owns
runs and their work-units in a SQLite store, facilities are polling
**site agents** that lease units, execute them through the existing
stage runtime, heartbeat while working, and report results.  A lease
that expires (agent death, network partition) requeues its unit, and the
run journal makes re-execution idempotent — a killed agent never loses
or duplicates work.

Layers (each importable on its own):

* :mod:`repro.server.store`     — SQLite-backed run/unit/lease store;
* :mod:`repro.server.wire`      — JSON codecs for cross-process state;
* :mod:`repro.server.execution` — standalone execution of one plan node;
* :mod:`repro.server.api`      — transport-free request handlers;
* :mod:`repro.server.service`   — stdlib threaded HTTP server;
* :mod:`repro.server.client`    — typed HTTP client;
* :mod:`repro.server.agent`     — the polling site agent.

The CLI front-ends are ``repro serve`` / ``submit`` / ``status`` /
``agent``; local ``repro run`` never touches this package.
"""

from repro.server.agent import AgentStats, SiteAgent
from repro.server.api import ApiError, ControlPlaneAPI
from repro.server.client import (
    ControlPlaneClient,
    ControlPlaneError,
    Lease,
    RequestFailed,
    RunSummary,
    ServerUnavailable,
    UnitSummary,
)
from repro.server.execution import LeaseLost, execute_unit, unit_graph
from repro.server.outbox import Outbox
from repro.server.service import ControlPlaneServer, serve
from repro.server.store import (
    Conflict,
    Fenced,
    NotFound,
    RunStore,
    StoreError,
)

__all__ = [
    "AgentStats",
    "ApiError",
    "Conflict",
    "ControlPlaneAPI",
    "ControlPlaneClient",
    "ControlPlaneError",
    "ControlPlaneServer",
    "Fenced",
    "Lease",
    "LeaseLost",
    "NotFound",
    "Outbox",
    "RequestFailed",
    "RunStore",
    "RunSummary",
    "ServerUnavailable",
    "SiteAgent",
    "StoreError",
    "UnitSummary",
    "execute_unit",
    "serve",
    "unit_graph",
]
