"""Standalone execution of one plan node — the agent side of a lease.

The server hands an agent ``(run config, unit name)``; this module turns
that into real stage work by rebuilding the run's barrier
:class:`~repro.runtime.plan.PipelinePlan` and driving exactly one node
of it.  The barrier edges themselves are enforced by the *server* (a
unit only becomes leasable once its dependencies completed), so the
local driver's job is the node's immediate needs:

* dependency state is rehydrated from the wire files the predecessor
  units published (:mod:`repro.server.wire`) — the cross-process
  equivalent of the in-process plan ``state`` dict;
* the node's ``scope`` (the inference crawler/worker window) is entered
  around its body, and ``when`` gates are honoured;
* the run journal is opened with ``resume=True`` every time, so a
  requeued or retried unit replays its history and every stage behaves
  as the idempotent journal consumer it already is — re-execution can
  never double-ship or corrupt artifacts.

Stage bodies still run through the :class:`~repro.runtime.executor.
StageExecutor` middleware stack (journal, chaos, retry, quarantine,
metrics); nothing about *how* work executes changes when it is driven
remotely.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.core import EOMLWorkflow, load_config
from repro.core.config import EOMLConfig
from repro.journal import WorkflowJournal
from repro.server import wire

__all__ = ["LeaseLost", "unit_graph", "validate_remote_config", "execute_unit"]


class LeaseLost(RuntimeError):
    """The agent's lease was fenced away mid-execution: stand down.

    Raised from :func:`execute_unit` when its ``cancel`` event fires (a
    heartbeat learned the lease expired and the unit was requeued).  The
    agent treats it as a clean relinquish — no completion POST, no
    failure record — because the unit's new owner is authoritative and
    the journal makes that owner's re-execution byte-identical.
    """


def unit_graph(config: EOMLConfig) -> List[Tuple[str, List[str]]]:
    """The run's work-units: the barrier plan's nodes and ``after`` edges.

    Derived from the real :meth:`EOMLWorkflow.build_plan` so the control
    plane can never drift from the workflow's actual topology.  Nodes
    whose ``when`` gate is statically off (shipment with
    ``shipment.enabled: false``) are dropped, and edges into dropped
    nodes are dropped with them.
    """
    plan = EOMLWorkflow(config).build_plan(streaming=False)
    kept: List[Tuple[str, List[str]]] = []
    names: set = set()
    for node in plan.nodes:
        if node.when is not None and not node.when({}):
            continue
        names.add(node.name)
        kept.append((node.name, [dep for dep in node.after if dep in names]))
    return kept


def validate_remote_config(raw: Mapping[str, Any]) -> EOMLConfig:
    """Parse and vet a submitted config for remote execution.

    Remote runs need the journal: it is both the crash-consistency story
    (requeued units replay it) and the cross-unit hand-off point (the
    bootstrapped model and wire state live in the journal directory).
    """
    config = load_config(dict(raw))
    if not config.journal_enabled:
        raise ValueError(
            "remote runs require journaling (journal.enabled: true): the "
            "journal directory carries cross-unit state and makes requeued "
            "work-units idempotent"
        )
    return config


def _rehydrate(
    workflow: EOMLWorkflow,
    journal: Optional[WorkflowJournal],
    unit: str,
    config: EOMLConfig,
    handles: Dict[str, Any],
    state: Dict[str, Any],
) -> None:
    """Load the dependency state this node's body actually reads.

    Unit names carry the fan-out branch as an ``@`` suffix (an
    instrument for download/preprocess, an ``<instrument>+<model>`` tag
    for model/inference/shipment); a bare name is the classic
    single-branch plan.
    """
    base, _, tag = unit.partition("@")
    if tag:
        from repro.core.branches import branch_config

        if base == "preprocess":
            state[f"download@{tag}"] = wire.download_report_from_wire(
                wire.load_state(config.journal_dir, f"download@{tag}")
            )
        if base == "inference":
            from repro.instruments.registry import get_model

            instrument, _, model_name = tag.partition("+")
            bcfg = branch_config(config, instrument, model_name)
            model_path = workflow._effective_model_path(journal, tag)
            if model_path is None:
                raise RuntimeError(
                    "no model path: remote inference needs the journal "
                    "directory to carry the bootstrapped branch model"
                )
            state[f"model@{tag}"] = get_model(bcfg.model_name).load(model_path)
        # model@tag scans its branch's preprocessed directory and
        # shipment@tag sweeps its branch's transfer-out directory:
        # neither needs rehydrated state.
        return
    if unit in ("model", "preprocess"):
        state["download"] = wire.download_report_from_wire(
            wire.load_state(config.journal_dir, "download")
        )
    if unit == "preprocess":
        handles["consumed"] = int(
            wire.load_state(config.journal_dir, "model").get("consumed", 0)
        )
    if unit == "inference":
        from repro.instruments.registry import get_model

        model_path = workflow._effective_model_path(journal)
        if model_path is None:
            raise RuntimeError(
                "no model path: remote inference needs the journal directory "
                "(or inference.model_path) to carry the bootstrapped model"
            )
        state["model"] = get_model(config.model_name).load(model_path)


def _result_payload(unit: str, value: Any, handles: Dict[str, Any]) -> Dict[str, Any]:
    """The completion record POSTed back to the control plane."""
    base, _, tag = unit.partition("@")
    suffix = f"@{tag}" if tag else ""
    unit = base
    if unit == "download":
        return {
            "files": value.files, "nbytes": value.nbytes,
            "skipped": value.skipped, "resumed": value.resumed,
            "cached": value.cached, "fetched_bytes": value.fetched_bytes,
            "scenes": len(value.granule_sets),
            "failed": len(value.failed), "incomplete": len(value.incomplete),
        }
    if unit == "model":
        return {
            "num_classes": value.num_classes,
            "consumed": handles.get("consumed", 0),
        }
    if unit == "preprocess":
        return {
            "tiles": value.total_tiles,
            "files": sum(1 for r in value.results if r.tile_path),
            "quarantined": len(value.quarantined),
        }
    if unit == "inference":
        worker = handles[f"worker{suffix}"]
        return {
            "files": len(worker.results),
            "tiles": sum(r.tiles for r in worker.results),
            "quarantined": len(worker.quarantined),
            "errors": list(worker.errors) + list(handles[f"crawler{suffix}"].errors),
        }
    if unit == "shipment":
        return {
            "files": len(value.moved), "nbytes": value.nbytes,
            "retries": value.retries, "mismatches": len(value.mismatches),
            "deduped": value.deduped,
        }
    return {}


def execute_unit(
    raw_config: Mapping[str, Any],
    unit: str,
    chaos: Any = None,
    cancel: Any = None,
) -> Dict[str, Any]:
    """Run one work-unit of a submitted run to completion.

    Returns the result payload for the completion POST.  Raises on
    failure — the agent reports the exception as a failed unit.  The
    paths inside ``raw_config`` are taken literally: agents of one run
    must share the filesystem those paths live on (or be the only
    facility executing the stages that touch them).

    ``cancel`` is an optional ``threading.Event``-like object (anything
    with ``is_set()``): when the agent's heartbeat thread learns the
    lease was fenced away, it fires the event and the execution raises
    :class:`LeaseLost` at the next checkpoint instead of racing the
    unit's new owner through the publish path.
    """

    def _check_cancel(where: str) -> None:
        if cancel is not None and cancel.is_set():
            raise LeaseLost(f"lease fenced away ({where}); standing down")

    _check_cancel("before start")
    config = validate_remote_config(raw_config)
    if chaos is None:
        # Same wiring as the local path: a chaos: section in the
        # submitted config drives the stage fault surfaces remotely too.
        from repro.chaos import build_injector

        chaos = build_injector(config.chaos)
    journal = WorkflowJournal(config.journal_dir, durable=config.journal_durable)
    # Always resume: a fresh run directory replays an empty journal, a
    # requeued unit replays its own half-finished history.
    journal.start(resume=True)
    try:
        workflow = EOMLWorkflow(config)
        handles: Dict[str, Any] = {}
        state: Dict[str, Any] = {}
        _rehydrate(workflow, journal, unit, config, handles, state)
        # The agent's handle on the run's CAS directory.  Co-located
        # agents (shared filesystem) dedupe into one object space; an
        # agent on its own filesystem simply opens an empty store there
        # and every lookup misses — the stages fall back to a real fetch,
        # which is exactly the non-cached path.
        from repro.core.artifact_cache import open_store

        cas = open_store(config, chaos=chaos)
        plan = workflow.build_plan(
            chaos=chaos, journal=journal, handles=handles, streaming=False,
            cache=cas,
        )
        node = plan.node(unit)
        if node.when is not None and not node.when(state):
            return {"skipped": True}
        _check_cancel("before node body")
        scope = node.scope(state) if node.scope is not None else nullcontext()
        with scope:
            value = node.run(state)
        # The fencing checkpoint that matters most: the body finished but
        # nothing is published to the control plane yet.  If the lease was
        # lost while computing, stop here — the journal keeps the local
        # work for whoever re-executes, and the new owner's POST is the
        # only one the server will accept anyway.
        _check_cancel("after node body")
        if unit.partition("@")[0] == "download":
            # Saved under the full unit name, so each fan-out branch's
            # preprocess rehydrates its own instrument's report.
            wire.save_state(
                config.journal_dir, unit, wire.download_report_to_wire(value)
            )
        result = _result_payload(unit, value, handles)
        if unit == "model":
            wire.save_state(config.journal_dir, "model", dict(result))
        journal.checkpoint()
        return result
    finally:
        journal.close()
