"""The control-plane HTTP service: stdlib transport over the API layer.

A :class:`ControlPlaneServer` is a ``ThreadingHTTPServer`` whose handler
does exactly three things: read the JSON body, call
:meth:`~repro.server.api.ControlPlaneAPI.handle`, write the JSON
response.  All routing, validation, and error mapping live in the
transport-free API layer, which is what the contract tests exercise.

The server runs happily in-process (tests start one per test on an
ephemeral port) or as a long-lived daemon via :func:`serve` (the
``repro serve`` command).  Threading matters: site agents poll while
operators submit and watch, and the load test drives hundreds of
concurrent clients — hence ``daemon_threads`` and a deep accept queue.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional, Tuple

from repro.server.api import ControlPlaneAPI
from repro.server.store import RunStore
from repro.telemetry import MetricsRegistry

__all__ = ["ControlPlaneServer", "serve"]


class _Handler(BaseHTTPRequestHandler):
    """One request: JSON in, API dispatch, JSON out."""

    # Keep-alive matters under load: without HTTP/1.1 every poll pays a
    # fresh TCP handshake and the accept queue becomes the bottleneck.
    protocol_version = "HTTP/1.1"
    server: "ControlPlaneServer"

    def _dispatch(self, method: str) -> None:
        body: Optional[dict] = None
        length = int(self.headers.get("Content-Length") or 0)
        if length:
            try:
                body = json.loads(self.rfile.read(length).decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                self._reply(400, {"error": "request body is not valid JSON"})
                return
            if body is not None and not isinstance(body, dict):
                self._reply(400, {"error": "request body must be a JSON object"})
                return
        status, payload = self.server.api.handle(method, self.path, body)
        self._reply(status, payload)

    def _reply(self, status: int, payload: Optional[dict]) -> None:
        blob = b"" if payload is None else json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(blob)))
        self.end_headers()
        if blob:
            self.wfile.write(blob)

    def do_GET(self) -> None:  # noqa: N802 — http.server naming
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def log_message(self, format: str, *args: Any) -> None:
        # Request logging is the metrics registry's job; stderr chatter
        # would swamp the load test.
        pass


class ControlPlaneServer(ThreadingHTTPServer):
    """The run-store service, embeddable and context-managed.

    >>> with ControlPlaneServer(":memory:", port=0) as server:
    ...     client = ControlPlaneClient(server.url)
    """

    daemon_threads = True
    # The load test opens hundreds of sockets at once; the default
    # accept backlog of 5 would refuse connections under that burst.
    request_queue_size = 256

    def __init__(
        self,
        db_path: str = ":memory:",
        host: str = "127.0.0.1",
        port: int = 0,
        store: Optional[RunStore] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.store = store if store is not None else RunStore(db_path)
        # A restarted server may be inheriting state a killed predecessor
        # left mid-flight: repair it before accepting any request.
        self.swept = self.store.startup_sweep()
        self.api = ControlPlaneAPI(self.store, metrics=metrics)
        self._thread: Optional[threading.Thread] = None
        super().__init__((host, port), _Handler)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "ControlPlaneServer":
        """Serve on a background thread (tests, embedded use)."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self.serve_forever, name="control-plane", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop serving and release the socket; the store stays usable."""
        if self._thread is not None:
            self.shutdown()
            self._thread.join(timeout=10)
            self._thread = None
        self.server_close()

    def __enter__(self) -> "ControlPlaneServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


def serve(
    db_path: str,
    host: str = "127.0.0.1",
    port: int = 8642,
    announce: Any = None,
) -> None:
    """Run the control plane in the foreground (``repro serve``)."""
    server = ControlPlaneServer(db_path, host=host, port=port)
    if announce is not None:
        announce(server.url)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        server.store.close()
