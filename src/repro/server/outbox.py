"""The disconnected agent's durable outbox: spooled results + heartbeats.

When the wire to the control plane goes down mid-unit, a site agent
finishes the work it holds (the lease may well still be valid) and
spools what it could not deliver — completion records and missed
heartbeats — to this outbox.  On reconnect the whole backlog is replayed
in one idempotent ``/v1/reconcile`` round trip and the outbox is
cleared.

The durable form is a JSONL file (one record per line, flushed and
fsynced per append) living in the run's journal directory next to the
wire-state files, so an agent killed *while partitioned* loses nothing:
its successor replays the spool.  The same discipline as
:mod:`repro.journal` applies on read: a torn final line (the classic
crash artifact) is tolerated and dropped.

Constructed without a path the outbox is memory-only — same replay
semantics, no crash durability — which keeps casual agents working
without choosing a spool location.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Mapping, Optional

__all__ = ["Outbox"]


class Outbox:
    """An append-only spool of undeliverable control-plane records."""

    def __init__(self, path: Optional[str] = None):
        self.path = path
        self._memory: List[Dict[str, Any]] = []
        if path:
            os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
            self._memory = self._load()

    def _load(self) -> List[Dict[str, Any]]:
        if not self.path or not os.path.exists(self.path):
            return []
        records: List[Dict[str, Any]] = []
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    # A torn tail from a crash mid-append: drop it — the
                    # record was never acknowledged to anyone.
                    continue
                if isinstance(record, dict):
                    records.append(record)
        return records

    def append(self, record: Mapping[str, Any]) -> None:
        """Spool one record durably (fsync before returning)."""
        entry = dict(record)
        self._memory.append(entry)
        if self.path:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(json.dumps(entry) + "\n")
                handle.flush()
                os.fsync(handle.fileno())

    def records(self) -> List[Dict[str, Any]]:
        """The spooled records, oldest first (copies)."""
        return [dict(r) for r in self._memory]

    def clear(self) -> None:
        """Drop the spool after a successful replay."""
        self._memory = []
        if self.path and os.path.exists(self.path):
            os.remove(self.path)

    def __len__(self) -> int:
        return len(self._memory)

    def __bool__(self) -> bool:
        return True
