"""Typed HTTP client for the control plane — urllib only, no new deps.

Everything the CLI and the site agent say to the server goes through
:class:`ControlPlaneClient`.  Failures split into two shapes callers
handle differently:

* :class:`ServerUnavailable` — the service cannot be reached at all
  (connection refused, DNS, timeout).  Transient connection errors are
  retried with a short backoff first, because an agent polling across a
  WAN will see them routinely.
* :class:`RequestFailed` — the server answered with an error status.
  Carries ``.status`` so the agent can distinguish a lost lease (404 /
  409) from a bad request (400), and ``.fenced`` when the 409 is a
  fencing rejection (the unit's new owner is authoritative).

Retries are governed by the per-phase budgets in
:data:`repro.net.retry.ENDPOINT_POLICIES`: idempotent requests (GETs,
heartbeat, reconcile) retry on connect errors and HTTP 5xx, but a
non-idempotent POST (submit, lease, complete) is **never** blind-retried
— it gets retries only when it carries a justification the server can
check: a ``request_id`` dedupe key (submit/lease, generated per logical
call so the retry replays the original outcome) or a fencing token
(complete, whose lease the store fences).

Successful responses are decoded into small typed records
(:class:`RunSummary`, :class:`UnitSummary`, :class:`Lease`) so callers
never index raw JSON.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
import uuid
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.net.http import classify_phase
from repro.net.retry import ENDPOINT_POLICIES, EndpointPolicy

__all__ = [
    "ControlPlaneError",
    "ServerUnavailable",
    "RequestFailed",
    "RunSummary",
    "UnitSummary",
    "Lease",
    "ControlPlaneClient",
]


class ControlPlaneError(Exception):
    """Base of everything this client raises."""


class ServerUnavailable(ControlPlaneError):
    """The control plane could not be reached (after retries)."""


class RequestFailed(ControlPlaneError):
    """The control plane answered with an error status."""

    def __init__(self, status: int, message: str, fenced: bool = False):
        super().__init__(f"[{status}] {message}")
        self.status = status
        self.message = message
        # True when a 409 is a fencing rejection: this holder's lease
        # epoch is stale and the unit's new owner is authoritative.
        self.fenced = fenced


@dataclass(frozen=True)
class UnitSummary:
    """One work-unit's control-plane view."""

    name: str
    status: str
    deps: List[str] = field(default_factory=list)
    attempts: int = 0
    requeues: int = 0
    agent: Optional[str] = None
    error: Optional[str] = None
    result: Optional[Dict[str, Any]] = None

    @classmethod
    def from_wire(cls, raw: Mapping[str, Any]) -> "UnitSummary":
        return cls(
            name=raw["name"],
            status=raw["status"],
            deps=list(raw.get("deps", [])),
            attempts=int(raw.get("attempts", 0)),
            requeues=int(raw.get("requeues", 0)),
            agent=raw.get("agent"),
            error=raw.get("error"),
            result=raw.get("result"),
        )


@dataclass(frozen=True)
class RunSummary:
    """One run's control-plane view (units present on detail fetches)."""

    run_id: str
    name: str
    status: str
    error: Optional[str] = None
    units: List[UnitSummary] = field(default_factory=list)
    config: Optional[Dict[str, Any]] = None

    @classmethod
    def from_wire(cls, raw: Mapping[str, Any]) -> "RunSummary":
        # Run listings carry `units` as status counts; detail fetches carry
        # the full per-unit records.  Only the latter decode to summaries.
        units_raw = raw.get("units")
        units = (
            [UnitSummary.from_wire(u) for u in units_raw]
            if isinstance(units_raw, list) else []
        )
        return cls(
            run_id=raw["id"],
            name=raw.get("name", ""),
            status=raw["status"],
            error=raw.get("error"),
            units=units,
            config=raw.get("config"),
        )

    @property
    def done(self) -> bool:
        return self.status in ("completed", "failed")


@dataclass(frozen=True)
class Lease:
    """A granted work-unit lease."""

    lease_id: str
    run_id: str
    unit: str
    attempt: int
    ttl: float
    expires_at: float
    config: Dict[str, Any]
    fence: int = 0

    @classmethod
    def from_wire(cls, raw: Mapping[str, Any]) -> "Lease":
        return cls(
            lease_id=raw["lease_id"],
            run_id=raw["run_id"],
            unit=raw["unit"],
            attempt=int(raw.get("attempt", 1)),
            ttl=float(raw["ttl"]),
            expires_at=float(raw["expires_at"]),
            config=dict(raw["config"]),
            fence=int(raw.get("fence", 0)),
        )


class ControlPlaneClient:
    """Thin, retrying JSON-over-HTTP client."""

    def __init__(
        self,
        base_url: str,
        timeout: float = 10.0,
        retries: int = 3,
        backoff: float = 0.1,
        sleeper: Callable[[float], None] = time.sleep,
        opener: Optional[Callable[..., Any]] = None,
    ):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self._sleep = sleeper
        self._open = opener or urllib.request.urlopen
        # Wire-health accounting the agent folds into its degraded-mode
        # metrics: how often the link failed, and how it failed.
        self.stats: Dict[str, int] = {
            "connect_errors": 0, "server_errors": 0, "retries": 0,
        }

    # -- transport ------------------------------------------------------------

    def request(
        self,
        method: str,
        path: str,
        body: Optional[Mapping[str, Any]] = None,
        retry_token: str = "",
    ) -> Optional[Dict[str, Any]]:
        """One API call; returns the decoded payload (``None`` on 204).

        ``retry_token`` is the caller's justification for retrying a
        non-idempotent POST: a dedupe key the server replays, or a
        fencing token it checks.  Without one, such a POST gets exactly
        one attempt — a lost response must surface as
        :class:`ServerUnavailable`, never as a silent double-submit.
        """
        phase = classify_phase(method, path)
        policy: EndpointPolicy = ENDPOINT_POLICIES.get(
            phase, ENDPOINT_POLICIES["other"]
        )
        budget = policy.retries if policy.retries is not None else self.retries
        if not policy.idempotent and not retry_token:
            budget = 0
        timeout = self.timeout * policy.timeout_scale
        data = None if body is None else json.dumps(dict(body)).encode("utf-8")
        last: Optional[Exception] = None
        for attempt in range(budget + 1):
            req = urllib.request.Request(
                self.base_url + path,
                data=data,
                method=method,
                headers={"Content-Type": "application/json"},
            )
            try:
                with self._open(req, timeout=timeout) as response:
                    blob = response.read()
                    if response.status == 204 or not blob:
                        return None
                    return json.loads(blob.decode("utf-8"))
            except urllib.error.HTTPError as exc:
                # The server answered: connectivity is fine.  4xx is a
                # definitive answer — never retried.  5xx is a server-side
                # fault; it may or may not have applied, so it is retried
                # only under the same idempotent-or-tokened rule.
                detail = exc.read()
                fenced = False
                try:
                    payload = json.loads(detail.decode("utf-8"))
                    message = payload.get("error", "")
                    fenced = bool(payload.get("fenced"))
                except (ValueError, UnicodeDecodeError):
                    message = detail.decode("utf-8", "replace") or str(exc.reason)
                if exc.code >= 500 and attempt < budget:
                    self.stats["server_errors"] += 1
                    self.stats["retries"] += 1
                    self._sleep(self.backoff * (2 ** attempt))
                    continue
                raise RequestFailed(exc.code, message, fenced=fenced) from None
            except (urllib.error.URLError, ConnectionError, TimeoutError, OSError) as exc:
                # Connect-refused / timeout / reset: the server may never
                # have seen the request (or saw it and the answer died on
                # the wire — which is why the token rule exists).
                last = exc
                self.stats["connect_errors"] += 1
                if attempt < budget:
                    self.stats["retries"] += 1
                    self._sleep(self.backoff * (2 ** attempt))
        raise ServerUnavailable(
            f"control plane at {self.base_url} is unreachable: {last}"
        ) from last

    # -- operator calls -------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self.request("GET", "/v1/health") or {}

    def metrics(self) -> Dict[str, Any]:
        return self.request("GET", "/v1/metrics") or {}

    def submit(self, config: Mapping[str, Any], name: str = "") -> RunSummary:
        # One dedupe key per logical submission: every wire retry of this
        # call replays the same run instead of creating twins.
        request_id = f"submit-{uuid.uuid4().hex}"
        body: Dict[str, Any] = {"config": dict(config), "request_id": request_id}
        if name:
            body["name"] = name
        payload = self.request("POST", "/v1/runs", body, retry_token=request_id)
        return RunSummary.from_wire(payload["run"])

    def runs(self) -> List[RunSummary]:
        payload = self.request("GET", "/v1/runs") or {"runs": []}
        return [RunSummary.from_wire(raw) for raw in payload["runs"]]

    def run(self, run_id: str) -> RunSummary:
        payload = self.request("GET", f"/v1/runs/{run_id}")
        return RunSummary.from_wire(payload["run"])

    def events(self, run_id: str) -> List[Dict[str, Any]]:
        payload = self.request("GET", f"/v1/runs/{run_id}/events") or {}
        return list(payload.get("events", []))

    def pause(self, run_id: str) -> RunSummary:
        payload = self.request("POST", f"/v1/runs/{run_id}/pause")
        return RunSummary.from_wire(payload["run"])

    def resume(self, run_id: str) -> RunSummary:
        payload = self.request("POST", f"/v1/runs/{run_id}/resume")
        return RunSummary.from_wire(payload["run"])

    def retry(self, run_id: str, unit: str) -> UnitSummary:
        payload = self.request("POST", f"/v1/runs/{run_id}/units/{unit}/retry")
        raw = payload["unit"]
        return UnitSummary(name=raw["unit"], status=raw["status"])

    # -- agent calls ----------------------------------------------------------

    def lease(
        self, agent: str, site: str = "", ttl: Optional[float] = None
    ) -> Optional[Lease]:
        # One dedupe key per ask: a retried grant returns the original
        # lease, never a second unit for the same poll.
        request_id = f"lease-{agent}-{uuid.uuid4().hex}"
        body: Dict[str, Any] = {"agent": agent, "request_id": request_id}
        if site:
            body["site"] = site
        if ttl is not None:
            body["ttl"] = ttl
        payload = self.request("POST", "/v1/lease", body, retry_token=request_id)
        if payload is None:
            return None
        return Lease.from_wire(payload["lease"])

    def heartbeat(self, lease_id: str, ttl: Optional[float] = None) -> Dict[str, Any]:
        body = {"ttl": ttl} if ttl is not None else {}
        return self.request("POST", f"/v1/lease/{lease_id}/heartbeat", body) or {}

    def complete(
        self,
        lease_id: str,
        status: str = "completed",
        result: Optional[Mapping[str, Any]] = None,
        error: Optional[str] = None,
    ) -> Dict[str, Any]:
        # The lease id IS the fencing token: the store acks a repeat POST
        # from a completed lease and fences a stale one, so retrying over
        # a lossy wire cannot double-publish.
        body: Dict[str, Any] = {"status": status}
        if result is not None:
            body["result"] = dict(result)
        if error is not None:
            body["error"] = error
        return self.request(
            "POST", f"/v1/lease/{lease_id}/complete", body, retry_token=lease_id
        ) or {}

    def reconcile(
        self,
        agent: str,
        records: List[Mapping[str, Any]],
        stats: Optional[Mapping[str, int]] = None,
    ) -> Dict[str, Any]:
        """Replay a spooled outbox after a partition heals (idempotent).

        ``stats`` optionally carries the agent's outage accounting
        (disconnects, reconnect attempts) so the central ``/metrics``
        endpoint can expose wire failures the server never saw.
        """
        body: Dict[str, Any] = {
            "agent": agent, "records": [dict(r) for r in records],
        }
        if stats:
            body["stats"] = dict(stats)
        return self.request("POST", "/v1/reconcile", body) or {}
