"""Typed HTTP client for the control plane — urllib only, no new deps.

Everything the CLI and the site agent say to the server goes through
:class:`ControlPlaneClient`.  Failures split into two shapes callers
handle differently:

* :class:`ServerUnavailable` — the service cannot be reached at all
  (connection refused, DNS, timeout).  Transient connection errors are
  retried with a short backoff first, because an agent polling across a
  WAN will see them routinely.
* :class:`RequestFailed` — the server answered with an error status.
  Carries ``.status`` so the agent can distinguish a lost lease (404 /
  409) from a bad request (400).

Successful responses are decoded into small typed records
(:class:`RunSummary`, :class:`UnitSummary`, :class:`Lease`) so callers
never index raw JSON.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional

__all__ = [
    "ControlPlaneError",
    "ServerUnavailable",
    "RequestFailed",
    "RunSummary",
    "UnitSummary",
    "Lease",
    "ControlPlaneClient",
]


class ControlPlaneError(Exception):
    """Base of everything this client raises."""


class ServerUnavailable(ControlPlaneError):
    """The control plane could not be reached (after retries)."""


class RequestFailed(ControlPlaneError):
    """The control plane answered with an error status."""

    def __init__(self, status: int, message: str):
        super().__init__(f"[{status}] {message}")
        self.status = status
        self.message = message


@dataclass(frozen=True)
class UnitSummary:
    """One work-unit's control-plane view."""

    name: str
    status: str
    deps: List[str] = field(default_factory=list)
    attempts: int = 0
    requeues: int = 0
    agent: Optional[str] = None
    error: Optional[str] = None
    result: Optional[Dict[str, Any]] = None

    @classmethod
    def from_wire(cls, raw: Mapping[str, Any]) -> "UnitSummary":
        return cls(
            name=raw["name"],
            status=raw["status"],
            deps=list(raw.get("deps", [])),
            attempts=int(raw.get("attempts", 0)),
            requeues=int(raw.get("requeues", 0)),
            agent=raw.get("agent"),
            error=raw.get("error"),
            result=raw.get("result"),
        )


@dataclass(frozen=True)
class RunSummary:
    """One run's control-plane view (units present on detail fetches)."""

    run_id: str
    name: str
    status: str
    error: Optional[str] = None
    units: List[UnitSummary] = field(default_factory=list)
    config: Optional[Dict[str, Any]] = None

    @classmethod
    def from_wire(cls, raw: Mapping[str, Any]) -> "RunSummary":
        # Run listings carry `units` as status counts; detail fetches carry
        # the full per-unit records.  Only the latter decode to summaries.
        units_raw = raw.get("units")
        units = (
            [UnitSummary.from_wire(u) for u in units_raw]
            if isinstance(units_raw, list) else []
        )
        return cls(
            run_id=raw["id"],
            name=raw.get("name", ""),
            status=raw["status"],
            error=raw.get("error"),
            units=units,
            config=raw.get("config"),
        )

    @property
    def done(self) -> bool:
        return self.status in ("completed", "failed")


@dataclass(frozen=True)
class Lease:
    """A granted work-unit lease."""

    lease_id: str
    run_id: str
    unit: str
    attempt: int
    ttl: float
    expires_at: float
    config: Dict[str, Any]

    @classmethod
    def from_wire(cls, raw: Mapping[str, Any]) -> "Lease":
        return cls(
            lease_id=raw["lease_id"],
            run_id=raw["run_id"],
            unit=raw["unit"],
            attempt=int(raw.get("attempt", 1)),
            ttl=float(raw["ttl"]),
            expires_at=float(raw["expires_at"]),
            config=dict(raw["config"]),
        )


class ControlPlaneClient:
    """Thin, retrying JSON-over-HTTP client."""

    def __init__(
        self,
        base_url: str,
        timeout: float = 10.0,
        retries: int = 3,
        backoff: float = 0.1,
        sleeper: Callable[[float], None] = time.sleep,
        opener: Optional[Callable[..., Any]] = None,
    ):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self._sleep = sleeper
        self._open = opener or urllib.request.urlopen

    # -- transport ------------------------------------------------------------

    def request(
        self,
        method: str,
        path: str,
        body: Optional[Mapping[str, Any]] = None,
    ) -> Optional[Dict[str, Any]]:
        """One API call; returns the decoded payload (``None`` on 204)."""
        data = None if body is None else json.dumps(dict(body)).encode("utf-8")
        last: Optional[Exception] = None
        for attempt in range(self.retries + 1):
            req = urllib.request.Request(
                self.base_url + path,
                data=data,
                method=method,
                headers={"Content-Type": "application/json"},
            )
            try:
                with self._open(req, timeout=self.timeout) as response:
                    blob = response.read()
                    if response.status == 204 or not blob:
                        return None
                    return json.loads(blob.decode("utf-8"))
            except urllib.error.HTTPError as exc:
                # The server answered: not a connectivity problem, no retry.
                detail = exc.read()
                try:
                    message = json.loads(detail.decode("utf-8")).get("error", "")
                except (ValueError, UnicodeDecodeError):
                    message = detail.decode("utf-8", "replace") or exc.reason
                raise RequestFailed(exc.code, message) from None
            except (urllib.error.URLError, ConnectionError, TimeoutError, OSError) as exc:
                last = exc
                if attempt < self.retries:
                    self._sleep(self.backoff * (2 ** attempt))
        raise ServerUnavailable(
            f"control plane at {self.base_url} is unreachable: {last}"
        ) from last

    # -- operator calls -------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self.request("GET", "/v1/health") or {}

    def metrics(self) -> Dict[str, Any]:
        return self.request("GET", "/v1/metrics") or {}

    def submit(self, config: Mapping[str, Any], name: str = "") -> RunSummary:
        body: Dict[str, Any] = {"config": dict(config)}
        if name:
            body["name"] = name
        payload = self.request("POST", "/v1/runs", body)
        return RunSummary.from_wire(payload["run"])

    def runs(self) -> List[RunSummary]:
        payload = self.request("GET", "/v1/runs") or {"runs": []}
        return [RunSummary.from_wire(raw) for raw in payload["runs"]]

    def run(self, run_id: str) -> RunSummary:
        payload = self.request("GET", f"/v1/runs/{run_id}")
        return RunSummary.from_wire(payload["run"])

    def events(self, run_id: str) -> List[Dict[str, Any]]:
        payload = self.request("GET", f"/v1/runs/{run_id}/events") or {}
        return list(payload.get("events", []))

    def pause(self, run_id: str) -> RunSummary:
        payload = self.request("POST", f"/v1/runs/{run_id}/pause")
        return RunSummary.from_wire(payload["run"])

    def resume(self, run_id: str) -> RunSummary:
        payload = self.request("POST", f"/v1/runs/{run_id}/resume")
        return RunSummary.from_wire(payload["run"])

    def retry(self, run_id: str, unit: str) -> UnitSummary:
        payload = self.request("POST", f"/v1/runs/{run_id}/units/{unit}/retry")
        raw = payload["unit"]
        return UnitSummary(name=raw["unit"], status=raw["status"])

    # -- agent calls ----------------------------------------------------------

    def lease(
        self, agent: str, site: str = "", ttl: Optional[float] = None
    ) -> Optional[Lease]:
        body: Dict[str, Any] = {"agent": agent}
        if site:
            body["site"] = site
        if ttl is not None:
            body["ttl"] = ttl
        payload = self.request("POST", "/v1/lease", body)
        if payload is None:
            return None
        return Lease.from_wire(payload["lease"])

    def heartbeat(self, lease_id: str, ttl: Optional[float] = None) -> Dict[str, Any]:
        body = {"ttl": ttl} if ttl is not None else {}
        return self.request("POST", f"/v1/lease/{lease_id}/heartbeat", body) or {}

    def complete(
        self,
        lease_id: str,
        status: str = "completed",
        result: Optional[Mapping[str, Any]] = None,
        error: Optional[str] = None,
    ) -> Dict[str, Any]:
        body: Dict[str, Any] = {"status": status}
        if result is not None:
            body["result"] = dict(result)
        if error is not None:
            body["error"] = error
        return self.request("POST", f"/v1/lease/{lease_id}/complete", body) or {}
