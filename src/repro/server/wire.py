"""Wire codecs: the cross-process serialization of stage state.

A site agent executes one plan node per lease, usually in a different
process (often a different machine) from the agent that ran the node's
dependencies.  In-process execution threads stage outputs through the
plan's shared ``state`` dict; across processes those outputs must be
bytes.  This module is the schema of that hand-off: plain-JSON codecs
for the stage objects that cross a unit boundary, written atomically
beside the run journal so a requeued unit reloads exactly what its
predecessor published.

Only the *structural* outputs travel — granule-set keys and paths,
counters, the consumed-scene cursor.  Bulk artifacts (granule files,
tile files, the bootstrapped model) stay on the shared filesystem the
submitted config points at, guarded by the integrity manifest.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict

from repro.core.download import DownloadReport, GranuleSet
from repro.util.atomic import atomic_write_bytes

__all__ = [
    "STATE_DIRNAME",
    "download_report_to_wire",
    "download_report_from_wire",
    "state_dir",
    "load_state",
    "save_state",
]

# Node-state files live beside the run journal: <journal_dir>/units/*.json
STATE_DIRNAME = "units"


def download_report_to_wire(report: DownloadReport) -> Dict[str, Any]:
    """Flatten a :class:`DownloadReport` into a JSON-safe mapping."""
    return {
        "granule_sets": [
            {"key": gs.key, "paths": dict(gs.paths)}
            for gs in report.granule_sets
        ],
        "files": report.files,
        "nbytes": report.nbytes,
        "seconds": report.seconds,
        "per_file_seconds": list(report.per_file_seconds),
        "skipped": report.skipped,
        "resumed": report.resumed,
        "retried": report.retried,
        "retry_attempts": report.retry_attempts,
        "failed": list(report.failed),
        "incomplete": list(report.incomplete),
        "breaker_trips": report.breaker_trips,
    }


def download_report_from_wire(wire: Dict[str, Any]) -> DownloadReport:
    return DownloadReport(
        granule_sets=[
            GranuleSet(key=gs["key"], paths=dict(gs["paths"]))
            for gs in wire["granule_sets"]
        ],
        files=int(wire["files"]),
        nbytes=int(wire["nbytes"]),
        seconds=float(wire["seconds"]),
        per_file_seconds=[float(s) for s in wire.get("per_file_seconds", [])],
        skipped=int(wire.get("skipped", 0)),
        resumed=int(wire.get("resumed", 0)),
        retried=int(wire.get("retried", 0)),
        retry_attempts=int(wire.get("retry_attempts", 0)),
        failed=list(wire.get("failed", [])),
        incomplete=list(wire.get("incomplete", [])),
        breaker_trips=int(wire.get("breaker_trips", 0)),
    )


def state_dir(journal_dir: str) -> str:
    return os.path.join(journal_dir, STATE_DIRNAME)


def save_state(journal_dir: str, unit: str, payload: Dict[str, Any]) -> str:
    """Atomically publish one node's cross-unit state."""
    directory = state_dir(journal_dir)
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{unit}.json")
    blob = json.dumps(payload, sort_keys=True).encode("utf-8")
    atomic_write_bytes(path, blob)
    return path


def load_state(journal_dir: str, unit: str) -> Dict[str, Any]:
    """Load a node's published state; raises if the dependency never ran."""
    path = os.path.join(state_dir(journal_dir), f"{unit}.json")
    try:
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)
    except FileNotFoundError:
        raise FileNotFoundError(
            f"unit {unit!r} has not published its state at {path} — its "
            "work-unit must complete (on a filesystem this agent shares) "
            "before dependents run"
        ) from None
