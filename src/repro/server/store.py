"""The DB-backed run store: runs, work-units, leases, and the event log.

One SQLite file owns the whole control-plane state, so a killed and
restarted server reloads every run exactly where it stood — the same
crash-consistency bar the run journal sets for artifacts, applied to
orchestration state.

The concurrency contract this store guarantees (property-tested in
``tests/server/test_store_properties.py``):

* **No double assignment** — at any instant a work-unit has at most one
  ``active`` lease; granting a lease first sweeps expired ones, so a
  stale lease can never coexist with a fresh one.
* **Lost agents never lose work** — a lease whose ``expires_at`` passes
  without a heartbeat is expired exactly once: its unit returns to
  ``pending`` (requeue counter bumped) and becomes leasable again.  A
  unit requeued more than ``max_requeues`` times fails instead of
  looping forever.
* **Results are idempotent** — a completed lease re-POSTing its result
  is a recorded no-op (``duplicate``), and an expired lease's late
  result is rejected with :class:`Fenced` (every grant bumps the unit's
  fencing epoch; the new owner is authoritative); the run journal makes
  the redone work byte-identical either way.
* **Lossy wires are survivable** — the non-idempotent POSTs (submit,
  lease) accept a ``request_id`` dedupe key: a retry after a lost
  response replays the original outcome instead of creating a twin, and
  :meth:`reconcile` replays a disconnected agent's whole spooled outbox
  idempotently in one call.

Every method takes the store lock and commits before returning; the
single connection is shared across the HTTP server's handler threads.
The clock is injectable so lease expiry is testable without sleeping.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
import uuid
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "RUN_QUEUED", "RUN_RUNNING", "RUN_PAUSED", "RUN_COMPLETED", "RUN_FAILED",
    "UNIT_PENDING", "UNIT_LEASED", "UNIT_COMPLETED", "UNIT_FAILED",
    "LEASE_ACTIVE", "LEASE_COMPLETED", "LEASE_EXPIRED",
    "StoreError", "NotFound", "Conflict", "Fenced", "RunStore",
]

# Run statuses (derived from unit states; ``paused`` is an operator flag).
RUN_QUEUED = "queued"
RUN_RUNNING = "running"
RUN_PAUSED = "paused"
RUN_COMPLETED = "completed"
RUN_FAILED = "failed"

# Work-unit statuses.
UNIT_PENDING = "pending"
UNIT_LEASED = "leased"
UNIT_COMPLETED = "completed"
UNIT_FAILED = "failed"

# Lease statuses.
LEASE_ACTIVE = "active"
LEASE_COMPLETED = "completed"
LEASE_EXPIRED = "expired"

TERMINAL_UNIT = (UNIT_COMPLETED, UNIT_FAILED)
TERMINAL_RUN = (RUN_COMPLETED, RUN_FAILED)


class StoreError(Exception):
    """Base class for store contract violations."""


class NotFound(StoreError):
    """The named run / unit / lease does not exist."""


class Conflict(StoreError):
    """The operation is invalid in the entity's current state."""


class Fenced(Conflict):
    """A stale lease-holder tried to act after losing its fence.

    Raised when a completion (or reconcile replay) arrives from a lease
    that expired and whose unit was requeued: a newer fencing epoch
    exists, so the late writer must stand down.  Subclasses
    :class:`Conflict` — the wire answer is still 409 — but lets callers
    and metrics distinguish "you lost the race" from other conflicts.
    """


_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    id           TEXT PRIMARY KEY,
    name         TEXT NOT NULL,
    config       TEXT NOT NULL,
    status       TEXT NOT NULL,
    paused       INTEGER NOT NULL DEFAULT 0,
    error        TEXT,
    submitted_at REAL NOT NULL,
    updated_at   REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS units (
    run_id     TEXT NOT NULL,
    name       TEXT NOT NULL,
    seq        INTEGER NOT NULL,
    deps       TEXT NOT NULL,
    status     TEXT NOT NULL,
    attempts   INTEGER NOT NULL DEFAULT 0,
    requeues   INTEGER NOT NULL DEFAULT 0,
    fence      INTEGER NOT NULL DEFAULT 0,
    agent      TEXT,
    lease_id   TEXT,
    result     TEXT,
    error      TEXT,
    updated_at REAL NOT NULL,
    PRIMARY KEY (run_id, name)
);
CREATE TABLE IF NOT EXISTS leases (
    id         TEXT PRIMARY KEY,
    run_id     TEXT NOT NULL,
    unit       TEXT NOT NULL,
    agent      TEXT NOT NULL,
    site       TEXT NOT NULL DEFAULT '',
    status     TEXT NOT NULL,
    fence      INTEGER NOT NULL DEFAULT 0,
    created_at REAL NOT NULL,
    expires_at REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS events (
    seq    INTEGER PRIMARY KEY AUTOINCREMENT,
    run_id TEXT NOT NULL,
    at     REAL NOT NULL,
    kind   TEXT NOT NULL,
    detail TEXT NOT NULL DEFAULT ''
);
CREATE TABLE IF NOT EXISTS requests (
    id       TEXT PRIMARY KEY,
    kind     TEXT NOT NULL,
    response TEXT NOT NULL,
    at       REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_units_status ON units (status);
CREATE INDEX IF NOT EXISTS idx_leases_status ON leases (status, expires_at);
CREATE INDEX IF NOT EXISTS idx_events_run ON events (run_id, seq);
"""

# Columns added after PR 6 shipped: existing on-disk stores are migrated
# in place at open (SQLite ALTER TABLE ADD COLUMN is cheap and safe).
_MIGRATIONS = (
    ("units", "fence", "INTEGER NOT NULL DEFAULT 0"),
    ("leases", "fence", "INTEGER NOT NULL DEFAULT 0"),
)


def _new_id(prefix: str) -> str:
    return f"{prefix}-{uuid.uuid4().hex[:12]}"


class RunStore:
    """SQLite-backed store of runs, work-units, leases, and events."""

    def __init__(
        self,
        path: str,
        clock: Callable[[], float] = time.time,
        max_requeues: int = 3,
        default_ttl: float = 30.0,
    ):
        self.path = path
        self.clock = clock
        self.max_requeues = max_requeues
        self.default_ttl = default_ttl
        # Monotone count of request_id dedupe-key replays (observability).
        self.dedupe_hits = 0
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._conn.row_factory = sqlite3.Row
        with self._lock:
            self._conn.executescript(_SCHEMA)
            for table, column, decl in _MIGRATIONS:
                have = {
                    row["name"] for row in
                    self._conn.execute(f"PRAGMA table_info({table})")
                }
                if column not in have:
                    self._conn.execute(
                        f"ALTER TABLE {table} ADD COLUMN {column} {decl}"
                    )
            self._conn.commit()

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- internal helpers -----------------------------------------------------

    def _event(self, run_id: str, kind: str, detail: str = "") -> None:
        self._conn.execute(
            "INSERT INTO events (run_id, at, kind, detail) VALUES (?, ?, ?, ?)",
            (run_id, self.clock(), kind, detail),
        )

    def _unit_row(self, run_id: str, unit: str) -> sqlite3.Row:
        row = self._conn.execute(
            "SELECT * FROM units WHERE run_id = ? AND name = ?", (run_id, unit)
        ).fetchone()
        if row is None:
            raise NotFound(f"run {run_id!r} has no unit {unit!r}")
        return row

    def _run_row(self, run_id: str) -> sqlite3.Row:
        row = self._conn.execute(
            "SELECT * FROM runs WHERE id = ?", (run_id,)
        ).fetchone()
        if row is None:
            raise NotFound(f"no run {run_id!r}")
        return row

    def _recompute_run(self, run_id: str) -> str:
        """Derive the run status from its unit states and store it."""
        statuses = [
            row["status"] for row in self._conn.execute(
                "SELECT status FROM units WHERE run_id = ?", (run_id,)
            )
        ]
        if any(s == UNIT_FAILED for s in statuses):
            status = RUN_FAILED
        elif all(s == UNIT_COMPLETED for s in statuses):
            status = RUN_COMPLETED
        elif any(s in (UNIT_LEASED, UNIT_COMPLETED) for s in statuses):
            status = RUN_RUNNING
        else:
            status = RUN_QUEUED
        self._conn.execute(
            "UPDATE runs SET status = ?, updated_at = ? WHERE id = ?",
            (status, self.clock(), run_id),
        )
        return status

    def _expire(self, now: float) -> List[Tuple[str, str]]:
        """Sweep overdue active leases; requeue (or fail) their units.

        Each lease is expired exactly once: its row flips to ``expired``
        in the same transaction that requeues the unit, so repeated
        sweeps cannot requeue again.
        """
        expired: List[Tuple[str, str]] = []
        rows = self._conn.execute(
            "SELECT * FROM leases WHERE status = ? AND expires_at < ?",
            (LEASE_ACTIVE, now),
        ).fetchall()
        for lease in rows:
            self._conn.execute(
                "UPDATE leases SET status = ? WHERE id = ?",
                (LEASE_EXPIRED, lease["id"]),
            )
            unit = self._conn.execute(
                "SELECT * FROM units WHERE run_id = ? AND name = ?",
                (lease["run_id"], lease["unit"]),
            ).fetchone()
            # Only the lease that still owns the unit may requeue it; a
            # unit already completed (late sweep) is left alone.
            if unit is None or unit["lease_id"] != lease["id"] or (
                unit["status"] != UNIT_LEASED
            ):
                continue
            requeues = unit["requeues"] + 1
            if requeues > self.max_requeues:
                self._conn.execute(
                    "UPDATE units SET status = ?, requeues = ?, lease_id = NULL,"
                    " agent = NULL, error = ?, updated_at = ? "
                    "WHERE run_id = ? AND name = ?",
                    (UNIT_FAILED, requeues,
                     f"lease expired {requeues} times (agent kept dying)",
                     now, lease["run_id"], lease["unit"]),
                )
                self._event(lease["run_id"], "unit_failed",
                            f"{lease['unit']}: requeue budget exhausted")
            else:
                self._conn.execute(
                    "UPDATE units SET status = ?, requeues = ?, lease_id = NULL,"
                    " agent = NULL, updated_at = ? WHERE run_id = ? AND name = ?",
                    (UNIT_PENDING, requeues, now, lease["run_id"], lease["unit"]),
                )
            self._event(
                lease["run_id"], "lease_expired",
                f"{lease['unit']} leased by {lease['agent']} (lease {lease['id']})",
            )
            self._recompute_run(lease["run_id"])
            expired.append((lease["run_id"], lease["unit"]))
        return expired

    def _replayed(self, request_id: str, kind: str) -> Optional[Dict[str, Any]]:
        """The recorded response of an already-seen dedupe key, if any.

        Dedupe keys make the non-idempotent POSTs (submit, lease) safe to
        retry over a lossy wire: a ``reset`` fault delivers the request
        and drops the response, and the retry must observe the first
        outcome instead of creating a second run / second lease.
        """
        if not request_id:
            return None
        row = self._conn.execute(
            "SELECT * FROM requests WHERE id = ?", (request_id,)
        ).fetchone()
        if row is None:
            return None
        if row["kind"] != kind:
            raise Conflict(
                f"request id {request_id!r} was already used for {row['kind']!r}"
            )
        self.dedupe_hits += 1
        return json.loads(row["response"])

    def _record_request(
        self, request_id: str, kind: str, response: Mapping[str, Any]
    ) -> None:
        if not request_id:
            return
        self._conn.execute(
            "INSERT OR REPLACE INTO requests (id, kind, response, at)"
            " VALUES (?, ?, ?, ?)",
            (request_id, kind, json.dumps(dict(response)), self.clock()),
        )

    # -- run lifecycle --------------------------------------------------------

    def submit_run(
        self,
        config: Mapping[str, Any],
        units: Sequence[Tuple[str, Sequence[str]]],
        name: str = "",
        request_id: str = "",
    ) -> Dict[str, Any]:
        """Register a run and its dependency-ordered work-units.

        A ``request_id`` dedupe key makes resubmission after a lost
        response return the originally-created run instead of a twin.
        """
        if not units:
            raise Conflict("a run needs at least one work-unit")
        names = [unit for unit, _deps in units]
        if len(set(names)) != len(names):
            raise Conflict("duplicate work-unit names")
        known = set(names)
        for unit, deps in units:
            for dep in deps:
                if dep not in known:
                    raise Conflict(f"unit {unit!r} depends on unknown unit {dep!r}")
        run_id = _new_id("run")
        now = self.clock()
        with self._lock:
            replay = self._replayed(request_id, "submit")
            if replay is not None:
                return self.get_run(replay["run_id"])
            self._conn.execute(
                "INSERT INTO runs (id, name, config, status, submitted_at, updated_at)"
                " VALUES (?, ?, ?, ?, ?, ?)",
                (run_id, name or run_id, json.dumps(dict(config)),
                 RUN_QUEUED, now, now),
            )
            for seq, (unit, deps) in enumerate(units):
                self._conn.execute(
                    "INSERT INTO units (run_id, name, seq, deps, status, updated_at)"
                    " VALUES (?, ?, ?, ?, ?, ?)",
                    (run_id, unit, seq, json.dumps(list(deps)), UNIT_PENDING, now),
                )
            self._event(run_id, "submitted", f"{len(units)} unit(s)")
            self._record_request(request_id, "submit", {"run_id": run_id})
            self._conn.commit()
        return self.get_run(run_id)

    def list_runs(self) -> List[Dict[str, Any]]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM runs ORDER BY submitted_at, id"
            ).fetchall()
            return [self._run_summary(row) for row in rows]

    def _run_summary(self, row: sqlite3.Row) -> Dict[str, Any]:
        counts: Dict[str, int] = {}
        for unit in self._conn.execute(
            "SELECT status, COUNT(*) AS n FROM units WHERE run_id = ? GROUP BY status",
            (row["id"],),
        ):
            counts[unit["status"]] = unit["n"]
        status = RUN_PAUSED if row["paused"] and row["status"] not in TERMINAL_RUN \
            else row["status"]
        return {
            "id": row["id"],
            "name": row["name"],
            "status": status,
            "paused": bool(row["paused"]),
            "error": row["error"],
            "units": counts,
            "submitted_at": row["submitted_at"],
            "updated_at": row["updated_at"],
        }

    def get_run(self, run_id: str) -> Dict[str, Any]:
        with self._lock:
            run = self._run_row(run_id)
            units = [
                {
                    "name": row["name"],
                    "deps": json.loads(row["deps"]),
                    "status": row["status"],
                    "attempts": row["attempts"],
                    "requeues": row["requeues"],
                    "fence": row["fence"],
                    "agent": row["agent"],
                    "result": json.loads(row["result"]) if row["result"] else None,
                    "error": row["error"],
                }
                for row in self._conn.execute(
                    "SELECT * FROM units WHERE run_id = ? ORDER BY seq", (run_id,)
                )
            ]
            summary = self._run_summary(run)
            summary["config"] = json.loads(run["config"])
            summary["units"] = units
            return summary

    def events(self, run_id: str) -> List[Dict[str, Any]]:
        with self._lock:
            self._run_row(run_id)
            return [
                {"seq": row["seq"], "at": row["at"],
                 "kind": row["kind"], "detail": row["detail"]}
                for row in self._conn.execute(
                    "SELECT * FROM events WHERE run_id = ? ORDER BY seq", (run_id,)
                )
            ]

    # -- operator actions -----------------------------------------------------

    def pause_run(self, run_id: str) -> Dict[str, Any]:
        """Stop leasing this run's units; in-flight leases finish normally."""
        with self._lock:
            self._run_row(run_id)
            self._conn.execute(
                "UPDATE runs SET paused = 1, updated_at = ? WHERE id = ?",
                (self.clock(), run_id),
            )
            self._event(run_id, "paused")
            self._conn.commit()
            return self._run_summary(self._run_row(run_id))

    def resume_run(self, run_id: str) -> Dict[str, Any]:
        with self._lock:
            self._run_row(run_id)
            self._conn.execute(
                "UPDATE runs SET paused = 0, updated_at = ? WHERE id = ?",
                (self.clock(), run_id),
            )
            self._event(run_id, "resumed")
            self._conn.commit()
            return self._run_summary(self._run_row(run_id))

    def retry_unit(self, run_id: str, unit: str) -> Dict[str, Any]:
        """Requeue a terminal unit; the run journal makes the redo idempotent.

        This is the API face of the journal's ``ResumeDecision`` machinery:
        the re-leased unit replays the journal, verified completions come
        back ``RESUMED`` (zero work redone) and anything untrustworthy is
        replayed — so operator retries are always safe.
        """
        with self._lock:
            row = self._unit_row(run_id, unit)
            if row["status"] not in TERMINAL_UNIT:
                raise Conflict(
                    f"unit {unit!r} is {row['status']}; only completed or "
                    "failed units can be retried"
                )
            self._conn.execute(
                "UPDATE units SET status = ?, requeues = 0, lease_id = NULL,"
                " agent = NULL, error = NULL, updated_at = ?"
                " WHERE run_id = ? AND name = ?",
                (UNIT_PENDING, self.clock(), run_id, unit),
            )
            self._event(run_id, "unit_retried", unit)
            self._conn.execute(
                "UPDATE runs SET error = NULL WHERE id = ?", (run_id,)
            )
            self._recompute_run(run_id)
            self._conn.commit()
            return {"run": run_id, "unit": unit, "status": UNIT_PENDING}

    # -- the lease protocol ---------------------------------------------------

    def lease(
        self,
        agent: str,
        site: str = "",
        ttl: Optional[float] = None,
        request_id: str = "",
    ) -> Optional[Dict[str, Any]]:
        """Grant the oldest ready work-unit to ``agent``, or ``None``.

        Ready = pending, every dependency completed, run not paused and
        not failed.  The sweep of expired leases happens first, so work
        abandoned by a dead agent is immediately re-grantable.

        Every grant bumps the unit's **fencing epoch**; the lease carries
        it, and any later writer holding an older epoch is rejected with
        :class:`Fenced`.  A ``request_id`` dedupe key returns the original
        grant when the response was lost in flight, instead of leasing a
        second unit to the same ask.
        """
        ttl = self.default_ttl if ttl is None else float(ttl)
        if ttl <= 0:
            raise Conflict("lease ttl must be positive")
        now = self.clock()
        with self._lock:
            replay = self._replayed(request_id, "lease")
            if replay is not None:
                return replay or None
            self._expire(now)
            candidates = self._conn.execute(
                "SELECT u.*, r.config AS run_config, r.submitted_at AS run_at"
                " FROM units u JOIN runs r ON r.id = u.run_id"
                " WHERE u.status = ? AND r.paused = 0 AND r.status NOT IN (?, ?)"
                " ORDER BY r.submitted_at, r.id, u.seq",
                (UNIT_PENDING, RUN_FAILED, RUN_COMPLETED),
            ).fetchall()
            chosen = None
            for row in candidates:
                deps = json.loads(row["deps"])
                done = all(
                    self._unit_row(row["run_id"], dep)["status"] == UNIT_COMPLETED
                    for dep in deps
                )
                if done:
                    chosen = row
                    break
            if chosen is None:
                self._conn.commit()
                return None
            lease_id = _new_id("lease")
            fence = chosen["fence"] + 1
            self._conn.execute(
                "INSERT INTO leases (id, run_id, unit, agent, site, status,"
                " fence, created_at, expires_at)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (lease_id, chosen["run_id"], chosen["name"], agent, site,
                 LEASE_ACTIVE, fence, now, now + ttl),
            )
            self._conn.execute(
                "UPDATE units SET status = ?, attempts = attempts + 1,"
                " fence = ?, lease_id = ?, agent = ?, updated_at = ?"
                " WHERE run_id = ? AND name = ?",
                (UNIT_LEASED, fence, lease_id, agent, now,
                 chosen["run_id"], chosen["name"]),
            )
            self._event(chosen["run_id"], "leased",
                        f"{chosen['name']} -> {agent} (lease {lease_id})")
            self._recompute_run(chosen["run_id"])
            grant = {
                "lease_id": lease_id,
                "run_id": chosen["run_id"],
                "unit": chosen["name"],
                "attempt": chosen["attempts"] + 1,
                "fence": fence,
                "expires_at": now + ttl,
                "ttl": ttl,
                "config": json.loads(chosen["run_config"]),
            }
            self._record_request(request_id, "lease", grant)
            self._conn.commit()
            return grant

    def heartbeat(self, lease_id: str, ttl: Optional[float] = None) -> Dict[str, Any]:
        """Extend a live lease; a lost (expired/finished) lease conflicts."""
        ttl = self.default_ttl if ttl is None else float(ttl)
        now = self.clock()
        with self._lock:
            self._expire(now)
            row = self._conn.execute(
                "SELECT * FROM leases WHERE id = ?", (lease_id,)
            ).fetchone()
            if row is None:
                raise NotFound(f"no lease {lease_id!r}")
            if row["status"] != LEASE_ACTIVE:
                raise Conflict(f"lease {lease_id!r} is {row['status']}")
            expires = now + ttl
            self._conn.execute(
                "UPDATE leases SET expires_at = ? WHERE id = ?", (expires, lease_id)
            )
            self._conn.commit()
            return {"lease_id": lease_id, "expires_at": expires,
                    "fence": row["fence"]}

    def complete(
        self,
        lease_id: str,
        status: str = UNIT_COMPLETED,
        result: Optional[Mapping[str, Any]] = None,
        error: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Record a leased unit's outcome; idempotent on duplicates.

        Fencing discipline: a lease that already **completed** may re-POST
        freely (its work landed; the answer is a ``duplicate`` ack), but a
        lease that **expired** is behind the unit's fencing epoch — its
        late result is refused with :class:`Fenced` even if a successor
        has since finished the unit, because the stale holder must learn
        it lost, not mistake the successor's landing for its own.
        """
        if status not in TERMINAL_UNIT:
            raise Conflict(f"completion status must be one of {TERMINAL_UNIT}")
        now = self.clock()
        with self._lock:
            self._expire(now)
            lease = self._conn.execute(
                "SELECT * FROM leases WHERE id = ?", (lease_id,)
            ).fetchone()
            if lease is None:
                raise NotFound(f"no lease {lease_id!r}")
            unit = self._unit_row(lease["run_id"], lease["unit"])
            if lease["status"] == LEASE_EXPIRED or (
                lease["status"] == LEASE_ACTIVE and unit["lease_id"] != lease["id"]
            ):
                raise Fenced(
                    f"lease {lease_id!r} holds fence {lease['fence']} but the "
                    f"unit is at fence {unit['fence']}; the unit was requeued "
                    "and its new owner is authoritative"
                )
            if unit["status"] in TERMINAL_UNIT:
                # The work already landed via this same lease's earlier
                # POST: acknowledge, change nothing.
                run_status = self._recompute_run(lease["run_id"])
                self._conn.commit()
                return {
                    "run": lease["run_id"], "unit": lease["unit"],
                    "status": unit["status"], "duplicate": True,
                    "run_status": run_status,
                }
            if lease["status"] != LEASE_ACTIVE:
                raise Conflict(
                    f"lease {lease_id!r} is {lease['status']}; the unit was "
                    "requeued and its new owner is authoritative"
                )
            self._conn.execute(
                "UPDATE leases SET status = ? WHERE id = ?",
                (LEASE_COMPLETED, lease_id),
            )
            self._conn.execute(
                "UPDATE units SET status = ?, result = ?, error = ?,"
                " updated_at = ? WHERE run_id = ? AND name = ?",
                (status, json.dumps(dict(result)) if result else None, error,
                 now, lease["run_id"], lease["unit"]),
            )
            kind = "unit_completed" if status == UNIT_COMPLETED else "unit_failed"
            detail = lease["unit"] if not error else f"{lease['unit']}: {error}"
            self._event(lease["run_id"], kind, detail)
            if status == UNIT_FAILED and error:
                self._conn.execute(
                    "UPDATE runs SET error = ? WHERE id = ?",
                    (f"{lease['unit']}: {error}", lease["run_id"]),
                )
            run_status = self._recompute_run(lease["run_id"])
            self._conn.commit()
            return {
                "run": lease["run_id"], "unit": lease["unit"],
                "status": status, "duplicate": False, "run_status": run_status,
            }

    def expire_leases(self, now: Optional[float] = None) -> List[Tuple[str, str]]:
        """Public sweep (also runs inside every lease-protocol call)."""
        with self._lock:
            expired = self._expire(self.clock() if now is None else now)
            self._conn.commit()
            return expired

    # -- partition recovery ---------------------------------------------------

    def reconcile(
        self, agent: str, records: Sequence[Mapping[str, Any]]
    ) -> Dict[str, Any]:
        """Replay an agent's spooled outbox after a partition heals.

        ``records`` is the agent's durable outbox, oldest first: results
        and heartbeats it could not deliver while the link was down.
        Each is applied through the normal (idempotent, fenced) protocol
        paths and answered with an outcome instead of an error, so one
        round trip settles the whole backlog:

        * ``applied``    — the record landed (result recorded / lease
          extended);
        * ``duplicate``  — already landed (an earlier replay of the same
          outbox);
        * ``fenced``     — the lease lost its fencing epoch while the
          agent was away; the unit's new owner is authoritative and the
          agent must discard its local copy of the work;
        * ``lost``       — a heartbeat for a lease no longer active;
        * ``not_found`` / ``conflict`` / ``ignored`` — bookkeeping noise.

        The response also carries the agent's still-active leases so it
        can decide what to resume and what to relinquish.  The call is
        idempotent: replaying the same outbox again yields duplicates,
        never double-application.
        """
        outcomes: List[Dict[str, Any]] = []
        counts: Dict[str, int] = {}
        with self._lock:
            for record in records:
                kind = record.get("kind", "")
                lease_id = record.get("lease_id", "")
                try:
                    if kind == "complete":
                        ack = self.complete(
                            lease_id,
                            status=record.get("status", UNIT_COMPLETED),
                            result=record.get("result"),
                            error=record.get("error"),
                        )
                        outcome = "duplicate" if ack.get("duplicate") else "applied"
                    elif kind == "heartbeat":
                        self.heartbeat(lease_id, record.get("ttl"))
                        outcome = "applied"
                    else:
                        outcome = "ignored"
                except Fenced:
                    outcome = "fenced"
                except NotFound:
                    outcome = "not_found"
                except Conflict:
                    outcome = "lost" if kind == "heartbeat" else "conflict"
                outcomes.append(
                    {"kind": kind, "lease_id": lease_id, "outcome": outcome}
                )
                counts[outcome] = counts.get(outcome, 0) + 1
            active = [
                {"lease_id": row["id"], "run_id": row["run_id"],
                 "unit": row["unit"], "fence": row["fence"],
                 "expires_at": row["expires_at"]}
                for row in self._conn.execute(
                    "SELECT * FROM leases WHERE agent = ? AND status = ?"
                    " ORDER BY created_at, id",
                    (agent, LEASE_ACTIVE),
                )
            ]
            self._conn.commit()
        return {"agent": agent, "outcomes": outcomes,
                "counts": counts, "leases": active}

    def startup_sweep(self) -> Dict[str, int]:
        """Repair half-completed state after a server kill/restart.

        Every mutation commits atomically, so a killed server cannot tear
        a single transaction — but it *can* die between granting a lease
        and the response reaching the agent, or leave referential orphans
        behind a crashed filesystem.  The sweep restores the invariants a
        fresh server relies on:

        * overdue active leases are expired (the normal sweep);
        * ``leased`` units whose lease row is missing or no longer active
          go back to ``pending`` — without a requeue penalty, because the
          server (not the agent) lost track;
        * active leases no longer referenced by their unit are expired;
        * every run's derived status is recomputed.
        """
        now = self.clock()
        with self._lock:
            expired = len(self._expire(now))
            orphan_units = 0
            for unit in self._conn.execute(
                "SELECT * FROM units WHERE status = ?", (UNIT_LEASED,)
            ).fetchall():
                lease = None
                if unit["lease_id"]:
                    lease = self._conn.execute(
                        "SELECT * FROM leases WHERE id = ?", (unit["lease_id"],)
                    ).fetchone()
                if lease is None or lease["status"] != LEASE_ACTIVE:
                    self._conn.execute(
                        "UPDATE units SET status = ?, lease_id = NULL,"
                        " agent = NULL, updated_at = ?"
                        " WHERE run_id = ? AND name = ?",
                        (UNIT_PENDING, now, unit["run_id"], unit["name"]),
                    )
                    self._event(unit["run_id"], "sweep_requeued", unit["name"])
                    orphan_units += 1
            orphan_leases = 0
            for lease in self._conn.execute(
                "SELECT * FROM leases WHERE status = ?", (LEASE_ACTIVE,)
            ).fetchall():
                unit = self._conn.execute(
                    "SELECT * FROM units WHERE run_id = ? AND name = ?",
                    (lease["run_id"], lease["unit"]),
                ).fetchone()
                if unit is None or unit["lease_id"] != lease["id"]:
                    self._conn.execute(
                        "UPDATE leases SET status = ? WHERE id = ?",
                        (LEASE_EXPIRED, lease["id"]),
                    )
                    orphan_leases += 1
            for run in self._conn.execute("SELECT id FROM runs").fetchall():
                self._recompute_run(run["id"])
            self._conn.commit()
            return {
                "expired_leases": expired,
                "orphan_units_requeued": orphan_units,
                "orphan_leases_expired": orphan_leases,
            }

    # -- introspection --------------------------------------------------------

    def leases(self, run_id: Optional[str] = None) -> List[Dict[str, Any]]:
        query = "SELECT * FROM leases"
        args: Tuple = ()
        if run_id is not None:
            query += " WHERE run_id = ?"
            args = (run_id,)
        with self._lock:
            return [
                dict(row) for row in self._conn.execute(
                    query + " ORDER BY created_at, id", args
                )
            ]

    def stats(self) -> Dict[str, Any]:
        """Counts the metrics endpoint exposes."""
        with self._lock:
            runs: Dict[str, int] = {}
            for row in self._conn.execute(
                "SELECT status, COUNT(*) AS n FROM runs GROUP BY status"
            ):
                runs[row["status"]] = row["n"]
            units: Dict[str, int] = {}
            for row in self._conn.execute(
                "SELECT status, COUNT(*) AS n FROM units GROUP BY status"
            ):
                units[row["status"]] = row["n"]
            leases: Dict[str, int] = {}
            for row in self._conn.execute(
                "SELECT status, COUNT(*) AS n FROM leases GROUP BY status"
            ):
                leases[row["status"]] = row["n"]
            return {"runs": runs, "units": units, "leases": leases}
