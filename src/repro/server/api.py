"""The control-plane API: transport-free handlers over the run store.

Every route is a pure function ``(match, body) -> (status, payload)``
over the :class:`~repro.server.store.RunStore`, so the same handler
layer serves the stdlib HTTP server today and could mount on FastAPI
unchanged.  The table below is the service contract (pinned by
``tests/server/test_api_contract.py`` and documented in
``docs/architecture.md``):

    GET  /v1/health                          liveness + version
    GET  /v1/metrics                         telemetry snapshot + store stats
    POST /v1/runs                            submit {config, name?}
    GET  /v1/runs                            list runs
    GET  /v1/runs/{run}                      run detail (units, config)
    GET  /v1/runs/{run}/events               run event log
    POST /v1/runs/{run}/pause                stop leasing this run's units
    POST /v1/runs/{run}/resume               resume leasing
    POST /v1/runs/{run}/units/{unit}/retry   requeue a terminal unit
    POST /v1/lease                           {agent, site?, ttl?, request_id?} -> unit | 204
    POST /v1/lease/{lease}/heartbeat         {ttl?} extend the lease
    POST /v1/lease/{lease}/complete          {status, result?, error?}
    POST /v1/reconcile                       {agent, records} replay a spooled outbox

Errors are JSON ``{"error": message}`` with conventional status codes:
400 malformed, 404 unknown entity, 409 state conflict (including fenced
stale-lease writes).  Expired leases are swept on every request, so a
dead agent's work requeues no later than the next API touch.  The
non-idempotent POSTs (submit, lease) accept a ``request_id`` dedupe key
so a client may retry them safely over a lossy wire.
"""

from __future__ import annotations

import re
import time
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

import repro
from repro.server.store import Conflict, Fenced, NotFound, RunStore
from repro.telemetry import MetricsRegistry

__all__ = ["ApiError", "ControlPlaneAPI", "ROUTES"]

Response = Tuple[int, Optional[Dict[str, Any]]]


class ApiError(Exception):
    """A request the API rejects, with its HTTP status."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


# (method, path regex, handler attribute).  The canonical route table —
# docs and contract tests introspect this.
ROUTES: List[Tuple[str, str, str]] = [
    ("GET", r"^/v1/health$", "health"),
    ("GET", r"^/v1/metrics$", "metrics_snapshot"),
    ("POST", r"^/v1/runs$", "submit_run"),
    ("GET", r"^/v1/runs$", "list_runs"),
    ("GET", r"^/v1/runs/(?P<run>[^/]+)$", "get_run"),
    ("GET", r"^/v1/runs/(?P<run>[^/]+)/events$", "run_events"),
    ("POST", r"^/v1/runs/(?P<run>[^/]+)/pause$", "pause_run"),
    ("POST", r"^/v1/runs/(?P<run>[^/]+)/resume$", "resume_run"),
    ("POST", r"^/v1/runs/(?P<run>[^/]+)/units/(?P<unit>[^/]+)/retry$", "retry_unit"),
    ("POST", r"^/v1/lease$", "lease"),
    ("POST", r"^/v1/lease/(?P<lease>[^/]+)/heartbeat$", "heartbeat"),
    ("POST", r"^/v1/lease/(?P<lease>[^/]+)/complete$", "complete"),
    ("POST", r"^/v1/reconcile$", "reconcile"),
]


class ControlPlaneAPI:
    """Dispatches (method, path, body) onto store operations."""

    def __init__(
        self,
        store: RunStore,
        metrics: Optional[MetricsRegistry] = None,
        clock: Callable[[], float] = time.perf_counter,
    ):
        self.store = store
        self.metrics = metrics or MetricsRegistry(prefix="control_plane")
        self._clock = clock
        self._routes = [
            (method, re.compile(pattern), getattr(self, name))
            for method, pattern, name in ROUTES
        ]
        self._latency = self.metrics.histogram(
            "api.latency_seconds",
            buckets=(0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0),
        )
        # Partition-tolerance counters are always present (registered at
        # zero) so dashboards and tests can assert "zero on clean runs"
        # instead of "absent".
        for name in ("partition.fenced_rejections", "partition.reconciles",
                     "partition.outbox_replayed", "partition.deduped_requests",
                     "partition.disconnects", "partition.reconnect_attempts"):
            self.metrics.counter(name).inc(0)

    # -- dispatch -------------------------------------------------------------

    def handle(
        self, method: str, path: str, body: Optional[Mapping[str, Any]] = None
    ) -> Response:
        """Route one request; never raises — errors become JSON responses."""
        started = self._clock()
        # Sweep on every touch: a dead agent's unit requeues no later than
        # the next API request, regardless of which route it hits.
        for _run_id, unit in self.store.expire_leases():
            self.metrics.counter("leases.expired").inc(unit=unit)
        status, payload, route = self._dispatch(method, path, body)
        self._latency.observe(self._clock() - started)
        self.metrics.counter("api.requests").inc(
            route=route, method=method, code=str(status)
        )
        return status, payload

    def _dispatch(
        self, method: str, path: str, body: Optional[Mapping[str, Any]]
    ) -> Tuple[int, Optional[Dict[str, Any]], str]:
        matched_path = False
        for route_method, pattern, handler in self._routes:
            match = pattern.match(path)
            if match is None:
                continue
            matched_path = True
            if route_method != method:
                continue
            route = handler.__name__
            run_id = match.groupdict().get("run")
            if run_id:
                # Per-run API traffic, for operator dashboards.
                self.metrics.counter("api.run_requests").inc(run=run_id)
            try:
                status, payload = handler(match.groupdict(), body or {})
                return status, payload, route
            except ApiError as exc:
                return exc.status, {"error": exc.message}, route
            except NotFound as exc:
                return 404, {"error": str(exc)}, route
            except Fenced as exc:
                self.metrics.counter("partition.fenced_rejections").inc()
                return 409, {"error": str(exc), "fenced": True}, route
            except Conflict as exc:
                return 409, {"error": str(exc)}, route
            except (ValueError, KeyError, TypeError) as exc:
                return 400, {"error": str(exc)}, route
        if matched_path:
            return 405, {"error": f"method {method} not allowed on {path}"}, "none"
        return 404, {"error": f"no route {method} {path}"}, "none"

    # -- handlers -------------------------------------------------------------

    def health(self, match: Dict[str, str], body: Mapping[str, Any]) -> Response:
        return 200, {"ok": True, "version": repro.__version__}

    def metrics_snapshot(self, match: Dict[str, str], body: Mapping[str, Any]) -> Response:
        return 200, {
            "metrics": self.metrics.snapshot(),
            "store": self.store.stats(),
        }

    def submit_run(self, match: Dict[str, str], body: Mapping[str, Any]) -> Response:
        config = body.get("config")
        if not isinstance(config, Mapping):
            raise ApiError(400, "body must carry a 'config' mapping")
        # Validate and derive the unit graph server-side, so a malformed
        # config is rejected at submission, not at first lease.
        from repro.server.execution import unit_graph, validate_remote_config

        try:
            parsed = validate_remote_config(config)
        except Exception as exc:  # ConfigError or ValueError
            raise ApiError(400, f"invalid workflow config: {exc}") from exc
        units = unit_graph(parsed)
        before = self.store.dedupe_hits
        run = self.store.submit_run(
            config, units, name=str(body.get("name") or parsed.name),
            request_id=str(body.get("request_id") or ""),
        )
        if self.store.dedupe_hits > before:
            self.metrics.counter("partition.deduped_requests").inc(kind="submit")
        else:
            self.metrics.counter("runs.submitted").inc()
        return 201, {"run": run}

    def list_runs(self, match: Dict[str, str], body: Mapping[str, Any]) -> Response:
        return 200, {"runs": self.store.list_runs()}

    def get_run(self, match: Dict[str, str], body: Mapping[str, Any]) -> Response:
        return 200, {"run": self.store.get_run(match["run"])}

    def run_events(self, match: Dict[str, str], body: Mapping[str, Any]) -> Response:
        return 200, {"events": self.store.events(match["run"])}

    def pause_run(self, match: Dict[str, str], body: Mapping[str, Any]) -> Response:
        return 200, {"run": self.store.pause_run(match["run"])}

    def resume_run(self, match: Dict[str, str], body: Mapping[str, Any]) -> Response:
        return 200, {"run": self.store.resume_run(match["run"])}

    def retry_unit(self, match: Dict[str, str], body: Mapping[str, Any]) -> Response:
        return 200, {
            "unit": self.store.retry_unit(match["run"], match["unit"])
        }

    def lease(self, match: Dict[str, str], body: Mapping[str, Any]) -> Response:
        agent = body.get("agent")
        if not agent or not isinstance(agent, str):
            raise ApiError(400, "lease body must carry an 'agent' name")
        ttl = body.get("ttl")
        before = self.store.dedupe_hits
        leased = self.store.lease(
            agent,
            site=str(body.get("site") or ""),
            ttl=float(ttl) if ttl is not None else None,
            request_id=str(body.get("request_id") or ""),
        )
        if leased is None:
            return 204, None
        if self.store.dedupe_hits > before:
            self.metrics.counter("partition.deduped_requests").inc(kind="lease")
        else:
            self.metrics.counter("leases.granted").inc(unit=leased["unit"])
        return 200, {"lease": leased}

    def heartbeat(self, match: Dict[str, str], body: Mapping[str, Any]) -> Response:
        ttl = body.get("ttl")
        beat = self.store.heartbeat(
            match["lease"], ttl=float(ttl) if ttl is not None else None
        )
        return 200, beat

    def complete(self, match: Dict[str, str], body: Mapping[str, Any]) -> Response:
        status = str(body.get("status") or "completed")
        result = body.get("result")
        if result is not None and not isinstance(result, Mapping):
            raise ApiError(400, "'result' must be a mapping when present")
        outcome = self.store.complete(
            match["lease"],
            status=status,
            result=result,
            error=body.get("error"),
        )
        self.metrics.counter("units.completed").inc(status=outcome["status"])
        return 200, outcome

    def reconcile(self, match: Dict[str, str], body: Mapping[str, Any]) -> Response:
        agent = body.get("agent")
        if not agent or not isinstance(agent, str):
            raise ApiError(400, "reconcile body must carry an 'agent' name")
        records = body.get("records", [])
        if not isinstance(records, list) or any(
            not isinstance(r, Mapping) for r in records
        ):
            raise ApiError(400, "'records' must be a list of mappings")
        outcome = self.store.reconcile(agent, records)
        self.metrics.counter("partition.reconciles").inc(agent=agent)
        # The agent's own view of the outage rides along: how many times
        # it dropped into degraded mode and how many probes the reconnect
        # took.  The server cannot observe a severed wire directly, so
        # this is the only way those counters reach central /metrics.
        stats = body.get("stats")
        if isinstance(stats, Mapping):
            for key in ("disconnects", "reconnect_attempts"):
                try:
                    value = int(stats.get(key, 0))
                except (TypeError, ValueError):
                    continue
                if value > 0:
                    self.metrics.counter(f"partition.{key}").inc(value, agent=agent)
        counts = outcome["counts"]
        replayed = counts.get("applied", 0) + counts.get("duplicate", 0)
        if replayed:
            self.metrics.counter("partition.outbox_replayed").inc(replayed)
        if counts.get("fenced"):
            self.metrics.counter("partition.fenced_rejections").inc(
                counts["fenced"]
            )
        return 200, outcome
