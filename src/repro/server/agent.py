"""The site agent: a facility's worker loop against the control plane.

An agent is the paper's "site" made executable: a process at one
facility that polls the central service for ready work-units, executes
each through the existing stage runtime
(:func:`~repro.server.execution.execute_unit`), heartbeats while the
work runs, and reports the outcome.  Several agents at several sites
drain one run cooperatively — the server's lease protocol decides who
does what, the shared filesystem and run journal carry the state.

Failure is the design center, not the exception path:

* If the agent dies mid-unit (modelled by the ``agent`` chaos crash
  surface), its heartbeats stop, the lease expires, and the server
  requeues the unit for the next poller — whose journal replay makes
  the re-execution idempotent.
* If the *server* is the one that disappears mid-heartbeat, the agent
  keeps computing; a 404/409 on a later heartbeat means the lease was
  lost to a new owner, so the result POST is skipped (the new owner is
  authoritative).
* If the unit's body raises, the failure is reported honestly and the
  server decides (operator ``retry``) whether it runs again.
"""

from __future__ import annotations

import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional

from repro.chaos.surfaces import chaos_crash
from repro.server.client import (
    ControlPlaneClient,
    Lease,
    RequestFailed,
    ServerUnavailable,
)
from repro.server.execution import execute_unit

__all__ = ["AgentStats", "SiteAgent"]


@dataclass
class AgentStats:
    """What one agent did with its life."""

    polls: int = 0
    idle_polls: int = 0
    leases: int = 0
    completed: int = 0
    failed: int = 0
    lost_leases: int = 0
    heartbeats: int = 0
    errors: Dict[str, str] = field(default_factory=dict)


class SiteAgent:
    """Polls, leases, executes, heartbeats, reports — until told to stop."""

    def __init__(
        self,
        client: ControlPlaneClient,
        name: str,
        site: str = "",
        ttl: float = 15.0,
        poll_interval: float = 0.05,
        heartbeat_interval: Optional[float] = None,
        chaos: Any = None,
        executor: Callable[..., Mapping[str, Any]] = execute_unit,
        sleeper: Callable[[float], None] = time.sleep,
    ):
        self.client = client
        self.name = name
        self.site = site
        self.ttl = ttl
        self.poll_interval = poll_interval
        # A third of the TTL keeps two missed beats survivable.
        self.heartbeat_interval = (
            heartbeat_interval if heartbeat_interval is not None else ttl / 3.0
        )
        self.chaos = chaos
        self.executor = executor
        self.stats = AgentStats()
        self._sleep = sleeper

    def run(
        self,
        stop: Optional[threading.Event] = None,
        max_units: Optional[int] = None,
        idle_exit_after: Optional[int] = None,
    ) -> AgentStats:
        """The agent main loop.

        Stops when ``stop`` is set, after ``max_units`` executed units,
        or after ``idle_exit_after`` *consecutive* empty polls (the
        drain-and-exit mode the e2e tests and one-shot CLI use).
        Returns the accumulated :class:`AgentStats`.
        """
        idle_streak = 0
        executed = 0
        while True:
            if stop is not None and stop.is_set():
                break
            if max_units is not None and executed >= max_units:
                break
            self.stats.polls += 1
            lease = self.client.lease(self.name, site=self.site, ttl=self.ttl)
            if lease is None:
                self.stats.idle_polls += 1
                idle_streak += 1
                if idle_exit_after is not None and idle_streak >= idle_exit_after:
                    break
                self._sleep(self.poll_interval)
                continue
            idle_streak = 0
            executed += 1
            self.stats.leases += 1
            self._execute(lease)
        return self.stats

    # -- one unit -------------------------------------------------------------

    def _execute(self, lease: Lease) -> None:
        # The killed-mid-lease fault surface: the agent holds the lease,
        # the unit is not done, and the process dies without cleanup.
        chaos_crash(self.chaos, "agent", f"{lease.run_id}/{lease.unit}")

        lost = threading.Event()
        done = threading.Event()
        beater = threading.Thread(
            target=self._heartbeat_loop,
            args=(lease, done, lost),
            name=f"heartbeat-{lease.lease_id}",
            daemon=True,
        )
        beater.start()
        try:
            try:
                result = self.executor(lease.config, lease.unit, chaos=self.chaos)
                status, error = "completed", None
            except Exception as exc:
                result = None
                status = "failed"
                error = f"{type(exc).__name__}: {exc}"
                self.stats.errors[f"{lease.run_id}/{lease.unit}"] = (
                    traceback.format_exc()
                )
        finally:
            done.set()
            beater.join(timeout=5)

        if lost.is_set():
            # The server moved on while we worked: a successor holds (or
            # held) the lease, and its result is the authoritative one.
            self.stats.lost_leases += 1
            return
        try:
            self.client.complete(
                lease.lease_id, status=status, result=result, error=error
            )
        except RequestFailed as exc:
            if exc.status in (404, 409):
                self.stats.lost_leases += 1
                return
            raise
        if status == "completed":
            self.stats.completed += 1
        else:
            self.stats.failed += 1

    def _heartbeat_loop(
        self, lease: Lease, done: threading.Event, lost: threading.Event
    ) -> None:
        while not done.wait(self.heartbeat_interval):
            try:
                self.client.heartbeat(lease.lease_id, ttl=self.ttl)
                self.stats.heartbeats += 1
            except RequestFailed as exc:
                if exc.status in (404, 409):
                    lost.set()
                    return
            except ServerUnavailable:
                # Keep computing: if the server restarts within the TTL
                # the lease survives; if not, `lost` is discovered at the
                # completion POST.
                continue
